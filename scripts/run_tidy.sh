#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every first-party source file
# using the compile database exported by CMake.
#
#   scripts/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Exits 0 only when the enabled check set is clean (WarningsAsErrors: '*'
# turns every finding into a failure). When clang-tidy is not installed
# (e.g. the gcc-only dev container) the script prints a notice and exits 0
# so local workflows do not break; CI installs clang-tidy and runs it for
# real.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true
EXTRA_ARGS=()
if [[ "${1:-}" == "--" ]]; then
  shift
  EXTRA_ARGS=("$@")
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_tidy.sh: $TIDY not found; skipping (install clang-tidy to run" \
       "the full check set)" >&2
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_tidy.sh: $BUILD_DIR/compile_commands.json missing;" \
       "configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

# First-party translation units only; gtest/benchmark internals are not
# ours to lint.
mapfile -t FILES < <(find src tools bench examples -name '*.cpp' | sort)
echo "run_tidy.sh: linting ${#FILES[@]} files against $BUILD_DIR"

RUNNER="$(command -v run-clang-tidy || true)"
if [[ -n "$RUNNER" ]]; then
  "$RUNNER" -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -quiet \
    "${EXTRA_ARGS[@]}" "${FILES[@]}"
else
  FAILED=0
  for f in "${FILES[@]}"; do
    "$TIDY" -p "$BUILD_DIR" --quiet "${EXTRA_ARGS[@]}" "$f" || FAILED=1
  done
  exit $FAILED
fi
