#!/usr/bin/env bash
# Runs the detlint determinism static analyzer over the first-party tree
# (the same invocation the CI `detlint` job uses).
#
#   scripts/run_detlint.sh [build-dir] [-- extra detlint args]
#
# Builds the `detlint` target if the binary is missing, then lints
# src/ and tools/ in --strict mode (warnings fail too). Exit codes are
# detlint's own: 0 clean, 1 unsuppressed findings, 2 usage/IO error.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true
EXTRA_ARGS=()
if [[ "${1:-}" == "--" ]]; then
  shift
  EXTRA_ARGS=("$@")
fi

DETLINT="$BUILD_DIR/tools/detlint"
if [[ ! -x "$DETLINT" ]]; then
  if [[ ! -d "$BUILD_DIR" ]]; then
    echo "run_detlint.sh: $BUILD_DIR missing; configure first:" \
         "cmake -B $BUILD_DIR -S ." >&2
    exit 2
  fi
  cmake --build "$BUILD_DIR" --target detlint
fi

exec "$DETLINT" --strict "${EXTRA_ARGS[@]}" src tools
