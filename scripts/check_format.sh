#!/usr/bin/env bash
# clang-format gate: fails if any first-party file deviates from
# .clang-format. Pass --fix to rewrite in place instead of checking.
#
#   scripts/check_format.sh [--fix]
#
# Like run_tidy.sh, a missing clang-format binary is a skip (exit 0)
# locally; CI installs it and enforces.
set -euo pipefail

cd "$(dirname "$0")/.."

FMT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FMT" >/dev/null 2>&1; then
  echo "check_format.sh: $FMT not found; skipping (install clang-format" \
       "to enforce the style gate)" >&2
  exit 0
fi

MODE=(--dry-run -Werror)
if [[ "${1:-}" == "--fix" ]]; then
  MODE=(-i)
fi

mapfile -t FILES < <(find src tests bench tools examples \
  \( -name '*.cpp' -o -name '*.h' \) | sort)
echo "check_format.sh: ${#FILES[@]} files"
"$FMT" "${MODE[@]}" "${FILES[@]}"
