#!/usr/bin/env python3
"""Extract the CSV blocks a propsim bench prints into standalone files.

Every bench brackets its plot-ready data with

    --- begin csv: NAME ---
    ...csv...
    --- end csv: NAME ---

Usage:
    ./build/bench/fig5_gnutella_prop_g | scripts/extract_csv.py -o results/
    scripts/extract_csv.py -o results/ bench_output.txt

writes results/NAME.csv per block (later duplicates get .2.csv, ...).
A gnuplot one-liner for a time-series block:

    gnuplot -p -e "set datafile separator ','; set key autotitle columnhead; \
                   plot for [i=2:5] 'results/fig5a.csv' using 1:i with lines"
"""
import argparse
import os
import re
import sys

BEGIN = re.compile(r"^--- begin csv: (?P<name>.+?) ---$")
END = re.compile(r"^--- end csv: (?P<name>.+?) ---$")


def extract(stream, outdir):
    os.makedirs(outdir, exist_ok=True)
    written = {}
    name, lines = None, []
    for raw in stream:
        line = raw.rstrip("\n")
        m = BEGIN.match(line)
        if m:
            name, lines = m.group("name"), []
            continue
        m = END.match(line)
        if m and name is not None:
            count = written.get(name, 0) + 1
            written[name] = count
            suffix = "" if count == 1 else f".{count}"
            path = os.path.join(outdir, f"{name}{suffix}.csv")
            with open(path, "w") as f:
                f.write("\n".join(lines) + "\n")
            print(f"wrote {path} ({len(lines)} lines)")
            name = None
            continue
        if name is not None:
            lines.append(line)
    if name is not None:
        print(f"warning: unterminated csv block '{name}'", file=sys.stderr)
    return sum(written.values())


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="*", help="bench output files "
                        "(default: stdin)")
    parser.add_argument("-o", "--outdir", default="results",
                        help="output directory (default: results/)")
    args = parser.parse_args()

    total = 0
    if args.inputs:
        for path in args.inputs:
            with open(path) as f:
                total += extract(f, args.outdir)
    else:
        total += extract(sys.stdin, args.outdir)
    if total == 0:
        print("no csv blocks found", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
