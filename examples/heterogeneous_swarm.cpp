// Heterogeneous swarm: fast hubs and slow peers (the paper's Section
// 5.3 setting as an application scenario).
//
// A media-sharing swarm where 20% of peers are well-provisioned (10 ms
// processing) and attract most requests. Shows why degree preservation
// matters: PROP-O relocates peers while every hub keeps its fan-out,
// whereas LTM's cut-and-add erodes hub degrees and slows exactly the
// popular lookups.
#include <cstdio>

#include "baselines/ltm.h"
#include "core/prop_engine.h"
#include "gnutella/gnutella.h"
#include "metrics/metrics.h"
#include "sim/simulator.h"
#include "topology/transit_stub.h"
#include "workload/heterogeneity.h"
#include "workload/host_selection.h"
#include "workload/lookups.h"

namespace {

using namespace propsim;

struct SwarmResult {
  double popular_ms = 0.0;   // lookups destined to fast hubs (90%)
  double unpopular_ms = 0.0; // lookups destined to slow peers
  std::size_t hub_min_degree = 0;
};

template <typename OptimizeFn>
SwarmResult run_swarm(const char* label, OptimizeFn&& optimize) {
  Rng rng(33);
  const TransitStubTopology topo =
      make_transit_stub(TransitStubConfig::ts_large(), rng);
  const LatencyOracle oracle(topo);  // exact hierarchical engine, O(1) queries
  const auto hosts = select_stub_hosts(topo, 600, rng);
  GnutellaConfig gcfg;
  OverlayNetwork net = build_gnutella_overlay(gcfg, hosts, oracle, rng);

  Rng hrng(34);
  BimodalConfig bcfg;  // 20% fast (10ms) / 80% slow (100ms)
  const auto delays = make_bimodal_delays_by_degree(net, bcfg, hrng);

  optimize(net);

  const auto fast = delays.slot_fast(net);
  const auto proc = delays.slot_delays(net);
  Rng qrng(35);
  const auto popular = biased_queries(net.graph(), fast, 1.0, 3000, qrng);
  const auto unpopular = biased_queries(net.graph(), fast, 0.0, 3000, qrng);

  SwarmResult r;
  r.popular_ms =
      average_unstructured_lookup_latency(net, popular, &proc);
  r.unpopular_ms =
      average_unstructured_lookup_latency(net, unpopular, &proc);
  r.hub_min_degree = static_cast<std::size_t>(-1);
  for (const SlotId s : net.graph().active_slots()) {
    if (fast[s]) {
      r.hub_min_degree = std::min(r.hub_min_degree, net.graph().degree(s));
    }
  }
  std::printf("%-10s popular %.0f ms, unpopular %.0f ms, weakest hub "
              "degree %zu\n",
              label, r.popular_ms, r.unpopular_ms, r.hub_min_degree);
  return r;
}

}  // namespace

int main() {
  std::printf("swarm: 600 peers, 20%% fast hubs, 90%% of demand on hubs\n\n");

  const SwarmResult plain = run_swarm("baseline", [](OverlayNetwork&) {});

  const SwarmResult prop_o = run_swarm("PROP-O", [](OverlayNetwork& net) {
    Simulator sim;
    PropParams params;
    params.mode = PropMode::kPropO;
    PropEngine engine(net, sim, params, 36);
    engine.start();
    sim.run_until(3600.0);
  });

  const SwarmResult ltm = run_swarm("LTM", [](OverlayNetwork& net) {
    Simulator sim;
    LtmParams params;
    LtmEngine engine(net, sim, params, 37);
    engine.start();
    sim.run_until(3600.0);
  });

  std::printf("\npopular-content latency: baseline %.0f ms, PROP-O %.0f "
              "ms, LTM %.0f ms\n",
              plain.popular_ms, prop_o.popular_ms, ltm.popular_ms);
  std::printf("PROP-O keeps every hub's degree (weakest hub: %zu links vs "
              "%zu under LTM)\n",
              prop_o.hub_min_degree, ltm.hub_min_degree);
  std::printf("=> degree preservation is what protects the swarm's "
              "capacity where the demand is\n");
  return 0;
}
