// Quickstart: build a physical Internet model, put an unstructured
// overlay on top, run PROP-G for a simulated hour, and watch the
// topology mismatch shrink.
//
//   $ ./quickstart
//
// Walks through the five propsim steps every application uses:
//   1. generate a transit-stub physical network,
//   2. select overlay hosts and build an overlay,
//   3. attach a PROP engine to a discrete-event simulator,
//   4. run simulated time,
//   5. measure (lookup latency / stretch) before vs after.
#include <cstdio>

#include "core/prop_engine.h"
#include "gnutella/gnutella.h"
#include "metrics/metrics.h"
#include "sim/simulator.h"
#include "topology/transit_stub.h"
#include "workload/host_selection.h"
#include "workload/lookups.h"

int main() {
  using namespace propsim;

  // 1. Physical network: the paper's ts-large Internet model (~4.8k
  //    routers; stub-stub 5 ms, stub-transit 20 ms, transit-transit
  //    100 ms links).
  Rng rng(42);
  const TransitStubTopology topo =
      make_transit_stub(TransitStubConfig::ts_large(), rng);
  const LatencyOracle oracle(topo);  // exact hierarchical engine, O(1) queries
  std::printf("physical network: %zu nodes, %zu links\n",
              topo.graph.node_count(), topo.graph.edge_count());

  // 2. Overlay: 500 peers on random stub hosts, Gnutella-style random
  //    attachment (4 links each).
  const auto hosts = select_stub_hosts(topo, 500, rng);
  GnutellaConfig gcfg;
  OverlayNetwork net = build_gnutella_overlay(gcfg, hosts, oracle, rng);
  std::printf("overlay: %zu peers, %zu logical links, avg degree %.1f\n",
              net.size(), net.graph().edge_count(),
              net.graph().average_active_degree());

  // 3. Protocol: PROP-G with the paper's defaults (nhops=2, 60 s timer).
  Simulator sim;
  PropParams params;  // PropMode::kPropG by default
  PropEngine engine(net, sim, params, /*seed=*/7);

  // A fixed workload to measure against: 5000 random lookups.
  Rng qrng(11);
  const auto queries = uniform_queries(net.graph(), 5000, qrng);
  const double before = average_unstructured_lookup_latency(net, queries);

  // 4. Simulate one hour.
  engine.start();
  sim.run_until(3600.0);

  // 5. Results.
  const double after = average_unstructured_lookup_latency(net, queries);
  std::printf("\nafter 1 simulated hour of PROP-G:\n");
  std::printf("  exchanges committed : %llu (of %llu probe attempts)\n",
              static_cast<unsigned long long>(engine.stats().exchanges),
              static_cast<unsigned long long>(engine.stats().attempts));
  std::printf("  avg lookup latency  : %.1f ms -> %.1f ms (%.2fx better)\n",
              before, after, before / after);
  std::printf("  avg logical link    : %.1f ms\n",
              net.average_logical_link_latency());
  std::printf("  protocol messages   : %llu total\n",
              static_cast<unsigned long long>(net.traffic().control_total()));
  return 0;
}
