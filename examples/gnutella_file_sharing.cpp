// File-sharing scenario: scoped-flood search in a Gnutella-like network.
//
// Objects are published with a few replicas each; peers flood queries
// with a TTL. The example contrasts hit rate, first-response latency and
// per-query message cost before and after PROP-O optimizes the overlay —
// including the degree profile PROP-O is designed to preserve (hub peers
// keep serving many links).
#include <cstdio>
#include <vector>

#include "core/prop_engine.h"
#include "gnutella/flood_search.h"
#include "gnutella/gnutella.h"
#include "sim/simulator.h"
#include "topology/transit_stub.h"
#include "workload/host_selection.h"

namespace {

struct SearchStats {
  double hit_rate = 0.0;
  double avg_latency_ms = 0.0;
  double avg_messages = 0.0;
};

SearchStats run_searches(propsim::OverlayNetwork& net,
                         const std::vector<std::vector<bool>>& catalogs,
                         std::uint32_t ttl, std::uint64_t seed) {
  using namespace propsim;
  Rng rng(seed);
  const auto slots = net.graph().active_slots();
  SearchStats stats;
  const int queries = 2000;
  int hits = 0;
  double latency = 0.0;
  double messages = 0.0;
  for (int i = 0; i < queries; ++i) {
    const SlotId src =
        slots[static_cast<std::size_t>(rng.uniform(slots.size()))];
    const auto& holders =
        catalogs[static_cast<std::size_t>(rng.uniform(catalogs.size()))];
    const FloodResult res = flood_search(net, src, holders, ttl);
    messages += static_cast<double>(res.messages);
    if (res.found) {
      ++hits;
      latency += res.first_response_ms;
    }
  }
  stats.hit_rate = static_cast<double>(hits) / queries;
  stats.avg_latency_ms = hits ? latency / hits : 0.0;
  stats.avg_messages = messages / queries;
  return stats;
}

}  // namespace

int main() {
  using namespace propsim;

  Rng rng(2024);
  const TransitStubTopology topo =
      make_transit_stub(TransitStubConfig::ts_large(), rng);
  const LatencyOracle oracle(topo);  // exact hierarchical engine, O(1) queries
  const auto hosts = select_stub_hosts(topo, 600, rng);
  GnutellaConfig gcfg;
  OverlayNetwork net = build_gnutella_overlay(gcfg, hosts, oracle, rng);

  // Publish 50 objects, each replicated on 3 random peers.
  std::vector<std::vector<bool>> catalogs;
  for (int obj = 0; obj < 50; ++obj) {
    std::vector<bool> holders(net.graph().slot_count(), false);
    for (const auto idx : rng.sample_indices(net.graph().slot_count(), 3)) {
      holders[idx] = true;
    }
    catalogs.push_back(std::move(holders));
  }

  constexpr std::uint32_t kTtl = 6;  // Gnutella's classic scope
  const SearchStats before = run_searches(net, catalogs, kTtl, 99);

  std::printf("optimizing overlay with PROP-O (degree-preserving)...\n");
  Simulator sim;
  PropParams params;
  params.mode = PropMode::kPropO;
  PropEngine engine(net, sim, params, 5);
  const std::size_t max_deg_before = [&] {
    std::size_t d = 0;
    for (const SlotId s : net.graph().active_slots()) {
      d = std::max(d, net.graph().degree(s));
    }
    return d;
  }();
  engine.start();
  sim.run_until(3600.0);

  const SearchStats after = run_searches(net, catalogs, kTtl, 99);
  const std::size_t max_deg_after = [&] {
    std::size_t d = 0;
    for (const SlotId s : net.graph().active_slots()) {
      d = std::max(d, net.graph().degree(s));
    }
    return d;
  }();

  std::printf("\nTTL-%u flood search over 50 objects x 3 replicas:\n", kTtl);
  std::printf("                     before      after PROP-O\n");
  std::printf("  hit rate          %6.1f%%      %6.1f%%\n",
              100.0 * before.hit_rate, 100.0 * after.hit_rate);
  std::printf("  first response    %6.1f ms    %6.1f ms\n",
              before.avg_latency_ms, after.avg_latency_ms);
  std::printf("  messages/query    %6.0f       %6.0f\n",
              before.avg_messages, after.avg_messages);
  std::printf("  hub max degree    %6zu       %6zu (preserved)\n",
              max_deg_before, max_deg_after);
  std::printf("  exchanges: %llu\n",
              static_cast<unsigned long long>(engine.stats().exchanges));
  return 0;
}
