// DHT membership protocol: watch a Chord ring build itself, survive
// crashes and heal through stabilization.
//
// The other examples use the converged ChordRing; this one runs the
// actual protocol (DynamicChord): nodes join through a gateway lookup,
// some crash without warning, and periodic stabilize/fix-finger rounds
// repair the ring. The printed timeline shows lookup correctness
// collapsing under a crash wave and recovering as repairs land — the
// machinery the paper's peer-exchange relies on for its own
// notifications ("just as what happens when peers arrive or depart").
#include <cstdio>
#include <set>
#include <vector>

#include "chord/dynamic_chord.h"
#include "common/rng.h"

namespace {

using namespace propsim;

struct LookupHealth {
  double correct = 0.0;   // fraction landing on the true owner
  double avg_hops = 0.0;  // stale fingers force detours
};

LookupHealth probe_lookups(const DynamicChord& chord, Rng& rng) {
  LookupHealth h;
  int correct = 0;
  double hops = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    SlotId src;
    do {
      src = static_cast<SlotId>(rng.uniform(chord.slot_count()));
    } while (!chord.is_active(src));
    const ChordId key = rng.next();
    const auto res = chord.lookup(src, key);
    if (res.ok && res.path.back() == chord.true_owner(key)) ++correct;
    hops += static_cast<double>(res.path.size() - 1);
  }
  h.correct = static_cast<double>(correct) / trials;
  h.avg_hops = hops / trials;
  return h;
}

}  // namespace

int main() {
  using namespace propsim;

  Rng rng(99);
  DynamicChord chord((DynamicChordConfig()));
  std::set<ChordId> used;
  auto fresh_id = [&] {
    ChordId id;
    do {
      id = rng.next();
    } while (!used.insert(id).second);
    return id;
  };

  std::printf("phase 1: bootstrap + 79 joins (2 stabilize rounds each)\n");
  chord.bootstrap(fresh_id());
  std::vector<SlotId> members{0};
  while (chord.active_count() < 80) {
    const SlotId gateway = members[static_cast<std::size_t>(
        rng.uniform(members.size()))];
    members.push_back(chord.join(fresh_id(), gateway));
    chord.stabilize_all(2);
  }
  Rng qrng(7);
  auto h = probe_lookups(chord, qrng);
  std::printf("  members=%zu ring_consistent=%s correct=%.0f%% "
              "avg_hops=%.2f\n",
              chord.active_count(),
              chord.ring_consistent() ? "yes" : "no", 100.0 * h.correct,
              h.avg_hops);

  std::printf("\nphase 2: crash wave — 16 nodes vanish at once\n");
  Rng crng(13);
  for (int i = 0; i < 16; ++i) {
    SlotId victim;
    do {
      victim = static_cast<SlotId>(crng.uniform(chord.slot_count()));
    } while (!chord.is_active(victim));
    chord.fail(victim);
  }
  h = probe_lookups(chord, qrng);
  std::printf("  members=%zu ring_consistent=%s correct=%.0f%% "
              "avg_hops=%.2f (before any repair; the successor lists\n"
              "  absorb the crash wave — correctness holds, but lookups\n"
              "  detour around dead fingers)\n",
              chord.active_count(),
              chord.ring_consistent() ? "yes" : "no", 100.0 * h.correct,
              h.avg_hops);

  std::printf("\nphase 3: stabilization rounds heal the ring\n");
  for (int round = 1; round <= 3; ++round) {
    chord.stabilize_all(1);
    h = probe_lookups(chord, qrng);
    std::printf("  round %d: ring_consistent=%s correct=%.0f%% "
                "avg_hops=%.2f\n",
                round, chord.ring_consistent() ? "yes" : "no",
                100.0 * h.correct, h.avg_hops);
  }

  std::printf("\nphase 4: graceful departures shrink the ring\n");
  for (int i = 0; i < 24; ++i) {
    SlotId victim;
    do {
      victim = static_cast<SlotId>(crng.uniform(chord.slot_count()));
    } while (!chord.is_active(victim));
    chord.leave(victim);
    chord.stabilize_all(1);
  }
  h = probe_lookups(chord, qrng);
  std::printf("  members=%zu ring_consistent=%s correct=%.0f%% "
              "avg_hops=%.2f\n",
              chord.active_count(),
              chord.ring_consistent() ? "yes" : "no", 100.0 * h.correct,
              h.avg_hops);
  return 0;
}
