// Churn recovery: peers come and go; PROP adapts.
//
// Runs a PROP-O overlay through three phases — warm-up, a flash-crowd
// churn burst, and recovery — printing a live timeline of population,
// lookup latency and probing activity. Shows the Markov-chain timer in
// action: probing quiesces once converged, wakes up when churn disturbs
// neighborhoods, and quiesces again.
#include <cstdio>

#include "core/prop_engine.h"
#include "gnutella/gnutella.h"
#include "metrics/metrics.h"
#include "sim/simulator.h"
#include "topology/transit_stub.h"
#include "workload/churn.h"
#include "workload/host_selection.h"
#include "workload/lookups.h"

int main() {
  using namespace propsim;

  Rng rng(55);
  const TransitStubTopology topo =
      make_transit_stub(TransitStubConfig::ts_large(), rng);
  const LatencyOracle oracle(topo);  // exact hierarchical engine, O(1) queries
  auto [hosts, spares] = select_stub_hosts_with_spares(topo, 500, 150, rng);
  GnutellaConfig gcfg;
  OverlayNetwork net = build_gnutella_overlay(gcfg, hosts, oracle, rng);

  Simulator sim;
  PropParams params;
  params.mode = PropMode::kPropO;
  PropEngine engine(net, sim, params, 56);

  ChurnParams cparams;
  cparams.join_rate_per_s = 0.5;
  cparams.leave_rate_per_s = 0.5;
  cparams.start_s = 3600.0;   // burst starts after convergence
  cparams.end_s = 5400.0;     // ...and lasts 30 minutes
  ChurnProcess churn(net, sim, &engine, gcfg, cparams, spares, 57);

  std::printf("time(min)  peers  lookup(ms)  probes/min  phase\n");
  std::printf("--------------------------------------------------\n");
  const double horizon = 10800.0;  // 3 hours
  const double step = 600.0;       // report every 10 minutes
  std::uint64_t last_attempts = 0;
  Rng qrng(58);
  for (double t = step; t <= horizon; t += step) {
    sim.schedule_at(t, [&, t] {
      const auto queries = uniform_queries(net.graph(), 1500, qrng);
      const double lookup =
          average_unstructured_lookup_latency(net, queries);
      const std::uint64_t attempts = engine.stats().attempts;
      const double probes_per_min =
          static_cast<double>(attempts - last_attempts) / (step / 60.0);
      last_attempts = attempts;
      const char* phase = t <= cparams.start_s  ? "warm-up/converged"
                          : t <= cparams.end_s ? "CHURN BURST"
                                               : "recovery";
      std::printf("%8.0f  %5zu  %9.0f  %9.0f  %s\n", t / 60.0, net.size(),
                  lookup, probes_per_min, phase);
    });
  }

  engine.start();
  churn.start();
  sim.run_until(horizon);

  std::printf("--------------------------------------------------\n");
  std::printf("churn: %llu joins, %llu leaves; overlay %s; %llu "
              "exchanges total\n",
              static_cast<unsigned long long>(churn.joins()),
              static_cast<unsigned long long>(churn.leaves()),
              net.graph().active_subgraph_connected() ? "connected"
                                                      : "PARTITIONED",
              static_cast<unsigned long long>(engine.stats().exchanges));
  return 0;
}
