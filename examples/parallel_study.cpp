// Programmatic study: using propsim as a library for a custom parallel
// experiment campaign.
//
// The CLI tools cover one-off runs and flat sweeps; this example shows
// the API route: build ExperimentSpecs in code, fan them out on the
// thread pool (each simulation is single-threaded and deterministic, so
// parallel results are identical to serial), and post-process with the
// stats helpers — here, asking a question the paper leaves open: how
// does PROP-G's improvement factor scale with the probe budget
// (INIT_TIMER), and where do extra probes stop paying?
#include <cstdio>
#include <mutex>
#include <vector>

#include "app/experiment.h"
#include "common/json.h"
#include "common/stats.h"
#include "common/thread_pool.h"

int main() {
  using namespace propsim;

  const std::vector<double> timers_s{15.0, 30.0, 60.0, 120.0, 240.0, 480.0};
  const std::size_t seeds = 3;

  struct Cell {
    RunningStats improvement;
    RunningStats control_msgs;
  };
  std::vector<Cell> cells(timers_s.size());
  std::mutex mutex;

  ThreadPool pool;
  std::printf("probe-budget study: %zu timer settings x %zu seeds on %zu "
              "workers\n",
              timers_s.size(), seeds, pool.worker_count());

  pool.parallel_for(timers_s.size() * seeds, [&](std::size_t task) {
    const std::size_t ti = task / seeds;
    const std::size_t si = task % seeds;

    Config config;
    config.set("nodes", "300");
    config.set("horizon", "3600");
    config.set("queries", "2000");
    config.set("init_timer", std::to_string(timers_s[ti]));
    config.set("seed", std::to_string(1000 + si * 7919));
    const SpecResult parsed = ExperimentSpec::from_config(config);
    const ExperimentResult result = run_experiment(parsed.spec());

    std::lock_guard<std::mutex> lock(mutex);
    cells[ti].improvement.add(result.initial_value / result.final_value);
    cells[ti].control_msgs.add(
        static_cast<double>(result.control_messages));
  });

  std::printf("\n%-12s %-22s %s\n", "INIT_TIMER", "improvement (mean+/-sd)",
              "control msgs (mean)");
  Json report = Json::array();
  for (std::size_t ti = 0; ti < timers_s.size(); ++ti) {
    std::printf("%8.0f s    %.2fx +/- %.2f         %.0f\n", timers_s[ti],
                cells[ti].improvement.mean(), cells[ti].improvement.stddev(),
                cells[ti].control_msgs.mean());
    Json row = Json::object();
    row.set("init_timer_s", timers_s[ti])
        .set("improvement", cells[ti].improvement.mean())
        .set("control_messages", cells[ti].control_msgs.mean());
    report.push_back(std::move(row));
  }

  // The takeaway the numbers show: probe-budget returns diminish
  // steeply — the fastest timer spends roughly an order of magnitude
  // more control messages than the slowest for a modest extra
  // improvement, because the Markov backoff throttles probing once the
  // easy exchanges are exhausted.
  std::printf("\nmachine-readable report:\n%s\n", report.dump(2).c_str());
  return 0;
}
