// DHT scenario: a key-value store on Chord whose lookups become
// location-aware through PROP-G identifier exchanges.
//
// Demonstrates the structured-overlay side of the paper: the ring, the
// finger tables and the key->owner mapping never change (Theorem 2 —
// the overlay stays isomorphic), yet lookup latency drops because peers
// trade places so logical neighbors become physical neighbors. The
// example also layers PROP-G over a PIS (landmark) id assignment to show
// the techniques compose.
#include <cstdio>
#include <string>

#include "baselines/pis.h"
#include "chord/chord_ring.h"
#include "core/prop_engine.h"
#include "metrics/metrics.h"
#include "overlay/isomorphism.h"
#include "sim/simulator.h"
#include "topology/transit_stub.h"
#include "workload/host_selection.h"

namespace {

// A toy content hash (FNV-1a) mapping names to ring keys.
propsim::ChordId key_of(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

int main() {
  using namespace propsim;

  Rng rng(7);
  const TransitStubTopology topo =
      make_transit_stub(TransitStubConfig::ts_large(), rng);
  const LatencyOracle oracle(topo);  // exact hierarchical engine, O(1) queries
  const auto hosts = select_stub_hosts(topo, 512, rng);

  // --- Variant A: plain Chord (random identifiers). ---
  const ChordRing ring = ChordRing::build_random(512, ChordConfig{}, rng);
  OverlayNetwork net = make_chord_overlay(ring, hosts, oracle);

  // Store a few objects and remember their owners.
  const std::string names[] = {"alice/profile", "bob/photo.png",
                               "carol/thesis.pdf"};
  for (const std::string& name : names) {
    const SlotId owner = ring.successor_of(key_of(name));
    std::printf("PUT %-18s -> key %016llx owned by slot %u (host %u)\n",
                name.c_str(),
                static_cast<unsigned long long>(key_of(name)), owner,
                net.placement().host_of(owner));
  }

  Rng qrng(13);
  const auto queries = sample_query_pairs(net.graph(), 5000, qrng);
  const auto router = chord_router(net, ring);
  const auto before = stretch(net, queries, router);

  // Snapshot for the isomorphism certificate.
  const auto edges_before = host_edges(net.graph(), net.placement());
  const Placement placement_before = net.placement();

  Simulator sim;
  PropParams params;  // PROP-G
  PropEngine engine(net, sim, params, 21);
  engine.start();
  sim.run_until(3600.0);

  const auto after = stretch(net, queries, router);
  std::printf("\nplain Chord + PROP-G (1 simulated hour, %llu exchanges):\n",
              static_cast<unsigned long long>(engine.stats().exchanges));
  std::printf("  avg lookup latency : %.1f ms -> %.1f ms\n",
              before.logical_al, after.logical_al);
  std::printf("  stretch            : %.2f -> %.2f\n", before.stretch,
              after.stretch);

  // Theorem 2, checked live: the host-level overlay after the exchanges
  // is isomorphic to the original via the placement bijection.
  const auto edges_after = host_edges(net.graph(), net.placement());
  const auto [bij_hosts, phi] =
      placement_bijection(placement_before, net.placement());
  std::printf("  overlay isomorphic : %s\n",
              isomorphic_via(edges_before, edges_after, bij_hosts, phi)
                  ? "yes (Theorem 2 verified)"
                  : "NO — bug!");

  // Keys still resolve: owners moved hosts, not identities.
  for (const std::string& name : names) {
    const SlotId owner = ring.successor_of(key_of(name));
    std::printf("GET %-18s -> slot %u now served from host %u\n",
                name.c_str(), owner, net.placement().host_of(owner));
  }

  // --- Variant B: PIS identifiers + PROP-G (composition). ---
  const auto landmarks = select_landmarks(topo, 8, rng);
  const auto pis_ids = pis_identifiers(hosts, landmarks, oracle, rng);
  const ChordRing pis_ring = ChordRing::build_with_ids(pis_ids, ChordConfig{});
  OverlayNetwork pis_net = make_chord_overlay(pis_ring, hosts, oracle);
  const auto pis_router = chord_router(pis_net, pis_ring);
  const auto pis_before = stretch(pis_net, queries, pis_router);
  Simulator sim2;
  PropEngine engine2(pis_net, sim2, params, 22);
  engine2.start();
  sim2.run_until(3600.0);
  const auto pis_after = stretch(pis_net, queries, pis_router);
  std::printf("\nPIS Chord + PROP-G:\n");
  std::printf("  stretch            : %.2f (PIS alone) -> %.2f (with "
              "PROP-G)\n",
              pis_before.stretch, pis_after.stretch);
  std::printf("  vs plain Chord     : %.2f\n", before.stretch);
  return 0;
}
