// Immutable CSR snapshot of an overlay for measurement sweeps.
//
// Metric evaluation runs one full Dijkstra per sampled query source and
// repeats the whole sweep at every convergence-snapshot interval.
// Walking the mutable LogicalGraph from worker threads would race with
// nothing today (the sim is paused during a sample) but couples the
// sweep to live state and recomputes slot_latency for every edge
// relaxation. OverlaySnapshot freezes everything a sweep needs —
// adjacency in compressed-sparse-row form (the CsrGraph pattern the
// latency oracle already uses), the active-slot mask and the physical
// latency of every directed logical edge — in one O(V + E) capture.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "overlay/overlay_network.h"

namespace propsim {

class OverlaySnapshot {
 public:
  OverlaySnapshot() = default;

  /// Captures the overlay's current state. Neighbor order is preserved
  /// exactly as the live graph iterates it, so a Dijkstra over the
  /// snapshot relaxes edges in the same order as one over the live
  /// overlay and produces bit-identical distances. `link_ok` (e.g. the
  /// fault plan's partition filter) prunes directed logical edges at
  /// capture time: a pruned edge simply does not exist in the snapshot,
  /// matching a flood that skips it at relax time.
  static OverlaySnapshot capture(
      const OverlayNetwork& net,
      const OverlayNetwork::LinkFilter* link_ok = nullptr);

  std::size_t slot_count() const { return active_.size(); }
  /// Directed (half-)edge count after filtering.
  std::size_t edge_count() const { return targets_.size(); }

  bool is_active(SlotId s) const {
    PROPSIM_DCHECK(s < active_.size());
    return active_[s] != 0;
  }

  std::span<const SlotId> targets(SlotId s) const {
    PROPSIM_DCHECK(s < active_.size());
    return {targets_.data() + offsets_[s], offsets_[s + 1] - offsets_[s]};
  }

  /// Physical latency of each edge in targets(s), same order (ms).
  std::span<const double> latencies(SlotId s) const {
    PROPSIM_DCHECK(s < active_.size());
    return {latency_ms_.data() + offsets_[s], offsets_[s + 1] - offsets_[s]};
  }

 private:
  std::vector<std::size_t> offsets_;  // slot_count + 1 row starts
  std::vector<SlotId> targets_;
  std::vector<double> latency_ms_;
  std::vector<std::uint8_t> active_;
};

}  // namespace propsim
