// Immutable CSR snapshot of an overlay for measurement sweeps.
//
// Metric evaluation runs one full Dijkstra per sampled query source and
// repeats the whole sweep at every convergence-snapshot interval.
// Walking the mutable LogicalGraph from worker threads would race with
// nothing today (the sim is paused during a sample) but couples the
// sweep to live state and recomputes slot_latency for every edge
// relaxation. OverlaySnapshot freezes everything a sweep needs —
// adjacency in compressed-sparse-row form (the CsrGraph pattern the
// latency oracle already uses), the active-slot mask and the physical
// latency of every directed logical edge — in one O(V + E) capture.
//
// Each edge latency is stored twice: as the exact double the live flood
// would compute (the bit-identity path) and as a 32-bit fixed-point
// weight (kFxPerMs units per millisecond) for the cache-dense fast
// kernel. The fixed-point array is half the bytes per edge, so the fast
// sweep streams twice the adjacency per cache line.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "overlay/overlay_network.h"

namespace propsim {

class OverlaySnapshot {
 public:
  /// Fixed-point edge weights carry 20 fractional bits: 1 fx unit is
  /// 2^-20 ms (~0.95 ns), so a 32-bit weight spans [0, 4096) ms — far
  /// above any physical edge latency plus processing delay this
  /// simulator produces. Quantization error is at most 2^-21 ms per
  /// edge, which bounds the fast kernel's path error (docs/PERF.md).
  static constexpr int kFxFracBits = 20;
  static constexpr double kFxPerMs =
      static_cast<double>(1u << kFxFracBits);

  /// Quantizes a millisecond latency to fx units (round to nearest).
  /// Returns a 64-bit value so callers can range-check against
  /// kFxMaxEdge before narrowing; non-finite or negative input maps to
  /// a value above kFxMaxEdge.
  static std::uint64_t quantize_ms(double ms);
  static constexpr std::uint64_t kFxMaxEdge = 0xffffffffull;

  OverlaySnapshot() = default;

  /// Captures the overlay's current state. Neighbor order is preserved
  /// exactly as the live graph iterates it, so a Dijkstra over the
  /// snapshot relaxes edges in the same order as one over the live
  /// overlay and produces bit-identical distances. `link_ok` (e.g. the
  /// fault plan's partition filter) prunes directed logical edges at
  /// capture time: a pruned edge simply does not exist in the snapshot,
  /// matching a flood that skips it at relax time.
  static OverlaySnapshot capture(
      const OverlayNetwork& net,
      const OverlayNetwork::LinkFilter* link_ok = nullptr);

  std::size_t slot_count() const { return active_.size(); }
  /// Directed (half-)edge count after filtering.
  std::size_t edge_count() const { return targets_.size(); }

  bool is_active(SlotId s) const {
    PROPSIM_DCHECK(s < active_.size());
    return active_[s] != 0;
  }

  std::span<const SlotId> targets(SlotId s) const {
    PROPSIM_DCHECK(s < active_.size());
    return {targets_.data() + offsets_[s], offsets_[s + 1] - offsets_[s]};
  }

  /// Physical latency of each edge in targets(s), same order (ms).
  std::span<const double> latencies(SlotId s) const {
    PROPSIM_DCHECK(s < active_.size());
    return {latency_ms_.data() + offsets_[s], offsets_[s + 1] - offsets_[s]};
  }

  /// Fixed-point latency of each edge in targets(s), same order (fx
  /// units). Meaningful only when fixed_point_ok().
  std::span<const std::uint32_t> latencies_fx(SlotId s) const {
    PROPSIM_DCHECK(s < active_.size());
    return {latency_fx_.data() + offsets_[s], offsets_[s + 1] - offsets_[s]};
  }

  /// True when every edge latency quantized into 32 bits (i.e. every
  /// edge is finite, non-negative and under ~4096 ms). The fast kernel
  /// requires this; the engine falls back to the exact kernel —
  /// deterministically — when it does not hold.
  bool fixed_point_ok() const { return fx_ok_; }

  /// Smallest fixed-point edge weight in the snapshot (kFxMaxEdge when
  /// there are no edges). The fast kernel sizes its buckets from this.
  std::uint32_t min_edge_fx() const { return min_edge_fx_; }

 private:
  std::vector<std::size_t> offsets_;  // slot_count + 1 row starts
  std::vector<SlotId> targets_;
  std::vector<double> latency_ms_;
  std::vector<std::uint32_t> latency_fx_;
  std::vector<std::uint8_t> active_;
  std::uint32_t min_edge_fx_ = 0xffffffffu;
  bool fx_ok_ = true;
};

}  // namespace propsim
