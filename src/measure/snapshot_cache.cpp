#include "measure/snapshot_cache.h"

#include <utility>

#include "common/check.h"

namespace propsim {

SnapshotCache::SnapshotCache(CaptureFn capture)
    : capture_(std::move(capture)) {
  PROPSIM_CHECK(capture_ != nullptr);
}

const OverlaySnapshot& SnapshotCache::at(std::uint64_t version) {
  if (have_ && version == version_) {
    ++reuses_;
    return snap_;
  }
  snap_ = capture_();
  version_ = version;
  have_ = true;
  ++captures_;
  return snap_;
}

}  // namespace propsim
