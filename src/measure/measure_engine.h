// Parallel, deterministic measurement engine.
//
// Fans the per-source Dijkstras (and per-query routed lookups) of a
// metric sweep out over a ThreadPool. Determinism contract: results are
// bit-identical to the serial path regardless of thread count, because
//   - each worker writes only its own disjoint, preallocated slots of
//     the output array (no shared accumulators, no result reordering),
//   - the Dijkstra kernel over an OverlaySnapshot performs the same
//     floating-point operations in the same order as the serial
//     OverlayNetwork::flood_latencies (per-edge latencies are
//     precomputed at capture, which is the identical double), and
//   - averages are reduced serially in query-index order after the
//     parallel map completes.
// Worker scratch (distance array, priority queue, epoch-stamped visited
// marks) is allocated once per worker and reused across sources and
// across snapshots; the epoch stamp makes clearing O(touched), and the
// IndexedPriorityQueue self-cleans when a run pops it empty.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/indexed_priority_queue.h"
#include "common/thread_pool.h"
#include "measure/overlay_snapshot.h"
#include "measure/query.h"

namespace propsim {

/// Reusable per-worker Dijkstra state. dist[v] is valid only where
/// stamp[v] == epoch; everything else is implicitly +infinity, so a new
/// source costs one epoch bump instead of an O(V) refill.
struct MeasureScratch {
  std::vector<double> dist;
  std::vector<std::uint32_t> stamp;
  std::uint32_t epoch = 0;
  IndexedPriorityQueue<double> queue{0};

  /// Resizes for a snapshot of `n` slots (no-op when already sized) and
  /// opens a fresh epoch.
  void begin(std::size_t n);

  /// Distance from the last flood's source to v (+inf if unreached).
  double distance(SlotId v) const;
};

/// Single-source shortest latency over a snapshot, bit-identical to
/// OverlayNetwork::flood_latencies over the live overlay (with the same
/// link filter applied at capture). Results land in `scratch`; read
/// them through scratch.distance().
void flood_snapshot(const OverlaySnapshot& snap, SlotId source,
                    const std::vector<double>* processing_delay_ms,
                    MeasureScratch& scratch);

class MeasureEngine {
 public:
  /// Sentinel for "one worker per hardware thread".
  static constexpr std::size_t kAutoThreads = static_cast<std::size_t>(-1);

  /// 0 and 1 both mean serial (no pool, no worker threads); kAutoThreads
  /// resolves to std::thread::hardware_concurrency().
  explicit MeasureEngine(std::size_t threads = 1);

  /// Resolved worker count (>= 1).
  std::size_t thread_count() const { return threads_; }

  /// Flood first-response latency of each query (queries grouped by
  /// source, one Dijkstra per distinct source, sources chunked over the
  /// workers). Mirrors metrics' unstructured_lookup_latencies.
  std::vector<double> lookup_latencies(
      const OverlaySnapshot& snap, std::span<const QueryPair> queries,
      const std::vector<double>* processing_delay_ms = nullptr);

  /// Mean of lookup_latencies, reduced in query-index order.
  double average_lookup_latency(
      const OverlaySnapshot& snap, std::span<const QueryPair> queries,
      const std::vector<double>* processing_delay_ms = nullptr);

  /// fn(query) for each query, chunked over the workers. `fn` must be
  /// safe to call concurrently (see RouteLatencyFn).
  std::vector<double> route_latencies(std::span<const QueryPair> queries,
                                      const RouteLatencyFn& fn);

  /// Mean of route_latencies, reduced in query-index order.
  double average_route_latency(std::span<const QueryPair> queries,
                               const RouteLatencyFn& fn);

  /// Direct (physical shortest-path) latency of each query under the
  /// overlay's current placement.
  std::vector<double> direct_latencies(const OverlayNetwork& net,
                                       std::span<const QueryPair> queries);

  /// Mean of direct_latencies, reduced in query-index order.
  double average_direct_latency(const OverlayNetwork& net,
                                std::span<const QueryPair> queries);

  /// Routed vs direct latency with the given router (paper stretch).
  StretchResult stretch(const OverlayNetwork& net,
                        std::span<const QueryPair> queries,
                        const RouteLatencyFn& fn);

 private:
  /// Runs body(chunk, begin, end) over `count` items split into at most
  /// thread_count() contiguous chunks; serial engines run inline.
  void for_chunks(std::size_t count,
                  const std::function<void(std::size_t, std::size_t,
                                           std::size_t)>& body);

  std::size_t threads_;
  std::unique_ptr<ThreadPool> pool_;  // null when serial
  std::vector<std::unique_ptr<MeasureScratch>> scratch_;  // one per chunk
};

}  // namespace propsim
