// Parallel, deterministic measurement engine.
//
// Fans the per-source Dijkstras (and per-query routed lookups) of a
// metric sweep out over a ThreadPool. Determinism contract: results are
// bit-identical to the serial path regardless of thread count, because
//   - each worker writes only its own disjoint, preallocated slots of
//     the output array (no shared accumulators, no result reordering),
//   - the Dijkstra kernel over an OverlaySnapshot performs the same
//     floating-point operations in the same order as the serial
//     OverlayNetwork::flood_latencies (per-edge latencies are
//     precomputed at capture, which is the identical double), and
//   - averages are reduced serially in query-index order after the
//     parallel map completes.
// Worker scratch (distance array, priority queue, epoch-stamped visited
// marks) is allocated once per worker and reused across sources and
// across snapshots; the epoch stamp makes clearing O(touched), and the
// IndexedPriorityQueue self-cleans when a run pops it empty.
//
// Two flood kernels sit behind the same API:
//   - kExact: binary-heap Dijkstra over the snapshot's double latencies,
//     bit-identical to the live flood (the historical behavior);
//   - kFast: a Dial/delta-stepping bucket queue over 32-bit fixed-point
//     latencies (OverlaySnapshot::kFxFracBits fractional bits). The
//     bucket array persists across sweeps via the same epoch-stamping
//     trick, bucket width is sized from the snapshot's minimum edge
//     weight, and distances are the exact Dijkstra values in fx units —
//     so fast results are themselves bit-identical at any thread count,
//     and differ from the exact kernel only by quantization (relative
//     error <= 1e-6 on paper-scale latencies; see docs/PERF.md).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/indexed_priority_queue.h"
#include "common/thread_pool.h"
#include "measure/overlay_snapshot.h"
#include "measure/query.h"

namespace propsim {

/// Flood-kernel selection for MeasureEngine (the `measure_mode` spec
/// key, with `auto` already resolved).
enum class MeasureMode { kExact, kFast };

const char* to_string(MeasureMode mode);

/// Reusable per-worker Dijkstra state. dist[v] is valid only where
/// stamp[v] == epoch; everything else is implicitly +infinity, so a new
/// source costs one epoch bump instead of an O(V) refill.
struct MeasureScratch {
  std::vector<double> dist;
  std::vector<std::uint32_t> stamp;
  std::uint32_t epoch = 0;
  IndexedPriorityQueue<double> queue{0};

  /// Resizes for a snapshot of `n` slots (no-op when already sized) and
  /// opens a fresh epoch.
  void begin(std::size_t n);

  /// Distance from the last flood's source to v (+inf if unreached).
  double distance(SlotId v) const;
};

/// Reusable per-worker state for the fast bucket-queue kernel. Same
/// epoch discipline as MeasureScratch; the bucket vectors are drained
/// empty by every run, so their capacity is what persists across
/// sweeps (the "epoch-stamped bucket reuse").
struct FastMeasureScratch {
  std::vector<std::uint64_t> dist_fx;  // valid where stamp == epoch
  std::vector<std::uint32_t> stamp;
  std::vector<std::uint32_t> done;  // settled marks, same epoch
  std::uint32_t epoch = 0;
  std::vector<std::vector<SlotId>> buckets;

  /// Resizes for a snapshot of `n` slots and opens a fresh epoch.
  void begin(std::size_t n);

  /// Distance from the last flood's source to v in ms (+inf if
  /// unreached). Exact conversion: dist_fx * 2^-20 has no rounding.
  double distance(SlotId v) const;
};

/// Single-source shortest latency over a snapshot, bit-identical to
/// OverlayNetwork::flood_latencies over the live overlay (with the same
/// link filter applied at capture). Results land in `scratch`; read
/// them through scratch.distance().
void flood_snapshot(const OverlaySnapshot& snap, SlotId source,
                    const std::vector<double>* processing_delay_ms,
                    MeasureScratch& scratch);

/// Fast fixed-point flood. Requires snap.fixed_point_ok();
/// `processing_delay_fx`, when given, holds per-slot delays already
/// quantized with OverlaySnapshot::quantize_ms. Distances are exact
/// shortest paths over the quantized weights, so the result is a pure
/// function of the snapshot — independent of thread count and of any
/// state left by previous runs.
void flood_snapshot_fast(const OverlaySnapshot& snap, SlotId source,
                         const std::vector<std::uint32_t>* processing_delay_fx,
                         FastMeasureScratch& scratch);

/// Deterministic work counters for one engine's lifetime: floods are
/// counted per distinct source per sweep (before the parallel fan-out),
/// so values are invariant across thread counts.
struct MeasureStats {
  std::uint64_t exact_floods = 0;
  std::uint64_t fast_floods = 0;
};

class MeasureEngine {
 public:
  /// Sentinel for "one worker per hardware thread".
  static constexpr std::size_t kAutoThreads = static_cast<std::size_t>(-1);

  /// 0 and 1 both mean serial (no pool, no worker threads); kAutoThreads
  /// resolves to std::thread::hardware_concurrency(). `mode` selects the
  /// flood kernel; kFast silently falls back to the exact kernel for a
  /// snapshot whose edges do not fit the fixed-point range (the fallback
  /// is a property of the snapshot, so it is deterministic too).
  explicit MeasureEngine(std::size_t threads = 1,
                         MeasureMode mode = MeasureMode::kExact);

  /// Resolved worker count (>= 1).
  std::size_t thread_count() const { return threads_; }

  MeasureMode mode() const { return mode_; }

  /// Flood counts since construction.
  const MeasureStats& stats() const { return stats_; }

  /// Flood first-response latency of each query (queries grouped by
  /// source, one Dijkstra per distinct source, sources chunked over the
  /// workers). Mirrors metrics' unstructured_lookup_latencies.
  std::vector<double> lookup_latencies(
      const OverlaySnapshot& snap, std::span<const QueryPair> queries,
      const std::vector<double>* processing_delay_ms = nullptr);

  /// Mean of lookup_latencies, reduced in query-index order. Unlike
  /// lookup_latencies this reuses a member result buffer, so a
  /// steady-state sweep allocates nothing.
  double average_lookup_latency(
      const OverlaySnapshot& snap, std::span<const QueryPair> queries,
      const std::vector<double>* processing_delay_ms = nullptr);

  /// fn(query) for each query, chunked over the workers. `fn` must be
  /// safe to call concurrently (see RouteLatencyFn).
  std::vector<double> route_latencies(std::span<const QueryPair> queries,
                                      const RouteLatencyFn& fn);

  /// Mean of route_latencies, reduced in query-index order.
  double average_route_latency(std::span<const QueryPair> queries,
                               const RouteLatencyFn& fn);

  /// Direct (physical shortest-path) latency of each query under the
  /// overlay's current placement.
  std::vector<double> direct_latencies(const OverlayNetwork& net,
                                       std::span<const QueryPair> queries);

  /// Mean of direct_latencies, reduced in query-index order.
  double average_direct_latency(const OverlayNetwork& net,
                                std::span<const QueryPair> queries);

  /// Routed vs direct latency with the given router (paper stretch).
  StretchResult stretch(const OverlayNetwork& net,
                        std::span<const QueryPair> queries,
                        const RouteLatencyFn& fn);

 private:
  struct Run {
    std::size_t begin;
    std::size_t end;  // half-open range into order_
  };

  /// Runs body(chunk, begin, end) over `count` items split into at most
  /// thread_count() contiguous chunks; serial engines run inline.
  void for_chunks(std::size_t count,
                  const std::function<void(std::size_t, std::size_t,
                                           std::size_t)>& body);

  /// Shared implementation of the lookup sweeps: groups queries by
  /// source into the reusable order_/runs_ buffers, picks the kernel,
  /// and writes per-query latencies into `out` (resized to fit).
  void run_lookup(const OverlaySnapshot& snap,
                  std::span<const QueryPair> queries,
                  const std::vector<double>* processing_delay_ms,
                  std::vector<double>& out);

  std::size_t threads_;
  MeasureMode mode_;
  MeasureStats stats_;
  std::unique_ptr<ThreadPool> pool_;  // null when serial
  std::vector<std::unique_ptr<MeasureScratch>> scratch_;  // one per chunk
  std::vector<std::unique_ptr<FastMeasureScratch>> fast_scratch_;
  // Sweep-shaped buffers reused across calls (the engine is not
  // re-entrant; callers already serialize sweeps).
  std::vector<std::size_t> order_;
  std::vector<Run> runs_;
  std::vector<double> avg_out_;
  std::vector<std::uint32_t> proc_fx_;
};

}  // namespace propsim
