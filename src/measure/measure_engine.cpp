#include "measure/measure_engine.h"

#include <algorithm>
#include <future>
#include <limits>
#include <numeric>
#include <thread>

namespace propsim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void MeasureScratch::begin(std::size_t n) {
  if (stamp.size() != n) {
    dist.assign(n, 0.0);
    stamp.assign(n, 0);
    epoch = 0;
    queue = IndexedPriorityQueue<double>(n);
  }
  if (++epoch == 0) {  // wrapped: every stale stamp would look current
    std::fill(stamp.begin(), stamp.end(), 0u);
    epoch = 1;
  }
}

double MeasureScratch::distance(SlotId v) const {
  PROPSIM_DCHECK(v < stamp.size());
  return stamp[v] == epoch ? dist[v] : kInf;
}

void flood_snapshot(const OverlaySnapshot& snap, SlotId source,
                    const std::vector<double>* processing_delay_ms,
                    MeasureScratch& scratch) {
  PROPSIM_CHECK(snap.is_active(source));
  if (processing_delay_ms != nullptr) {
    PROPSIM_CHECK(processing_delay_ms->size() == snap.slot_count());
  }
  scratch.begin(snap.slot_count());
  const std::uint32_t epoch = scratch.epoch;
  auto& dist = scratch.dist;
  auto& stamp = scratch.stamp;
  auto& queue = scratch.queue;  // empty: the previous run popped it dry
  dist[source] = 0.0;
  stamp[source] = epoch;
  queue.push_or_update(source, 0.0);
  while (!queue.empty()) {
    const auto u = static_cast<SlotId>(queue.pop());
    const auto targets = snap.targets(u);
    const auto lats = snap.latencies(u);
    for (std::size_t e = 0; e < targets.size(); ++e) {
      const SlotId v = targets[e];
      // Same arithmetic, same order, same values as the live flood:
      // lats[e] is the identical slot_latency(u, v) double, precomputed
      // at capture time.
      double cost = lats[e];
      if (processing_delay_ms != nullptr) {
        cost += (*processing_delay_ms)[v];
      }
      const double candidate = dist[u] + cost;
      if (stamp[v] != epoch || candidate < dist[v]) {
        dist[v] = candidate;
        stamp[v] = epoch;
        queue.push_or_update(v, candidate);
      }
    }
  }
}

MeasureEngine::MeasureEngine(std::size_t threads) {
  if (threads == kAutoThreads) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  threads_ = std::max<std::size_t>(threads, 1);
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
  scratch_.reserve(threads_);
  for (std::size_t i = 0; i < threads_; ++i) {
    scratch_.push_back(std::make_unique<MeasureScratch>());
  }
}

void MeasureEngine::for_chunks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks = std::min(threads_, count);
  auto bounds = [&](std::size_t c) {
    return std::pair{c * count / chunks, (c + 1) * count / chunks};
  };
  if (pool_ == nullptr || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = bounds(c);
      body(c, begin, end);
    }
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const auto [begin, end] = bounds(c);
    futures.push_back(pool_->submit([&body, c, begin, end] {
      body(c, begin, end);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows the first worker failure
}

std::vector<double> MeasureEngine::lookup_latencies(
    const OverlaySnapshot& snap, std::span<const QueryPair> queries,
    const std::vector<double>* processing_delay_ms) {
  // One Dijkstra per distinct source: order query indices by source,
  // then chunk the contiguous same-source runs across the workers. Each
  // worker writes only out[idx] for its own runs' indices.
  std::vector<std::size_t> order(queries.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (queries[a].src != queries[b].src) {
      return queries[a].src < queries[b].src;
    }
    return a < b;
  });
  struct Run {
    std::size_t begin;
    std::size_t end;  // half-open range into `order`
  };
  std::vector<Run> runs;
  for (std::size_t i = 0; i < order.size();) {
    std::size_t j = i + 1;
    while (j < order.size() &&
           queries[order[j]].src == queries[order[i]].src) {
      ++j;
    }
    runs.push_back(Run{i, j});
    i = j;
  }

  std::vector<double> out(queries.size(), 0.0);
  for_chunks(runs.size(), [&](std::size_t chunk, std::size_t begin,
                              std::size_t end) {
    MeasureScratch& scratch = *scratch_[chunk];
    for (std::size_t r = begin; r < end; ++r) {
      const Run& run = runs[r];
      flood_snapshot(snap, queries[order[run.begin]].src,
                     processing_delay_ms, scratch);
      for (std::size_t k = run.begin; k < run.end; ++k) {
        out[order[k]] = scratch.distance(queries[order[k]].dst);
      }
    }
  });
  return out;
}

double MeasureEngine::average_lookup_latency(
    const OverlaySnapshot& snap, std::span<const QueryPair> queries,
    const std::vector<double>* processing_delay_ms) {
  PROPSIM_CHECK(!queries.empty());
  const auto lat = lookup_latencies(snap, queries, processing_delay_ms);
  double sum = 0.0;
  for (const double v : lat) sum += v;
  return sum / static_cast<double>(lat.size());
}

std::vector<double> MeasureEngine::route_latencies(
    std::span<const QueryPair> queries, const RouteLatencyFn& fn) {
  std::vector<double> out(queries.size(), 0.0);
  for_chunks(queries.size(), [&](std::size_t /*chunk*/, std::size_t begin,
                                 std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(queries[i]);
  });
  return out;
}

double MeasureEngine::average_route_latency(
    std::span<const QueryPair> queries, const RouteLatencyFn& fn) {
  PROPSIM_CHECK(!queries.empty());
  const auto lat = route_latencies(queries, fn);
  double sum = 0.0;
  for (const double v : lat) sum += v;
  return sum / static_cast<double>(lat.size());
}

std::vector<double> MeasureEngine::direct_latencies(
    const OverlayNetwork& net, std::span<const QueryPair> queries) {
  std::vector<double> out(queries.size(), 0.0);
  for_chunks(queries.size(), [&](std::size_t /*chunk*/, std::size_t begin,
                                 std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = net.slot_latency(queries[i].src, queries[i].dst);
    }
  });
  return out;
}

double MeasureEngine::average_direct_latency(
    const OverlayNetwork& net, std::span<const QueryPair> queries) {
  PROPSIM_CHECK(!queries.empty());
  const auto lat = direct_latencies(net, queries);
  double sum = 0.0;
  for (const double v : lat) sum += v;
  return sum / static_cast<double>(lat.size());
}

StretchResult MeasureEngine::stretch(const OverlayNetwork& net,
                                     std::span<const QueryPair> queries,
                                     const RouteLatencyFn& fn) {
  StretchResult r;
  r.logical_al = average_route_latency(queries, fn);
  r.physical_al = average_direct_latency(net, queries);
  PROPSIM_CHECK(r.physical_al > 0.0);
  r.stretch = r.logical_al / r.physical_al;
  return r;
}

}  // namespace propsim
