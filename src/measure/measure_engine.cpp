#include "measure/measure_engine.h"

#include <algorithm>
#include <bit>
#include <future>
#include <limits>
#include <numeric>
#include <thread>

namespace propsim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Bucket width for the fast kernel, as a shift of fx distances. Width
/// 2^shift <= the snapshot's minimum edge weight guarantees the Dial
/// invariant — no relaxation lands back in the bucket being drained —
/// which is what lets the kernel settle each node on first pop. The
/// clamp bounds the bucket count for degenerate snapshots (sub-64us
/// edges); below the invariant the kernel drops the settled shortcut
/// and drains each bucket to a fixpoint instead, which is slower but
/// still exact over the quantized weights.
constexpr int kMinBucketShift = 16;  // 2^16 fx = 62.5 us buckets
constexpr int kMaxBucketShift = 26;  // 2^26 fx = 64 ms buckets

int bucket_shift_for(std::uint32_t min_edge_fx) {
  const int width = min_edge_fx == 0 ? 1 : std::bit_width(min_edge_fx);
  return std::clamp(width - 1, kMinBucketShift, kMaxBucketShift);
}
}  // namespace

const char* to_string(MeasureMode mode) {
  switch (mode) {
    case MeasureMode::kExact: return "exact";
    case MeasureMode::kFast: return "fast";
  }
  return "?";
}

void MeasureScratch::begin(std::size_t n) {
  if (stamp.size() != n) {
    dist.assign(n, 0.0);
    stamp.assign(n, 0);
    epoch = 0;
    queue = IndexedPriorityQueue<double>(n);
  }
  if (++epoch == 0) {  // wrapped: every stale stamp would look current
    std::fill(stamp.begin(), stamp.end(), 0u);
    epoch = 1;
  }
}

double MeasureScratch::distance(SlotId v) const {
  PROPSIM_DCHECK(v < stamp.size());
  return stamp[v] == epoch ? dist[v] : kInf;
}

void FastMeasureScratch::begin(std::size_t n) {
  if (stamp.size() != n) {
    dist_fx.assign(n, 0);
    stamp.assign(n, 0);
    done.assign(n, 0);
    epoch = 0;
    // Bucket capacity is shaped by path lengths, not slot count; keep it.
  }
  if (++epoch == 0) {
    std::fill(stamp.begin(), stamp.end(), 0u);
    std::fill(done.begin(), done.end(), 0u);
    epoch = 1;
  }
}

double FastMeasureScratch::distance(SlotId v) const {
  PROPSIM_DCHECK(v < stamp.size());
  if (stamp[v] != epoch) return kInf;
  // dist_fx < 2^53 by a huge margin, so the scale-down is exact.
  return static_cast<double>(dist_fx[v]) / OverlaySnapshot::kFxPerMs;
}

void flood_snapshot(const OverlaySnapshot& snap, SlotId source,
                    const std::vector<double>* processing_delay_ms,
                    MeasureScratch& scratch) {
  PROPSIM_CHECK(snap.is_active(source));
  if (processing_delay_ms != nullptr) {
    PROPSIM_CHECK(processing_delay_ms->size() == snap.slot_count());
  }
  scratch.begin(snap.slot_count());
  const std::uint32_t epoch = scratch.epoch;
  auto& dist = scratch.dist;
  auto& stamp = scratch.stamp;
  auto& queue = scratch.queue;  // empty: the previous run popped it dry
  dist[source] = 0.0;
  stamp[source] = epoch;
  queue.push_or_update(source, 0.0);
  while (!queue.empty()) {
    const auto u = static_cast<SlotId>(queue.pop());
    const auto targets = snap.targets(u);
    const auto lats = snap.latencies(u);
    for (std::size_t e = 0; e < targets.size(); ++e) {
      const SlotId v = targets[e];
      // Same arithmetic, same order, same values as the live flood:
      // lats[e] is the identical slot_latency(u, v) double, precomputed
      // at capture time.
      double cost = lats[e];
      if (processing_delay_ms != nullptr) {
        cost += (*processing_delay_ms)[v];
      }
      const double candidate = dist[u] + cost;
      if (stamp[v] != epoch || candidate < dist[v]) {
        dist[v] = candidate;
        stamp[v] = epoch;
        queue.push_or_update(v, candidate);
      }
    }
  }
}

void flood_snapshot_fast(
    const OverlaySnapshot& snap, SlotId source,
    const std::vector<std::uint32_t>* processing_delay_fx,
    FastMeasureScratch& scratch) {
  PROPSIM_CHECK(snap.fixed_point_ok());
  PROPSIM_CHECK(snap.is_active(source));
  if (processing_delay_fx != nullptr) {
    PROPSIM_CHECK(processing_delay_fx->size() == snap.slot_count());
  }
  scratch.begin(snap.slot_count());
  const std::uint32_t epoch = scratch.epoch;
  auto& dist = scratch.dist_fx;
  auto& stamp = scratch.stamp;
  auto& done = scratch.done;
  auto& buckets = scratch.buckets;  // all empty: previous run drained them
  const int shift = bucket_shift_for(snap.min_edge_fx());
  // Every edge relaxation adds >= min_edge_fx, so when the bucket width
  // divides under it a node's distance is final the first time it pops
  // from the current bucket (classic Dial). Otherwise relaxations can
  // land back in the open bucket; the drain loop below reprocesses them
  // (the growing-vector scan) until the bucket reaches a fixpoint, so
  // distances stay exact either way.
  const bool settle_on_pop =
      (std::uint64_t{1} << shift) <= snap.min_edge_fx();

  auto push = [&](SlotId v, std::uint64_t d) {
    const std::size_t b = static_cast<std::size_t>(d >> shift);
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(v);
  };

  dist[source] = 0;
  stamp[source] = epoch;
  push(source, 0);
  std::size_t pending = 1;
  std::size_t b = 0;
  while (pending > 0) {
    while (b < buckets.size() && buckets[b].empty()) ++b;
    PROPSIM_DCHECK(b < buckets.size());
    // Index loop, re-reading buckets[b] each access: relaxations may
    // append to this bucket mid-drain, and push() can reallocate the
    // outer bucket array, so no reference survives an expansion.
    for (std::size_t i = 0; i < buckets[b].size(); ++i) {
      const SlotId u = buckets[b][i];
      --pending;
      if (done[u] == epoch) continue;  // duplicate of a settled node
      if ((dist[u] >> shift) != b) continue;  // stale: improved earlier
      if (settle_on_pop) done[u] = epoch;
      const std::uint64_t du = dist[u];
      const auto targets = snap.targets(u);
      const auto lats = snap.latencies_fx(u);
      for (std::size_t e = 0; e < targets.size(); ++e) {
        const SlotId v = targets[e];
        std::uint64_t cost = lats[e];
        if (processing_delay_fx != nullptr) {
          cost += (*processing_delay_fx)[v];
        }
        const std::uint64_t candidate = du + cost;
        if (stamp[v] != epoch || candidate < dist[v]) {
          dist[v] = candidate;
          stamp[v] = epoch;
          push(v, candidate);
          ++pending;
        }
      }
    }
    buckets[b].clear();
  }
}

MeasureEngine::MeasureEngine(std::size_t threads, MeasureMode mode)
    : mode_(mode) {
  if (threads == kAutoThreads) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  threads_ = std::max<std::size_t>(threads, 1);
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
  scratch_.reserve(threads_);
  fast_scratch_.reserve(threads_);
  for (std::size_t i = 0; i < threads_; ++i) {
    scratch_.push_back(std::make_unique<MeasureScratch>());
    fast_scratch_.push_back(std::make_unique<FastMeasureScratch>());
  }
}

void MeasureEngine::for_chunks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks = std::min(threads_, count);
  auto bounds = [&](std::size_t c) {
    return std::pair{c * count / chunks, (c + 1) * count / chunks};
  };
  if (pool_ == nullptr || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = bounds(c);
      body(c, begin, end);
    }
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const auto [begin, end] = bounds(c);
    futures.push_back(pool_->submit([&body, c, begin, end] {
      body(c, begin, end);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows the first worker failure
}

void MeasureEngine::run_lookup(const OverlaySnapshot& snap,
                               std::span<const QueryPair> queries,
                               const std::vector<double>* processing_delay_ms,
                               std::vector<double>& out) {
  // One Dijkstra per distinct source: order query indices by source,
  // then chunk the contiguous same-source runs across the workers. Each
  // worker writes only out[idx] for its own runs' indices. order_ and
  // runs_ are member buffers so a steady-state sweep reallocates
  // nothing.
  order_.resize(queries.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::sort(order_.begin(), order_.end(),
            [&](std::size_t a, std::size_t b) {
              if (queries[a].src != queries[b].src) {
                return queries[a].src < queries[b].src;
              }
              return a < b;
            });
  runs_.clear();
  for (std::size_t i = 0; i < order_.size();) {
    std::size_t j = i + 1;
    while (j < order_.size() &&
           queries[order_[j]].src == queries[order_[i]].src) {
      ++j;
    }
    runs_.push_back(Run{i, j});
    i = j;
  }

  // Kernel choice is a pure function of mode and snapshot: the fast
  // kernel needs every edge (and processing delay) inside the 32-bit
  // fixed-point range, and falls back to exact otherwise.
  bool use_fast = mode_ == MeasureMode::kFast && snap.fixed_point_ok();
  const std::vector<std::uint32_t>* proc_fx = nullptr;
  if (use_fast && processing_delay_ms != nullptr) {
    proc_fx_.resize(processing_delay_ms->size());
    for (std::size_t i = 0; i < processing_delay_ms->size(); ++i) {
      const std::uint64_t fx =
          OverlaySnapshot::quantize_ms((*processing_delay_ms)[i]);
      if (fx > OverlaySnapshot::kFxMaxEdge) {
        use_fast = false;
        break;
      }
      proc_fx_[i] = static_cast<std::uint32_t>(fx);
    }
    if (use_fast) proc_fx = &proc_fx_;
  }
  if (use_fast) {
    stats_.fast_floods += runs_.size();
  } else {
    stats_.exact_floods += runs_.size();
  }

  out.assign(queries.size(), 0.0);
  for_chunks(runs_.size(), [&](std::size_t chunk, std::size_t begin,
                               std::size_t end) {
    if (use_fast) {
      FastMeasureScratch& scratch = *fast_scratch_[chunk];
      for (std::size_t r = begin; r < end; ++r) {
        const Run& run = runs_[r];
        flood_snapshot_fast(snap, queries[order_[run.begin]].src, proc_fx,
                            scratch);
        for (std::size_t k = run.begin; k < run.end; ++k) {
          out[order_[k]] = scratch.distance(queries[order_[k]].dst);
        }
      }
      return;
    }
    MeasureScratch& scratch = *scratch_[chunk];
    for (std::size_t r = begin; r < end; ++r) {
      const Run& run = runs_[r];
      flood_snapshot(snap, queries[order_[run.begin]].src,
                     processing_delay_ms, scratch);
      for (std::size_t k = run.begin; k < run.end; ++k) {
        out[order_[k]] = scratch.distance(queries[order_[k]].dst);
      }
    }
  });
}

std::vector<double> MeasureEngine::lookup_latencies(
    const OverlaySnapshot& snap, std::span<const QueryPair> queries,
    const std::vector<double>* processing_delay_ms) {
  std::vector<double> out;
  run_lookup(snap, queries, processing_delay_ms, out);
  return out;
}

double MeasureEngine::average_lookup_latency(
    const OverlaySnapshot& snap, std::span<const QueryPair> queries,
    const std::vector<double>* processing_delay_ms) {
  PROPSIM_CHECK(!queries.empty());
  run_lookup(snap, queries, processing_delay_ms, avg_out_);
  double sum = 0.0;
  for (const double v : avg_out_) sum += v;
  return sum / static_cast<double>(avg_out_.size());
}

std::vector<double> MeasureEngine::route_latencies(
    std::span<const QueryPair> queries, const RouteLatencyFn& fn) {
  std::vector<double> out(queries.size(), 0.0);
  for_chunks(queries.size(), [&](std::size_t /*chunk*/, std::size_t begin,
                                 std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(queries[i]);
  });
  return out;
}

double MeasureEngine::average_route_latency(
    std::span<const QueryPair> queries, const RouteLatencyFn& fn) {
  PROPSIM_CHECK(!queries.empty());
  const auto lat = route_latencies(queries, fn);
  double sum = 0.0;
  for (const double v : lat) sum += v;
  return sum / static_cast<double>(lat.size());
}

std::vector<double> MeasureEngine::direct_latencies(
    const OverlayNetwork& net, std::span<const QueryPair> queries) {
  std::vector<double> out(queries.size(), 0.0);
  for_chunks(queries.size(), [&](std::size_t /*chunk*/, std::size_t begin,
                                 std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = net.slot_latency(queries[i].src, queries[i].dst);
    }
  });
  return out;
}

double MeasureEngine::average_direct_latency(
    const OverlayNetwork& net, std::span<const QueryPair> queries) {
  PROPSIM_CHECK(!queries.empty());
  const auto lat = direct_latencies(net, queries);
  double sum = 0.0;
  for (const double v : lat) sum += v;
  return sum / static_cast<double>(lat.size());
}

StretchResult MeasureEngine::stretch(const OverlayNetwork& net,
                                     std::span<const QueryPair> queries,
                                     const RouteLatencyFn& fn) {
  StretchResult r;
  r.logical_al = average_route_latency(queries, fn);
  r.physical_al = average_direct_latency(net, queries);
  PROPSIM_CHECK(r.physical_al > 0.0);
  r.stretch = r.logical_al / r.physical_al;
  return r;
}

}  // namespace propsim
