// Measurement query primitives.
//
// These used to live in metrics/metrics.h; they sit here, below the
// metrics layer, so both the metrics helpers and the parallel
// measurement engine (measure/measure_engine.h) can share them without
// a dependency cycle.
#pragma once

#include <functional>

#include "overlay/logical_graph.h"

namespace propsim {

/// One sampled (source, destination) measurement query.
struct QueryPair {
  SlotId src;
  SlotId dst;
};

/// Routing latency of one query, in milliseconds. Functions handed to
/// MeasureEngine::route_latencies/stretch are called from several
/// worker threads at once and must be pure with respect to shared state
/// (every substrate's lookup_path/route_path is const and allocates
/// only locally, so the stock routers qualify).
using RouteLatencyFn = std::function<double(const QueryPair&)>;

/// Routed vs direct latency over a query set (paper Section 4.2).
struct StretchResult {
  double logical_al = 0.0;   // mean routed latency
  double physical_al = 0.0;  // mean direct latency
  double stretch = 0.0;      // logical / physical
};

}  // namespace propsim
