#include "measure/overlay_snapshot.h"

namespace propsim {

OverlaySnapshot OverlaySnapshot::capture(
    const OverlayNetwork& net, const OverlayNetwork::LinkFilter* link_ok) {
  const LogicalGraph& graph = net.graph();
  const std::size_t n = graph.slot_count();
  OverlaySnapshot snap;
  snap.offsets_.resize(n + 1);
  snap.active_.resize(n);
  // 2 * edge_count is exact without a filter and an upper bound with one.
  snap.targets_.reserve(2 * graph.edge_count());
  snap.latency_ms_.reserve(2 * graph.edge_count());
  for (SlotId s = 0; s < n; ++s) {
    snap.offsets_[s] = snap.targets_.size();
    snap.active_[s] = graph.is_active(s) ? 1 : 0;
    for (const SlotId v : graph.neighbors(s)) {
      if (link_ok != nullptr && !(*link_ok)(s, v)) continue;
      snap.targets_.push_back(v);
      snap.latency_ms_.push_back(net.slot_latency(s, v));
    }
  }
  snap.offsets_[n] = snap.targets_.size();
  return snap;
}

}  // namespace propsim
