#include "measure/overlay_snapshot.h"

#include <algorithm>
#include <cmath>

namespace propsim {

std::uint64_t OverlaySnapshot::quantize_ms(double ms) {
  if (!std::isfinite(ms) || ms < 0.0) return kFxMaxEdge + 1;
  const double scaled = ms * kFxPerMs;
  if (scaled > static_cast<double>(kFxMaxEdge)) return kFxMaxEdge + 1;
  return static_cast<std::uint64_t>(std::llround(scaled));
}

OverlaySnapshot OverlaySnapshot::capture(
    const OverlayNetwork& net, const OverlayNetwork::LinkFilter* link_ok) {
  const LogicalGraph& graph = net.graph();
  const std::size_t n = graph.slot_count();
  OverlaySnapshot snap;
  snap.offsets_.resize(n + 1);
  snap.active_.resize(n);
  // 2 * edge_count is exact without a filter and an upper bound with one.
  snap.targets_.reserve(2 * graph.edge_count());
  snap.latency_ms_.reserve(2 * graph.edge_count());
  snap.latency_fx_.reserve(2 * graph.edge_count());
  for (SlotId s = 0; s < n; ++s) {
    snap.offsets_[s] = snap.targets_.size();
    snap.active_[s] = graph.is_active(s) ? 1 : 0;
    for (const SlotId v : graph.neighbors(s)) {
      if (link_ok != nullptr && !(*link_ok)(s, v)) continue;
      const double ms = net.slot_latency(s, v);
      snap.targets_.push_back(v);
      snap.latency_ms_.push_back(ms);
      const std::uint64_t fx = quantize_ms(ms);
      if (fx > kFxMaxEdge) {
        snap.fx_ok_ = false;
        snap.latency_fx_.push_back(0xffffffffu);  // unused when !fx_ok_
      } else {
        snap.latency_fx_.push_back(static_cast<std::uint32_t>(fx));
        snap.min_edge_fx_ = std::min(snap.min_edge_fx_,
                                     static_cast<std::uint32_t>(fx));
      }
    }
  }
  snap.offsets_[n] = snap.targets_.size();
  return snap;
}

}  // namespace propsim
