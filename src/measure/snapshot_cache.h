// Version-keyed OverlaySnapshot reuse across convergence ticks.
//
// Capturing a snapshot is O(V + E) per sample; when the overlay did not
// change between two ticks the capture would produce a byte-identical
// snapshot, so the sweep can reuse the previous one. "Did not change"
// is decided by the caller-supplied version number — the experiment
// derives it from the trace bus's topology-affecting event counts
// (exchange commits, churn joins/leaves/fails, LTM rounds, crashes,
// partition edges), which only ever grow, so an unchanged version
// proves no such event ran since the last capture. Reuse is therefore
// pure caching: it can never change a result, only skip redundant work.
//
// In a PROPSIM_TRACE=OFF build the bus counters stay zero and cannot
// witness changes; the experiment feeds a version that bumps every tick
// instead, so the cache conservatively recaptures (results stay
// bit-identical across build modes; only the reuse counters differ,
// like the trace counters already do).
#pragma once

#include <cstdint>
#include <functional>

#include "measure/overlay_snapshot.h"

namespace propsim {

class SnapshotCache {
 public:
  using CaptureFn = std::function<OverlaySnapshot()>;

  explicit SnapshotCache(CaptureFn capture);

  /// The snapshot for `version`: recaptured when the version differs
  /// from the previous call's (or on first use), reused otherwise. The
  /// reference stays valid until the next at() or invalidate().
  const OverlaySnapshot& at(std::uint64_t version);

  /// Drops the cached snapshot; the next at() recaptures regardless of
  /// version.
  void invalidate() { have_ = false; }

  std::uint64_t captures() const { return captures_; }
  std::uint64_t reuses() const { return reuses_; }

 private:
  CaptureFn capture_;
  OverlaySnapshot snap_;
  std::uint64_t version_ = 0;
  bool have_ = false;
  std::uint64_t captures_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace propsim
