#include "analysis/lint_rules.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "can/can_space.h"
#include "chord/chord_ring.h"
#include "overlay/isomorphism.h"
#include "topology/graph.h"

namespace propsim {

std::vector<std::size_t> SnapshotGraph::degrees() const {
  std::vector<std::size_t> deg(node_count, 0);
  for (const Edge& e : edges) {
    if (e.first < node_count) ++deg[e.first];
    if (e.second < node_count) ++deg[e.second];
  }
  return deg;
}

std::vector<std::size_t> SnapshotGraph::degree_multiset() const {
  std::vector<std::size_t> deg = degrees();
  std::sort(deg.begin(), deg.end());
  return deg;
}

SnapshotGraph snapshot_of(const LogicalGraph& graph) {
  SnapshotGraph snap;
  snap.node_count = graph.slot_count();
  snap.edges.reserve(graph.edge_count());
  for (const SlotId s : graph.active_slots()) {
    for (const SlotId v : graph.neighbors(s)) {
      if (v > s) snap.edges.emplace_back(s, v);
    }
  }
  return snap;
}

SnapshotGraph snapshot_of(const Graph& graph) {
  SnapshotGraph snap;
  snap.node_count = graph.node_count();
  snap.edges.reserve(graph.edge_count());
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    for (const Graph::Edge& e : graph.neighbors(u)) {
      if (e.to > u) snap.edges.emplace_back(u, e.to);
    }
  }
  return snap;
}

bool snapshot_from_edge_list(const std::string& text, SnapshotGraph& out,
                             std::string* error) {
  std::istringstream in(text);
  std::string line;
  SnapshotGraph snap;
  bool have_nodes = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string first;
    if (!(fields >> first)) continue;  // blank line
    if (first == "nodes") {
      std::size_t n = 0;
      if (!(fields >> n) || have_nodes) {
        if (error) *error = "malformed nodes header at line " +
                            std::to_string(line_no);
        return false;
      }
      snap.node_count = n;
      have_nodes = true;
      continue;
    }
    if (!have_nodes) {
      if (error) *error = "edge before nodes header at line " +
                          std::to_string(line_no);
      return false;
    }
    // Edge lines: "<u> <v> [weight]". Out-of-range and duplicate edges
    // are kept verbatim for the rules to flag.
    std::uint32_t u = 0;
    std::uint32_t v = 0;
    try {
      u = static_cast<std::uint32_t>(std::stoul(first));
    } catch (const std::exception&) {
      if (error) *error = "malformed endpoint at line " +
                          std::to_string(line_no);
      return false;
    }
    if (!(fields >> v)) {
      if (error) *error = "missing endpoint at line " +
                          std::to_string(line_no);
      return false;
    }
    snap.edges.emplace_back(u, v);
  }
  if (!have_nodes) {
    if (error) *error = "missing nodes header";
    return false;
  }
  out = std::move(snap);
  return true;
}

namespace {

std::string fmt_edge(const SnapshotGraph::Edge& e) {
  return std::to_string(e.first) + "-" + std::to_string(e.second);
}

void add_finding(std::vector<LintFinding>& findings, std::string_view rule,
                 LintSeverity severity, std::string message) {
  findings.push_back(
      LintFinding{std::string(rule), severity, std::move(message)});
}

// ------------------------------------------------------------- edge-range
class EdgeRangeRule final : public LintRule {
 public:
  std::string_view name() const override { return "edge-range"; }
  std::string_view description() const override {
    return "every edge endpoint names a node inside [0, nodes)";
  }
  bool applicable(const LintContext& ctx) const override {
    return ctx.graph != nullptr;
  }
  void check(const LintContext& ctx,
             std::vector<LintFinding>& findings) const override {
    for (const auto& e : ctx.graph->edges) {
      if (e.first >= ctx.graph->node_count ||
          e.second >= ctx.graph->node_count) {
        add_finding(findings, name(), LintSeverity::kError,
                    "edge " + fmt_edge(e) + " references a node >= " +
                        std::to_string(ctx.graph->node_count));
      }
    }
  }
};

// ----------------------------------------------------------- no-self-loops
class SelfLoopRule final : public LintRule {
 public:
  std::string_view name() const override { return "no-self-loops"; }
  std::string_view description() const override {
    return "no overlay edge connects a node to itself";
  }
  bool applicable(const LintContext& ctx) const override {
    return ctx.graph != nullptr;
  }
  void check(const LintContext& ctx,
             std::vector<LintFinding>& findings) const override {
    for (const auto& e : ctx.graph->edges) {
      if (e.first == e.second) {
        add_finding(findings, name(), LintSeverity::kError,
                    "self-loop at node " + std::to_string(e.first));
      }
    }
  }
};

// ------------------------------------------------------- no-parallel-edges
class ParallelEdgeRule final : public LintRule {
 public:
  std::string_view name() const override { return "no-parallel-edges"; }
  std::string_view description() const override {
    return "no undirected edge appears twice";
  }
  bool applicable(const LintContext& ctx) const override {
    return ctx.graph != nullptr;
  }
  void check(const LintContext& ctx,
             std::vector<LintFinding>& findings) const override {
    // det-ok(D1): membership probe per packed edge key; never iterated
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(ctx.graph->edges.size());
    for (const auto& e : ctx.graph->edges) {
      const std::uint64_t lo = std::min(e.first, e.second);
      const std::uint64_t hi = std::max(e.first, e.second);
      if (!seen.insert((lo << 32) | hi).second) {
        add_finding(findings, name(), LintSeverity::kError,
                    "parallel edge " + fmt_edge(e));
      }
    }
  }
};

// ------------------------------------------------------------ connectivity
class ConnectivityRule final : public LintRule {
 public:
  std::string_view name() const override { return "connectivity"; }
  std::string_view description() const override {
    return "all non-isolated nodes form one connected component "
           "(isolated nodes are reported as warnings)";
  }
  bool applicable(const LintContext& ctx) const override {
    return ctx.graph != nullptr;
  }
  void check(const LintContext& ctx,
             std::vector<LintFinding>& findings) const override {
    const SnapshotGraph& g = *ctx.graph;
    const std::size_t n = g.node_count;
    std::vector<std::vector<std::uint32_t>> adj(n);
    for (const auto& e : g.edges) {
      if (e.first >= n || e.second >= n || e.first == e.second) continue;
      adj[e.first].push_back(e.second);
      adj[e.second].push_back(e.first);
    }
    std::uint32_t start = static_cast<std::uint32_t>(n);
    std::size_t populated = 0;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (!adj[u].empty()) {
        if (start == n) start = u;
        ++populated;
      }
    }
    const std::size_t isolated = n - populated;
    if (isolated > 0) {
      add_finding(findings, name(), LintSeverity::kWarning,
                  std::to_string(isolated) +
                      " isolated node(s); treating them as inactive slots");
    }
    if (populated == 0) return;  // nothing to connect
    std::vector<bool> seen(n, false);
    std::vector<std::uint32_t> stack{start};
    seen[start] = true;
    std::size_t visited = 1;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      for (const std::uint32_t v : adj[u]) {
        if (!seen[v]) {
          seen[v] = true;
          ++visited;
          stack.push_back(v);
        }
      }
    }
    if (visited != populated) {
      add_finding(findings, name(), LintSeverity::kError,
                  "overlay is disconnected: reached " +
                      std::to_string(visited) + " of " +
                      std::to_string(populated) + " non-isolated nodes");
    }
  }
};

// ----------------------------------------------------- degree-conservation
class DegreeConservationRule final : public LintRule {
 public:
  std::string_view name() const override { return "degree-conservation"; }
  std::string_view description() const override {
    return "PROP-O invariant: the sorted degree multiset matches the "
           "baseline snapshot";
  }
  bool applicable(const LintContext& ctx) const override {
    return ctx.graph != nullptr && ctx.baseline != nullptr;
  }
  void check(const LintContext& ctx,
             std::vector<LintFinding>& findings) const override {
    const auto now = ctx.graph->degree_multiset();
    const auto then = ctx.baseline->degree_multiset();
    if (now == then) return;
    if (now.size() != then.size()) {
      add_finding(findings, name(), LintSeverity::kError,
                  "node count changed: " + std::to_string(then.size()) +
                      " -> " + std::to_string(now.size()));
      return;
    }
    std::size_t diverged = 0;
    for (std::size_t i = 0; i < now.size(); ++i) {
      if (now[i] != then[i]) ++diverged;
    }
    add_finding(findings, name(), LintSeverity::kError,
                "degree multiset diverged from baseline at " +
                    std::to_string(diverged) + " of " +
                    std::to_string(now.size()) + " positions");
  }
};

// ----------------------------------------------------- prop-g-isomorphism
class PropGIsomorphismRule final : public LintRule {
 public:
  std::string_view name() const override { return "prop-g-isomorphism"; }
  std::string_view description() const override {
    return "PROP-G invariant (Theorem 2): the overlay equals the baseline "
           "slot-for-slot; with placements, the host-level graphs are "
           "isomorphic via the placement bijection";
  }
  bool applicable(const LintContext& ctx) const override {
    return ctx.graph != nullptr && ctx.baseline != nullptr;
  }
  void check(const LintContext& ctx,
             std::vector<LintFinding>& findings) const override {
    // Slot level: PROP-G never edits the logical graph, so the edge sets
    // must be identical (not merely isomorphic).
    auto canon = [](const SnapshotGraph& g) {
      std::vector<SnapshotGraph::Edge> edges = g.edges;
      for (auto& e : edges) {
        if (e.first > e.second) std::swap(e.first, e.second);
      }
      std::sort(edges.begin(), edges.end());
      return edges;
    };
    if (canon(*ctx.graph) != canon(*ctx.baseline)) {
      add_finding(findings, name(), LintSeverity::kError,
                  "slot-level edge set differs from baseline (PROP-G must "
                  "leave the logical graph untouched)");
      return;
    }
    if (ctx.placement == nullptr || ctx.baseline_placement == nullptr) {
      return;
    }
    // Host level: phi(h) = host now occupying the slot h occupied before
    // must map the old host-labelled edge set exactly onto the new one.
    const Placement& before = *ctx.baseline_placement;
    const Placement& after = *ctx.placement;
    if (before.slot_capacity() != after.slot_capacity()) {
      add_finding(findings, name(), LintSeverity::kError,
                  "placement slot capacities differ between snapshots");
      return;
    }
    auto labelled = [&](const SnapshotGraph& g, const Placement& p,
                        std::vector<HostEdge>& out) {
      out.reserve(g.edges.size());
      for (const auto& e : g.edges) {
        if (e.first >= p.slot_capacity() || e.second >= p.slot_capacity() ||
            !p.slot_bound(e.first) || !p.slot_bound(e.second)) {
          return false;
        }
        const NodeId a = p.host_of(e.first);
        const NodeId b = p.host_of(e.second);
        out.emplace_back(std::min(a, b), std::max(a, b));
      }
      std::sort(out.begin(), out.end());
      return true;
    };
    std::vector<HostEdge> edges_before;
    std::vector<HostEdge> edges_after;
    if (!labelled(*ctx.baseline, before, edges_before) ||
        !labelled(*ctx.graph, after, edges_after)) {
      add_finding(findings, name(), LintSeverity::kError,
                  "an overlay edge endpoint has no bound host");
      return;
    }
    for (SlotId s = 0; s < before.slot_capacity(); ++s) {
      if (before.slot_bound(s) != after.slot_bound(s)) {
        add_finding(findings, name(), LintSeverity::kError,
                    "slot " + std::to_string(s) +
                        " changed bound state between snapshots");
        return;
      }
    }
    const auto [hosts, phi] = placement_bijection(before, after);
    if (!isomorphic_via(edges_before, edges_after, hosts, phi)) {
      add_finding(findings, name(), LintSeverity::kError,
                  "host-level graphs are not isomorphic under the "
                  "placement bijection");
    }
  }
};

// ------------------------------------------------------ placement-bijection
class PlacementBijectionRule final : public LintRule {
 public:
  std::string_view name() const override { return "placement-bijection"; }
  std::string_view description() const override {
    return "slot->host and host->slot maps are mutually inverse partial "
           "bijections";
  }
  bool applicable(const LintContext& ctx) const override {
    return ctx.placement != nullptr;
  }
  void check(const LintContext& ctx,
             std::vector<LintFinding>& findings) const override {
    const Placement& p = *ctx.placement;
    std::size_t bound = 0;
    for (SlotId s = 0; s < p.slot_capacity(); ++s) {
      if (!p.slot_bound(s)) continue;
      ++bound;
      const NodeId h = p.host_of(s);
      if (h >= p.host_capacity()) {
        add_finding(findings, name(), LintSeverity::kError,
                    "slot " + std::to_string(s) + " bound to host " +
                        std::to_string(h) + " outside host capacity");
        continue;
      }
      if (!p.host_bound(h) || p.slot_of(h) != s) {
        add_finding(findings, name(), LintSeverity::kError,
                    "slot " + std::to_string(s) + " -> host " +
                        std::to_string(h) +
                        " has no matching reverse binding");
      }
    }
    for (NodeId h = 0; h < p.host_capacity(); ++h) {
      if (!p.host_bound(h)) continue;
      const SlotId s = p.slot_of(h);
      if (s >= p.slot_capacity() || !p.slot_bound(s) || p.host_of(s) != h) {
        add_finding(findings, name(), LintSeverity::kError,
                    "host " + std::to_string(h) + " -> slot " +
                        std::to_string(s) +
                        " has no matching forward binding");
      }
    }
    if (bound != p.bound_count()) {
      add_finding(findings, name(), LintSeverity::kError,
                  "bound_count() says " + std::to_string(p.bound_count()) +
                      " but " + std::to_string(bound) +
                      " slots are actually bound");
    }
  }
};

// ----------------------------------------------------- chord-monotonicity
class ChordMonotonicityRule final : public LintRule {
 public:
  std::string_view name() const override { return "chord-monotonicity"; }
  std::string_view description() const override {
    return "Chord ring ids are distinct, successor lists follow the ring "
           "order, and finger tables step monotonically clockwise";
  }
  bool applicable(const LintContext& ctx) const override {
    return ctx.chord != nullptr;
  }
  void check(const LintContext& ctx,
             std::vector<LintFinding>& findings) const override {
    const ChordRing& ring = *ctx.chord;
    const std::size_t n = ring.size();
    std::vector<SlotId> order(n);
    for (SlotId s = 0; s < n; ++s) order[s] = s;
    std::sort(order.begin(), order.end(), [&](SlotId a, SlotId b) {
      return ring.id_of(a) < ring.id_of(b);
    });
    for (std::size_t i = 1; i < n; ++i) {
      if (ring.id_of(order[i - 1]) == ring.id_of(order[i])) {
        add_finding(findings, name(), LintSeverity::kError,
                    "duplicate chord id shared by slots " +
                        std::to_string(order[i - 1]) + " and " +
                        std::to_string(order[i]));
        return;  // the ring order is ill-defined past this point
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      const SlotId s = order[i];
      const SlotId expect = order[(i + 1) % n];
      if (ring.ring_successor(s) != expect) {
        add_finding(findings, name(), LintSeverity::kError,
                    "ring_successor(" + std::to_string(s) +
                        ") skips the next id clockwise");
      }
      if (ring.successor_of(ring.id_of(s)) != s) {
        add_finding(findings, name(), LintSeverity::kError,
                    "successor_of(id_of(" + std::to_string(s) +
                        ")) does not resolve to the slot itself");
      }
    }
    for (SlotId s = 0; s < n; ++s) {
      const auto succ = ring.successors(s);
      for (std::size_t k = 0; k < succ.size(); ++k) {
        if (succ[k] != ring.ring_successor(s, k + 1)) {
          add_finding(findings, name(), LintSeverity::kError,
                      "successor list of slot " + std::to_string(s) +
                          " diverges from the ring at position " +
                          std::to_string(k));
          break;
        }
      }
      // With PNS each finger is drawn from a candidate window, so strict
      // clockwise monotonicity only holds for plain Chord tables.
      if (ring.config().pns_candidates > 1) continue;
      const auto fingers = ring.fingers(s);
      ChordId prev = 0;
      for (std::size_t k = 0; k < fingers.size(); ++k) {
        if (fingers[k] == s) {
          add_finding(findings, name(), LintSeverity::kError,
                      "slot " + std::to_string(s) +
                          " lists itself as a finger");
          break;
        }
        const ChordId dist =
            clockwise_distance(ring.id_of(s), ring.id_of(fingers[k]));
        if (k > 0 && dist <= prev) {
          add_finding(findings, name(), LintSeverity::kError,
                      "finger table of slot " + std::to_string(s) +
                          " is not clockwise-monotone at entry " +
                          std::to_string(k));
          break;
        }
        prev = dist;
      }
    }
  }
};

// ----------------------------------------------------------- can-tiling
class CanTilingRule final : public LintRule {
 public:
  std::string_view name() const override { return "can-tiling"; }
  std::string_view description() const override {
    return "CAN zones are well-formed, pairwise disjoint, cover the torus "
           "exactly, and neighbor lists mirror geometric adjacency";
  }
  bool applicable(const LintContext& ctx) const override {
    return ctx.can != nullptr;
  }
  void check(const LintContext& ctx,
             std::vector<LintFinding>& findings) const override {
    const CanSpace& space = *ctx.can;
    const std::size_t n = space.size();
    double volume = 0.0;
    for (SlotId s = 0; s < n; ++s) {
      const CanZone& z = space.zone(s);
      for (std::size_t d = 0; d < kCanDims; ++d) {
        if (z.lo[d] >= z.hi[d] || z.hi[d] > kCanSpan) {
          add_finding(findings, name(), LintSeverity::kError,
                      "zone " + std::to_string(s) +
                          " is degenerate in dimension " +
                          std::to_string(d));
        }
      }
      volume += z.volume_fraction();
    }
    if (std::abs(volume - 1.0) > 1e-9) {
      add_finding(findings, name(), LintSeverity::kError,
                  "zone volumes sum to " + std::to_string(volume) +
                      ", not 1 (coverage gap or overlap)");
    }
    auto overlap = [](CanCoord alo, CanCoord ahi, CanCoord blo,
                      CanCoord bhi) { return alo < bhi && blo < ahi; };
    for (SlotId a = 0; a < n; ++a) {
      for (SlotId b = a + 1; b < n; ++b) {
        const CanZone& za = space.zone(a);
        const CanZone& zb = space.zone(b);
        bool all = true;
        for (std::size_t d = 0; d < kCanDims; ++d) {
          all = all && overlap(za.lo[d], za.hi[d], zb.lo[d], zb.hi[d]);
        }
        if (all) {
          add_finding(findings, name(), LintSeverity::kError,
                      "zones " + std::to_string(a) + " and " +
                          std::to_string(b) + " overlap");
        }
        const bool adj = zones_adjacent(za, zb);
        const auto na = space.neighbors(a);
        const auto nb = space.neighbors(b);
        const bool a_lists_b =
            std::find(na.begin(), na.end(), b) != na.end();
        const bool b_lists_a =
            std::find(nb.begin(), nb.end(), a) != nb.end();
        if (adj != a_lists_b || adj != b_lists_a) {
          add_finding(findings, name(), LintSeverity::kError,
                      "neighbor lists of zones " + std::to_string(a) +
                          " and " + std::to_string(b) +
                          " disagree with geometric adjacency");
        }
      }
    }
  }
};

// ------------------------------------------------------ partition-closure
class PartitionClosureRule final : public LintRule {
 public:
  std::string_view name() const override { return "partition-closure"; }
  std::string_view description() const override {
    return "while a stub-domain partition window is open, no slot's bound "
           "host changes partition side and the number of overlay edges "
           "crossing the cut never grows";
  }
  bool applicable(const LintContext& ctx) const override {
    return ctx.graph != nullptr && ctx.partition != nullptr;
  }
  void check(const LintContext& ctx,
             std::vector<LintFinding>& findings) const override {
    const PartitionView& view = *ctx.partition;
    if (view.live_domains.empty()) return;  // no window open: vacuous
    const auto side = [](const std::vector<std::uint32_t>& dom, SlotId s,
                         std::uint32_t d) {
      return s < dom.size() && dom[s] == d;
    };
    for (const std::uint32_t d : view.live_domains) {
      // (a) Side stability: a slot bound at window entry and bound now
      // must not have crossed the cut — every negotiation leg consults
      // deliver(), so no exchange can move a host across an open
      // partition. Slots unbound at either end are mid-churn; skip.
      const std::size_t slots = std::min(view.slot_domain.size(),
                                         view.baseline_slot_domain.size());
      for (SlotId s = 0; s < slots; ++s) {
        if (view.slot_domain[s] == PartitionView::kUnbound ||
            view.baseline_slot_domain[s] == PartitionView::kUnbound) {
          continue;
        }
        const bool was_inside = view.baseline_slot_domain[s] == d;
        const bool is_inside = view.slot_domain[s] == d;
        if (was_inside != is_inside) {
          add_finding(findings, name(), LintSeverity::kError,
                      "slot " + std::to_string(s) + " moved " +
                          (was_inside ? "out of" : "into") +
                          " stub domain " + std::to_string(d) +
                          " while its partition window is open");
        }
      }
      // (b) Cut closure: the crossing-edge count is non-increasing
      // inside the window. Exchanges preserve it edge-for-edge and
      // deliver()-gated repair never adds a crossing edge; only
      // departures can shrink it.
      if (view.baseline_graph == nullptr) continue;
      const auto cut_size = [&](const SnapshotGraph& g,
                                const std::vector<std::uint32_t>& dom) {
        std::size_t crossing = 0;
        for (const auto& e : g.edges) {
          if (side(dom, e.first, d) != side(dom, e.second, d)) ++crossing;
        }
        return crossing;
      };
      const std::size_t before =
          cut_size(*view.baseline_graph, view.baseline_slot_domain);
      const std::size_t now = cut_size(*ctx.graph, view.slot_domain);
      if (now > before) {
        add_finding(findings, name(), LintSeverity::kError,
                    "cut of stub domain " + std::to_string(d) + " grew from " +
                        std::to_string(before) + " to " +
                        std::to_string(now) +
                        " crossing edge(s) inside an open partition window");
      }
    }
  }
};

// ------------------------------------------------------ negotiation-locks
class NegotiationLockRule final : public LintRule {
 public:
  std::string_view name() const override { return "negotiation-locks"; }
  std::string_view description() const override {
    return "two-phase negotiation locks are symmetric, distinct, held only "
           "by active slots, and always owned by a pending release event "
           "(no slot can be left locked after the event queue drains)";
  }
  bool applicable(const LintContext& ctx) const override {
    return ctx.locks != nullptr;
  }
  void check(const LintContext& ctx,
             std::vector<LintFinding>& findings) const override {
    const NegotiationLockView& view = *ctx.locks;
    const std::size_t n = view.peer.size();
    for (SlotId u = 0; u < n; ++u) {
      const SlotId v = view.peer[u];
      if (v == kInvalidSlot) continue;
      if (v == u) {
        add_finding(findings, name(), LintSeverity::kError,
                    "slot " + std::to_string(u) +
                        " is negotiation-locked with itself");
        continue;
      }
      if (v >= n || view.peer[v] != u) {
        add_finding(findings, name(), LintSeverity::kError,
                    "asymmetric negotiation lock: slot " + std::to_string(u) +
                        " is locked with " + std::to_string(v) +
                        " but not vice versa");
        continue;
      }
      if (u < view.active.size() && !view.active[u]) {
        add_finding(findings, name(), LintSeverity::kError,
                    "inactive slot " + std::to_string(u) +
                        " still holds a negotiation lock with " +
                        std::to_string(v));
      }
      // Pair checks once, from the lower endpoint. The initiator's
      // pending event (commit, retransmission or abort) is the only
      // thing that ever releases a held lock besides node departure; a
      // pair where neither endpoint owns one is orphaned forever.
      if (u > v) continue;
      const auto pending = [&](SlotId s) {
        return s < view.has_pending.size() && view.has_pending[s];
      };
      if (!pending(u) && !pending(v)) {
        add_finding(findings, name(), LintSeverity::kError,
                    "negotiation lock " + std::to_string(u) + "—" +
                        std::to_string(v) +
                        " has no pending event on either endpoint; it can "
                        "never be released");
      }
    }
  }
};

}  // namespace

std::vector<std::uint32_t> slot_domains_of(
    const Placement& placement,
    const std::vector<std::uint32_t>& host_domain) {
  std::vector<std::uint32_t> out(placement.slot_capacity(),
                                 PartitionView::kUnbound);
  for (SlotId s = 0; s < placement.slot_capacity(); ++s) {
    if (!placement.slot_bound(s)) continue;
    const NodeId h = placement.host_of(s);
    out[s] = h < host_domain.size() ? host_domain[h]
                                    : PartitionView::kNoDomain;
  }
  return out;
}

LintRuleRegistry& LintRuleRegistry::instance() {
  static LintRuleRegistry registry;
  return registry;
}

void LintRuleRegistry::add(std::unique_ptr<LintRule> rule) {
  rules_.push_back(std::move(rule));
}

const LintRule* LintRuleRegistry::find(std::string_view name) const {
  for (const auto& rule : rules_) {
    if (rule->name() == name) return rule.get();
  }
  return nullptr;
}

void register_builtin_lint_rules() {
  static const bool once = [] {
    LintRuleRegistry& reg = LintRuleRegistry::instance();
    reg.add(std::make_unique<EdgeRangeRule>());
    reg.add(std::make_unique<SelfLoopRule>());
    reg.add(std::make_unique<ParallelEdgeRule>());
    reg.add(std::make_unique<ConnectivityRule>());
    reg.add(std::make_unique<DegreeConservationRule>());
    reg.add(std::make_unique<PropGIsomorphismRule>());
    reg.add(std::make_unique<PlacementBijectionRule>());
    reg.add(std::make_unique<ChordMonotonicityRule>());
    reg.add(std::make_unique<CanTilingRule>());
    reg.add(std::make_unique<PartitionClosureRule>());
    reg.add(std::make_unique<NegotiationLockRule>());
    return true;
  }();
  (void)once;
}

}  // namespace propsim
