// Protocol-invariant lint rules.
//
// Each rule statically audits a snapshot of simulator state for one of the
// structural invariants the PROP reproduction rests on: PROP-G must leave
// the overlay unchanged up to isomorphism (Theorem 2), PROP-O must conserve
// every node's degree, a Chord substrate must keep its ring strictly
// monotone, a CAN substrate must keep its zones tiling the torus. Rules are
// registered in a global registry so the propsim_lint CLI, the unit tests
// and the paranoid in-simulation audit all see the same catalog.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "overlay/logical_graph.h"
#include "overlay/placement.h"

namespace propsim {

class ChordRing;
class CanSpace;
class Graph;

/// Loosely-validated undirected edge list. Unlike Graph/LogicalGraph this
/// representation can hold *broken* topologies (self-loops, parallel
/// edges, out-of-range endpoints), which is the whole point: lint rules
/// must be able to look at corrupt snapshots without tripping the
/// constructors' own checks.
struct SnapshotGraph {
  using Edge = std::pair<std::uint32_t, std::uint32_t>;

  std::size_t node_count = 0;
  std::vector<Edge> edges;  // as recorded; not canonicalized

  std::vector<std::size_t> degrees() const;
  /// Sorted per-node degree list (the PROP-O conserved quantity).
  std::vector<std::size_t> degree_multiset() const;
};

/// Snapshot of a live LogicalGraph (active slots only, inactive slots
/// appear isolated exactly as in a graph_io dump).
SnapshotGraph snapshot_of(const LogicalGraph& graph);

/// Snapshot of a physical Graph (weights dropped; lint is structural).
SnapshotGraph snapshot_of(const Graph& graph);

/// Parses the graph_io edge-list text format leniently: malformed or
/// out-of-range lines become edges the range rule can flag instead of
/// aborting the process. Returns false only when the text lacks a
/// parseable "nodes <N>" header.
bool snapshot_from_edge_list(const std::string& text, SnapshotGraph& out,
                             std::string* error = nullptr);

/// Fault-era view for the partition-closure rule: which stub domain each
/// slot's bound host sits in, now and at the moment the current partition
/// window opened. While a window is live the engines guarantee (a) no
/// exchange moves a slot's host across the cut (every prepare/commit leg
/// is deliver()-gated) and (b) no new slot edge crosses it — a PROP-O
/// rewire a—u -> a—v preserves crossing status because u and v always sit
/// on the same side. The rule checks exactly those two consequences.
struct PartitionView {
  /// Bound host is a backbone (transit) node: never inside a partition.
  static constexpr std::uint32_t kNoDomain = static_cast<std::uint32_t>(-1);
  /// Slot has no bound host (inactive / mid-churn).
  static constexpr std::uint32_t kUnbound = static_cast<std::uint32_t>(-2);

  std::vector<std::uint32_t> slot_domain;           // current
  std::vector<std::uint32_t> baseline_slot_domain;  // at window entry
  /// Snapshot taken when the live-domain set last changed (window entry);
  /// the cut-size comparison runs against it. May be null (skipped then).
  const SnapshotGraph* baseline_graph = nullptr;
  /// Sorted stub domains whose partition window is open right now.
  std::vector<std::uint32_t> live_domains;
};

/// Per-slot domain of the bound host: kUnbound for unbound slots,
/// host_domain[h] (typically FaultInjector::host_domains()) otherwise.
/// Hosts beyond host_domain.size() map to PartitionView::kNoDomain.
std::vector<std::uint32_t> slot_domains_of(
    const Placement& placement,
    const std::vector<std::uint32_t>& host_domain);

/// Two-phase negotiation lock state for the lock-audit rule. A locked
/// pair must be symmetric, distinct, on active slots, and one endpoint
/// (the initiator) must own a scheduled simulator event that eventually
/// releases it — a lock with no pending event on either side is orphaned
/// and would survive the event queue draining.
struct NegotiationLockView {
  std::vector<SlotId> peer;       // kInvalidSlot when idle
  std::vector<bool> active;       // slot is active in the overlay
  std::vector<bool> has_pending;  // engine owns a scheduled event for it
};

/// Everything a rule may inspect. All pointers optional; a rule declares
/// itself inapplicable when its inputs are missing. `baseline` is the
/// pre-run snapshot that conservation rules (degree multiset, PROP-G
/// isomorphism) compare against.
struct LintContext {
  const SnapshotGraph* graph = nullptr;
  const SnapshotGraph* baseline = nullptr;
  const Placement* placement = nullptr;
  const Placement* baseline_placement = nullptr;
  const ChordRing* chord = nullptr;
  const CanSpace* can = nullptr;
  const PartitionView* partition = nullptr;
  const NegotiationLockView* locks = nullptr;
};

enum class LintSeverity { kWarning, kError };

struct LintFinding {
  std::string rule;
  LintSeverity severity = LintSeverity::kError;
  std::string message;
};

/// One invariant audit. Implementations are stateless; `check` appends
/// zero findings when the invariant holds.
class LintRule {
 public:
  virtual ~LintRule() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  /// True when the context carries the inputs this rule needs.
  virtual bool applicable(const LintContext& ctx) const = 0;

  virtual void check(const LintContext& ctx,
                     std::vector<LintFinding>& findings) const = 0;
};

/// Global rule catalog. Rules self-register at static-init time; the
/// registry is append-only and iteration order is registration order.
class LintRuleRegistry {
 public:
  static LintRuleRegistry& instance();

  void add(std::unique_ptr<LintRule> rule);
  const std::vector<std::unique_ptr<LintRule>>& rules() const {
    return rules_;
  }
  /// Rule with the given name, or nullptr.
  const LintRule* find(std::string_view name) const;

 private:
  std::vector<std::unique_ptr<LintRule>> rules_;
};

/// Forces registration of the built-in rule set (safe to call repeatedly).
/// Called by InvariantChecker and the CLI; direct registry users that skip
/// InvariantChecker must call it once first.
void register_builtin_lint_rules();

}  // namespace propsim
