// InvariantChecker: runs a selected set of lint rules over a snapshot of
// simulator state and collects the findings.
//
// Three consumers share it: the propsim_lint CLI (offline audits of
// graph_io dumps), the unit tests (per-rule fixtures), and the paranoid
// in-simulation audit, which re-checks the live overlay every N events
// when the build defines PROPSIM_PARANOID.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/lint_rules.h"
#include "overlay/overlay_network.h"
#include "sim/scheduler.h"

namespace propsim {

class FaultInjector;
class PropEngine;

struct LintReport {
  std::vector<LintFinding> findings;
  std::size_t rules_run = 0;
  std::size_t rules_skipped = 0;  // inapplicable to the given context

  std::size_t error_count() const;
  std::size_t warning_count() const;
  /// True when no error-severity finding was produced.
  bool passed() const { return error_count() == 0; }

  /// One line per finding: "severity [rule] message".
  std::string to_string() const;
};

class InvariantChecker {
 public:
  /// Audits with every registered rule.
  InvariantChecker();

  /// Audits with a named subset; check-fails on an unknown rule name.
  explicit InvariantChecker(const std::vector<std::string>& rule_names);

  const std::vector<const LintRule*>& rules() const { return rules_; }

  /// Runs each selected rule that is applicable to `ctx`.
  LintReport run(const LintContext& ctx) const;

 private:
  std::vector<const LintRule*> rules_;
};

/// True when the library was compiled with PROPSIM_PARANOID (the in-run
/// audit below does real work only then).
bool paranoid_checks_enabled();

/// Optional live-state hooks for the fault-era audit rules. Both objects
/// are borrowed (may be null) and must outlive the simulation.
struct ParanoidAuditHooks {
  /// Enables partition-closure: slot sides and the cut size are audited
  /// against a baseline re-anchored whenever a partition window opens.
  const FaultInjector* faults = nullptr;
  /// Enables negotiation-locks: the engine's two-phase lock table is
  /// audited for symmetry, liveness and a pending release event.
  const PropEngine* prop = nullptr;
};

/// Assembles the two-phase lock view of a live engine for the
/// negotiation-locks rule (also used directly by tests).
NegotiationLockView negotiation_lock_view(const PropEngine& prop,
                                          const LogicalGraph& graph);

/// Installs a periodic structural audit on the simulator: every
/// `every_n_events` executed events the overlay is re-linted against the
/// structural rules (edge-range, self-loops, parallel edges, connectivity,
/// placement bijection) plus degree conservation against a baseline
/// snapshot taken here. Aborts the process on the first error finding —
/// a silent invariant violation would invalidate every figure downstream.
///
/// Degree conservation and partition closure are skipped when
/// `churn_expected` is true (joins and leaves legitimately change the
/// multiset, and un-gated join/stitch edges may cross an open cut).
/// `net` and `sim` must outlive the simulation. No-op (and returns
/// false) unless the library was built with PROPSIM_PARANOID.
bool install_paranoid_audit(Scheduler& sim, const OverlayNetwork& net,
                            std::uint64_t every_n_events = 4096,
                            bool churn_expected = false,
                            ParanoidAuditHooks hooks = {});

}  // namespace propsim
