// InvariantChecker: runs a selected set of lint rules over a snapshot of
// simulator state and collects the findings.
//
// Three consumers share it: the propsim_lint CLI (offline audits of
// graph_io dumps), the unit tests (per-rule fixtures), and the paranoid
// in-simulation audit, which re-checks the live overlay every N events
// when the build defines PROPSIM_PARANOID.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/lint_rules.h"
#include "overlay/overlay_network.h"
#include "sim/simulator.h"

namespace propsim {

struct LintReport {
  std::vector<LintFinding> findings;
  std::size_t rules_run = 0;
  std::size_t rules_skipped = 0;  // inapplicable to the given context

  std::size_t error_count() const;
  std::size_t warning_count() const;
  /// True when no error-severity finding was produced.
  bool passed() const { return error_count() == 0; }

  /// One line per finding: "severity [rule] message".
  std::string to_string() const;
};

class InvariantChecker {
 public:
  /// Audits with every registered rule.
  InvariantChecker();

  /// Audits with a named subset; check-fails on an unknown rule name.
  explicit InvariantChecker(const std::vector<std::string>& rule_names);

  const std::vector<const LintRule*>& rules() const { return rules_; }

  /// Runs each selected rule that is applicable to `ctx`.
  LintReport run(const LintContext& ctx) const;

 private:
  std::vector<const LintRule*> rules_;
};

/// True when the library was compiled with PROPSIM_PARANOID (the in-run
/// audit below does real work only then).
bool paranoid_checks_enabled();

/// Installs a periodic structural audit on the simulator: every
/// `every_n_events` executed events the overlay is re-linted against the
/// structural rules (edge-range, self-loops, parallel edges, connectivity,
/// placement bijection) plus degree conservation against a baseline
/// snapshot taken here. Aborts the process on the first error finding —
/// a silent invariant violation would invalidate every figure downstream.
///
/// Degree conservation is skipped when `churn_expected` is true (joins
/// and leaves legitimately change the multiset). `net` and `sim` must
/// outlive the simulation. No-op (and returns false) unless the library
/// was built with PROPSIM_PARANOID.
bool install_paranoid_audit(Simulator& sim, const OverlayNetwork& net,
                            std::uint64_t every_n_events = 4096,
                            bool churn_expected = false);

}  // namespace propsim
