#include "analysis/invariant_checker.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "common/check.h"

namespace propsim {

std::size_t LintReport::error_count() const {
  std::size_t n = 0;
  for (const LintFinding& f : findings) {
    if (f.severity == LintSeverity::kError) ++n;
  }
  return n;
}

std::size_t LintReport::warning_count() const {
  return findings.size() - error_count();
}

std::string LintReport::to_string() const {
  std::string out;
  for (const LintFinding& f : findings) {
    out += f.severity == LintSeverity::kError ? "error" : "warning";
    out += " [" + f.rule + "] " + f.message + "\n";
  }
  return out;
}

InvariantChecker::InvariantChecker() {
  register_builtin_lint_rules();
  for (const auto& rule : LintRuleRegistry::instance().rules()) {
    rules_.push_back(rule.get());
  }
}

InvariantChecker::InvariantChecker(
    const std::vector<std::string>& rule_names) {
  register_builtin_lint_rules();
  for (const std::string& name : rule_names) {
    const LintRule* rule = LintRuleRegistry::instance().find(name);
    PROPSIM_CHECK(rule != nullptr && "unknown lint rule name");
    rules_.push_back(rule);
  }
}

LintReport InvariantChecker::run(const LintContext& ctx) const {
  LintReport report;
  for (const LintRule* rule : rules_) {
    if (!rule->applicable(ctx)) {
      ++report.rules_skipped;
      continue;
    }
    ++report.rules_run;
    rule->check(ctx, report.findings);
  }
  return report;
}

bool paranoid_checks_enabled() {
#ifdef PROPSIM_PARANOID
  return true;
#else
  return false;
#endif
}

bool install_paranoid_audit(Simulator& sim, const OverlayNetwork& net,
                            std::uint64_t every_n_events,
                            bool churn_expected) {
  if (!paranoid_checks_enabled()) return false;
  std::vector<std::string> names{"edge-range", "no-self-loops",
                                 "no-parallel-edges", "connectivity",
                                 "placement-bijection"};
  if (!churn_expected) names.emplace_back("degree-conservation");
  // The hook owns its checker and baseline; both live as long as the
  // simulator keeps the callback.
  auto checker = std::make_shared<InvariantChecker>(names);
  auto baseline = std::make_shared<SnapshotGraph>(snapshot_of(net.graph()));
  sim.set_audit(
      [checker, baseline, &net](const Simulator& s) {
        const SnapshotGraph snap = snapshot_of(net.graph());
        LintContext ctx;
        ctx.graph = &snap;
        ctx.baseline = baseline.get();
        ctx.placement = &net.placement();
        const LintReport report = checker->run(ctx);
        if (!report.passed()) {
          std::fprintf(stderr,
                       "propsim: paranoid audit failed at t=%.6f after "
                       "%llu events:\n%s",
                       s.now(),
                       static_cast<unsigned long long>(s.executed_events()),
                       report.to_string().c_str());
          std::abort();
        }
      },
      every_n_events);
  return true;
}

}  // namespace propsim
