#include "analysis/invariant_checker.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "common/check.h"
#include "core/prop_engine.h"
#include "faults/fault_plan.h"

namespace propsim {

std::size_t LintReport::error_count() const {
  std::size_t n = 0;
  for (const LintFinding& f : findings) {
    if (f.severity == LintSeverity::kError) ++n;
  }
  return n;
}

std::size_t LintReport::warning_count() const {
  return findings.size() - error_count();
}

std::string LintReport::to_string() const {
  std::string out;
  for (const LintFinding& f : findings) {
    out += f.severity == LintSeverity::kError ? "error" : "warning";
    out += " [" + f.rule + "] " + f.message + "\n";
  }
  return out;
}

InvariantChecker::InvariantChecker() {
  register_builtin_lint_rules();
  for (const auto& rule : LintRuleRegistry::instance().rules()) {
    rules_.push_back(rule.get());
  }
}

InvariantChecker::InvariantChecker(
    const std::vector<std::string>& rule_names) {
  register_builtin_lint_rules();
  for (const std::string& name : rule_names) {
    const LintRule* rule = LintRuleRegistry::instance().find(name);
    PROPSIM_CHECK(rule != nullptr && "unknown lint rule name");
    rules_.push_back(rule);
  }
}

LintReport InvariantChecker::run(const LintContext& ctx) const {
  LintReport report;
  for (const LintRule* rule : rules_) {
    if (!rule->applicable(ctx)) {
      ++report.rules_skipped;
      continue;
    }
    ++report.rules_run;
    rule->check(ctx, report.findings);
  }
  return report;
}

bool paranoid_checks_enabled() {
#ifdef PROPSIM_PARANOID
  return true;
#else
  return false;
#endif
}

NegotiationLockView negotiation_lock_view(const PropEngine& prop,
                                          const LogicalGraph& graph) {
  NegotiationLockView view;
  const std::size_t n =
      std::max<std::size_t>(prop.tracked_slots(), graph.slot_count());
  view.peer.resize(n, kInvalidSlot);
  view.active.resize(n, false);
  view.has_pending.resize(n, false);
  for (SlotId s = 0; s < n; ++s) {
    view.peer[s] = prop.negotiation_peer(s);
    view.active[s] = s < graph.slot_count() && graph.is_active(s);
    view.has_pending[s] = prop.has_pending_event(s);
  }
  return view;
}

namespace {

/// Partition-closure baseline, re-anchored whenever the set of open
/// windows changes: PROP freely moves hosts across a future cut before
/// its window opens, so t=0 state is not the right reference.
struct PartitionAuditState {
  std::vector<std::uint32_t> live;
  SnapshotGraph baseline_graph;
  std::vector<std::uint32_t> baseline_slot_domain;
};

}  // namespace

bool install_paranoid_audit(Scheduler& sim, const OverlayNetwork& net,
                            std::uint64_t every_n_events,
                            bool churn_expected, ParanoidAuditHooks hooks) {
  if (!paranoid_checks_enabled()) return false;
  std::vector<std::string> names{"edge-range", "no-self-loops",
                                 "no-parallel-edges", "connectivity",
                                 "placement-bijection"};
  if (!churn_expected) names.emplace_back("degree-conservation");
  // Joins and crash-stitching add edges without consulting the fault
  // injector, so the closure argument only holds for stable membership.
  const bool audit_partitions = hooks.faults != nullptr && !churn_expected;
  if (audit_partitions) names.emplace_back("partition-closure");
  if (hooks.prop != nullptr) names.emplace_back("negotiation-locks");
  // The hook owns its checker and baselines; all live as long as the
  // simulator keeps the callback.
  auto checker = std::make_shared<InvariantChecker>(names);
  auto baseline = std::make_shared<SnapshotGraph>(snapshot_of(net.graph()));
  auto pstate = std::make_shared<PartitionAuditState>();
  sim.set_audit(
      [checker, baseline, pstate, &net, hooks,
       audit_partitions](const Scheduler& s) {
        const SnapshotGraph snap = snapshot_of(net.graph());
        LintContext ctx;
        ctx.graph = &snap;
        ctx.baseline = baseline.get();
        ctx.placement = &net.placement();
        PartitionView pview;
        if (audit_partitions) {
          pview.live_domains = hooks.faults->live_partitions();
          if (!pview.live_domains.empty()) {
            pview.slot_domain = slot_domains_of(
                net.placement(), hooks.faults->host_domains());
            if (pview.live_domains != pstate->live) {
              // A window just opened (or the set changed): anchor the
              // closure baseline at the first audit inside it.
              pstate->baseline_graph = snap;
              pstate->baseline_slot_domain = pview.slot_domain;
            }
            pview.baseline_slot_domain = pstate->baseline_slot_domain;
            pview.baseline_graph = &pstate->baseline_graph;
            ctx.partition = &pview;
          }
          pstate->live = pview.live_domains;
        }
        NegotiationLockView locks;
        if (hooks.prop != nullptr) {
          locks = negotiation_lock_view(*hooks.prop, net.graph());
          ctx.locks = &locks;
        }
        const LintReport report = checker->run(ctx);
        if (!report.passed()) {
          std::fprintf(stderr,
                       "propsim: paranoid audit failed at t=%.6f after "
                       "%llu events:\n%s",
                       s.now(),
                       static_cast<unsigned long long>(s.executed_events()),
                       report.to_string().c_str());
          std::abort();
        }
      },
      every_n_events);
  return true;
}

}  // namespace propsim
