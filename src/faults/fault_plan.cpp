#include "faults/fault_plan.h"

#include <algorithm>

namespace propsim {

FaultInjector::FaultInjector(Scheduler& sim, const FaultParams& params,
                             std::uint64_t seed)
    : sim_(sim), params_(params), rng_(seed) {
  PROPSIM_CHECK(params_.message_loss >= 0.0 && params_.message_loss < 1.0);
  PROPSIM_CHECK(params_.latency_jitter >= 0.0 &&
                params_.latency_jitter < 1.0);
  PROPSIM_CHECK(params_.crash_per_negotiation >= 0.0 &&
                params_.crash_per_negotiation < 1.0);
  PROPSIM_CHECK(params_.rto_factor > 0.0);
  for (const PartitionWindow& w : params_.partitions) {
    PROPSIM_CHECK(w.end_s > w.start_s);
    PROPSIM_CHECK(w.stub_domain != kPartitionDomainAuto &&
                  "resolve auto partition domains before construction");
  }
  for (const StormWindow& w : params_.storms) {
    PROPSIM_CHECK(w.start_s >= 0.0);
    PROPSIM_CHECK(w.window_s > 0.0);
    PROPSIM_CHECK(w.stub_domain != kPartitionDomainAuto &&
                  "resolve auto storm domains before construction");
  }
  PROPSIM_CHECK(params_.loss_burst_len == 0 || params_.message_loss > 0.0);
}

void FaultInjector::start() {
  for (const PartitionWindow& w : params_.partitions) {
    sim_.schedule_at(w.start_s, [this, domain = w.stub_domain] {
      if (trace_ != nullptr) {
        trace_->emit(obs::TraceEventKind::kPartitionStart, domain);
      }
    });
    sim_.schedule_at(w.end_s, [this, domain = w.stub_domain] {
      if (trace_ != nullptr) {
        trace_->emit(obs::TraceEventKind::kPartitionEnd, domain);
      }
    });
  }
  for (const StormWindow& w : params_.storms) {
    sim_.schedule_at(
        w.start_s,
        [this, domain = w.stub_domain, window = w.window_s] {
          // Victims are enumerated at fire time — PROP-G may have moved
          // hosts since assembly — and fail at evenly spaced offsets, so
          // storms consume no RNG and leave every other stream intact.
          std::vector<SlotId> victims;
          if (storm_enumerator_ && failure_executor_ != nullptr) {
            victims = storm_enumerator_(domain);
          }
          if (trace_ != nullptr) {
            trace_->emit(obs::TraceEventKind::kStormStart, domain, 0, 0.0,
                         victims.size());
          }
          const double spacing =
              window / static_cast<double>(victims.size() + 1);
          for (std::size_t i = 0; i < victims.size(); ++i) {
            const SlotId victim = victims[i];
            const double offset = spacing * static_cast<double>(i + 1);
            // Global despite the shard hint: the failure executor tears
            // down overlay links that cross shards and emits traces.
            sim_.schedule_in(offset, sim_.shard_of(victim),
                             Locality::kGlobal, [this, victim] {
              if (failure_executor_ == nullptr) return;
              if (!failure_executor_->fail_slot(victim)) return;
              ++stats_.storm_failures;
              if (trace_ != nullptr) {
                trace_->emit(obs::TraceEventKind::kFaultCrash, victim,
                             victim, 0.0, 1);
              }
            });
          }
        });
    sim_.schedule_at(w.start_s + w.window_s, [this, domain = w.stub_domain] {
      if (trace_ != nullptr) {
        trace_->emit(obs::TraceEventKind::kStormEnd, domain);
      }
    });
  }
}

std::vector<std::uint32_t> FaultInjector::live_partitions() const {
  std::vector<std::uint32_t> live;
  if (host_domain_.empty()) return live;  // windows can't drop anything
  const double now = sim_.now();
  for (const PartitionWindow& w : params_.partitions) {
    if (now >= w.start_s && now < w.end_s) live.push_back(w.stub_domain);
  }
  std::sort(live.begin(), live.end());
  live.erase(std::unique(live.begin(), live.end()), live.end());
  return live;
}

bool FaultInjector::partitioned(NodeId a, NodeId b) const {
  if (params_.partitions.empty() || host_domain_.empty()) return false;
  if (a >= host_domain_.size() || b >= host_domain_.size()) return false;
  const double now = sim_.now();
  for (const PartitionWindow& w : params_.partitions) {
    if (now < w.start_s || now >= w.end_s) continue;
    const bool a_inside = host_domain_[a] == w.stub_domain;
    const bool b_inside = host_domain_[b] == w.stub_domain;
    if (a_inside != b_inside) return true;  // crosses the cut gateway
  }
  return false;
}

bool FaultInjector::deliver(NodeId from, NodeId to) {
  ++stats_.messages;
  if (partitioned(from, to)) {
    ++stats_.partition_drops;
    if (trace_ != nullptr) {
      trace_->emit(obs::TraceEventKind::kFaultLoss, from, to, 0.0, 2);
    }
    return false;
  }
  if (params_.message_loss > 0.0) {
    bool lost;
    if (params_.loss_burst_len > 0) {
      // Gilbert–Elliott: lose while the chain is bad, then advance it
      // with one draw. p_enter/p_exit are chosen so the stationary bad
      // fraction equals message_loss and the mean bad dwell time equals
      // loss_burst_len messages.
      lost = burst_bad_;
      const double len = static_cast<double>(params_.loss_burst_len);
      if (burst_bad_) {
        burst_bad_ = !rng_.bernoulli(1.0 / len);
      } else {
        burst_bad_ = rng_.bernoulli(params_.message_loss /
                                    ((1.0 - params_.message_loss) * len));
      }
      if (lost) ++stats_.burst_losses;
    } else {
      lost = rng_.bernoulli(params_.message_loss);
    }
    if (lost) {
      ++stats_.losses;
      if (trace_ != nullptr) {
        trace_->emit(obs::TraceEventKind::kFaultLoss, from, to, 0.0, 1);
      }
      return false;
    }
  }
  return true;
}

double FaultInjector::jitter(double delay_s) {
  if (params_.latency_jitter <= 0.0) return delay_s;
  return delay_s * rng_.uniform_double(1.0, 1.0 + params_.latency_jitter);
}

std::optional<SlotId> FaultInjector::maybe_schedule_crash(SlotId u, SlotId v,
                                                          double window_s) {
  if (params_.crash_per_negotiation <= 0.0 || failure_executor_ == nullptr) {
    return std::nullopt;
  }
  if (!rng_.bernoulli(params_.crash_per_negotiation)) return std::nullopt;
  const SlotId victim = rng_.bernoulli(0.5) ? u : v;
  const SlotId other = victim == u ? v : u;
  const double offset =
      rng_.uniform_double(0.0, std::max(window_s, 1e-9));
  ++stats_.crashes_scheduled;
  // Global despite the shard hint: crash execution mutates the overlay
  // graph and the victim's negotiation counterpart on another shard.
  sim_.schedule_in(offset, sim_.shard_of(victim), Locality::kGlobal,
                   [this, victim, other] {
    if (!failure_executor_->fail_slot(victim)) return;
    ++stats_.crashes_executed;
    if (trace_ != nullptr) {
      trace_->emit(obs::TraceEventKind::kFaultCrash, victim, other);
    }
  });
  return victim;
}

}  // namespace propsim
