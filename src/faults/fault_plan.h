// Deterministic, seed-driven fault injection between the overlay and the
// protocol engines.
//
// The paper evaluates PROP under node dynamics but assumes a perfectly
// reliable network; deployed Gnutella-scale systems see heavy message
// loss and abrupt mid-negotiation departures (Ripeanu et al., "Mapping
// the Gnutella Network"). A FaultInjector models three fault classes on
// the shared discrete-event clock:
//
//   (a) per-message Bernoulli loss plus multiplicative latency jitter on
//       probes, walk hops and negotiation round-trips;
//   (b) node crashes at arbitrary points inside an in-flight exchange
//       negotiation (executed through a caller-supplied FailureExecutor,
//       normally the ChurnProcess so survivor repair runs);
//   (c) scheduled stub-domain partitions: every link crossing the
//       domain's single gateway drops for a configured window.
//
// Determinism contract: the injector owns a private Rng stream, so two
// runs with the same seed inject the identical fault schedule, and a run
// with no injector attached is byte-for-byte the fault-free simulation
// (engines only consult the injector through a nullable pointer).
// Probability-zero fault classes never draw from the stream, keeping
// sub-configurations (e.g. loss only) independent of unrelated knobs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "faults/failure_executor.h"
#include "obs/event_bus.h"
#include "overlay/logical_graph.h"
#include "sim/scheduler.h"
#include "topology/graph.h"

namespace propsim {

/// One scheduled stub-domain partition: for t in [start_s, end_s) every
/// message with exactly one endpoint inside the domain is dropped (the
/// domain hangs off the backbone through a single gateway edge, so
/// cutting it isolates the whole domain — see topology/transit_stub.h).
struct PartitionWindow {
  std::uint32_t stub_domain = 0;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Sentinel for PartitionWindow::stub_domain: resolve to the stub domain
/// hosting the most overlay nodes at run assembly (config value "auto").
inline constexpr std::uint32_t kPartitionDomainAuto =
    static_cast<std::uint32_t>(-1);

/// One correlated-failure storm: every overlay host living in the stub
/// domain crashes at an evenly spaced instant inside
/// [start_s, start_s + window_s), routed through the FailureExecutor so
/// churn repair runs for each victim. Geography-correlated failures
/// (Asaduzzaman & Bochmann, PAPERS.md) arrive by region, not i.i.d.
struct StormWindow {
  std::uint32_t stub_domain = 0;  // kPartitionDomainAuto until resolved
  double start_s = 0.0;
  double window_s = 0.0;
};

struct FaultParams {
  /// Per-message loss probability in [0, 1).
  double message_loss = 0.0;
  /// Multiplicative latency jitter amplitude in [0, 1): each delayed
  /// negotiation is stretched by a uniform factor in [1, 1 + jitter].
  double latency_jitter = 0.0;
  /// Probability that a prepared negotiation crashes one endpoint before
  /// its commit fires.
  double crash_per_negotiation = 0.0;
  /// Prepare-leg retransmissions before the initiator gives up.
  std::size_t max_negotiation_retries = 2;
  /// Retransmission timeout as a multiple of the negotiation delay.
  double rto_factor = 2.0;
  std::vector<PartitionWindow> partitions;
  std::vector<StormWindow> storms;

  /// Mean burst length (messages) of the Gilbert–Elliott two-state loss
  /// chain. 0 keeps the classic per-message Bernoulli model; >= 1
  /// replaces it with bursts whose stationary loss rate still equals
  /// message_loss (which must then be > 0).
  std::size_t loss_burst_len = 0;

  /// True when any fault class can fire. Engines attach an injector only
  /// then, so an all-zero FaultParams is bit-identical to no faults.
  bool active() const {
    return message_loss > 0.0 || latency_jitter > 0.0 ||
           crash_per_negotiation > 0.0 || !partitions.empty() ||
           !storms.empty();
  }
};

class FaultInjector {
 public:
  struct Stats {
    std::uint64_t messages = 0;         // deliver() decisions taken
    std::uint64_t losses = 0;           // random Bernoulli drops
    std::uint64_t partition_drops = 0;  // drops across a cut gateway
    std::uint64_t crashes_scheduled = 0;
    std::uint64_t crashes_executed = 0;
    std::uint64_t storm_failures = 0;  // crashes executed by storms
    std::uint64_t burst_losses = 0;    // losses while the GE chain was bad
  };

  /// Keeps a reference to `sim`; it must outlive the injector.
  FaultInjector(Scheduler& sim, const FaultParams& params,
                std::uint64_t seed);

  const FaultParams& params() const { return params_; }
  const Stats& stats() const { return stats_; }

  /// Observability hook (not owned, may be null).
  void set_trace(obs::EventBus* bus) { trace_ = bus; }

  /// Host -> stub-domain map for partition checks; entries for backbone
  /// (transit) hosts are kNoDomain. Required before a partition window
  /// can drop anything.
  static constexpr std::uint32_t kNoDomain = static_cast<std::uint32_t>(-1);
  void set_host_domains(std::vector<std::uint32_t> host_domain) {
    host_domain_ = std::move(host_domain);
  }
  /// The map set above; empty until set_host_domains. Audit hook.
  const std::vector<std::uint32_t>& host_domains() const {
    return host_domain_;
  }

  /// Sorted, deduplicated stub domains whose partition window is open at
  /// the simulator's current time (pure lookup, no RNG). Audit hook.
  std::vector<std::uint32_t> live_partitions() const;

  /// Executes injected crashes (not owned, must outlive the injector);
  /// normally the ChurnProcess, so survivor repair runs. Nothing
  /// crash-related fires until one is installed.
  void set_failure_executor(FailureExecutor* executor) {
    failure_executor_ = executor;
  }

  /// Enumerates the overlay slots whose hosts live in a stub domain, at
  /// the moment a storm fires (PROP-G moves hosts between slots, so the
  /// victim set cannot be precomputed). The injector has no overlay
  /// access by design; run assembly installs this. Storms are inert
  /// without it.
  using StormEnumerator =
      std::function<std::vector<SlotId>(std::uint32_t stub_domain)>;
  void set_storm_enumerator(StormEnumerator enumerate) {
    storm_enumerator_ = std::move(enumerate);
  }

  /// Emits partition open/heal trace events at their window boundaries
  /// and arms storm windows: at each storm start the enumerator runs and
  /// every victim is scheduled to fail at an evenly spaced offset inside
  /// the window — no RNG draws, so storms never perturb the loss/crash
  /// streams. Partition *checks* are pure time lookups — for them this
  /// only exists so the trace stream marks the windows.
  void start();

  /// True when a—b crosses a cut gateway right now (pure, no RNG).
  bool partitioned(NodeId a, NodeId b) const;

  /// One message send a -> b: false when the message is lost, either to
  /// an open partition window or to random loss. Partition drops are
  /// deterministic and checked first; random loss draws from the
  /// injector stream only when message_loss > 0 (exactly one draw per
  /// message in both the Bernoulli and the Gilbert–Elliott model).
  bool deliver(NodeId from, NodeId to);

  /// Stretches a negotiation delay by the jitter factor (identity, no
  /// RNG draw, when latency_jitter == 0).
  double jitter(double delay_s);

  /// Rolls the crash dice for a prepared negotiation between u and v;
  /// when it comes up, schedules one endpoint (picked uniformly) to
  /// crash through the executor at a uniform offset inside `window_s`.
  /// Returns the victim, or nullopt when no crash was injected.
  std::optional<SlotId> maybe_schedule_crash(SlotId u, SlotId v,
                                             double window_s);

 private:
  Scheduler& sim_;
  FaultParams params_;
  Rng rng_;
  obs::EventBus* trace_ = nullptr;
  std::vector<std::uint32_t> host_domain_;
  FailureExecutor* failure_executor_ = nullptr;
  StormEnumerator storm_enumerator_;
  bool burst_bad_ = false;  // Gilbert–Elliott chain state
  Stats stats_;
};

}  // namespace propsim
