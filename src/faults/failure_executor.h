// Narrow seam between fault injection and failure execution.
//
// The fault injector decides *when* a node dies; actually taking it down
// (deactivating the slot, running node_left, survivor repair, component
// stitching) is churn-path work. FailureExecutor is the one-method
// interface between the two, so ChurnProcess no longer has to expose
// `fail_slot` publicly for crash wiring — it implements the interface
// privately and hands the injector a `FailureExecutor*`.
#pragma once

#include <functional>
#include <utility>

#include "overlay/logical_graph.h"

namespace propsim {

class FailureExecutor {
 public:
  virtual ~FailureExecutor() = default;

  /// Takes `victim` down through the full failure path; returns true
  /// when the node actually went down (false e.g. when a population
  /// floor refused it).
  virtual bool fail_slot(SlotId victim) = 0;
};

/// Callable adapter for tests and ad-hoc wiring.
class FnFailureExecutor final : public FailureExecutor {
 public:
  using Fn = std::function<bool(SlotId)>;
  explicit FnFailureExecutor(Fn fn) : fn_(std::move(fn)) {}
  bool fail_slot(SlotId victim) override { return fn_(victim); }

 private:
  Fn fn_;
};

}  // namespace propsim
