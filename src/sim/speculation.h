// Speculation support for ShardedScheduler: deferred-op recording.
//
// During a speculative window each worker thread executes the
// shard-local prefix of its shard's drained batch (every event strictly
// before the global cutoff G = the earliest non-local event anywhere).
// Callbacks run for real — application state mutates — but every call
// back into the scheduler (schedule, cancel) is *deferred*: recorded
// into the shard's SpecLog instead of touching shared structures. The
// merge thread then replays the logs in exact global (time, id) order,
// consuming the EventId stream precisely as SerialScheduler would have,
// which is what keeps results byte-identical by construction.
//
// Ids handed to speculative callbacks are provisional (top bit set,
// shard + sequence packed below); they are only valid inside the
// callback that received them. The real id is assigned when the
// deferred schedule op commits at its creator's merge slot.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/scheduler.h"

namespace propsim::sim {

/// Provisional EventId encoding. Real ids are assigned sequentially
/// from 1 and can never reach the top bit within a run.
constexpr EventId kProvisionalBit = 1ull << 63;
constexpr EventId make_provisional(ShardId shard, std::uint32_t seq) {
  return kProvisionalBit | (static_cast<EventId>(shard) << 32) | seq;
}
constexpr bool is_provisional(EventId id) {
  return (id & kProvisionalBit) != 0;
}
constexpr ShardId provisional_shard(EventId id) {
  return static_cast<ShardId>((id >> 32) & 0x7FFFFFFFu);
}
constexpr std::uint32_t provisional_seq(EventId id) {
  return static_cast<std::uint32_t>(id);
}

/// One deferred scheduler call made by a speculative callback.
struct SpecOp {
  enum class Kind : std::uint8_t {
    kSchedule,         // schedule_at by a speculative callback
    kCancel,           // cancel of a non-speculated event (replayed live)
    kCancelExtracted,  // cancel of a not-yet-run extracted prefix event
  };
  Kind kind = Kind::kSchedule;
  // kSchedule fields. Speculative callbacks may only schedule same-shard
  // kShardLocal events (enforced at record time), so no shard/locality
  // needs to be carried: the destination is the recording shard.
  double when = 0.0;
  std::uint32_t seq = 0;           // provisional sequence number
  std::function<void()> fn;        // empty once executed/cancelled locally
  bool executed_locally = false;   // ran inside the same speculative pass
  bool cancelled_locally = false;  // cancelled before running, same pass
  // kCancel / kCancelExtracted fields.
  EventId target = kInvalidEvent;
  bool expected = false;  // liveness answer given to the callback; the
                          // commit replay check-fails on divergence
};

/// One event a worker executed speculatively: its merge key plus the
/// contiguous range of ops its callback deferred.
struct SpecLogEntry {
  double time = 0.0;
  EventId id = kInvalidEvent;  // real id, or provisional for spawned events
  std::uint32_t first_op = 0;  // ops[first_op, first_op + op_count)
  std::uint32_t op_count = 0;
};

/// Per-shard speculation log: the exact callback sequence one worker
/// executed plus every scheduler op those callbacks deferred. Owned
/// exclusively by its worker during the speculative pass, then replayed
/// serially by the merge thread in global (time, id) order.
struct SpecLog {
  std::vector<SpecLogEntry> entries;
  std::vector<SpecOp> ops;
  std::vector<std::uint32_t> seq_to_op;  // spawn seq -> index into ops
  std::vector<EventId> seq_to_real;      // spawn seq -> committed real id
  std::size_t cursor = 0;                // merge-replay progress

  void reset() {
    entries.clear();
    ops.clear();
    seq_to_op.clear();
    seq_to_real.clear();
    cursor = 0;
  }
};

/// Thread-local marker that the current thread is executing speculative
/// callbacks: which scheduler owns the pass, which shard this worker
/// drives, and the executing event's own time (what now() answers).
struct SpecContext {
  const void* owner = nullptr;  // the ShardedScheduler running the pass
  ShardId shard = kNoShard;
  double now = 0.0;
};

/// Current thread's speculative context (null on the merge thread and
/// outside speculative passes).
SpecContext* spec_context();
void set_spec_context(SpecContext* ctx);

}  // namespace propsim::sim
