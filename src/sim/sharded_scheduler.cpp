#include "sim/sharded_scheduler.h"

#include <algorithm>
#include <thread>

namespace propsim::sim {

namespace {
/// Below this many pending inbox entries the parallel fan-out costs more
/// than the heap pushes; the threshold compares deterministic counts, so
/// the serial/parallel choice is identical on every host.
constexpr std::size_t kParallelIntegrateMin = 1024;
}  // namespace

ShardedScheduler::ShardedScheduler(std::size_t shards, double window_s,
                                   bool speculative)
    : window_s_(window_s) {
  PROPSIM_CHECK(shards >= 1 && shards <= kMaxShards);
  PROPSIM_CHECK(window_s > 0.0);
  shards_.resize(shards);
  // Speculation needs peers to overlap with; at one shard the merge
  // thread is the only executor and the pass would be pure overhead.
  speculative_ = speculative && shards > 1;
  if (shards > 1) {
    const std::size_t hw = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
    pool_ = std::make_unique<ThreadPool>(std::min(shards, hw));
  }
}

double ShardedScheduler::now() const {
  // A speculative worker observes its executing event's own time, which
  // is what the serial clock would read when that callback runs.
  if (const SpecContext* ctx = spec_context();
      ctx != nullptr && ctx->owner == this) {
    return ctx->now;
  }
  return now_;
}

void ShardedScheduler::enqueue(const Entry& entry, ShardId shard) {
  const ShardId dst = resolve(shard, entry.id);
  if (in_window_ && entry.time <= window_end_) {
    // The merged execution list for the open window is already fixed;
    // the live heap interleaves this event at its exact (time, id) slot.
    live_.push(LiveEntry{entry.time, entry.id, dst, entry.local});
    ++stats_.live_reroutes;
    return;
  }
  if (in_window_ && executing_shard_ != kNoShard && dst != executing_shard_) {
    ++stats_.handoffs;
  }
  // All heap ordering work is deferred to the next integration, which
  // runs on the pool: the merge thread only appends here.
  shards_[dst].inbox.push_back(entry);
}

void ShardedScheduler::integrate() {
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.inbox.size();
  if (total == 0) return;
  const auto integrate_one = [this](std::size_t s) {
    Shard& shard = shards_[s];
    for (const Entry& entry : shard.inbox) shard.heap.push(entry);
    shard.inbox.clear();
  };
  if (pool_ && total >= kParallelIntegrateMin) {
    pool_->parallel_for(shards_.size(), integrate_one);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) integrate_one(s);
  }
}

bool ShardedScheduler::peek_shard(Shard& shard, Entry& out) {
  while (!shard.heap.empty()) {
    const Entry top = shard.heap.top();
    if (live(top.id)) {
      out = top;
      return true;
    }
    shard.heap.pop();  // cancelled tombstone
  }
  return false;
}

bool ShardedScheduler::earliest(Entry& out, std::size_t& shard_index) {
  bool found = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Entry candidate;
    if (!peek_shard(shards_[s], candidate)) continue;
    if (!found || out > candidate) {
      out = candidate;
      shard_index = s;
      found = true;
    }
  }
  return found;
}

void ShardedScheduler::drain(double limit) {
  const auto drain_one = [this, limit](std::size_t s) {
    Shard& shard = shards_[s];
    shard.batch.clear();
    shard.cursor = 0;
    while (!shard.heap.empty()) {
      const Entry top = shard.heap.top();
      if (top.time > limit) break;
      shard.heap.pop();
      // `live` is a read-only tombstone lookup; nothing mutates the
      // callback table while the drain fan-out is in flight.
      if (live(top.id)) shard.batch.push_back(top);
    }
  };
  if (pool_) {
    pool_->parallel_for(shards_.size(), drain_one);
  } else {
    drain_one(0);
  }
  for (const Shard& shard : shards_) stats_.drained += shard.batch.size();
}

void ShardedScheduler::speculate_window() {
  const std::size_t n = shards_.size();
  // Global cutoff G: earliest (time, id) over all non-shard-local
  // drained events. Everything strictly before G is shard-local by
  // construction, and no speculative callback can introduce a new
  // non-local event (the contract restricts spawns to same-shard local),
  // so G is exact, not an estimate.
  spec_has_g_ = false;
  for (std::size_t s = 0; s < n; ++s) {
    for (const Entry& entry : shards_[s].batch) {
      if (entry.local) continue;
      if (!spec_has_g_ || spec_g_ > entry) {
        spec_g_ = entry;
        spec_has_g_ = true;
      }
      break;  // batch is sorted: the first non-local entry is the minimum
    }
  }
  std::size_t total_prefix = 0;
  for (std::size_t s = 0; s < n; ++s) {
    Shard& shard = shards_[s];
    std::size_t p = 0;
    while (p < shard.batch.size() &&
           (!spec_has_g_ || spec_g_ > shard.batch[p])) {
      ++p;
    }
    shard.prefix = p;
    total_prefix += p;
  }
  if (total_prefix == 0) return;
  ++stats_.spec_windows;
  // Extract prefix callbacks up front (serially) so workers never touch
  // the shared callback table; the sorted id list arms the tripwire for
  // cross-shard cancels of speculated events.
  extracted_ids_.clear();
  for (std::size_t s = 0; s < n; ++s) {
    Shard& shard = shards_[s];
    shard.prefix_fns.clear();
    shard.prefix_skip.assign(shard.prefix, 0);
    for (std::size_t i = 0; i < shard.prefix; ++i) {
      shard.prefix_fns.push_back(extract_callback(shard.batch[i].id));
      extracted_ids_.push_back(shard.batch[i].id);
    }
  }
  std::sort(extracted_ids_.begin(), extracted_ids_.end());
  pool_->parallel_for(n, [this](std::size_t s) { run_speculative(s); });
  for (std::size_t s = 0; s < n; ++s) {
    SpecLog& log = shards_[s].log;
    log.seq_to_real.assign(log.seq_to_op.size(), kInvalidEvent);
    stats_.speculated += log.entries.size();
  }
}

void ShardedScheduler::run_speculative(std::size_t s) {
  Shard& shard = shards_[s];
  if (shard.prefix == 0) return;
  SpecContext ctx;
  ctx.owner = this;
  ctx.shard = static_cast<ShardId>(s);
  set_spec_context(&ctx);
  const auto spawn_greater = std::greater<std::pair<double, std::uint32_t>>();
  for (;;) {
    while (shard.spec_bi < shard.prefix && shard.prefix_skip[shard.spec_bi]) {
      ++shard.spec_bi;  // cancelled by an earlier event in this pass
    }
    while (!shard.spawn_heap.empty()) {
      const std::uint32_t seq = shard.spawn_heap.front().second;
      if (!shard.log.ops[shard.log.seq_to_op[seq]].cancelled_locally) break;
      std::pop_heap(shard.spawn_heap.begin(), shard.spawn_heap.end(),
                    spawn_greater);
      shard.spawn_heap.pop_back();
    }
    const bool have_batch = shard.spec_bi < shard.prefix;
    // A spawned event is runnable only inside the window and strictly
    // before the cutoff time: at the cutoff time its (future) real id is
    // larger than the cutoff event's, so it sorts after it.
    const bool have_spawn =
        !shard.spawn_heap.empty() &&
        shard.spawn_heap.front().first <= window_end_ &&
        (!spec_has_g_ || shard.spawn_heap.front().first < spec_g_.time);
    if (!have_batch && !have_spawn) break;
    // Equal times break toward the batch entry: its id predates the
    // window, every spawned id is assigned later.
    const bool take_batch =
        have_batch && (!have_spawn ||
                       shard.batch[shard.spec_bi].time <=
                           shard.spawn_heap.front().first);
    if (take_batch) {
      const Entry& entry = shard.batch[shard.spec_bi];
      ctx.now = entry.time;
      shard.log.entries.push_back(
          SpecLogEntry{entry.time, entry.id,
                       static_cast<std::uint32_t>(shard.log.ops.size()), 0});
      Callback fn = std::move(shard.prefix_fns[shard.spec_bi]);
      ++shard.spec_bi;
      fn();
    } else {
      const auto [time, seq] = shard.spawn_heap.front();
      std::pop_heap(shard.spawn_heap.begin(), shard.spawn_heap.end(),
                    spawn_greater);
      shard.spawn_heap.pop_back();
      SpecOp& op = shard.log.ops[shard.log.seq_to_op[seq]];
      Callback fn = std::move(op.fn);
      op.executed_locally = true;
      ctx.now = time;
      shard.log.entries.push_back(SpecLogEntry{
          time, make_provisional(static_cast<ShardId>(s), seq),
          static_cast<std::uint32_t>(shard.log.ops.size()), 0});
      fn();
    }
  }
  set_spec_context(nullptr);
}

EventId ShardedScheduler::speculative_schedule(double when, ShardId shard_hint,
                                               Locality locality,
                                               Callback& fn) {
  SpecContext* ctx = spec_context();
  if (ctx == nullptr || ctx->owner != this) return kInvalidEvent;
  // Locality contract: a speculative callback may only schedule
  // same-shard shard-local events. Anything else could have to execute
  // between events other shards already ran, which is unrecoverable.
  PROPSIM_CHECK(locality == Locality::kShardLocal);
  PROPSIM_CHECK(shard_hint == ctx->shard);
  PROPSIM_CHECK(when >= ctx->now);
  Shard& shard = shards_[ctx->shard];
  SpecLog& log = shard.log;
  PROPSIM_CHECK(!log.entries.empty());
  const auto seq = static_cast<std::uint32_t>(log.seq_to_op.size());
  log.seq_to_op.push_back(static_cast<std::uint32_t>(log.ops.size()));
  SpecOp op;
  op.kind = SpecOp::Kind::kSchedule;
  op.when = when;
  op.seq = seq;
  op.fn = std::move(fn);
  log.ops.push_back(std::move(op));
  ++log.entries.back().op_count;
  // Candidate for local execution; the worker loop decides against the
  // cutoff at pop time. Beyond-window spawns commit at the creator's
  // merge slot and route through the normal inbox/live machinery.
  if (when <= window_end_) {
    shard.spawn_heap.emplace_back(when, seq);
    std::push_heap(shard.spawn_heap.begin(), shard.spawn_heap.end(),
                   std::greater<std::pair<double, std::uint32_t>>());
  }
  return make_provisional(ctx->shard, seq);
}

int ShardedScheduler::speculative_cancel(EventId id) {
  SpecContext* ctx = spec_context();
  if (ctx == nullptr || ctx->owner != this) {
    // Provisional ids are only valid inside the callback that received
    // them; one surviving to a non-speculative context was retained in
    // violation of the locality contract.
    PROPSIM_CHECK(!is_provisional(id));
    return -1;
  }
  if (id == kInvalidEvent) return 0;
  Shard& shard = shards_[ctx->shard];
  SpecLog& log = shard.log;
  if (is_provisional(id)) {
    PROPSIM_CHECK(provisional_shard(id) == ctx->shard);
    const std::uint32_t seq = provisional_seq(id);
    PROPSIM_CHECK(seq < log.seq_to_op.size());
    SpecOp& op = log.ops[log.seq_to_op[seq]];
    if (op.executed_locally || op.cancelled_locally) return 0;
    op.cancelled_locally = true;
    op.fn = nullptr;
    return 1;  // its spawn_heap entry is skipped lazily at pop
  }
  // Real id. Own-shard events already executed this pass answer false,
  // exactly as the serial loop would (they ran before this slot).
  for (std::size_t i = 0; i < shard.spec_bi; ++i) {
    if (shard.batch[i].id == id) return 0;
  }
  // Not yet executed but in this shard's own prefix: drop the extracted
  // callback and account the cancel at this event's merge slot.
  for (std::size_t i = shard.spec_bi; i < shard.prefix; ++i) {
    if (shard.batch[i].id != id) continue;
    if (shard.prefix_skip[i] != 0) return 0;  // cancelled earlier this pass
    shard.prefix_skip[i] = 1;
    shard.prefix_fns[i] = nullptr;
    SpecOp op;
    op.kind = SpecOp::Kind::kCancelExtracted;
    op.target = id;
    op.expected = true;
    log.ops.push_back(std::move(op));
    ++log.entries.back().op_count;
    return 1;
  }
  // Cancelling another shard's speculated event means the target's id
  // crossed shards: a locality-contract violation, unrecoverable because
  // the target may already have run.
  PROPSIM_CHECK(!std::binary_search(extracted_ids_.begin(),
                                    extracted_ids_.end(), id));
  // Repeated cancel of the same target this pass: the first deferred op
  // will consume it, so the serial answer to this call is false.
  for (const EventId prior : shard.deferred_cancels) {
    if (prior == id) return 0;
  }
  // A non-speculated target (own-shard pending event beyond the cutoff
  // or in a future window). Nothing mutates the callback table during
  // the pass, so its liveness now equals its liveness at this event's
  // merge slot; the commit replay re-checks that equivalence.
  const bool expected = live(id);
  SpecOp op;
  op.kind = SpecOp::Kind::kCancel;
  op.target = id;
  op.expected = expected;
  log.ops.push_back(std::move(op));
  ++log.entries.back().op_count;
  if (expected) shard.deferred_cancels.push_back(id);
  return expected ? 1 : 0;
}

void ShardedScheduler::commit_entry(std::size_t s,
                                    const SpecLogEntry& log_entry) {
  Shard& shard = shards_[s];
  SpecLog& log = shard.log;
  executing_shard_ = static_cast<ShardId>(s);
  advance_clock(log_entry.time);
  count_executed(1);
  for (std::uint32_t i = log_entry.first_op;
       i < log_entry.first_op + log_entry.op_count; ++i) {
    SpecOp& op = log.ops[i];
    switch (op.kind) {
      case SpecOp::Kind::kSchedule: {
        // Consume the id stream exactly where the serial loop would
        // have: at the creator's execution slot, in call order.
        const EventId id = take_next_id();
        log.seq_to_real[op.seq] = id;
        if (op.executed_locally) break;  // commits at its own log slot
        if (op.cancelled_locally) {
          count_cancelled();
          break;
        }
        register_callback(id, std::move(op.fn));
        enqueue(Entry{op.when, id, true}, static_cast<ShardId>(s));
        break;
      }
      case SpecOp::Kind::kCancelExtracted:
        count_cancelled();
        break;
      case SpecOp::Kind::kCancel: {
        const bool actual = cancel(op.target);
        // A mismatch means the answer given to the speculative callback
        // diverged from serial semantics — only possible when two
        // callbacks raced to cancel a shared event, which the locality
        // contract forbids.
        PROPSIM_CHECK(actual == op.expected);
        break;
      }
    }
  }
}

void ShardedScheduler::execute_window(bool speculative_pass) {
  const std::size_t n = shards_.size();
  std::uint64_t window_replayed = 0;
  for (;;) {
    // Minimum (time, id) across the per-shard speculation logs, batch
    // cursors and the live heap; `n` marks "take from the live heap".
    std::size_t best = n;
    bool best_is_log = false;
    Entry best_entry{0.0, 0};
    ShardId best_shard = kNoShard;
    bool found = false;
    for (std::size_t s = 0; s < n; ++s) {
      Shard& shard = shards_[s];
      Entry candidate;
      bool is_log = false;
      if (shard.log.cursor < shard.log.entries.size()) {
        // Every log entry precedes the cutoff, hence also this shard's
        // remaining batch; its spawned events resolve to real ids when
        // their creator commits, which is always earlier in the log.
        const SpecLogEntry& le = shard.log.entries[shard.log.cursor];
        const EventId rid = is_provisional(le.id)
                                ? shard.log.seq_to_real[provisional_seq(le.id)]
                                : le.id;
        PROPSIM_CHECK(rid != kInvalidEvent);
        candidate = Entry{le.time, rid};
        is_log = true;
      } else {
        while (shard.cursor < shard.batch.size() &&
               !live(shard.batch[shard.cursor].id)) {
          ++shard.cursor;  // cancelled mid-window (or ran speculatively)
        }
        if (shard.cursor >= shard.batch.size()) continue;
        candidate = shard.batch[shard.cursor];
      }
      if (!found || best_entry > candidate) {
        best = s;
        best_entry = candidate;
        best_shard = static_cast<ShardId>(s);
        best_is_log = is_log;
        found = true;
      }
    }
    while (!live_.empty() && !live(live_.top().id)) live_.pop();
    if (!live_.empty()) {
      const LiveEntry& top = live_.top();
      const Entry candidate{top.time, top.id, top.local};
      if (!found || best_entry > candidate) {
        best = n;
        best_entry = candidate;
        best_shard = top.shard;
        best_is_log = false;
        found = true;
      }
    }
    if (!found) break;
    if (best_is_log) {
      Shard& shard = shards_[best];
      commit_entry(best, shard.log.entries[shard.log.cursor]);
      ++shard.log.cursor;
      continue;
    }
    if (best == n) {
      live_.pop();
    } else {
      ++shards_[best].cursor;
    }
    if (speculative_pass && best_entry.local) ++window_replayed;
    executing_shard_ = best_shard;
    execute(best_entry);
  }
  executing_shard_ = kNoShard;
  if (speculative_pass) {
    stats_.replayed += window_replayed;
    if (window_replayed > 0) ++stats_.conflicts;
  }
  for (Shard& shard : shards_) {
    shard.batch.clear();
    shard.cursor = 0;
    shard.prefix = 0;
    shard.spec_bi = 0;
    shard.prefix_fns.clear();
    shard.prefix_skip.clear();
    shard.spawn_heap.clear();
    shard.deferred_cancels.clear();
    shard.log.reset();
  }
}

void ShardedScheduler::run_until(double t_end) {
  PROPSIM_CHECK(spec_context() == nullptr);  // not re-entrant from callbacks
  PROPSIM_CHECK(t_end >= now_);
  for (;;) {
    integrate();
    Entry first;
    std::size_t first_shard = 0;
    if (!earliest(first, first_shard) || first.time > t_end) break;
    // Anchor the window at the earliest pending event so idle stretches
    // are skipped in one hop instead of walked window by window.
    const double w_end = std::min(first.time + window_s_, t_end);
    ++stats_.windows;
    drain(w_end);
    in_window_ = true;
    window_end_ = w_end;
    // Speculation stands down while an audit hook is installed: the hook
    // observes global state at exact event boundaries.
    const bool spec = speculative_ && !has_audit();
    if (spec) speculate_window();
    execute_window(spec);
    in_window_ = false;
  }
  now_ = t_end;
}

bool ShardedScheduler::step() {
  PROPSIM_CHECK(spec_context() == nullptr);
  integrate();
  Entry entry;
  std::size_t shard_index = 0;
  if (!earliest(entry, shard_index)) return false;
  shards_[shard_index].heap.pop();
  return execute(entry);
}

}  // namespace propsim::sim
