#include "sim/sharded_scheduler.h"

#include <algorithm>
#include <thread>

namespace propsim::sim {

ShardedScheduler::ShardedScheduler(std::size_t shards, double window_s)
    : window_s_(window_s) {
  PROPSIM_CHECK(shards >= 1 && shards <= kMaxShards);
  PROPSIM_CHECK(window_s > 0.0);
  shards_.resize(shards);
  handoff_.resize(shards * shards);
  if (shards > 1) {
    const std::size_t hw = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
    pool_ = std::make_unique<ThreadPool>(std::min(shards, hw));
  }
}

void ShardedScheduler::enqueue(const Entry& entry, ShardId shard) {
  const ShardId dst = resolve(shard, entry.id);
  if (in_window_ && entry.time <= window_end_) {
    // The merged execution list for the open window is already fixed;
    // the live heap interleaves this event at its exact (time, id) slot.
    live_.push(LiveEntry{entry.time, entry.id, dst});
    ++stats_.live_reroutes;
    return;
  }
  if (in_window_ && executing_shard_ != kNoShard && dst != executing_shard_) {
    handoff_[executing_shard_ * shards_.size() + dst].push_back(entry);
    ++stats_.handoffs;
    return;
  }
  shards_[dst].heap.push(entry);
}

void ShardedScheduler::flush_handoffs() {
  const std::size_t n = shards_.size();
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      std::vector<Entry>& buffer = handoff_[src * n + dst];
      for (const Entry& entry : buffer) shards_[dst].heap.push(entry);
      buffer.clear();
    }
  }
}

bool ShardedScheduler::peek_shard(Shard& shard, Entry& out) {
  while (!shard.heap.empty()) {
    const Entry top = shard.heap.top();
    if (live(top.id)) {
      out = top;
      return true;
    }
    shard.heap.pop();  // cancelled tombstone
  }
  return false;
}

bool ShardedScheduler::earliest(Entry& out, std::size_t& shard_index) {
  bool found = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Entry candidate;
    if (!peek_shard(shards_[s], candidate)) continue;
    if (!found || out > candidate) {
      out = candidate;
      shard_index = s;
      found = true;
    }
  }
  return found;
}

void ShardedScheduler::drain(double limit) {
  const auto drain_one = [this, limit](std::size_t s) {
    Shard& shard = shards_[s];
    shard.batch.clear();
    shard.cursor = 0;
    while (!shard.heap.empty()) {
      const Entry top = shard.heap.top();
      if (top.time > limit) break;
      shard.heap.pop();
      // `live` is a read-only tombstone lookup; nothing mutates the
      // callback table while the drain fan-out is in flight.
      if (live(top.id)) shard.batch.push_back(top);
    }
  };
  if (pool_) {
    pool_->parallel_for(shards_.size(), drain_one);
  } else {
    drain_one(0);
  }
  for (const Shard& shard : shards_) stats_.drained += shard.batch.size();
}

void ShardedScheduler::execute_window() {
  const std::size_t n = shards_.size();
  for (;;) {
    // Minimum (time, id) across the per-shard batch cursors and the live
    // heap; `n` marks "take from the live heap".
    std::size_t best = n;
    Entry best_entry{0.0, 0};
    ShardId best_shard = kNoShard;
    bool found = false;
    for (std::size_t s = 0; s < n; ++s) {
      Shard& shard = shards_[s];
      while (shard.cursor < shard.batch.size() &&
             !live(shard.batch[shard.cursor].id)) {
        ++shard.cursor;  // cancelled mid-window
      }
      if (shard.cursor >= shard.batch.size()) continue;
      const Entry& candidate = shard.batch[shard.cursor];
      if (!found || best_entry > candidate) {
        best = s;
        best_entry = candidate;
        best_shard = static_cast<ShardId>(s);
        found = true;
      }
    }
    while (!live_.empty() && !live(live_.top().id)) live_.pop();
    if (!live_.empty()) {
      const LiveEntry& top = live_.top();
      const Entry candidate{top.time, top.id};
      if (!found || best_entry > candidate) {
        best = n;
        best_entry = candidate;
        best_shard = top.shard;
        found = true;
      }
    }
    if (!found) break;
    if (best == n) {
      live_.pop();
    } else {
      ++shards_[best].cursor;
    }
    executing_shard_ = best_shard;
    execute(best_entry);
  }
  executing_shard_ = kNoShard;
  for (Shard& shard : shards_) {
    shard.batch.clear();
    shard.cursor = 0;
  }
}

void ShardedScheduler::run_until(double t_end) {
  PROPSIM_CHECK(t_end >= now_);
  for (;;) {
    flush_handoffs();
    Entry first;
    std::size_t first_shard = 0;
    if (!earliest(first, first_shard) || first.time > t_end) break;
    // Anchor the window at the earliest pending event so idle stretches
    // are skipped in one hop instead of walked window by window.
    const double w_end = std::min(first.time + window_s_, t_end);
    ++stats_.windows;
    drain(w_end);
    in_window_ = true;
    window_end_ = w_end;
    execute_window();
    in_window_ = false;
  }
  now_ = t_end;
}

bool ShardedScheduler::step() {
  flush_handoffs();
  Entry entry;
  std::size_t shard_index = 0;
  if (!earliest(entry, shard_index)) return false;
  shards_[shard_index].heap.pop();
  return execute(entry);
}

}  // namespace propsim::sim
