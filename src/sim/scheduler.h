// Discrete-event scheduler interface.
//
// Protocol actions (probes, exchanges, churn arrivals) are callbacks
// scheduled on a simulated clock measured in seconds. Events at equal
// times fire in scheduling order (a strict total order keeps runs
// deterministic), and every implementation is required to execute the
// exact same callback sequence: swapping SerialScheduler for
// ShardedScheduler at any shard count must leave `propsim.result`
// byte-identical.
//
// Producers that know which stub domain an event belongs to pass a
// ShardId (usually via `shard_of(slot)`) so a sharded implementation can
// route the event to the owning shard's heap; the serial implementation
// ignores the hint. Events without a natural home (global Poisson
// arrivals, partition traces, samplers) use the unpinned overloads.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace propsim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

/// Shard hint for scheduled events. Shards correspond to groups of stub
/// domains; kNoShard means "no affinity" and lets the implementation
/// pick deterministically.
using ShardId = std::uint32_t;
constexpr ShardId kNoShard = 0xFFFFFFFFu;

namespace sim {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Verification hook: `fn` runs after every `every_n_events` executed
  /// events (and sees the post-event state). One hook at a time; pass a
  /// null fn to uninstall. Used by the paranoid invariant audit
  /// (analysis/invariant_checker.h) and by tests.
  using AuditHook = std::function<void(const Scheduler&)>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  virtual ~Scheduler() = default;

  double now() const { return now_; }
  std::size_t pending_events() const { return callbacks_.size(); }
  std::uint64_t executed_events() const { return executed_; }
  std::uint64_t scheduled_events() const { return scheduled_; }
  std::uint64_t cancelled_events() const { return cancelled_; }

  /// Number of event heaps (1 for the serial implementation). Purely
  /// informational; never affects the executed event sequence.
  virtual std::size_t shard_count() const { return 1; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(double delay, Callback fn) {
    PROPSIM_CHECK(delay >= 0.0);
    return schedule_at(now_ + delay, kNoShard, std::move(fn));
  }
  EventId schedule_in(double delay, ShardId shard, Callback fn) {
    PROPSIM_CHECK(delay >= 0.0);
    return schedule_at(now_ + delay, shard, std::move(fn));
  }

  /// Schedules `fn` at absolute time `when` (>= now).
  EventId schedule_at(double when, Callback fn) {
    return schedule_at(when, kNoShard, std::move(fn));
  }
  EventId schedule_at(double when, ShardId shard, Callback fn);

  /// Cancels a pending event; returns false if it already ran or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Runs events until the queue empties or the clock passes `t_end`;
  /// afterwards now() == max(now, t_end).
  virtual void run_until(double t_end) = 0;

  /// Runs every pending event (the event set must be finite).
  void run_all() {
    while (step()) {
    }
  }

  /// Executes the single earliest event; returns false if none pending.
  virtual bool step() = 0;

  void set_audit(AuditHook fn, std::uint64_t every_n_events) {
    PROPSIM_CHECK(fn == nullptr || every_n_events > 0);
    audit_ = std::move(fn);
    audit_interval_ = every_n_events;
  }

  /// Installs the slot -> shard affinity map (index = overlay slot id).
  /// Producers call `shard_of(slot)` when scheduling slot-owned events;
  /// with no map installed every lookup answers kNoShard, which is
  /// always correct (affinity is an optimization hint, never semantics).
  void set_shard_map(std::vector<ShardId> slot_to_shard) {
    shard_map_ = std::move(slot_to_shard);
  }
  ShardId shard_of(std::uint32_t slot) const {
    if (slot >= shard_map_.size()) return kNoShard;
    return shard_map_[slot];
  }

 protected:
  struct Entry {
    double time;
    EventId id;  // doubles as a tie-breaking sequence number
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  /// Implementation hook: file `entry` (already registered in the
  /// callback table) under `shard` (kNoShard = implementation's choice).
  virtual void enqueue(const Entry& entry, ShardId shard) = 0;

  /// Shared execution path: extracts the callback (returns false for a
  /// cancelled tombstone), advances the clock, runs it, fires the audit
  /// hook. Implementations must call this in exactly the global
  /// (time, id) order — that is the whole determinism contract.
  bool execute(const Entry& entry);

  /// True while `id` has not run and has not been cancelled.
  bool live(EventId id) const { return callbacks_.contains(id); }

  double now_ = 0.0;

 private:
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  AuditHook audit_;
  std::uint64_t audit_interval_ = 0;
  std::vector<ShardId> shard_map_;
  // det-ok(D1): looked up by EventId on pop/cancel only; never iterated
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace sim

using sim::Scheduler;

}  // namespace propsim
