// Discrete-event scheduler interface.
//
// Protocol actions (probes, exchanges, churn arrivals) are callbacks
// scheduled on a simulated clock measured in seconds. Events at equal
// times fire in scheduling order (a strict total order keeps runs
// deterministic), and every implementation is required to execute the
// exact same callback sequence: swapping SerialScheduler for
// ShardedScheduler at any shard count must leave `propsim.result`
// byte-identical.
//
// Producers that know which stub domain an event belongs to pass a
// ShardId (usually via `shard_of(slot)`) so a sharded implementation can
// route the event to the owning shard's heap; the serial implementation
// ignores the hint. Events without a natural home (global Poisson
// arrivals, partition traces, samplers) use the unpinned overloads.
//
// Locality contract. A callback scheduled with Locality::kShardLocal
// promises that its entire effect is confined to state owned by its
// shard plus calls back into this scheduler: no shared-engine RNG
// draws, no trace-bus emissions, no reads or writes of another shard's
// slots, no retention of the returned EventId beyond the callback (ids
// handed out during speculative execution are provisional). A sharded
// implementation may then execute it speculatively, off the merge
// thread, with schedule()/cancel() effects deferred and replayed in
// exact (time, id) order — which is what keeps results byte-identical
// to SerialScheduler. Everything else (the default, kGlobal) always
// executes serially in global order. The annotation is reviewed
// per-site (detlint rule D10 polices the capture discipline); a wrong
// kShardLocal annotation is a correctness bug, not a perf knob.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace propsim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

/// Shard hint for scheduled events. Shards correspond to groups of stub
/// domains; kNoShard means "no affinity" and lets the implementation
/// pick deterministically.
using ShardId = std::uint32_t;
constexpr ShardId kNoShard = 0xFFFFFFFFu;

namespace sim {

/// Per-event locality annotation (see the contract in the file comment).
enum class Locality : std::uint8_t {
  kGlobal,      // may touch anything; always executes serially
  kShardLocal,  // effects confined to the owning shard; speculable
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Verification hook: `fn` runs after every `every_n_events` executed
  /// events (and sees the post-event state). One hook at a time; pass a
  /// null fn to uninstall. Used by the paranoid invariant audit
  /// (analysis/invariant_checker.h) and by tests. While a hook is
  /// installed, implementations must not execute events speculatively
  /// (the hook observes global state at exact event boundaries).
  using AuditHook = std::function<void(const Scheduler&)>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  virtual ~Scheduler() = default;

  /// Simulated clock. Virtual so a speculative implementation can answer
  /// with the executing event's own time off the merge thread.
  virtual double now() const { return now_; }
  std::size_t pending_events() const { return callbacks_.size(); }
  std::uint64_t executed_events() const { return executed_; }
  std::uint64_t scheduled_events() const { return scheduled_; }
  std::uint64_t cancelled_events() const { return cancelled_; }

  /// Number of event heaps (1 for the serial implementation). Purely
  /// informational; never affects the executed event sequence.
  virtual std::size_t shard_count() const { return 1; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(double delay, Callback fn) {
    PROPSIM_CHECK(delay >= 0.0);
    return schedule_at(now() + delay, kNoShard, Locality::kGlobal,
                       std::move(fn));
  }
  EventId schedule_in(double delay, ShardId shard, Callback fn) {
    PROPSIM_CHECK(delay >= 0.0);
    return schedule_at(now() + delay, shard, Locality::kGlobal,
                       std::move(fn));
  }
  EventId schedule_in(double delay, ShardId shard, Locality locality,
                      Callback fn) {
    PROPSIM_CHECK(delay >= 0.0);
    return schedule_at(now() + delay, shard, locality, std::move(fn));
  }

  /// Schedules `fn` at absolute time `when` (>= now).
  EventId schedule_at(double when, Callback fn) {
    return schedule_at(when, kNoShard, Locality::kGlobal, std::move(fn));
  }
  EventId schedule_at(double when, ShardId shard, Callback fn) {
    return schedule_at(when, shard, Locality::kGlobal, std::move(fn));
  }
  EventId schedule_at(double when, ShardId shard, Locality locality,
                      Callback fn);

  /// Cancels a pending event; returns false if it already ran or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Runs events until the queue empties or the clock passes `t_end`;
  /// afterwards now() == max(now, t_end).
  virtual void run_until(double t_end) = 0;

  /// Runs every pending event (the event set must be finite).
  void run_all() {
    while (step()) {
    }
  }

  /// Executes the single earliest event; returns false if none pending.
  virtual bool step() = 0;

  void set_audit(AuditHook fn, std::uint64_t every_n_events) {
    PROPSIM_CHECK(fn == nullptr || every_n_events > 0);
    audit_ = std::move(fn);
    audit_interval_ = every_n_events;
  }

  /// Installs the slot -> shard affinity map (index = overlay slot id).
  /// Producers call `shard_of(slot)` when scheduling slot-owned events;
  /// with no map installed every lookup answers kNoShard, which is
  /// always correct (affinity is an optimization hint, never semantics).
  void set_shard_map(std::vector<ShardId> slot_to_shard) {
    shard_map_ = std::move(slot_to_shard);
  }
  ShardId shard_of(std::uint32_t slot) const {
    if (slot >= shard_map_.size()) return kNoShard;
    return shard_map_[slot];
  }

 protected:
  struct Entry {
    double time;
    EventId id;  // doubles as a tie-breaking sequence number
    bool local = false;  // Locality::kShardLocal at schedule time
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  /// Implementation hook: file `entry` (already registered in the
  /// callback table) under `shard` (kNoShard = implementation's choice).
  virtual void enqueue(const Entry& entry, ShardId shard) = 0;

  /// Speculative intercepts. schedule_at/cancel consult these before
  /// touching any shared structure; a speculative implementation routes
  /// the call to the executing worker's deferred-op recorder and returns
  /// a provisional answer. Defaults (serial semantics): no interception.
  /// speculative_schedule returns kInvalidEvent to decline;
  /// speculative_cancel returns -1 to decline, else 0/1 as the bool.
  virtual EventId speculative_schedule(double /*when*/, ShardId /*shard*/,
                                       Locality /*locality*/,
                                       Callback& /*fn*/) {
    return kInvalidEvent;
  }
  virtual int speculative_cancel(EventId /*id*/) { return -1; }

  /// Shared execution path: extracts the callback (returns false for a
  /// cancelled tombstone), advances the clock, runs it, fires the audit
  /// hook. Implementations must call this in exactly the global
  /// (time, id) order — that is the whole determinism contract.
  bool execute(const Entry& entry);

  /// True while `id` has not run and has not been cancelled.
  bool live(EventId id) const { return callbacks_.contains(id); }

  /// True while an audit hook is installed (speculation must stand down).
  bool has_audit() const { return audit_ != nullptr; }

  /// Commit-time bookkeeping for speculative execution. take_next_id
  /// consumes the id stream exactly as a serial schedule would (so every
  /// later tie-break matches); register_callback files the callback for
  /// an event that has NOT run yet; the extract/count helpers account
  /// for events whose callbacks ran (or were cancelled) off the serial
  /// path. All must be called from the merge thread only.
  EventId take_next_id() {
    ++scheduled_;
    return next_id_++;
  }
  void register_callback(EventId id, Callback fn) {
    callbacks_.emplace(id, std::move(fn));
  }
  /// Removes and returns the callback for a pending event (check-fails
  /// if absent): speculative prefixes extract their callbacks up front
  /// so workers never touch the shared table.
  Callback extract_callback(EventId id) {
    auto node = callbacks_.extract(id);
    PROPSIM_CHECK(!node.empty());
    return std::move(node.mapped());
  }
  void count_executed(std::uint64_t n) { executed_ += n; }
  void count_cancelled() { ++cancelled_; }
  /// Advances the serial clock without executing (used when committing
  /// an already-speculated event at its merge slot).
  void advance_clock(double t) { now_ = t; }

  double now_ = 0.0;

 private:
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  AuditHook audit_;
  std::uint64_t audit_interval_ = 0;
  std::vector<ShardId> shard_map_;
  // det-ok(D1): looked up by EventId on pop/cancel only; never iterated
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace sim

using sim::Locality;
using sim::Scheduler;

}  // namespace propsim
