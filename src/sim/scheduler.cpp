#include "sim/scheduler.h"

namespace propsim::sim {

EventId Scheduler::schedule_at(double when, ShardId shard,
                               Locality locality, Callback fn) {
  PROPSIM_CHECK(fn != nullptr);
  // A speculative implementation intercepts schedules made by callbacks
  // it is currently running off the merge thread: the op is deferred
  // into the worker's recorder and the returned id is provisional. The
  // default implementation never intercepts.
  if (EventId spec = speculative_schedule(when, shard, locality, fn);
      spec != kInvalidEvent) {
    return spec;
  }
  PROPSIM_CHECK(when >= now_);
  const EventId id = take_next_id();
  callbacks_.emplace(id, std::move(fn));
  enqueue(Entry{when, id, locality == Locality::kShardLocal}, shard);
  return id;
}

bool Scheduler::cancel(EventId id) {
  if (int spec = speculative_cancel(id); spec >= 0) return spec != 0;
  // The heap entry stays behind as a tombstone and is skipped on pop.
  if (callbacks_.erase(id) == 0) return false;
  ++cancelled_;
  return true;
}

bool Scheduler::execute(const Entry& entry) {
  auto node = callbacks_.extract(entry.id);
  if (node.empty()) return false;  // cancelled after being drained
  now_ = entry.time;
  ++executed_;
  node.mapped()();
  if (audit_ && executed_ % audit_interval_ == 0) audit_(*this);
  return true;
}

}  // namespace propsim::sim
