#include "sim/scheduler.h"

namespace propsim::sim {

EventId Scheduler::schedule_at(double when, ShardId shard, Callback fn) {
  PROPSIM_CHECK(when >= now_);
  PROPSIM_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  ++scheduled_;
  callbacks_.emplace(id, std::move(fn));
  enqueue(Entry{when, id}, shard);
  return id;
}

bool Scheduler::cancel(EventId id) {
  // The heap entry stays behind as a tombstone and is skipped on pop.
  if (callbacks_.erase(id) == 0) return false;
  ++cancelled_;
  return true;
}

bool Scheduler::execute(const Entry& entry) {
  auto node = callbacks_.extract(entry.id);
  if (node.empty()) return false;  // cancelled after being drained
  now_ = entry.time;
  ++executed_;
  node.mapped()();
  if (audit_ && executed_ % audit_interval_ == 0) audit_(*this);
  return true;
}

}  // namespace propsim::sim
