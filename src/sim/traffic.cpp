#include "sim/traffic.h"

#include <algorithm>

namespace propsim {

void TrafficCounter::reset() {
  std::fill(per_node_.begin(), per_node_.end(), 0);
  std::fill(per_kind_.begin(), per_kind_.end(), 0);
  total_ = 0;
}

}  // namespace propsim
