#include "sim/simulator.h"

namespace propsim {

EventId Simulator::schedule_at(double when, Callback fn) {
  PROPSIM_CHECK(when >= now_);
  PROPSIM_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Simulator::cancel(EventId id) {
  // The heap entry stays behind as a tombstone and is skipped on pop.
  return callbacks_.erase(id) > 0;
}

bool Simulator::peek_next(Entry& out) {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    if (callbacks_.contains(top.id)) {
      out = top;
      return true;
    }
    queue_.pop();  // cancelled tombstone
  }
  return false;
}

bool Simulator::step() {
  Entry entry;
  if (!peek_next(entry)) return false;
  queue_.pop();
  auto node = callbacks_.extract(entry.id);
  now_ = entry.time;
  ++executed_;
  node.mapped()();
  if (audit_ && executed_ % audit_interval_ == 0) audit_(*this);
  return true;
}

void Simulator::run_until(double t_end) {
  PROPSIM_CHECK(t_end >= now_);
  Entry entry;
  while (peek_next(entry) && entry.time <= t_end) {
    step();
  }
  now_ = t_end;
}

void Simulator::run_all() {
  while (step()) {
  }
}

}  // namespace propsim
