#include "sim/local_ticks.h"

namespace propsim::sim {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

LocalTickProcess::LocalTickProcess(Scheduler& sim,
                                   const LocalTickParams& params,
                                   std::uint32_t domains, std::uint64_t seed)
    : sim_(sim), params_(params) {
  PROPSIM_CHECK(params_.period_s > 0.0);
  PROPSIM_CHECK(params_.end_s >= params_.start_s);
  per_domain_.reserve(domains);
  for (std::uint32_t d = 0; d < domains; ++d) {
    // Golden-ratio stride keeps sibling domain streams decorrelated.
    per_domain_.emplace_back(seed + 0x9e3779b97f4a7c15ULL * (d + 1));
  }
}

void LocalTickProcess::start() {
  for (std::uint32_t d = 0; d < per_domain_.size(); ++d) {
    schedule_next(d, params_.start_s);
  }
}

void LocalTickProcess::schedule_next(std::uint32_t d, double from_s) {
  DomainState& st = per_domain_[d];
  const double gap = params_.period_s * st.rng.uniform_double(0.5, 1.5);
  const double next = from_s + gap;
  if (next > params_.end_s) return;
  // Pinned to the domain's shard with the same modulo rule the
  // experiment wiring uses for slots; the hint never affects semantics.
  const auto shard = static_cast<ShardId>(
      d % static_cast<std::uint32_t>(sim_.shard_count()));
  sim_.schedule_at(next, shard, Locality::kShardLocal, [this, d] { tick(d); });
}

void LocalTickProcess::tick(std::uint32_t d) {
  DomainState& st = per_domain_[d];
  ++st.ticks;
  std::uint64_t h = st.accum == 0 ? kFnvOffset : st.accum;
  h = fnv_mix(h, d);
  h = fnv_mix(h, st.ticks);
  h = fnv_mix(h, st.rng.next());
  st.accum = h;
  schedule_next(d, sim_.now());
}

std::uint64_t LocalTickProcess::ticks() const {
  std::uint64_t total = 0;
  for (const DomainState& st : per_domain_) total += st.ticks;
  return total;
}

std::uint64_t LocalTickProcess::digest() const {
  std::uint64_t h = kFnvOffset;
  for (const DomainState& st : per_domain_) h = fnv_mix(h, st.accum);
  return h;
}

}  // namespace propsim::sim
