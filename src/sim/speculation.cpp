#include "sim/speculation.h"

namespace propsim::sim {

namespace {
// det-ok(D3): thread identity is not observed; this is a per-thread
// execution-mode marker, set and cleared by the speculative pass itself.
thread_local SpecContext* g_spec_context = nullptr;
}  // namespace

SpecContext* spec_context() { return g_spec_context; }

void set_spec_context(SpecContext* ctx) { g_spec_context = ctx; }

}  // namespace propsim::sim
