#include "sim/serial_scheduler.h"

namespace propsim::sim {

bool SerialScheduler::peek_next(Entry& out) {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    if (live(top.id)) {
      out = top;
      return true;
    }
    queue_.pop();  // cancelled tombstone
  }
  return false;
}

bool SerialScheduler::step() {
  Entry entry;
  if (!peek_next(entry)) return false;
  queue_.pop();
  return execute(entry);
}

void SerialScheduler::run_until(double t_end) {
  PROPSIM_CHECK(t_end >= now_);
  Entry entry;
  while (peek_next(entry) && entry.time <= t_end) {
    step();
  }
  now_ = t_end;
}

}  // namespace propsim::sim
