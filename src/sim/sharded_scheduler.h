// Domain-sharded event loop: one binary heap per stub-domain shard,
// drained in conservative time-windowed lock-step.
//
// Execution is bit-identical to SerialScheduler at any shard count. The
// discipline (borrowed from MeasureEngine: deterministic chunks, serial
// index-order reductions) is:
//
//   1. Handoff flush. Cross-shard events buffered during the previous
//      window are merged into their destination heaps in serial
//      (src, dst) shard-index order. Event ids were assigned at schedule
//      time, so the equal-time FIFO tie-break survives the detour.
//   2. Window selection. The next window is anchored at the earliest
//      pending event across all shards and spans `window_s` simulated
//      seconds (clamped to t_end) — idle gaps are skipped, not walked.
//   3. Parallel drain. Each shard pops its heap entries with
//      time <= window end into a private (time, id)-sorted batch on the
//      shared ThreadPool. This phase touches only per-shard heaps plus
//      read-only tombstone lookups — no callback runs, no state mutates,
//      so the fan-out cannot perturb the event sequence.
//   4. Serial merge-execute. The per-shard batches (plus any events
//      scheduled into the open window while it executes) are k-way
//      merged by (time, id) and the callbacks run serially in exactly
//      the order the serial loop would have produced.
//
// Events scheduled by a running callback route by destination: same
// shard or past the window end -> owning heap; a different shard inside
// the closed merge -> the live heap (step 4 interleaves it at its exact
// (time, id) slot); a different shard beyond the window -> the
// per-(src,dst) handoff buffer for the next flush.
#pragma once

#include <cstddef>
#include <memory>
#include <queue>
#include <vector>

#include "common/thread_pool.h"
#include "sim/scheduler.h"

namespace propsim {
namespace sim {

class ShardedScheduler final : public Scheduler {
 public:
  static constexpr std::size_t kMaxShards = 64;
  static constexpr double kDefaultWindowS = 0.25;

  /// Shard-count-dependent internals, exposed for benches and tests
  /// only. Never exported into counters or `propsim.result`: result
  /// JSON must stay byte-identical across shard counts.
  struct Stats {
    std::uint64_t windows = 0;          // lock-step windows executed
    std::uint64_t handoffs = 0;         // events routed via handoff buffers
    std::uint64_t live_reroutes = 0;    // events landing inside the open window
    std::uint64_t drained = 0;          // events drained by the parallel phase
  };

  explicit ShardedScheduler(std::size_t shards,
                            double window_s = kDefaultWindowS);

  std::size_t shard_count() const override { return shards_.size(); }
  double window_s() const { return window_s_; }
  const Stats& stats() const { return stats_; }

  void run_until(double t_end) override;
  bool step() override;

 protected:
  void enqueue(const Entry& entry, ShardId shard) override;

 private:
  struct Shard {
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    std::vector<Entry> batch;  // drained for the open window, (time,id)-sorted
    std::size_t cursor = 0;    // merge progress into `batch`
  };
  struct LiveEntry {
    double time;
    EventId id;
    ShardId shard;  // owning shard, for attribution of nested schedules
    bool operator>(const LiveEntry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  /// Maps a scheduling hint to an owning shard; unpinned events spread
  /// by id (deterministic, and order-irrelevant by the contract).
  ShardId resolve(ShardId shard, EventId id) const {
    if (shard != kNoShard && shard < shards_.size()) return shard;
    return static_cast<ShardId>(id % shards_.size());
  }

  /// Merges every handoff buffer into its destination heap, in serial
  /// (src, dst) index order.
  void flush_handoffs();

  /// Pops tombstones off `shard`'s heap; true when a live top remains.
  bool peek_shard(Shard& shard, Entry& out);

  /// Earliest live entry across all shard heaps (serial contexts only).
  /// Fills `out` and the owning shard index; does not pop the entry.
  bool earliest(Entry& out, std::size_t& shard_index);

  /// Parallel phase: per shard, pop entries with time <= `limit` into
  /// the shard's sorted batch (tombstones dropped).
  void drain(double limit);

  /// Serial phase: k-way merge the drained batches with the live heap
  /// and run the callbacks in global (time, id) order.
  void execute_window();

  double window_s_;
  std::vector<Shard> shards_;
  std::vector<std::vector<Entry>> handoff_;  // index = src * shards + dst
  std::priority_queue<LiveEntry, std::vector<LiveEntry>, std::greater<>>
      live_;  // events scheduled into the open window while it executes
  bool in_window_ = false;
  double window_end_ = 0.0;
  ShardId executing_shard_ = kNoShard;
  std::unique_ptr<ThreadPool> pool_;  // null when shards == 1
  Stats stats_;
};

}  // namespace sim

using sim::ShardedScheduler;

}  // namespace propsim
