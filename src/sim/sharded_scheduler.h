// Domain-sharded event loop: one binary heap per stub-domain shard,
// drained in conservative time-windowed lock-step, with optional
// speculative execution of provably shard-local events.
//
// Execution is bit-identical to SerialScheduler at any shard count. The
// discipline (borrowed from MeasureEngine: deterministic chunks, serial
// index-order reductions) is:
//
//   1. Inbox integration. Events filed since the last window — initial
//      schedules, cross-shard handoffs, same-shard beyond-window
//      schedules — sit in per-shard append-only inboxes; each shard
//      pushes its inbox into its heap on the ThreadPool (all heap
//      ordering work happens off the merge thread). Event ids were
//      assigned at schedule time, so the equal-time FIFO tie-break
//      survives the detour.
//   2. Window selection. The next window is anchored at the earliest
//      pending event across all shards and spans `window_s` simulated
//      seconds (clamped to t_end) — idle gaps are skipped, not walked.
//   3. Parallel drain. Each shard pops its heap entries with
//      time <= window end into a private (time, id)-sorted batch on the
//      shared ThreadPool. This phase touches only per-shard heaps plus
//      read-only tombstone lookups — no callback runs, no state mutates,
//      so the fan-out cannot perturb the event sequence.
//   4. Speculative pass (only in speculative mode, and stood down while
//      an audit hook is installed). The global cutoff G is the earliest
//      (time, id) over all non-shard-local drained events; every batch
//      entry before G is shard-local by construction. Each worker
//      executes its shard's prefix — callbacks run for real, but every
//      schedule/cancel they make is deferred into the shard's SpecLog
//      (see speculation.h) and ids handed out are provisional. Workers
//      also run events those callbacks spawn into their own shard below
//      G, in exact (time, creation) order.
//   5. Serial merge-execute. The per-shard speculation logs, remaining
//      batches, and any events scheduled into the open window are k-way
//      merged by (time, id); log entries *commit* (real ids assigned in
//      exactly the order SerialScheduler would have consumed them,
//      deferred ops applied) while everything else executes serially.
//      Shard-local events that a global event forced onto this serial
//      path count as replayed, and a window with any replay counts as a
//      conflict.
//
// Locality contract for speculative callbacks (see scheduler.h): they
// may only schedule same-shard kShardLocal events and cancel own-shard
// events; violations trip PROPSIM_CHECK at record or commit time.
// detlint rule D10 polices the capture discipline statically.
#pragma once

#include <cstddef>
#include <memory>
#include <queue>
#include <vector>

#include "common/thread_pool.h"
#include "sim/scheduler.h"
#include "sim/speculation.h"

namespace propsim {
namespace sim {

class ShardedScheduler final : public Scheduler {
 public:
  static constexpr std::size_t kMaxShards = 64;
  static constexpr double kDefaultWindowS = 0.25;

  /// Shard-count-dependent internals, exposed for benches and tests
  /// only — except the speculation block, which backs the opt-in
  /// `sim.speculation` result stanza (the one shard-count-dependent
  /// output; everything else in `propsim.result` must stay byte-identical
  /// across shard counts).
  struct Stats {
    std::uint64_t windows = 0;        // lock-step windows executed
    std::uint64_t handoffs = 0;       // events filed to another shard's inbox
    std::uint64_t live_reroutes = 0;  // events landing inside the open window
    std::uint64_t drained = 0;        // events drained by the parallel phase
    // Speculation (all zero unless speculative mode is active).
    std::uint64_t speculated = 0;     // events executed off the merge thread
    std::uint64_t replayed = 0;       // shard-local events forced serial
    std::uint64_t spec_windows = 0;   // windows with a non-empty prefix
    std::uint64_t conflicts = 0;      // windows with any replayed event
    double conflict_rate() const {
      return windows == 0 ? 0.0
                          : static_cast<double>(conflicts) /
                                static_cast<double>(windows);
    }
  };

  explicit ShardedScheduler(std::size_t shards,
                            double window_s = kDefaultWindowS,
                            bool speculative = false);

  std::size_t shard_count() const override { return shards_.size(); }
  double window_s() const { return window_s_; }
  /// True when the speculative pass is armed (requires shards > 1).
  bool speculative() const { return speculative_; }
  const Stats& stats() const { return stats_; }

  double now() const override;
  void run_until(double t_end) override;
  bool step() override;

 protected:
  void enqueue(const Entry& entry, ShardId shard) override;
  EventId speculative_schedule(double when, ShardId shard,
                               Locality locality, Callback& fn) override;
  int speculative_cancel(EventId id) override;

 private:
  struct Shard {
    std::vector<Entry> inbox;  // filed since the last integration, unsorted
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    std::vector<Entry> batch;  // drained for the open window, (time,id)-sorted
    std::size_t cursor = 0;    // merge progress into `batch`
    // Speculative-pass state, reset every window.
    std::size_t prefix = 0;    // batch[0, prefix) executes speculatively
    std::size_t spec_bi = 0;   // worker progress into the prefix
    std::vector<Callback> prefix_fns;   // extracted prefix callbacks
    std::vector<char> prefix_skip;      // prefix entries cancelled mid-pass
    std::vector<std::pair<double, std::uint32_t>> spawn_heap;  // (time, seq)
    std::vector<EventId> deferred_cancels;  // kCancel targets this pass
    SpecLog log;
  };
  struct LiveEntry {
    double time;
    EventId id;
    ShardId shard;  // owning shard, for attribution of nested schedules
    bool local;     // Locality::kShardLocal at schedule time
    bool operator>(const LiveEntry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  /// Maps a scheduling hint to an owning shard; unpinned events spread
  /// by id (deterministic, and order-irrelevant by the contract).
  ShardId resolve(ShardId shard, EventId id) const {
    if (shard != kNoShard && shard < shards_.size()) return shard;
    return static_cast<ShardId>(id % shards_.size());
  }

  /// Pushes every shard's inbox into its heap — on the pool when the
  /// backlog is worth the fan-out, serially otherwise (the choice
  /// depends only on deterministic counts, never on timing).
  void integrate();

  /// Pops tombstones off `shard`'s heap; true when a live top remains.
  bool peek_shard(Shard& shard, Entry& out);

  /// Earliest live entry across all shard heaps (serial contexts only).
  /// Fills `out` and the owning shard index; does not pop the entry.
  bool earliest(Entry& out, std::size_t& shard_index);

  /// Parallel phase: per shard, pop entries with time <= `limit` into
  /// the shard's sorted batch (tombstones dropped).
  void drain(double limit);

  /// Computes the global cutoff, extracts prefix callbacks, and runs
  /// the speculative pass on the pool.
  void speculate_window();

  /// Worker body: executes shard `s`'s prefix plus same-shard spawns
  /// below the cutoff, recording every deferred op into the shard log.
  void run_speculative(std::size_t s);

  /// Replays one speculated event's deferred ops at its merge slot:
  /// assigns real ids in serial order, files deferred schedules, applies
  /// deferred cancels (check-failing if the recorded answer diverges).
  void commit_entry(std::size_t s, const SpecLogEntry& log_entry);

  /// Serial phase: k-way merge the speculation logs, drained batches and
  /// the live heap by (time, id); log entries commit, the rest executes.
  void execute_window(bool speculative_pass);

  double window_s_;
  bool speculative_ = false;
  std::vector<Shard> shards_;
  std::priority_queue<LiveEntry, std::vector<LiveEntry>, std::greater<>>
      live_;  // events scheduled into the open window while it executes
  bool in_window_ = false;
  double window_end_ = 0.0;
  ShardId executing_shard_ = kNoShard;
  // Speculative-window scratch (valid between speculate_window and the
  // end of execute_window).
  Entry spec_g_{0.0, 0};         // global cutoff: earliest non-local event
  bool spec_has_g_ = false;
  std::vector<EventId> extracted_ids_;  // sorted; cross-shard-cancel tripwire
  std::unique_ptr<ThreadPool> pool_;    // null when shards == 1
  Stats stats_;
};

}  // namespace sim

using sim::ShardedScheduler;

}  // namespace propsim
