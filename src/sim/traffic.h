// Per-node protocol traffic accounting.
//
// The paper's Section 4.3 argues PROP-O's per-adjustment overhead is
// (nhops + 2m) messages versus PROP-G's (nhops + 2c); these counters are
// how the bench for that table measures rather than asserts it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "topology/graph.h"

namespace propsim {

enum class MessageKind : std::uint8_t {
  kWalk,          // TTL random-walk hop locating an exchange counterpart
  kProbe,         // latency probe to a (hypothetical) neighbor
  kExchangeCtrl,  // exchange negotiation / routing-entry rewrite
  kNotify,        // neighbor notification after an exchange
  kLookup,        // application-level lookup hop
  kCount
};

class TrafficCounter {
 public:
  explicit TrafficCounter(std::size_t node_count)
      : per_node_(node_count, 0),
        per_kind_(static_cast<std::size_t>(MessageKind::kCount), 0) {}

  void count(NodeId sender, MessageKind kind, std::uint64_t messages = 1) {
    PROPSIM_DCHECK(sender < per_node_.size());
    per_node_[sender] += messages;
    per_kind_[static_cast<std::size_t>(kind)] += messages;
    total_ += messages;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t by_node(NodeId n) const { return per_node_[n]; }
  std::uint64_t by_kind(MessageKind kind) const {
    return per_kind_[static_cast<std::size_t>(kind)];
  }
  /// Everything except application lookups: the protocol's own cost.
  std::uint64_t control_total() const {
    return total_ - by_kind(MessageKind::kLookup);
  }

  void reset();

 private:
  std::vector<std::uint64_t> per_node_;
  std::vector<std::uint64_t> per_kind_;
  std::uint64_t total_ = 0;
};

}  // namespace propsim
