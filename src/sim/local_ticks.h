// Per-stub-domain shard-local tick chains.
//
// Every application event stream in the simulator today is honestly
// global: probes negotiate with counterpart slots through shared engine
// state, churn rebinds hosts, samplers walk the whole overlay. This
// process supplies the opposite — an opt-in stream of events whose
// callbacks touch nothing but their own domain's private state (its own
// Rng, its own counters), scheduled with Locality::kShardLocal so the
// speculative path in ShardedScheduler has real work to overlap with
// the serial merge. Semantically it models intra-domain maintenance
// beacons: each stub domain wakes on its own jittered period and folds
// a liveness digest, independent of every other domain.
//
// Locality discipline (what makes kShardLocal honest here, and what
// detlint rule D10 checks the shape of): the tick callback captures
// only `this` and its domain index, touches only per_domain_[d], draws
// only from that domain's Rng, emits no trace events, and schedules
// only its own next tick pinned to the same shard. Totals are folded in
// domain-index order after the run, so they are independent of shard
// count and of whether ticks ran speculatively.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/scheduler.h"

namespace propsim::sim {

struct LocalTickParams {
  /// Mean tick spacing per domain (jittered ±50% from the domain Rng).
  double period_s = 0.05;
  double start_s = 0.0;
  /// No tick fires past this time (chains stop rescheduling).
  double end_s = 0.0;
};

class LocalTickProcess {
 public:
  LocalTickProcess(Scheduler& sim, const LocalTickParams& params,
                   std::uint32_t domains, std::uint64_t seed);

  /// Schedules every domain's first tick (staggered by the domain Rng).
  void start();

  /// Total ticks fired across all domains.
  std::uint64_t ticks() const;

  /// Order-insensitive digest of every tick's (domain, index, draw),
  /// folded in domain-index order: identical for serial, sharded and
  /// speculative execution by the determinism contract.
  std::uint64_t digest() const;

 private:
  struct DomainState {
    Rng rng;
    std::uint64_t ticks = 0;
    std::uint64_t accum = 0;
    explicit DomainState(std::uint64_t seed) : rng(seed) {}
  };

  void tick(std::uint32_t d);
  void schedule_next(std::uint32_t d, double from_s);

  Scheduler& sim_;
  LocalTickParams params_;
  std::vector<DomainState> per_domain_;
};

}  // namespace propsim::sim
