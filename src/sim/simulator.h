// Minimal discrete-event simulator.
//
// Protocol actions (probes, exchanges, churn arrivals) are callbacks
// scheduled on a simulated clock measured in seconds. Events at equal times
// fire in scheduling order (a strict total order keeps runs deterministic).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace propsim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }
  std::size_t pending_events() const { return callbacks_.size(); }
  std::uint64_t executed_events() const { return executed_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(double delay, Callback fn) {
    PROPSIM_CHECK(delay >= 0.0);
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `when` (>= now).
  EventId schedule_at(double when, Callback fn);

  /// Cancels a pending event; returns false if it already ran or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Runs events until the queue empties or the clock passes `t_end`;
  /// afterwards now() == max(now, t_end).
  void run_until(double t_end);

  /// Runs every pending event (the event set must be finite).
  void run_all();

  /// Executes the single earliest event; returns false if none pending.
  bool step();

  /// Verification hook: `fn` runs after every `every_n_events` executed
  /// events (and sees the post-event state). One hook at a time; pass a
  /// null fn to uninstall. Used by the paranoid invariant audit
  /// (analysis/invariant_checker.h) and by tests.
  using AuditHook = std::function<void(const Simulator&)>;
  void set_audit(AuditHook fn, std::uint64_t every_n_events) {
    PROPSIM_CHECK(fn == nullptr || every_n_events > 0);
    audit_ = std::move(fn);
    audit_interval_ = every_n_events;
  }

 private:
  struct Entry {
    double time;
    EventId id;  // doubles as a tie-breaking sequence number
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  /// Pops heap entries until one with a live callback surfaces.
  bool peek_next(Entry& out);

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  AuditHook audit_;
  std::uint64_t audit_interval_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // det-ok(D1): looked up by EventId on pop/cancel only; never iterated
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace propsim
