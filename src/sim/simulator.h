// Backwards-compatibility shim. `Simulator` was the original concrete
// event loop; the class was split into the `Scheduler` interface
// (sim/scheduler.h) with `SerialScheduler` (the old implementation,
// verbatim) and `ShardedScheduler` (domain-sharded, bit-identical)
// behind it.
//
// DEPRECATED: new code should accept `Scheduler&` and construct
// `SerialScheduler` or `ShardedScheduler` explicitly (docs/API.md has
// the migration note). This alias keeps old spellings compiling.
#pragma once

#include "sim/serial_scheduler.h"

namespace propsim {

using Simulator = sim::SerialScheduler;

}  // namespace propsim
