// The classic single-heap event loop (formerly `Simulator`). Reference
// implementation of the Scheduler determinism contract: one binary heap
// ordered by (time, id), shard hints ignored.
#pragma once

#include <queue>
#include <vector>

#include "sim/scheduler.h"

namespace propsim {
namespace sim {

class SerialScheduler final : public Scheduler {
 public:
  void run_until(double t_end) override;
  bool step() override;

 protected:
  void enqueue(const Entry& entry, ShardId /*shard*/) override {
    queue_.push(entry);
  }

 private:
  /// Pops heap entries until one with a live callback surfaces.
  bool peek_next(Entry& out);

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
};

}  // namespace sim

using sim::SerialScheduler;

}  // namespace propsim
