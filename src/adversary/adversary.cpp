#include "adversary/adversary.h"

#include <algorithm>

#include "common/check.h"

namespace propsim {

const char* to_string(PeerRole role) {
  switch (role) {
    case PeerRole::kHonest: return "honest";
    case PeerRole::kLiar: return "liar";
    case PeerRole::kFreeRider: return "free-rider";
    case PeerRole::kDropper: return "dropper";
    case PeerRole::kEclipse: return "eclipse";
  }
  return "?";
}

namespace {

/// Hash a host id into [0, 1) — stable under any RNG usage elsewhere.
double host_unit(NodeId host, std::uint64_t salt) {
  std::uint64_t state = static_cast<std::uint64_t>(host) ^ salt;
  const std::uint64_t bits = splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

AdversaryLayer::AdversaryLayer(const OverlayNetwork& net,
                               const AdversaryParams& params,
                               std::uint64_t seed)
    : net_(net), params_(params), rng_(seed + 257) {
  PROPSIM_CHECK(params_.liar_fraction >= 0.0 && params_.liar_fraction < 1.0);
  PROPSIM_CHECK(params_.freeride_fraction >= 0.0 &&
                params_.freeride_fraction < 1.0);
  PROPSIM_CHECK(params_.dropper_fraction >= 0.0 &&
                params_.dropper_fraction < 1.0);
  PROPSIM_CHECK(params_.eclipse_fraction >= 0.0 &&
                params_.eclipse_fraction < 1.0);
  PROPSIM_CHECK(params_.liar_fraction + params_.freeride_fraction +
                    params_.dropper_fraction + params_.eclipse_fraction <
                1.0);
  PROPSIM_CHECK(params_.lie_factor > 0.0 && params_.lie_factor <= 1.0);
  PROPSIM_CHECK(params_.drop_probability >= 0.0 &&
                params_.drop_probability <= 1.0);
  // Role assignment hashes host ids against a seed-derived salt; the
  // private stream stays untouched until a fractional-probability model
  // actually draws.
  std::uint64_t salt_state = seed + 257;
  role_salt_ = splitmix64(salt_state);

  if (params_.eclipse_fraction > 0.0) {
    eclipse_target_ = params_.eclipse_target;
    if (eclipse_target_ == kInvalidSlot) {
      // Auto target: the best-connected active slot (ties -> lowest id),
      // the seat whose neighbor set is most valuable to monopolize.
      const LogicalGraph& g = net_.graph();
      std::size_t best_degree = 0;
      for (SlotId s = 0; s < static_cast<SlotId>(g.slot_count()); ++s) {
        if (!g.is_active(s)) continue;
        if (g.degree(s) > best_degree) {
          best_degree = g.degree(s);
          eclipse_target_ = s;
        }
      }
    }
    PROPSIM_CHECK(eclipse_target_ != kInvalidSlot);
  }
}

PeerRole AdversaryLayer::role_of(SlotId slot) const {
  if (!net_.graph().is_active(slot)) return PeerRole::kHonest;
  return role_of_host(net_.placement().host_of(slot));
}

PeerRole AdversaryLayer::role_of_host(NodeId host) const {
  const double u = host_unit(host, role_salt_);
  double edge = params_.liar_fraction;
  if (u < edge) return PeerRole::kLiar;
  edge += params_.freeride_fraction;
  if (u < edge) return PeerRole::kFreeRider;
  edge += params_.dropper_fraction;
  if (u < edge) return PeerRole::kDropper;
  edge += params_.eclipse_fraction;
  if (u < edge) return PeerRole::kEclipse;
  return PeerRole::kHonest;
}

std::array<std::uint64_t, 5> AdversaryLayer::census(std::size_t hosts) const {
  std::array<std::uint64_t, 5> counts{};
  for (std::size_t h = 0; h < hosts; ++h) {
    ++counts[static_cast<std::size_t>(role_of_host(static_cast<NodeId>(h)))];
  }
  return counts;
}

double AdversaryLayer::perceived_var(const ExchangeView& view, double true_var,
                                     double min_var) {
  double reported = true_var;
  for (const SlotId endpoint : {view.u, view.v}) {
    if (role_of(endpoint) != PeerRole::kLiar) continue;
    const double gain = selfish_gain(net_, view, endpoint);
    if (gain > 0.0) {
      // The liar wants this exchange: under-report its post-exchange
      // cost so the apparent system-wide saving grows.
      reported += params_.lie_factor * endpoint_cost_after(net_, view,
                                                           endpoint);
    } else if (gain < 0.0) {
      // The liar loses from it: pad its reported post-exchange cost to
      // veto a cooperative improvement.
      reported -= params_.lie_factor * endpoint_cost_now(net_, endpoint);
    }
  }
  if (role_of(view.u) == PeerRole::kEclipse) {
    // Eclipse initiators lie whatever it takes to clear the gate.
    reported = std::max(reported, min_var + 1.0);
  }
  const bool honest_pass = true_var > min_var;
  const bool reported_pass = reported > min_var;
  if (honest_pass != reported_pass) {
    ++stats_.lies;
    if (trace_ != nullptr) {
      trace_->emit(obs::TraceEventKind::kAdversaryLie, view.u, view.v,
                   reported - true_var, reported_pass ? 1 : 2);
    }
  }
  return reported;
}

bool AdversaryLayer::drop_commit(SlotId responder, SlotId initiator) {
  if (role_of(responder) != PeerRole::kDropper) return false;
  if (role_of(initiator) != PeerRole::kHonest) return false;
  const double p = params_.drop_probability;
  bool drop;
  if (p >= 1.0) {
    drop = true;  // certain drop: no stream consumption
  } else if (p <= 0.0) {
    drop = false;  // disarmed dropper: no stream consumption
  } else {
    drop = rng_.bernoulli(p);
  }
  if (drop) {
    ++stats_.drops;
    if (trace_ != nullptr) {
      trace_->emit(obs::TraceEventKind::kAdversaryDrop, responder, initiator,
                   0.0, 0);
    }
  }
  return drop;
}

bool AdversaryLayer::sits_out(SlotId u) {
  const PeerRole role = role_of(u);
  if (role == PeerRole::kFreeRider) {
    ++stats_.freeride_skips;
    return true;
  }
  if (role == PeerRole::kEclipse && eclipse_target_ != kInvalidSlot &&
      u != eclipse_target_ && net_.graph().has_edge(u, eclipse_target_)) {
    // Captured attackers go dormant: initiating again could swap them
    // back out of the seat they fought for.
    return true;
  }
  return false;
}

SlotId AdversaryLayer::eclipse_counterpart(SlotId u) {
  if (role_of(u) != PeerRole::kEclipse) return kInvalidSlot;
  if (eclipse_target_ == kInvalidSlot || u == eclipse_target_ ||
      !net_.graph().is_active(eclipse_target_)) {
    return kInvalidSlot;
  }
  const auto neighbors = net_.graph().neighbors(eclipse_target_);
  if (neighbors.empty()) return kInvalidSlot;
  // Shared round-robin cursor: the cohort spreads over distinct seats
  // instead of all fighting for the same one.
  for (std::size_t step = 0; step < neighbors.size(); ++step) {
    const SlotId candidate =
        neighbors[(eclipse_cursor_ + step) % neighbors.size()];
    if (candidate == u || candidate == eclipse_target_) continue;
    if (role_of(candidate) == PeerRole::kEclipse) continue;
    eclipse_cursor_ = (eclipse_cursor_ + step + 1) % neighbors.size();
    ++stats_.eclipse_attempts;
    return candidate;
  }
  return kInvalidSlot;
}

void AdversaryLayer::on_exchange_committed(SlotId a, SlotId b) {
  if (eclipse_target_ == kInvalidSlot) return;
  for (const SlotId s : {a, b}) {
    if (s == eclipse_target_) continue;
    if (role_of(s) != PeerRole::kEclipse) continue;
    if (!net_.graph().has_edge(s, eclipse_target_)) continue;
    ++stats_.eclipse_captures;
    if (trace_ != nullptr) {
      trace_->emit(obs::TraceEventKind::kEclipseCapture, s, eclipse_target_,
                   0.0, 0);
    }
  }
}

std::size_t AdversaryLayer::eclipse_captured() const {
  if (eclipse_target_ == kInvalidSlot ||
      !net_.graph().is_active(eclipse_target_)) {
    return 0;
  }
  std::size_t held = 0;
  for (const SlotId n : net_.graph().neighbors(eclipse_target_)) {
    if (role_of(n) == PeerRole::kEclipse) ++held;
  }
  return held;
}

}  // namespace propsim
