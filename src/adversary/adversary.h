// Deterministic byzantine behavior layer on the PROP negotiation path.
//
// Mirrors the FaultInjector seam: PropEngine holds a nullable
// AdversaryLayer pointer and consults it at fixed points of the
// prepare/commit state machine. The layer owns a private RNG stream
// (seed + 257) so that attaching it never perturbs the engine's, the
// fault injector's, or the churn process's draws — and models whose
// probability knobs are zero never draw from it, keeping all-zero
// configs bit-identical to honest runs.
//
// Four peer models (ISSUE 9 / ROADMAP "adversarial peers"), each bound
// to a disjoint fraction of HOSTS (roles follow hosts through PROP-G
// placement swaps) selected by hashing the host id — no RNG stream
// consumption, so fractions can change without shifting other streams:
//
//  - latency liars    misreport the counterpart-side cost of a planned
//                     exchange by a multiplicative deflation factor,
//                     corrupting the MIN_VAR decision whenever the lie
//                     serves the liar's selfish gain (selfish.h is the
//                     seed for "what does this peer win").
//  - free-riders      accept inbound exchanges but never probe or
//                     initiate — they sit out their own probe timers.
//  - selective        ack prepares, then drop the commit leg toward
//    droppers         honest victims, burning the victim's retry budget.
//  - eclipse          coordinate to monopolize one target's neighbor
//    attackers        slots: every attacker steers its exchanges toward
//                     the target's neighborhood and lies as needed to
//                     force the plans through.
//
// Lies corrupt *decisions*, never *structure*: the applied exchange is
// always the true plan, so Theorem 1 (degree conservation) and
// Theorem 2 (isomorphism by bijection) survive any lie — which the
// paranoid audit re-checks post-attack.
#pragma once

#include <array>
#include <cstdint>

#include "baselines/selfish.h"
#include "common/rng.h"
#include "obs/event_bus.h"
#include "overlay/overlay_network.h"

namespace propsim {

enum class PeerRole : std::uint8_t {
  kHonest = 0,
  kLiar,
  kFreeRider,
  kDropper,
  kEclipse,
};

const char* to_string(PeerRole role);

struct AdversaryParams {
  /// Disjoint host fractions per model, each in [0, 1), summing < 1.
  double liar_fraction = 0.0;
  double freeride_fraction = 0.0;
  double dropper_fraction = 0.0;
  double eclipse_fraction = 0.0;

  /// Multiplicative deflation a liar applies to its reported cost:
  /// reported = (1 - lie_factor) * true cost. In (0, 1].
  double lie_factor = 0.5;

  /// Probability a dropper discards a commit leg toward an honest
  /// victim. 1.0 and 0.0 never draw from the RNG stream.
  double drop_probability = 1.0;

  /// Slot the eclipse cohort converges on; kInvalidSlot = pick the
  /// highest-degree active slot at attach time.
  SlotId eclipse_target = kInvalidSlot;

  bool active() const {
    return liar_fraction > 0.0 || freeride_fraction > 0.0 ||
           dropper_fraction > 0.0 || eclipse_fraction > 0.0;
  }
};

class AdversaryLayer {
 public:
  struct Stats {
    std::uint64_t lies = 0;             // MIN_VAR decisions flipped
    std::uint64_t drops = 0;            // commit legs discarded
    std::uint64_t freeride_skips = 0;   // probe trials sat out
    std::uint64_t eclipse_attempts = 0; // exchanges steered at the target
    std::uint64_t eclipse_captures = 0; // attacker landed next to target
  };

  /// `seed` is the experiment seed; the layer derives its private
  /// stream at seed + 257. `net` must outlive the layer.
  AdversaryLayer(const OverlayNetwork& net, const AdversaryParams& params,
                 std::uint64_t seed);

  void set_trace(obs::EventBus* bus) { trace_ = bus; }

  /// Role of the host currently bound to `slot` (kHonest for inactive
  /// slots). Pure hash of the host id — deterministic, draw-free.
  PeerRole role_of(SlotId slot) const;
  PeerRole role_of_host(NodeId host) const;

  /// Number of hosts per role over the whole host space (for result
  /// reporting); index by static_cast<size_t>(PeerRole).
  std::array<std::uint64_t, 5> census(std::size_t hosts) const;

  /// The Var value the engine should gate on: honest endpoints pass
  /// `true_var` through untouched; a lying endpoint deflates its own
  /// reported cost when the lie serves its selfish gain; an eclipse
  /// initiator force-reports enough to clear the gate. Counts/traces
  /// only when the lie actually flips the decision at `min_var`.
  double perceived_var(const ExchangeView& view, double true_var,
                       double min_var);

  /// True when `responder` is a dropper and chooses to discard the
  /// commit leg toward honest `initiator`.
  bool drop_commit(SlotId responder, SlotId initiator);

  /// True when the host at `u` never initiates probes (free-riders
  /// always, counted; eclipse attackers once they hold a seat next to
  /// the target — they go dormant to keep the captured slot).
  bool sits_out(SlotId u);

  /// For an eclipse attacker at `u`: the neighbor slot of the target
  /// this attacker should try to swap into (round-robin over the
  /// target's current neighbors, skipping seats the cohort already
  /// holds). kInvalidSlot when not applicable.
  SlotId eclipse_counterpart(SlotId u);

  /// Engine callback after any committed exchange: detects eclipse
  /// captures (attacker host now adjacent to the target).
  void on_exchange_committed(SlotId a, SlotId b);

  /// Target's neighbor seats currently held by eclipse hosts.
  std::size_t eclipse_captured() const;

  SlotId eclipse_target() const { return eclipse_target_; }
  const Stats& stats() const { return stats_; }
  const AdversaryParams& params() const { return params_; }

 private:
  const OverlayNetwork& net_;
  AdversaryParams params_;
  Rng rng_;
  std::uint64_t role_salt_ = 0;
  obs::EventBus* trace_ = nullptr;
  SlotId eclipse_target_ = kInvalidSlot;
  std::size_t eclipse_cursor_ = 0;
  Stats stats_;
};

}  // namespace propsim
