#include "core/prop_engine.h"

#include <algorithm>

namespace propsim {

PropEngine::PropEngine(OverlayNetwork& net, Scheduler& sim,
                       const PropParams& params, std::uint64_t seed)
    : net_(net), sim_(sim), params_(params), rng_(seed) {
  PROPSIM_CHECK(params_.init_timer_s > 0.0);
  PROPSIM_CHECK(params_.nhops >= 1 || params_.random_target);
}

void PropEngine::ensure_state_capacity() {
  if (state_.size() < net_.graph().slot_count()) {
    state_.resize(net_.graph().slot_count());
  }
}

void PropEngine::start() {
  PROPSIM_CHECK(!started_);
  started_ = true;
  ensure_state_capacity();
  effective_m_ = params_.m != 0 ? params_.m
                                : std::max<std::size_t>(
                                      1, net_.graph().min_active_degree());
  for (const SlotId s : net_.graph().active_slots()) {
    init_node(s);
    // Stagger first probes over one timer period so the population does
    // not fire in lockstep.
    schedule_probe(s, rng_.uniform_double(0.0, params_.init_timer_s));
  }
}

void PropEngine::stop() {
  for (NodeState& st : state_) {
    if (st.pending != kInvalidEvent) {
      sim_.cancel(st.pending);
      st.pending = kInvalidEvent;
    }
    st.active = false;
    st.peer = kInvalidSlot;
  }
  started_ = false;
}

void PropEngine::init_node(SlotId s) {
  NodeState& st = state_[s];
  st.queue.initialize(net_.graph().neighbors(s), rng_);
  st.timer = params_.init_timer_s;
  st.trials = 0;
  st.pending = kInvalidEvent;
  st.active = true;
  st.peer = kInvalidSlot;
}

void PropEngine::schedule_probe(SlotId s, double delay) {
  NodeState& st = state_[s];
  PROPSIM_CHECK(st.pending == kInvalidEvent);
  // Global despite the shard hint: probe timers draw from the shared
  // engine Rng and negotiate with counterpart slots on other shards.
  st.pending = sim_.schedule_in(delay, sim_.shard_of(s), Locality::kGlobal,
                                [this, s] { on_probe_timer(s); });
}

void PropEngine::reschedule_sooner(SlotId s, double delay) {
  NodeState& st = state_[s];
  if (st.pending != kInvalidEvent) {
    sim_.cancel(st.pending);
    st.pending = kInvalidEvent;
  }
  schedule_probe(s, delay);
}

void PropEngine::on_probe_timer(SlotId s) {
  NodeState& st = state_[s];
  st.pending = kInvalidEvent;
  if (!st.active) return;
  attempt(s);
  if (st.active && st.pending == kInvalidEvent) {
    schedule_probe(s, st.timer);
  }
}

bool PropEngine::attempt(SlotId u) {
  ensure_state_capacity();
  NodeState& st = state_[u];
  PROPSIM_CHECK(net_.graph().is_active(u));
  if (adversary_ != nullptr && adversary_->sits_out(u)) {
    // Free-riders never spend probe messages; captured eclipse
    // attackers hold still. The probe timer keeps cycling regardless.
    return false;
  }
  ++stats_.attempts;
  ++st.trials;
  obs::EventBus* bus = net_.trace();
  if (bus != nullptr) bus->emit(obs::TraceEventKind::kProbe, u);

  const auto neighbors = net_.graph().neighbors(u);
  if (neighbors.empty()) {
    return false;  // isolated (mid-churn); try again next timer
  }

  // First hop from neighborQ (or uniform when the ablation disables it).
  SlotId first_hop;
  if (params_.use_priority_queue) {
    const auto front = st.queue.front();
    if (!front.has_value() || !net_.graph().has_edge(u, *front)) {
      // Queue drifted from the graph (exchange raced a churn event);
      // rebuild and fall back to a uniform pick.
      st.queue.initialize(neighbors, rng_);
      first_hop = neighbors[static_cast<std::size_t>(
          rng_.uniform(neighbors.size()))];
    } else {
      first_hop = *front;
    }
  } else {
    first_hop =
        neighbors[static_cast<std::size_t>(rng_.uniform(neighbors.size()))];
  }

  // Locate the counterpart v.
  SlotId v = kInvalidSlot;
  std::vector<SlotId> path;
  const SlotId steered = adversary_ != nullptr
                             ? adversary_->eclipse_counterpart(u)
                             : kInvalidSlot;
  if (steered != kInvalidSlot) {
    // Eclipse steering: the attacker aims its exchange at a seat next
    // to the target instead of walking. One direct contact message.
    v = steered;
    path = {u, v};
    net_.traffic().count(net_.placement().host_of(u), MessageKind::kWalk);
  } else if (params_.random_target) {
    const auto actives = net_.graph().active_slots();
    PROPSIM_CHECK(actives.size() >= 2);
    do {
      v = actives[static_cast<std::size_t>(rng_.uniform(actives.size()))];
    } while (v == u);
    path = {u, v};
    net_.traffic().count(net_.placement().host_of(u), MessageKind::kWalk);
  } else {
    auto walk = net_.random_walk(u, first_hop, params_.nhops, rng_);
    net_.traffic().count(net_.placement().host_of(u), MessageKind::kWalk,
                         params_.nhops);
    if (!walk.has_value()) {
      ++stats_.walk_failures;
      if (bus != nullptr) {
        bus->emit(obs::TraceEventKind::kExchangeAbort, u, first_hop, 0.0,
                  static_cast<std::uint64_t>(obs::AbortReason::kWalkFailure));
      }
      handle_failure(u, first_hop);
      return false;
    }
    path = std::move(*walk);
    v = path.back();
    if (bus != nullptr) {
      for (std::size_t i = 1; i < path.size(); ++i) {
        bus->emit(obs::TraceEventKind::kWalkHop, path[i - 1], path[i],
                  net_.slot_latency(path[i - 1], path[i]));
      }
    }
  }

  // Under fault injection every hop toward the counterpart is a real
  // message that can be lost; the first drop kills the trial like a
  // dead-end walk does.
  if (faults_ != nullptr) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (faults_->deliver(net_.placement().host_of(path[i - 1]),
                           net_.placement().host_of(path[i]))) {
        continue;
      }
      ++stats_.walk_failures;
      abort_with_reason(u, first_hop, obs::AbortReason::kMessageLost);
      handle_failure(u, first_hop);
      return false;
    }
  }

  // Plan the exchange and evaluate Var.
  std::optional<ExchangePlan> plan;
  if (params_.mode == PropMode::kPropG) {
    plan = plan_prop_g(net_, u, v);
  } else {
    plan = plan_prop_o(net_, u, v, path, effective_m_, params_.selection,
                       rng_);
  }
  if (!plan.has_value()) {
    if (bus != nullptr) {
      bus->emit(obs::TraceEventKind::kExchangeAbort, u, v, 0.0,
                static_cast<std::uint64_t>(obs::AbortReason::kNoPlan));
    }
    handle_failure(u, first_hop);
    return false;
  }
  ++stats_.planned;
  if (bus != nullptr) {
    bus->emit(obs::TraceEventKind::kExchangeAttempt, u, v, plan->var);
  }
  charge_messages(*plan, path.size() - 1, /*committed=*/false);

  if (gate_var(*plan) <= params_.min_var) {
    ++stats_.rejected;
    if (bus != nullptr) {
      bus->emit(obs::TraceEventKind::kExchangeAbort, u, v, plan->var,
                static_cast<std::uint64_t>(obs::AbortReason::kBelowMinVar));
    }
    handle_failure(u, first_hop);
    return false;
  }

  if (params_.model_message_delays || faults_ != nullptr ||
      adversary_ != nullptr) {
    // The decision travels over the network: commit only after the
    // negotiation round-trips, re-validating against whatever the
    // overlay looks like by then. Fault injection implies message-delay
    // modeling — a lossy network with atomic exchanges would be
    // contradictory — and byzantine peers need the two-phase window
    // their drop/lie behaviors target.
    begin_negotiation(u, first_hop, v, std::move(path), /*retries_used=*/0);
    return false;  // outcome pending
  }

  apply_exchange(net_, *plan);
  if (swap_log_ != nullptr && plan->mode == PropMode::kPropG) {
    swap_log_->record(sim_.now(), plan->u, plan->v);
  }
  charge_messages(*plan, path.size() - 1, /*committed=*/true);
  propagate_exchange_effects(*plan);
  ++stats_.exchanges;
  stats_.total_var_gain += plan->var;
  stats_.last_exchange_time = sim_.now();
  if (bus != nullptr) {
    bus->emit(obs::TraceEventKind::kExchangeCommit, plan->u, plan->v,
              plan->var, plan->from_u.size());
  }
  notify_observer(*plan);
  handle_success(u, first_hop);
  return true;
}

ExchangeView PropEngine::view_of(const ExchangePlan& plan) const {
  ExchangeView view;
  view.prop_g = plan.mode == PropMode::kPropG;
  view.u = plan.u;
  view.v = plan.v;
  if (!view.prop_g) {
    // m > 1 transfer sets are represented by their first neighbor: the
    // lie is a model of misreporting, not exact bookkeeping.
    view.from_u = plan.from_u.empty() ? kInvalidSlot : plan.from_u.front();
    view.from_v = plan.from_v.empty() ? kInvalidSlot : plan.from_v.front();
  }
  return view;
}

double PropEngine::gate_var(const ExchangePlan& plan) {
  if (adversary_ == nullptr) return plan.var;
  return adversary_->perceived_var(view_of(plan), plan.var, params_.min_var);
}

void PropEngine::notify_observer(const ExchangePlan& plan) {
  if (!observer_) return;
  ExchangeEvent event;
  event.time = sim_.now();
  event.mode = plan.mode;
  event.u = plan.u;
  event.v = plan.v;
  event.var = plan.var;
  event.transferred = plan.from_u.size();
  observer_(event);
}

double PropEngine::negotiation_delay_s(std::span<const SlotId> path) const {
  // One round-trip along the walk to reach the counterpart plus one
  // probe round-trip to the farthest hypothetical neighbor, all in
  // milliseconds of physical latency.
  double walk_ms = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    walk_ms += net_.slot_latency(path[i - 1], path[i]);
  }
  double probe_ms = 0.0;
  for (const SlotId end : {path.front(), path.back()}) {
    for (const SlotId nb : net_.graph().neighbors(end)) {
      probe_ms = std::max(probe_ms, net_.slot_latency(end, nb));
    }
  }
  return (2.0 * walk_ms + 2.0 * probe_ms) / 1000.0;
}

bool PropEngine::validate_and_apply(SlotId u, SlotId first_hop, SlotId v,
                                    const std::vector<SlotId>& path) {
  (void)first_hop;
  // The world may have changed while the decision was in flight: every
  // path slot must still be active and every path edge present (the
  // connectivity argument of Theorem 1 depends on the path surviving).
  if (!net_.graph().is_active(v)) return false;
  // Random-target probing has no walk path, so no edges to check; the
  // same goes for an eclipse attacker's steered contact, which never
  // walked the overlay in the first place.
  const bool pathless =
      params_.random_target ||
      (adversary_ != nullptr &&
       adversary_->role_of(u) == PeerRole::kEclipse);
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (!net_.graph().is_active(path[i])) return false;
    if (!pathless && i > 0 &&
        !net_.graph().has_edge(path[i - 1], path[i])) {
      return false;
    }
  }
  // Re-plan from fresh state; a concurrent exchange may have flipped
  // the gain's sign or stolen the transferable neighbors.
  std::optional<ExchangePlan> plan;
  if (params_.mode == PropMode::kPropG) {
    plan = plan_prop_g(net_, u, v);
  } else {
    plan = plan_prop_o(net_, u, v, path, effective_m_, params_.selection,
                       rng_);
  }
  if (!plan.has_value() || gate_var(*plan) <= params_.min_var) return false;
  apply_exchange(net_, *plan);
  if (swap_log_ != nullptr && plan->mode == PropMode::kPropG) {
    swap_log_->record(sim_.now(), plan->u, plan->v);
  }
  charge_messages(*plan, path.size() - 1, /*committed=*/true);
  propagate_exchange_effects(*plan);
  ++stats_.exchanges;
  stats_.total_var_gain += plan->var;
  stats_.last_exchange_time = sim_.now();
  if (obs::EventBus* bus = net_.trace()) {
    bus->emit(obs::TraceEventKind::kExchangeCommit, plan->u, plan->v,
              plan->var, plan->from_u.size());
  }
  if (adversary_ != nullptr) {
    adversary_->on_exchange_committed(plan->u, plan->v);
  }
  notify_observer(*plan);
  return true;
}

void PropEngine::abort_with_reason(SlotId u, SlotId v,
                                   obs::AbortReason reason) {
  if (obs::EventBus* bus = net_.trace()) {
    bus->emit(obs::TraceEventKind::kExchangeAbort, u, v, 0.0,
              static_cast<std::uint64_t>(reason));
  }
}

void PropEngine::release_lock(SlotId u, SlotId v) {
  if (u < state_.size() && state_[u].peer == v) {
    state_[u].peer = kInvalidSlot;
  }
  if (v < state_.size() && state_[v].peer == u) {
    state_[v].peer = kInvalidSlot;
  }
}

void PropEngine::commit_after_delay(SlotId u, SlotId first_hop, SlotId v,
                                    std::vector<SlotId> path) {
  NodeState& st = state_[u];
  if (!st.active) return;
  if (!validate_and_apply(u, first_hop, v, path)) {
    ++stats_.commit_conflicts;
    abort_with_reason(u, v, obs::AbortReason::kCommitConflict);
    handle_failure(u, first_hop);
    schedule_probe(u, st.timer);
    return;
  }
  handle_success(u, first_hop);
  schedule_probe(u, st.timer);
}

void PropEngine::begin_negotiation(SlotId u, SlotId first_hop, SlotId v,
                                   std::vector<SlotId> path,
                                   std::size_t retries_used) {
  NodeState& st = state_[u];
  if (!st.active) return;
  if (st.peer != kInvalidSlot) {
    // Already prepared with a counterpart; that negotiation owns the
    // pending event slot, so this attempt just dies.
    abort_with_reason(u, v, obs::AbortReason::kPeerBusy);
    handle_failure(u, first_hop);
    return;
  }
  // The node's next probe is scheduled by the outcome handler, so take
  // over its pending slot.
  if (st.pending != kInvalidEvent) {
    sim_.cancel(st.pending);
    st.pending = kInvalidEvent;
  }
  const double base_delay = negotiation_delay_s(path);
  if (faults_ == nullptr && adversary_ == nullptr) {
    // Plain delayed-commit mode: single scheduled commit, no locks —
    // the pre-fault protocol, byte-for-byte.
    st.pending = sim_.schedule_in(
        base_delay, sim_.shard_of(u), Locality::kGlobal,
        [this, u, first_hop, v, path = std::move(path)]() mutable {
          state_[u].pending = kInvalidEvent;
          commit_after_delay(u, first_hop, v, std::move(path));
        });
    return;
  }
  // Hardened two-phase path. The counterpart must be alive and idle —
  // a node inside another negotiation window refuses cleanly.
  if (!net_.graph().is_active(v) || state_[v].peer != kInvalidSlot) {
    abort_with_reason(u, v, obs::AbortReason::kPeerBusy);
    handle_failure(u, first_hop);
    schedule_probe(u, st.timer);
    return;
  }
  // PREPARE leg u -> v: a loss is detected by timeout after one RTO and
  // retransmitted from scratch, up to the injector's retry budget, with
  // the Markov-chain backoff taking over when the budget runs out.
  // Adversary-only runs have a loss-free network: the leg always lands.
  if (faults_ != nullptr &&
      !faults_->deliver(net_.placement().host_of(u),
                        net_.placement().host_of(v))) {
    ++stats_.timeouts;
    if (obs::EventBus* bus = net_.trace()) {
      bus->emit(obs::TraceEventKind::kNegotiationTimeout, u, v, 0.0,
                retries_used);
    }
    if (retries_used < faults_->params().max_negotiation_retries) {
      ++stats_.retries;
      const double rto = faults_->params().rto_factor * base_delay;
      st.pending = sim_.schedule_in(
          rto, sim_.shard_of(u), Locality::kGlobal,
          [this, u, first_hop, v, path = std::move(path),
           retries_used]() mutable {
            state_[u].pending = kInvalidEvent;
            begin_negotiation(u, first_hop, v, std::move(path),
                              retries_used + 1);
          });
      return;
    }
    abort_with_reason(u, v, obs::AbortReason::kNegotiationTimeout);
    handle_failure(u, first_hop);
    schedule_probe(u, st.timer);
    return;
  }
  // Prepare accepted: both endpoints lock for the negotiation window so
  // neither starts a conflicting exchange, and a crash of either inside
  // the window can be attributed to this negotiation.
  st.peer = v;
  state_[v].peer = u;
  const double delay =
      faults_ != nullptr ? faults_->jitter(base_delay) : base_delay;
  if (faults_ != nullptr) faults_->maybe_schedule_crash(u, v, delay);
  // Global despite the shard hint: commits mutate both endpoints' slots
  // and the counterpart may live on a different shard.
  st.pending = sim_.schedule_in(
      delay, sim_.shard_of(u), Locality::kGlobal,
      [this, u, first_hop, v, path = std::move(path)]() mutable {
        state_[u].pending = kInvalidEvent;
        finish_two_phase(u, first_hop, v, std::move(path));
      });
}

void PropEngine::finish_two_phase(SlotId u, SlotId first_hop, SlotId v,
                                  std::vector<SlotId> path) {
  NodeState& st = state_[u];
  if (!st.active) return;  // initiator crashed; node_left settled it
  const bool was_locked = st.peer == v;
  release_lock(u, v);
  if (!was_locked) {
    // A mid-window crash of the counterpart already aborted (and
    // counted) this exchange through node_left; the initiator only
    // backs off.
    handle_failure(u, first_hop);
    schedule_probe(u, st.timer);
    return;
  }
  if (!net_.graph().is_active(v)) {
    ++stats_.commit_conflicts;
    abort_with_reason(u, v, obs::AbortReason::kCommitConflict);
    handle_failure(u, first_hop);
    schedule_probe(u, st.timer);
    return;
  }
  // COMMIT leg v -> u: a selective dropper acked the prepare but
  // discards the commit toward an honest initiator, burning the whole
  // negotiation window. Nothing was applied at prepare time, so both
  // endpoints fall back to their pre-prepare neighbor state.
  if (adversary_ != nullptr && adversary_->drop_commit(v, u)) {
    ++stats_.aborted_mid_commit;
    abort_with_reason(u, v, obs::AbortReason::kAdversaryDrop);
    handle_failure(u, first_hop);
    schedule_probe(u, st.timer);
    return;
  }
  // Losing the leg to the network after a successful prepare drops the
  // exchange mid-commit the same way.
  if (faults_ != nullptr &&
      !faults_->deliver(net_.placement().host_of(v),
                        net_.placement().host_of(u))) {
    ++stats_.timeouts;
    ++stats_.aborted_mid_commit;
    abort_with_reason(u, v, obs::AbortReason::kMessageLost);
    handle_failure(u, first_hop);
    schedule_probe(u, st.timer);
    return;
  }
  if (!validate_and_apply(u, first_hop, v, path)) {
    ++stats_.commit_conflicts;
    abort_with_reason(u, v, obs::AbortReason::kCommitConflict);
    handle_failure(u, first_hop);
    schedule_probe(u, st.timer);
    return;
  }
  handle_success(u, first_hop);
  schedule_probe(u, st.timer);
}

void PropEngine::handle_success(SlotId u, SlotId first_hop) {
  NodeState& st = state_[u];
  if (params_.use_priority_queue) st.queue.on_success(first_hop);
  st.timer = params_.init_timer_s;
}

void PropEngine::handle_failure(SlotId u, SlotId first_hop) {
  NodeState& st = state_[u];
  if (params_.use_priority_queue) st.queue.on_failure(first_hop);
  // Backoff applies in the maintenance phase only; warm-up probes at the
  // base rate for MAX_INIT_TRIAL trials.
  if (params_.use_backoff && st.trials > params_.max_init_trial) {
    st.timer = std::min(st.timer * 2.0, params_.max_timer_s());
    if (st.timer >= params_.max_timer_s()) {
      // "if Timer >= MAX_TIMER it will also be set as INIT_TIMER":
      // the cycle restarts rather than freezing the node forever.
      st.timer = params_.init_timer_s;
    }
  }
}

void PropEngine::propagate_exchange_effects(const ExchangePlan& plan) {
  ensure_state_capacity();
  switch (plan.mode) {
    case PropMode::kPropG: {
      // Slots keep their neighbor sets, so third-party queues stay valid.
      // The two swapped peers both completed a successful exchange; their
      // timers reset through handle_success (initiator) and here (peer).
      state_[plan.v].timer = params_.init_timer_s;
      return;
    }
    case PropMode::kPropO: {
      // Moved neighbors see one endpoint replaced by the other: drop the
      // old entry, admit the new one at the front (maximum priority), as
      // the paper prescribes for fresh neighbors.
      for (const SlotId a : plan.from_u) {
        state_[a].queue.remove(plan.u);
        state_[a].queue.add_front(plan.v);
      }
      for (const SlotId b : plan.from_v) {
        state_[b].queue.remove(plan.v);
        state_[b].queue.add_front(plan.u);
      }
      // u and v rebuild queue membership for their changed neighbor sets.
      for (const SlotId a : plan.from_u) {
        state_[plan.u].queue.remove(a);
        state_[plan.v].queue.add_front(a);
      }
      for (const SlotId b : plan.from_v) {
        state_[plan.v].queue.remove(b);
        state_[plan.u].queue.add_front(b);
      }
      state_[plan.v].timer = params_.init_timer_s;
      return;
    }
  }
}

void PropEngine::charge_messages(const ExchangePlan& plan,
                                 std::size_t walk_len, bool committed) {
  (void)walk_len;  // walk hops are charged where the walk happens
  const NodeId host_u = net_.placement().host_of(plan.u);
  const NodeId host_v = net_.placement().host_of(plan.v);
  if (!committed) {
    // Probing the hypothetical neighbors: 2c messages for PROP-G
    // (every neighbor of both peers), 2m for PROP-O (the transfer sets).
    std::uint64_t probes_u = 0;
    std::uint64_t probes_v = 0;
    if (plan.mode == PropMode::kPropG) {
      probes_u = net_.graph().degree(plan.v);
      probes_v = net_.graph().degree(plan.u);
    } else {
      probes_u = plan.from_v.size();
      probes_v = plan.from_u.size();
    }
    if (probes_u > 0) {
      net_.traffic().count(host_u, MessageKind::kProbe, probes_u);
    }
    if (probes_v > 0) {
      net_.traffic().count(host_v, MessageKind::kProbe, probes_v);
    }
    return;
  }
  // Commit: the two peers rewrite entries and notify affected neighbors.
  net_.traffic().count(host_u, MessageKind::kExchangeCtrl);
  net_.traffic().count(host_v, MessageKind::kExchangeCtrl);
  std::uint64_t notify_u = 0;
  std::uint64_t notify_v = 0;
  if (plan.mode == PropMode::kPropG) {
    notify_u = net_.graph().degree(plan.u);
    notify_v = net_.graph().degree(plan.v);
  } else {
    notify_u = plan.from_u.size();
    notify_v = plan.from_v.size();
  }
  if (notify_u > 0) net_.traffic().count(host_u, MessageKind::kNotify, notify_u);
  if (notify_v > 0) net_.traffic().count(host_v, MessageKind::kNotify, notify_v);
}

void PropEngine::node_joined(SlotId s, std::span<const SlotId> new_neighbors) {
  ensure_state_capacity();
  init_node(s);
  schedule_probe(s, rng_.uniform_double(0.0, params_.init_timer_s));
  // Surviving peers learn of a fresh neighbor: front of neighborQ with
  // maximum priority, and their timer resets so they probe soon. A peer
  // inside a two-phase negotiation window keeps its pending commit — the
  // pending event belongs to that exchange, not to the probe cycle.
  for (const SlotId nb : new_neighbors) {
    if (!state_[nb].active) continue;
    if (!state_[nb].queue.contains(s)) state_[nb].queue.add_front(s);
    state_[nb].timer = params_.init_timer_s;
    if (state_[nb].peer != kInvalidSlot) continue;
    reschedule_sooner(nb, rng_.uniform_double(0.0, params_.init_timer_s));
  }
}

void PropEngine::node_left(SlotId s,
                           std::span<const SlotId> former_neighbors) {
  ensure_state_capacity();
  NodeState& st = state_[s];
  if (st.pending != kInvalidEvent) {
    sim_.cancel(st.pending);
    st.pending = kInvalidEvent;
  }
  if (st.peer != kInvalidSlot) {
    // The departed endpoint was inside a two-phase negotiation window:
    // the exchange aborts cleanly. Nothing was applied at prepare time,
    // so both neighbor lists stay exactly as they were (PROP-G keeps no
    // half-moved position either — a swap only lands at commit, after
    // which SwapLog's transient forwarding covers the stale references).
    ++stats_.aborted_mid_commit;
    abort_with_reason(s, st.peer, obs::AbortReason::kPeerCrashed);
    release_lock(s, st.peer);
  }
  st.active = false;
  for (const SlotId nb : former_neighbors) {
    if (!state_[nb].active) continue;
    state_[nb].queue.remove(s);
    state_[nb].timer = params_.init_timer_s;
  }
}

void PropEngine::edge_added(SlotId a, SlotId b) {
  ensure_state_capacity();
  for (const auto& [self, other] : {std::pair{a, b}, std::pair{b, a}}) {
    if (!state_[self].active) continue;
    if (!state_[self].queue.contains(other)) {
      state_[self].queue.add_front(other);
    }
    state_[self].timer = params_.init_timer_s;
  }
}

double PropEngine::timer_of(SlotId s) const {
  PROPSIM_CHECK(s < state_.size());
  return state_[s].timer;
}

bool PropEngine::in_maintenance(SlotId s) const {
  PROPSIM_CHECK(s < state_.size());
  return state_[s].trials >= params_.max_init_trial;
}

const NeighborQueue& PropEngine::queue_of(SlotId s) const {
  PROPSIM_CHECK(s < state_.size());
  return state_[s].queue;
}

}  // namespace propsim
