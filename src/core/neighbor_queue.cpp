#include "core/neighbor_queue.h"

#include <algorithm>

#include "common/check.h"

namespace propsim {

void NeighborQueue::initialize(std::span<const SlotId> neighbors, Rng& rng) {
  entries_.clear();
  entries_.reserve(neighbors.size());
  std::vector<SlotId> order(neighbors.begin(), neighbors.end());
  rng.shuffle(order);
  for (std::size_t i = 0; i < order.size(); ++i) {
    entries_.push_back(Entry{order[i], static_cast<double>(i)});
  }
}

std::size_t NeighborQueue::find(SlotId s) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].slot == s) return i;
  }
  return entries_.size();
}

double NeighborQueue::min_rank() const {
  PROPSIM_CHECK(!entries_.empty());
  double best = entries_.front().rank;
  for (const Entry& e : entries_) best = std::min(best, e.rank);
  return best;
}

double NeighborQueue::max_rank() const {
  PROPSIM_CHECK(!entries_.empty());
  double best = entries_.front().rank;
  for (const Entry& e : entries_) best = std::max(best, e.rank);
  return best;
}

std::optional<SlotId> NeighborQueue::front() const {
  if (entries_.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    // Ties break toward the lower slot id for determinism.
    if (entries_[i].rank < entries_[best].rank ||
        (entries_[i].rank == entries_[best].rank &&
         entries_[i].slot < entries_[best].slot)) {
      best = i;
    }
  }
  return entries_[best].slot;
}

void NeighborQueue::on_success(SlotId s) {
  const std::size_t i = find(s);
  if (i == entries_.size()) return;  // neighbor moved away mid-exchange
  entries_[i].rank -= 1.0;
}

void NeighborQueue::on_failure(SlotId s) {
  const std::size_t i = find(s);
  if (i == entries_.size()) return;
  entries_[i].rank = max_rank() + 1.0;
}

void NeighborQueue::add_front(SlotId s) {
  PROPSIM_CHECK(find(s) == entries_.size());
  const double rank = entries_.empty() ? 0.0 : min_rank() - 1.0;
  entries_.push_back(Entry{s, rank});
}

void NeighborQueue::remove(SlotId s) {
  const std::size_t i = find(s);
  if (i == entries_.size()) return;
  entries_[i] = entries_.back();
  entries_.pop_back();
}

double NeighborQueue::rank_of(SlotId s) const {
  const std::size_t i = find(s);
  PROPSIM_CHECK(i != entries_.size());
  return entries_[i].rank;
}

}  // namespace propsim
