#include "core/exchange.h"

#include <algorithm>

namespace propsim {
namespace {

/// Neighbors of `self` that may legally move to `other` in a PROP-O
/// exchange: not on the probe path, not the counterpart itself, and not
/// already adjacent to the counterpart (no duplicate edges).
std::vector<SlotId> transferable_neighbors(const OverlayNetwork& net,
                                           SlotId self, SlotId other,
                                           std::span<const SlotId> path) {
  std::vector<SlotId> out;
  for (const SlotId x : net.graph().neighbors(self)) {
    if (x == other) continue;
    if (std::find(path.begin(), path.end(), x) != path.end()) continue;
    if (net.graph().has_edge(other, x)) continue;
    out.push_back(x);
  }
  return out;
}

/// Keeps the k candidates with the largest latency improvement
/// d(self, x) - d(other, x), i.e. those much closer to the counterpart.
void select_greedy(const OverlayNetwork& net, SlotId self, SlotId other,
                   std::vector<SlotId>& candidates, std::size_t k) {
  std::sort(candidates.begin(), candidates.end(),
            [&](SlotId a, SlotId b) {
              const double gain_a =
                  net.slot_latency(self, a) - net.slot_latency(other, a);
              const double gain_b =
                  net.slot_latency(self, b) - net.slot_latency(other, b);
              if (gain_a != gain_b) return gain_a > gain_b;
              return a < b;  // deterministic tie-break
            });
  candidates.resize(k);
}

void select_random(std::vector<SlotId>& candidates, std::size_t k, Rng& rng) {
  rng.shuffle(candidates);
  candidates.resize(k);
  std::sort(candidates.begin(), candidates.end());
}

}  // namespace

double prop_g_var(const OverlayNetwork& net, SlotId u, SlotId v) {
  PROPSIM_CHECK(u != v);
  const LatencyOracle& oracle = net.oracle();
  const NodeId host_u = net.placement().host_of(u);
  const NodeId host_v = net.placement().host_of(v);

  // Before: each host sums latency to the hosts of its slot's neighbors.
  const double before = net.neighbor_latency_sum(u) +
                        net.neighbor_latency_sum(v);

  // After the swap host_u serves slot v and vice versa. A neighbor slot
  // that is the counterpart's slot then hosts the *other* peer, so the
  // u—v edge latency (if the slots are adjacent) is unchanged.
  double after = 0.0;
  for (const SlotId i : net.graph().neighbors(v)) {
    const NodeId hi = (i == u) ? host_v : net.placement().host_of(i);
    after += oracle.latency(host_u, hi);
  }
  for (const SlotId i : net.graph().neighbors(u)) {
    const NodeId hi = (i == v) ? host_u : net.placement().host_of(i);
    after += oracle.latency(host_v, hi);
  }
  return before - after;
}

ExchangePlan plan_prop_g(const OverlayNetwork& net, SlotId u, SlotId v) {
  ExchangePlan plan;
  plan.mode = PropMode::kPropG;
  plan.u = u;
  plan.v = v;
  plan.var = prop_g_var(net, u, v);
  return plan;
}

std::optional<ExchangePlan> plan_prop_o(const OverlayNetwork& net, SlotId u,
                                        SlotId v, std::span<const SlotId> path,
                                        std::size_t m,
                                        SelectionPolicy selection, Rng& rng) {
  PROPSIM_CHECK(u != v);
  PROPSIM_CHECK(m >= 1);
  std::vector<SlotId> from_u = transferable_neighbors(net, u, v, path);
  std::vector<SlotId> from_v = transferable_neighbors(net, v, u, path);
  // Equal-sized sets keep every degree unchanged (Section 3.1: "exchange
  // equal number of connections ... so the topology can maintain its
  // essential features").
  const std::size_t k = std::min({m, from_u.size(), from_v.size()});
  if (k == 0) return std::nullopt;

  switch (selection) {
    case SelectionPolicy::kGreedy:
      select_greedy(net, u, v, from_u, k);
      select_greedy(net, v, u, from_v, k);
      break;
    case SelectionPolicy::kRandom:
      select_random(from_u, k, rng);
      select_random(from_v, k, rng);
      break;
  }

  ExchangePlan plan;
  plan.mode = PropMode::kPropO;
  plan.u = u;
  plan.v = v;
  plan.from_u = std::move(from_u);
  plan.from_v = std::move(from_v);

  // Var (eq. 2): latency mass dropped minus latency mass picked up.
  double var = 0.0;
  for (const SlotId a : plan.from_u) {
    var += net.slot_latency(u, a) - net.slot_latency(v, a);
  }
  for (const SlotId b : plan.from_v) {
    var += net.slot_latency(v, b) - net.slot_latency(u, b);
  }
  plan.var = var;
  return plan;
}

void apply_exchange(OverlayNetwork& net, const ExchangePlan& plan) {
  switch (plan.mode) {
    case PropMode::kPropG:
      net.placement().swap_slots(plan.u, plan.v);
      return;
    case PropMode::kPropO: {
      PROPSIM_CHECK(plan.from_u.size() == plan.from_v.size());
      LogicalGraph& g = net.graph();
      for (const SlotId a : plan.from_u) {
        g.remove_edge(plan.u, a);
        g.add_edge(plan.v, a);
      }
      for (const SlotId b : plan.from_v) {
        g.remove_edge(plan.v, b);
        g.add_edge(plan.u, b);
      }
      return;
    }
  }
  PROPSIM_CHECK(false && "unknown exchange mode");
}

double measured_gain(const OverlayNetwork& net, const ExchangePlan& plan) {
  const double before =
      net.neighbor_latency_sum(plan.u) + net.neighbor_latency_sum(plan.v);
  OverlayNetwork scratch = net;
  apply_exchange(scratch, plan);
  const double after = scratch.neighbor_latency_sum(plan.u) +
                       scratch.neighbor_latency_sum(plan.v);
  return before - after;
}

}  // namespace propsim
