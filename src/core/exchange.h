// Peer-exchange planning and execution — the PROP primitive.
//
// Planning is a pure function of the overlay state, so Var computation,
// candidate filtering and the connectivity/degree invariants are unit-
// testable without running the protocol engine.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/params.h"
#include "overlay/overlay_network.h"

namespace propsim {

struct ExchangePlan {
  PropMode mode = PropMode::kPropG;
  SlotId u = kInvalidSlot;
  SlotId v = kInvalidSlot;
  /// PROP-O transfer sets: u hands from_u to v, v hands from_v to u.
  /// Equal sizes by construction; empty for PROP-G.
  std::vector<SlotId> from_u;
  std::vector<SlotId> from_v;
  /// Predicted accumulated-latency gain (the paper's Var, eq. 2);
  /// positive means the exchange reduces the summed neighbor latencies.
  double var = 0.0;
};

/// Var for a PROP-G position swap of slots u and v (handles adjacent u,v
/// and shared neighbors exactly).
double prop_g_var(const OverlayNetwork& net, SlotId u, SlotId v);

/// Plans a PROP-G swap; always yields a plan (the caller gates on var).
ExchangePlan plan_prop_g(const OverlayNetwork& net, SlotId u, SlotId v);

/// Plans a PROP-O exchange of up to `m` neighbors per side. `path` is the
/// probe walk u ... v; per Theorem 1 no neighbor on the path may move
/// (that keeps u—v connected afterwards). Transferable neighbors also
/// exclude the counterpart and anything already adjacent to it. Returns
/// nullopt when either side has no transferable neighbor.
std::optional<ExchangePlan> plan_prop_o(const OverlayNetwork& net, SlotId u,
                                        SlotId v, std::span<const SlotId> path,
                                        std::size_t m,
                                        SelectionPolicy selection, Rng& rng);

/// Applies a plan: PROP-G swaps the placement, PROP-O rewires edges.
/// Degrees are preserved for PROP-O; the logical graph is untouched for
/// PROP-G.
void apply_exchange(OverlayNetwork& net, const ExchangePlan& plan);

/// Actual change in summed neighbor latencies caused by applying `plan`
/// (for tests: must equal plan.var).
double measured_gain(const OverlayNetwork& net, const ExchangePlan& plan);

}  // namespace propsim
