// The paper's neighborQ: orders a node's neighbors for probe first-hop
// selection.
//
// Lower rank = probed sooner. On a successful exchange the probed
// neighbor's rank drops by 1 ("chosen in the near future"); on failure it
// moves to the tail; churn-added neighbors enter at the front with
// maximum priority. Degrees are small, so a flat vector beats a heap.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "overlay/logical_graph.h"

namespace propsim {

class NeighborQueue {
 public:
  /// Seeds the queue with a uniformly random permutation of `neighbors`
  /// (every neighbor equally likely to be probed first, per the paper).
  void initialize(std::span<const SlotId> neighbors, Rng& rng);

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  bool contains(SlotId s) const { return find(s) != entries_.size(); }

  /// The neighbor with the lowest rank (next probe first-hop).
  std::optional<SlotId> front() const;

  /// Successful exchange through s: decrease its rank by 1.
  void on_success(SlotId s);

  /// Failed attempt through s: move it to the tail.
  void on_failure(SlotId s);

  /// New neighbor (churn or exchange rewire): enters at the front.
  void add_front(SlotId s);

  /// Neighbor lost; no-op if absent.
  void remove(SlotId s);

  /// Current rank of a contained neighbor (for tests).
  double rank_of(SlotId s) const;

 private:
  struct Entry {
    SlotId slot;
    double rank;
  };

  std::size_t find(SlotId s) const;
  double min_rank() const;
  double max_rank() const;

  std::vector<Entry> entries_;
};

}  // namespace propsim
