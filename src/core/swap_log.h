// Forwarding-cache model for in-flight lookups during peer-exchange.
//
// When PROP-G commits, both peers "cache the address of their
// counterparts so that the lookups in progress during peer-exchange can
// be forwarded correctly" (Section 3.2). Routing state elsewhere is
// briefly stale: a lookup that reaches an exchanged position within the
// propagation window is served by the peer now at that position, which
// forwards it one extra (cached) hop to the intended peer's new
// position. SwapLog records commits and prices that transient penalty,
// so benches can quantify the claim that it is negligible against the
// steady-state gain.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "overlay/overlay_network.h"

namespace propsim {

class SwapLog {
 public:
  /// Records a committed PROP-G exchange of slots u and v at sim-time t
  /// (seconds). Times must be non-decreasing.
  void record(double time, SlotId u, SlotId v);

  std::size_t size() const { return entries_.size(); }

  /// Drops entries older than `before` (amortized bookkeeping).
  void prune(double before);

  /// Counts hops of `path` that land on a slot whose exchange committed
  /// within (now - window, now].
  std::size_t stale_hops(std::span<const SlotId> path, double now,
                         double window) const;

  /// Lookup latency along `path` including the forwarding penalty: each
  /// stale hop pays one extra traversal between the two swapped
  /// positions (the cached-counterpart forward).
  double transient_path_latency(const OverlayNetwork& net,
                                std::span<const SlotId> path, double now,
                                double window) const;

 private:
  struct Entry {
    double time;
    SlotId u;
    SlotId v;
  };

  /// Most recent swap involving `s` within the window; nullptr if none.
  const Entry* recent_swap(SlotId s, double now, double window) const;

  std::vector<Entry> entries_;  // time-ordered
};

}  // namespace propsim
