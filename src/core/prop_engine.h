// PropEngine: the event-driven PROP protocol (warm-up + maintenance).
//
// Each active overlay slot runs the per-node state machine of the paper's
// Section 3.2 on the shared discrete-event clock: periodic probes walk
// nhops away, evaluate Var against a potential counterpart, and commit
// the exchange when Var > MIN_VAR. Maintenance adds the neighborQ
// priority feedback and the Markov-chain timer backoff.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "adversary/adversary.h"
#include "common/rng.h"
#include "core/exchange.h"
#include "core/neighbor_queue.h"
#include "core/params.h"
#include "core/swap_log.h"
#include "faults/fault_plan.h"
#include "overlay/overlay_network.h"
#include "sim/scheduler.h"

namespace propsim {

class PropEngine {
 public:
  struct Stats {
    std::uint64_t attempts = 0;       // probe trials started
    std::uint64_t walk_failures = 0;  // walk could not reach nhops depth
    std::uint64_t planned = 0;        // plans evaluated against MIN_VAR
    std::uint64_t exchanges = 0;      // committed exchanges
    std::uint64_t rejected = 0;       // plans with Var <= MIN_VAR
    std::uint64_t commit_conflicts = 0;  // delayed commits invalidated by
                                         // a concurrent change
    std::uint64_t timeouts = 0;   // negotiation messages lost to faults
    std::uint64_t retries = 0;    // prepare retransmissions sent
    std::uint64_t aborted_mid_commit = 0;  // two-phase exchanges dropped
                                           // after a successful prepare
    double total_var_gain = 0.0;      // summed Var of committed exchanges
    double last_exchange_time = 0.0;
  };

  /// The engine keeps references to `net` and `sim`; both must outlive it.
  PropEngine(OverlayNetwork& net, Scheduler& sim, const PropParams& params,
             std::uint64_t seed);

  /// Initializes per-node state and schedules the first probe of every
  /// active slot (staggered uniformly over one INIT_TIMER).
  void start();

  /// Cancels all pending probes.
  void stop();

  /// Runs one probe attempt for `u` immediately (tests / manual driving).
  /// Returns true if an exchange was committed.
  bool attempt(SlotId u);

  /// Churn hooks. Call node_joined after the slot is active and wired
  /// into the logical graph; call node_left after its edges are gone.
  /// Surviving neighbors' queues and timers are adjusted here.
  void node_joined(SlotId s, std::span<const SlotId> new_neighbors);
  void node_left(SlotId s, std::span<const SlotId> former_neighbors);

  /// Repair hook: an edge a—b was added between two existing active
  /// peers (failure repair, manual rewiring). Both ends treat the other
  /// as a fresh neighbor: front of neighborQ, timer reset.
  void edge_added(SlotId a, SlotId b);

  const Stats& stats() const { return stats_; }
  const PropParams& params() const { return params_; }

  /// Effective PROP-O exchange size (params.m, or delta(G) captured at
  /// start() when params.m == 0).
  std::size_t exchange_size() const { return effective_m_; }

  /// Optional sink for committed PROP-G swaps (transient-forwarding
  /// studies; see core/swap_log.h). Not owned; may be null.
  void set_swap_log(SwapLog* log) { swap_log_ = log; }

  /// Attaches a fault injector (not owned, may be null). With faults
  /// attached every negotiation runs the hardened two-phase
  /// prepare/commit path — both endpoints lock for the negotiation
  /// window, prepare losses time out and retry up to the injector's
  /// budget, and a crash of either endpoint mid-swap aborts cleanly —
  /// even when model_message_delays is off. Without an injector the
  /// engine is byte-for-byte the fault-free protocol.
  void set_faults(FaultInjector* faults) { faults_ = faults; }

  /// Attaches a byzantine behavior layer (not owned, may be null). The
  /// layer intercepts the negotiation path at four points: probe timers
  /// of sitting-out peers (free-riders, captured eclipse attackers),
  /// counterpart selection (eclipse steering), the MIN_VAR gate (liars
  /// distort the *decision* — the applied plan is always the true one,
  /// so Theorems 1/2 hold under any lie) and the commit leg (selective
  /// droppers). Attaching it engages the hardened two-phase path even
  /// without faults; detached, the engine is byte-for-byte honest.
  void set_adversary(AdversaryLayer* adversary) { adversary_ = adversary; }

  /// One committed exchange, as reported to the observer.
  struct ExchangeEvent {
    double time = 0.0;
    PropMode mode = PropMode::kPropG;
    SlotId u = kInvalidSlot;
    SlotId v = kInvalidSlot;
    double var = 0.0;
    std::size_t transferred = 0;  // m for PROP-O, 0 for PROP-G
  };
  using ExchangeObserver = std::function<void(const ExchangeEvent&)>;

  /// Observability hook: called after every committed exchange (event
  /// timelines, live dashboards, trace dumps). May be empty.
  void set_observer(ExchangeObserver observer) {
    observer_ = std::move(observer);
  }

  /// Two-phase negotiation counterpart of `s`, kInvalidSlot when idle or
  /// out of range. Lock-audit hook (analysis/invariant_checker.h).
  SlotId negotiation_peer(SlotId s) const {
    return s < state_.size() ? state_[s].peer : kInvalidSlot;
  }

  /// True when the engine owns a scheduled simulator event for `s` (next
  /// probe, prepare retransmission or pending commit). Lock-audit hook.
  bool has_pending_event(SlotId s) const {
    return s < state_.size() && state_[s].pending != kInvalidEvent;
  }

  /// Slots the engine tracks state for (>= the graph's slot count once
  /// started). Lock-audit hook.
  std::size_t tracked_slots() const { return state_.size(); }

  /// Current probe timer of a slot (tests/benches).
  double timer_of(SlotId s) const;
  bool in_maintenance(SlotId s) const;
  const NeighborQueue& queue_of(SlotId s) const;

 private:
  struct NodeState {
    NeighborQueue queue;
    double timer = 0.0;
    std::size_t trials = 0;
    EventId pending = kInvalidEvent;
    bool active = false;
    /// Two-phase negotiation lock: the counterpart this node is prepared
    /// with (kInvalidSlot when idle). Only ever set while a fault
    /// injector or an adversary layer is attached.
    SlotId peer = kInvalidSlot;
  };

  void ensure_state_capacity();
  void init_node(SlotId s);
  void schedule_probe(SlotId s, double delay);
  void reschedule_sooner(SlotId s, double delay);
  void on_probe_timer(SlotId s);
  /// Delayed-commit path: re-plans and applies after the negotiation
  /// round-trips; updates queue/timer and schedules the next probe.
  void commit_after_delay(SlotId u, SlotId first_hop, SlotId v,
                          std::vector<SlotId> path);
  /// Hardened two-phase negotiation (faults attached): prepare leg with
  /// bounded retransmission, endpoint locks, then the delayed commit.
  void begin_negotiation(SlotId u, SlotId first_hop, SlotId v,
                         std::vector<SlotId> path, std::size_t retries_used);
  void finish_two_phase(SlotId u, SlotId first_hop, SlotId v,
                        std::vector<SlotId> path);
  /// Re-validates the path, re-plans from fresh state and applies;
  /// returns false (emitting nothing) when the plan no longer holds.
  bool validate_and_apply(SlotId u, SlotId first_hop, SlotId v,
                          const std::vector<SlotId>& path);
  void abort_with_reason(SlotId u, SlotId v, obs::AbortReason reason);
  void release_lock(SlotId u, SlotId v);
  /// Simulated duration of one probe negotiation (walk + probe RTTs).
  double negotiation_delay_s(std::span<const SlotId> path) const;
  void handle_success(SlotId u, SlotId first_hop);
  void handle_failure(SlotId u, SlotId first_hop);
  void notify_observer(const ExchangePlan& plan);
  /// The plan as one endpoint's selfish perspective (adversary models).
  ExchangeView view_of(const ExchangePlan& plan) const;
  /// The Var the MIN_VAR gate sees: the true Var, unless an attached
  /// adversary distorts it.
  double gate_var(const ExchangePlan& plan);
  /// Queue/notification updates on third parties after a committed plan.
  void propagate_exchange_effects(const ExchangePlan& plan);
  void charge_messages(const ExchangePlan& plan, std::size_t walk_len,
                       bool committed);

  OverlayNetwork& net_;
  Scheduler& sim_;
  PropParams params_;
  Rng rng_;
  std::vector<NodeState> state_;
  SwapLog* swap_log_ = nullptr;
  FaultInjector* faults_ = nullptr;
  AdversaryLayer* adversary_ = nullptr;
  ExchangeObserver observer_;
  Stats stats_;
  std::size_t effective_m_ = 1;
  bool started_ = false;
};

}  // namespace propsim
