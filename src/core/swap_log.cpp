#include "core/swap_log.h"

#include <algorithm>

#include "common/check.h"

namespace propsim {

void SwapLog::record(double time, SlotId u, SlotId v) {
  PROPSIM_CHECK(entries_.empty() || time >= entries_.back().time);
  PROPSIM_CHECK(u != v);
  entries_.push_back(Entry{time, u, v});
}

void SwapLog::prune(double before) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), before,
      [](const Entry& e, double t) { return e.time < t; });
  entries_.erase(entries_.begin(), it);
}

const SwapLog::Entry* SwapLog::recent_swap(SlotId s, double now,
                                           double window) const {
  // Scan backwards from the newest entry; entries are time-ordered.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->time <= now - window) break;
    if (it->time > now) continue;  // recorded "later" during same event
    if (it->u == s || it->v == s) return &*it;
  }
  return nullptr;
}

std::size_t SwapLog::stale_hops(std::span<const SlotId> path, double now,
                                double window) const {
  std::size_t stale = 0;
  // The source (path[0]) routes with its own fresh state; intermediate
  // and final hops may be reached through stale third-party pointers.
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (recent_swap(path[i], now, window) != nullptr) ++stale;
  }
  return stale;
}

double SwapLog::transient_path_latency(const OverlayNetwork& net,
                                       std::span<const SlotId> path,
                                       double now, double window) const {
  double total = path_latency(net, path);
  for (std::size_t i = 1; i < path.size(); ++i) {
    const Entry* swap = recent_swap(path[i], now, window);
    if (swap == nullptr) continue;
    // The cached-counterpart forward: one traversal between the two
    // swapped positions under the current placement.
    total += net.slot_latency(swap->u, swap->v);
  }
  return total;
}

}  // namespace propsim
