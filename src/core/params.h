// PROP protocol parameters (Section 3.2 of the paper).
//
// Defaults follow the paper where stated, or DESIGN.md's documented
// substitutions where the scraped text lost the digits.
#pragma once

#include <cstddef>

namespace propsim {

enum class PropMode {
  kPropG,  // exchange all neighbors == swap overlay positions
  kPropO,  // exchange m neighbors, degree-preserving
};

/// How PROP-O picks which m neighbors each side hands over.
enum class SelectionPolicy {
  /// Maximize the predicted Var: each side gives away the neighbors with
  /// the largest d(self, x) - d(counterpart, x).
  kGreedy,
  /// Uniformly random transferable neighbors — the paper's literal
  /// "arbitrary m neighbors" reading; kept for the ablation bench.
  kRandom,
};

struct PropParams {
  PropMode mode = PropMode::kPropG;

  /// TTL of the counterpart-finding random walk (the paper's nhops).
  std::size_t nhops = 2;

  /// Figure 5(a)/6(a) comparison scenario: probe a uniformly random node
  /// instead of walking (impractical in a real deployment; upper bound).
  bool random_target = false;

  /// PROP-O exchange size; 0 means "use delta(G)", the overlay's minimum
  /// degree, which is the paper's default.
  std::size_t m = 0;

  SelectionPolicy selection = SelectionPolicy::kGreedy;

  /// Minimum Var gain required to commit an exchange. The paper's
  /// Section 4.2 analysis sets MIN_VAR = 0.
  double min_var = 0.0;

  /// Warm-up length in probe trials before entering maintenance.
  std::size_t max_init_trial = 10;

  /// Base probe interval (seconds). The paper uses 1 minute.
  double init_timer_s = 60.0;

  /// MAX_TIMER = 2^max_backoff_doublings * INIT_TIMER ("at most five
  /// times of suspending").
  std::size_t max_backoff_doublings = 5;

  /// Ablation switches: the Markov-chain timer backoff and the
  /// priority-ordered neighborQ can be disabled independently.
  bool use_backoff = true;
  bool use_priority_queue = true;

  /// Model the negotiation round-trips: a positive-Var exchange commits
  /// only after the walk + probe message latency has elapsed on the
  /// simulated clock, and the plan is re-validated against the
  /// (possibly changed) overlay right before applying — concurrent
  /// exchanges can now conflict, as in a real deployment. Off by
  /// default: the paper's analysis treats exchanges as atomic.
  bool model_message_delays = false;

  double max_timer_s() const {
    return init_timer_s * static_cast<double>(std::size_t{1}
                                              << max_backoff_doublings);
  }
};

}  // namespace propsim
