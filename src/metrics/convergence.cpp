#include "metrics/convergence.h"

#include "common/check.h"

namespace propsim {

ConvergenceSampler::ConvergenceSampler(Scheduler& sim,
                                       std::string series_name,
                                       double start_s, double end_s,
                                       double interval_s, MetricFn metric) {
  PROPSIM_CHECK(metric != nullptr);
  series_.emplace_back(std::move(series_name));
  metrics_.push_back(std::move(metric));
  schedule(sim, start_s, end_s, interval_s);
}

ConvergenceSampler::ConvergenceSampler(Scheduler& sim, double start_s,
                                       double end_s, double interval_s,
                                       PrepareFn prepare,
                                       std::vector<NamedMetric> metrics)
    : prepare_(std::move(prepare)) {
  PROPSIM_CHECK(!metrics.empty());
  series_.reserve(metrics.size());
  metrics_.reserve(metrics.size());
  for (NamedMetric& m : metrics) {
    PROPSIM_CHECK(m.fn != nullptr);
    series_.emplace_back(std::move(m.name));
    metrics_.push_back(std::move(m.fn));
  }
  schedule(sim, start_s, end_s, interval_s);
}

void ConvergenceSampler::schedule(Scheduler& sim, double start_s,
                                  double end_s, double interval_s) {
  PROPSIM_CHECK(interval_s > 0.0);
  PROPSIM_CHECK(end_s >= start_s);
  for (double t = start_s; t <= end_s + 1e-9; t += interval_s) {
    sim.schedule_at(t, [this, &sim] {
      if (prepare_ && (!guard_ || guard_())) {
        prepare_();
        ++prepared_ticks_;
      }
      for (std::size_t i = 0; i < metrics_.size(); ++i) {
        series_[i].record(sim.now(), metrics_[i]());
      }
    });
  }
}

}  // namespace propsim
