#include "metrics/convergence.h"

#include "common/check.h"

namespace propsim {

ConvergenceSampler::ConvergenceSampler(Simulator& sim,
                                       std::string series_name,
                                       double start_s, double end_s,
                                       double interval_s, MetricFn metric)
    : series_(std::move(series_name)), metric_(std::move(metric)) {
  PROPSIM_CHECK(interval_s > 0.0);
  PROPSIM_CHECK(end_s >= start_s);
  PROPSIM_CHECK(metric_ != nullptr);
  for (double t = start_s; t <= end_s + 1e-9; t += interval_s) {
    sim.schedule_at(t, [this, &sim] { series_.record(sim.now(), metric_()); });
  }
}

}  // namespace propsim
