// Evaluation metrics: average lookup latency, average latency (AL) and
// stretch, exactly as defined in Section 4.2 of the paper.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "chord/chord_ring.h"
#include "common/rng.h"
#include "measure/measure_engine.h"
#include "overlay/overlay_network.h"

namespace propsim {

// QueryPair, RouteLatencyFn and StretchResult live in measure/query.h
// (shared with the parallel measurement engine); the serial helpers
// below delegate to a one-worker MeasureEngine and stay bit-identical
// to their historical implementations.

/// Samples `count` (src != dst) pairs uniformly over active slots.
std::vector<QueryPair> sample_query_pairs(const LogicalGraph& graph,
                                          std::size_t count, Rng& rng);

/// Mean of fn over the queries.
double average_route_latency(std::span<const QueryPair> queries,
                             const RouteLatencyFn& fn);

/// Mean *direct* (physical shortest-path) latency over the queries —
/// the paper's physical AL restricted to the sampled pairs.
double average_direct_latency(const OverlayNetwork& net,
                              std::span<const QueryPair> queries);

/// Stretch over the queries with the given router.
StretchResult stretch(const OverlayNetwork& net,
                      std::span<const QueryPair> queries,
                      const RouteLatencyFn& fn);

/// Unstructured-overlay lookup latencies: for each query, the idealized
/// flood first-response latency (min-latency overlay path from source to
/// destination, plus per-hop processing delay when provided). Queries
/// are grouped by source so each source runs one Dijkstra.
std::vector<double> unstructured_lookup_latencies(
    const OverlayNetwork& net, std::span<const QueryPair> queries,
    const std::vector<double>* processing_delay_ms = nullptr);

/// Mean of unstructured_lookup_latencies.
double average_unstructured_lookup_latency(
    const OverlayNetwork& net, std::span<const QueryPair> queries,
    const std::vector<double>* processing_delay_ms = nullptr);

/// Router over a Chord ring under the overlay's current placement.
RouteLatencyFn chord_router(const OverlayNetwork& net, const ChordRing& ring,
                            const std::vector<double>* processing_delay_ms =
                                nullptr);

}  // namespace propsim
