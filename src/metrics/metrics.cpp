#include "metrics/metrics.h"

#include <algorithm>
#include <numeric>

namespace propsim {

std::vector<QueryPair> sample_query_pairs(const LogicalGraph& graph,
                                          std::size_t count, Rng& rng) {
  const auto slots = graph.active_slots();
  PROPSIM_CHECK(slots.size() >= 2);
  std::vector<QueryPair> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const SlotId src =
        slots[static_cast<std::size_t>(rng.uniform(slots.size()))];
    SlotId dst;
    do {
      dst = slots[static_cast<std::size_t>(rng.uniform(slots.size()))];
    } while (dst == src);
    pairs.push_back(QueryPair{src, dst});
  }
  return pairs;
}

double average_route_latency(std::span<const QueryPair> queries,
                             const RouteLatencyFn& fn) {
  PROPSIM_CHECK(!queries.empty());
  double sum = 0.0;
  for (const QueryPair& q : queries) sum += fn(q);
  return sum / static_cast<double>(queries.size());
}

double average_direct_latency(const OverlayNetwork& net,
                              std::span<const QueryPair> queries) {
  PROPSIM_CHECK(!queries.empty());
  double sum = 0.0;
  for (const QueryPair& q : queries) sum += net.slot_latency(q.src, q.dst);
  return sum / static_cast<double>(queries.size());
}

StretchResult stretch(const OverlayNetwork& net,
                      std::span<const QueryPair> queries,
                      const RouteLatencyFn& fn) {
  StretchResult r;
  r.logical_al = average_route_latency(queries, fn);
  r.physical_al = average_direct_latency(net, queries);
  PROPSIM_CHECK(r.physical_al > 0.0);
  r.stretch = r.logical_al / r.physical_al;
  return r;
}

std::vector<double> unstructured_lookup_latencies(
    const OverlayNetwork& net, std::span<const QueryPair> queries,
    const std::vector<double>* processing_delay_ms) {
  // One Dijkstra per distinct source: sort query indices by source.
  std::vector<std::size_t> order(queries.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return queries[a].src < queries[b].src;
  });
  std::vector<double> out(queries.size(), 0.0);
  std::vector<double> dist;
  SlotId current = kInvalidSlot;
  for (const std::size_t idx : order) {
    const QueryPair& q = queries[idx];
    if (q.src != current) {
      current = q.src;
      dist = net.flood_latencies(current, processing_delay_ms);
    }
    out[idx] = dist[q.dst];
  }
  return out;
}

double average_unstructured_lookup_latency(
    const OverlayNetwork& net, std::span<const QueryPair> queries,
    const std::vector<double>* processing_delay_ms) {
  PROPSIM_CHECK(!queries.empty());
  const auto lat =
      unstructured_lookup_latencies(net, queries, processing_delay_ms);
  double sum = 0.0;
  for (const double v : lat) sum += v;
  return sum / static_cast<double>(lat.size());
}

RouteLatencyFn chord_router(const OverlayNetwork& net, const ChordRing& ring,
                            const std::vector<double>* processing_delay_ms) {
  return [&net, &ring, processing_delay_ms](const QueryPair& q) {
    // Look up the key owned by the destination slot, so the greedy walk
    // terminates exactly there.
    const auto path = ring.lookup_path(q.src, ring.id_of(q.dst));
    return path_latency(net, path, processing_delay_ms);
  };
}

}  // namespace propsim
