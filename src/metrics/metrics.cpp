#include "metrics/metrics.h"

namespace propsim {

std::vector<QueryPair> sample_query_pairs(const LogicalGraph& graph,
                                          std::size_t count, Rng& rng) {
  const auto slots = graph.active_slots();
  PROPSIM_CHECK(slots.size() >= 2);
  std::vector<QueryPair> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const SlotId src =
        slots[static_cast<std::size_t>(rng.uniform(slots.size()))];
    SlotId dst;
    do {
      dst = slots[static_cast<std::size_t>(rng.uniform(slots.size()))];
    } while (dst == src);
    pairs.push_back(QueryPair{src, dst});
  }
  return pairs;
}

// The serial helpers delegate to a one-worker MeasureEngine; the
// engine's serial path performs the identical operations in the
// identical order, so values are bit-equal to the pre-engine code.

double average_route_latency(std::span<const QueryPair> queries,
                             const RouteLatencyFn& fn) {
  MeasureEngine serial(1);
  return serial.average_route_latency(queries, fn);
}

double average_direct_latency(const OverlayNetwork& net,
                              std::span<const QueryPair> queries) {
  MeasureEngine serial(1);
  return serial.average_direct_latency(net, queries);
}

StretchResult stretch(const OverlayNetwork& net,
                      std::span<const QueryPair> queries,
                      const RouteLatencyFn& fn) {
  MeasureEngine serial(1);
  return serial.stretch(net, queries, fn);
}

std::vector<double> unstructured_lookup_latencies(
    const OverlayNetwork& net, std::span<const QueryPair> queries,
    const std::vector<double>* processing_delay_ms) {
  MeasureEngine serial(1);
  return serial.lookup_latencies(OverlaySnapshot::capture(net), queries,
                                 processing_delay_ms);
}

double average_unstructured_lookup_latency(
    const OverlayNetwork& net, std::span<const QueryPair> queries,
    const std::vector<double>* processing_delay_ms) {
  PROPSIM_CHECK(!queries.empty());
  const auto lat =
      unstructured_lookup_latencies(net, queries, processing_delay_ms);
  double sum = 0.0;
  for (const double v : lat) sum += v;
  return sum / static_cast<double>(lat.size());
}

RouteLatencyFn chord_router(const OverlayNetwork& net, const ChordRing& ring,
                            const std::vector<double>* processing_delay_ms) {
  return [&net, &ring, processing_delay_ms](const QueryPair& q) {
    // Look up the key owned by the destination slot, so the greedy walk
    // terminates exactly there.
    const auto path = ring.lookup_path(q.src, ring.id_of(q.dst));
    return path_latency(net, path, processing_delay_ms);
  };
}

}  // namespace propsim
