// Periodic metric sampling on the simulated clock — produces the
// "metric vs time" series the paper's figures plot.
#pragma once

#include <functional>

#include "common/timeseries.h"
#include "sim/simulator.h"

namespace propsim {

/// Samples `metric()` every `interval_s` from t=start_s through t=end_s
/// inclusive (events scheduled up front; the simulator interleaves them
/// with protocol activity). The sampler must outlive the simulation run.
class ConvergenceSampler {
 public:
  using MetricFn = std::function<double()>;

  ConvergenceSampler(Simulator& sim, std::string series_name,
                     double start_s, double end_s, double interval_s,
                     MetricFn metric);

  const TimeSeries& series() const { return series_; }
  TimeSeries take_series() { return std::move(series_); }

 private:
  TimeSeries series_;
  MetricFn metric_;
};

}  // namespace propsim
