// Periodic metric sampling on the simulated clock — produces the
// "metric vs time" series the paper's figures plot.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/timeseries.h"
#include "sim/scheduler.h"

namespace propsim {

/// Samples metrics every `interval_s` from t=start_s through t=end_s
/// inclusive (events scheduled up front; the simulator interleaves them
/// with protocol activity). The sampler must outlive the simulation run.
///
/// Two forms:
///  - single metric: one MetricFn, one named series (the historical
///    API);
///  - batched: a `prepare` hook that runs once per tick (capture one
///    OverlaySnapshot, re-materialize slot delays, regenerate queries)
///    followed by several named metrics evaluated against that shared
///    state, each recording into its own series. Batching amortizes the
///    expensive per-tick setup across every metric instead of paying it
///    once per metric.
class ConvergenceSampler {
 public:
  using MetricFn = std::function<double()>;
  using PrepareFn = std::function<void()>;

  struct NamedMetric {
    std::string name;
    MetricFn fn;
  };

  /// Decides per tick whether the prepare hook must run; see
  /// set_prepare_guard.
  using PrepareGuard = std::function<bool()>;

  ConvergenceSampler(Scheduler& sim, std::string series_name,
                     double start_s, double end_s, double interval_s,
                     MetricFn metric);

  /// Batched form; `prepare` may be null when the metrics need no shared
  /// per-tick state.
  ConvergenceSampler(Scheduler& sim, double start_s, double end_s,
                     double interval_s, PrepareFn prepare,
                     std::vector<NamedMetric> metrics);

  /// Reuse hook: when set, each tick consults the guard and skips the
  /// prepare hook (keeping the previous tick's shared state) whenever it
  /// returns false. Sound only when a skipped prepare would have rebuilt
  /// identical state — e.g. recapturing an overlay snapshot while the
  /// trace bus shows no topology-affecting event since the last capture.
  /// Prepare hooks that consume RNG must not be guarded (skipping a draw
  /// changes every later draw). Call before the first tick fires.
  void set_prepare_guard(PrepareGuard guard) { guard_ = std::move(guard); }

  /// Ticks whose prepare hook actually ran; without a guard this equals
  /// the tick count (zero when there is no prepare hook at all).
  std::uint64_t prepared_ticks() const { return prepared_ticks_; }

  std::size_t series_count() const { return series_.size(); }
  const TimeSeries& series(std::size_t i = 0) const { return series_[i]; }
  TimeSeries take_series(std::size_t i = 0) {
    return std::move(series_[i]);
  }

 private:
  void schedule(Scheduler& sim, double start_s, double end_s,
                double interval_s);

  std::vector<TimeSeries> series_;  // parallel to metrics_
  PrepareFn prepare_;               // may be null
  PrepareGuard guard_;              // may be null (= always prepare)
  std::vector<MetricFn> metrics_;
  std::uint64_t prepared_ticks_ = 0;
};

}  // namespace propsim
