// Proximity Identifier Selection (PIS) baseline.
//
// Ratnasamy et al.'s topologically-aware overlay construction: every
// host measures its latency to a small set of landmark hosts, and hosts
// with the same landmark ordering (the same "bin") receive adjacent
// identifiers, so ring neighbors tend to be physically close.
#pragma once

#include <span>
#include <vector>

#include "chord/id_space.h"
#include "common/rng.h"
#include "obs/event_bus.h"
#include "topology/latency_oracle.h"

namespace propsim {

/// Landmark-ordering bin of one host: the permutation of landmark
/// indices sorted by latency (nearest first). A non-null `trace` gets
/// one kLandmarkProbe per host-landmark measurement.
std::vector<std::uint32_t> landmark_ordering(NodeId host,
                                             std::span<const NodeId> landmarks,
                                             const LatencyOracle& oracle,
                                             obs::EventBus* trace = nullptr);

/// Assigns Chord identifiers to `hosts`: hosts are sorted by landmark
/// ordering (ties broken by a seeded shuffle so equal bins spread out),
/// then ids are spaced evenly around the ring in that order. Hosts in the
/// same bin become ring-adjacent.
std::vector<ChordId> pis_identifiers(std::span<const NodeId> hosts,
                                     std::span<const NodeId> landmarks,
                                     const LatencyOracle& oracle, Rng& rng,
                                     obs::EventBus* trace = nullptr);

}  // namespace propsim
