// Topologically-aware CAN (Ratnasamy et al., INFOCOM 2002) — the PIS
// family member for CAN that the paper's related-work section singles
// out ("ensures that nodes which are close in the network topology are
// close in the node ID space ... only suitable for systems like CAN").
//
// Hosts are sorted by their landmark-ordering bin (physically close
// hosts share bins) and zones are sorted along a Z-order (Morton)
// space-filling curve of their centers (geometrically close zones are
// adjacent on the curve); matching the two orders hands nearby hosts
// nearby zones.
#pragma once

#include <span>
#include <vector>

#include "can/can_space.h"
#include "common/rng.h"
#include "topology/latency_oracle.h"

namespace propsim {

/// Z-order (Morton) key of a CAN point: interleaves the top 32 bits of
/// each coordinate. Points close in the plane get close keys.
std::uint64_t morton_key(const CanPoint& p);

/// Permutes `hosts` so that index i should be bound to zone/slot i of
/// `space` for a topology-aware assignment: hosts ordered by landmark
/// bin, zones ordered by the Morton key of their centers.
std::vector<NodeId> topo_aware_can_assignment(
    const CanSpace& space, std::span<const NodeId> hosts,
    std::span<const NodeId> landmarks, const LatencyOracle& oracle,
    Rng& rng);

}  // namespace propsim
