#include "baselines/pis.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace propsim {

std::vector<std::uint32_t> landmark_ordering(NodeId host,
                                             std::span<const NodeId> landmarks,
                                             const LatencyOracle& oracle,
                                             obs::EventBus* trace) {
  if (trace != nullptr) {
    for (std::size_t i = 0; i < landmarks.size(); ++i) {
      trace->emit(obs::TraceEventKind::kLandmarkProbe, host, landmarks[i],
                  oracle.latency(host, landmarks[i]));
    }
  }
  std::vector<std::uint32_t> order(landmarks.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double la = oracle.latency(host, landmarks[a]);
    const double lb = oracle.latency(host, landmarks[b]);
    if (la != lb) return la < lb;
    return a < b;
  });
  return order;
}

std::vector<ChordId> pis_identifiers(std::span<const NodeId> hosts,
                                     std::span<const NodeId> landmarks,
                                     const LatencyOracle& oracle, Rng& rng,
                                     obs::EventBus* trace) {
  PROPSIM_CHECK(!hosts.empty());
  PROPSIM_CHECK(!landmarks.empty());
  const std::size_t n = hosts.size();

  struct Keyed {
    std::vector<std::uint32_t> ordering;
    std::uint64_t tiebreak;
    std::size_t index;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keyed.push_back(Keyed{landmark_ordering(hosts[i], landmarks, oracle, trace),
                          rng.next(), i});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.ordering != b.ordering) return a.ordering < b.ordering;
    return a.tiebreak < b.tiebreak;
  });

  // Evenly spaced ids in bin order; a small deterministic offset per
  // position keeps ids unique and non-zero-aligned.
  std::vector<ChordId> ids(n);
  const ChordId gap = ~ChordId{0} / n;
  for (std::size_t pos = 0; pos < n; ++pos) {
    ids[keyed[pos].index] = static_cast<ChordId>(pos) * gap + gap / 2;
  }
  return ids;
}

}  // namespace propsim
