#include "baselines/selfish.h"

#include <algorithm>

#include "common/check.h"

namespace propsim {

SelfishOutcome selfish_step(OverlayNetwork& net, SlotId u,
                            const SelfishParams& params, Rng& rng) {
  SelfishOutcome outcome;
  LogicalGraph& g = net.graph();
  if (!g.is_active(u) || g.degree(u) == 0) return outcome;

  const auto neighbors = g.neighbors(u);
  const SlotId first =
      neighbors[static_cast<std::size_t>(rng.uniform(neighbors.size()))];
  const auto walk = net.random_walk(u, first, params.nhops, rng);
  net.traffic().count(net.placement().host_of(u), MessageKind::kWalk,
                      params.nhops);
  if (!walk.has_value()) return outcome;
  const SlotId candidate = walk->back();
  if (g.has_edge(u, candidate)) return outcome;

  // Farthest current neighbor that can afford to lose a link; the walk
  // path's first hop is spared so u keeps its route to the candidate.
  SlotId farthest = kInvalidSlot;
  double farthest_latency = -1.0;
  for (const SlotId i : neighbors) {
    if (g.degree(i) <= params.min_degree) continue;
    if (std::find(walk->begin(), walk->end(), i) != walk->end()) continue;
    const double lat = net.slot_latency(u, i);
    if (lat > farthest_latency) {
      farthest = i;
      farthest_latency = lat;
    }
  }
  if (farthest == kInvalidSlot) return outcome;

  const double candidate_latency = net.slot_latency(u, candidate);
  net.traffic().count(net.placement().host_of(u), MessageKind::kProbe);
  if (candidate_latency >= farthest_latency) return outcome;

  g.remove_edge(u, farthest);
  g.add_edge(u, candidate);
  net.traffic().count(net.placement().host_of(u), MessageKind::kExchangeCtrl);
  outcome.rewired = true;
  outcome.gain = farthest_latency - candidate_latency;
  return outcome;
}

double endpoint_cost_now(const OverlayNetwork& net, SlotId endpoint) {
  return net.neighbor_latency_sum(endpoint);
}

double endpoint_cost_after(const OverlayNetwork& net,
                           const ExchangeView& view, SlotId endpoint) {
  PROPSIM_DCHECK(endpoint == view.u || endpoint == view.v);
  const SlotId other = endpoint == view.u ? view.v : view.u;
  const LogicalGraph& g = net.graph();
  if (view.prop_g) {
    // The endpoint's host takes the other slot's seat; every other host
    // stays put, so current slot latencies still describe the pairs —
    // except the other slot's old seat, now occupied by the counterpart.
    double cost = 0.0;
    for (const SlotId n : g.neighbors(other)) {
      cost += n == endpoint ? net.slot_latency(endpoint, other)
                            : net.slot_latency(endpoint, n);
    }
    return cost;
  }
  const SlotId gives = endpoint == view.u ? view.from_u : view.from_v;
  const SlotId takes = endpoint == view.u ? view.from_v : view.from_u;
  return endpoint_cost_now(net, endpoint) -
         net.slot_latency(endpoint, gives) + net.slot_latency(endpoint, takes);
}

double selfish_gain(const OverlayNetwork& net, const ExchangeView& view,
                    SlotId endpoint) {
  return endpoint_cost_now(net, endpoint) -
         endpoint_cost_after(net, view, endpoint);
}

}  // namespace propsim
