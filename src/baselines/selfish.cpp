#include "baselines/selfish.h"

#include <algorithm>

namespace propsim {

SelfishOutcome selfish_step(OverlayNetwork& net, SlotId u,
                            const SelfishParams& params, Rng& rng) {
  SelfishOutcome outcome;
  LogicalGraph& g = net.graph();
  if (!g.is_active(u) || g.degree(u) == 0) return outcome;

  const auto neighbors = g.neighbors(u);
  const SlotId first =
      neighbors[static_cast<std::size_t>(rng.uniform(neighbors.size()))];
  const auto walk = net.random_walk(u, first, params.nhops, rng);
  net.traffic().count(net.placement().host_of(u), MessageKind::kWalk,
                      params.nhops);
  if (!walk.has_value()) return outcome;
  const SlotId candidate = walk->back();
  if (g.has_edge(u, candidate)) return outcome;

  // Farthest current neighbor that can afford to lose a link; the walk
  // path's first hop is spared so u keeps its route to the candidate.
  SlotId farthest = kInvalidSlot;
  double farthest_latency = -1.0;
  for (const SlotId i : neighbors) {
    if (g.degree(i) <= params.min_degree) continue;
    if (std::find(walk->begin(), walk->end(), i) != walk->end()) continue;
    const double lat = net.slot_latency(u, i);
    if (lat > farthest_latency) {
      farthest = i;
      farthest_latency = lat;
    }
  }
  if (farthest == kInvalidSlot) return outcome;

  const double candidate_latency = net.slot_latency(u, candidate);
  net.traffic().count(net.placement().host_of(u), MessageKind::kProbe);
  if (candidate_latency >= farthest_latency) return outcome;

  g.remove_edge(u, farthest);
  g.add_edge(u, candidate);
  net.traffic().count(net.placement().host_of(u), MessageKind::kExchangeCtrl);
  outcome.rewired = true;
  outcome.gain = farthest_latency - candidate_latency;
  return outcome;
}

}  // namespace propsim
