#include "baselines/ltm.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace propsim {
namespace {

/// Charges the TTL-2 detector flood to the traffic counter: one message
/// per edge traversal in the two-hop neighborhood.
void charge_detector(OverlayNetwork& net, SlotId u) {
  std::uint64_t messages = net.graph().degree(u);
  for (const SlotId i : net.graph().neighbors(u)) {
    messages += net.graph().degree(i);
  }
  net.traffic().count(net.placement().host_of(u), MessageKind::kProbe,
                      messages);
}

}  // namespace

std::size_t ltm_round(OverlayNetwork& net, SlotId u, const LtmParams& params) {
  LogicalGraph& g = net.graph();
  if (!g.is_active(u) || g.degree(u) == 0) return 0;
  charge_detector(net, u);
  std::size_t changed = 0;

  // --- Cut phase: drop direct links dominated by a two-hop detour. ---
  // Work on a snapshot of the neighbor list; the condition is re-checked
  // against the live graph before every cut so cascaded cuts stay safe
  // (the detour edge is still present at cut time, keeping u and j in the
  // same component — the analogue of Theorem 1's path argument).
  std::vector<SlotId> snapshot(g.neighbors(u).begin(), g.neighbors(u).end());
  for (const SlotId j : snapshot) {
    if (!g.has_edge(u, j)) continue;  // already cut this round
    if (g.degree(u) <= params.min_degree) break;
    if (g.degree(j) <= params.min_degree) continue;
    const double direct = net.slot_latency(u, j);
    // (u, j) is "low productive and redundant" when it is the longest
    // edge of a logical triangle u-i-j: the flood still reaches j through
    // i, and both remaining edges are faster. (With shortest-path
    // latencies the naive detour test d(u,i)+d(i,j) < d(u,j) can never
    // fire — triangle inequality — so LTM's published rule compares the
    // edge against the two detour legs individually.)
    bool dominated = false;
    for (const SlotId i : g.neighbors(u)) {
      if (i == j || !g.has_edge(i, j)) continue;
      if (direct > net.slot_latency(u, i) &&
          direct >= net.slot_latency(i, j)) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      g.remove_edge(u, j);
      net.traffic().count(net.placement().host_of(u),
                          MessageKind::kExchangeCtrl);
      ++changed;
    }
  }

  // --- Add phase: connect to the closest two-hop non-neighbor. ---
  for (std::size_t add = 0; add < params.max_adds_per_round; ++add) {
    SlotId best = kInvalidSlot;
    double best_latency = std::numeric_limits<double>::infinity();
    for (const SlotId i : g.neighbors(u)) {
      for (const SlotId k : g.neighbors(i)) {
        if (k == u || g.has_edge(u, k)) continue;
        const double lat = net.slot_latency(u, k);  // direct probe
        if (lat < best_latency) {
          best = k;
          best_latency = lat;
        }
      }
    }
    if (best == kInvalidSlot) break;
    // Connect only when the candidate actually improves on the current
    // farthest neighbor (or the cut phase left us short of links).
    double farthest = 0.0;
    for (const SlotId i : g.neighbors(u)) {
      farthest = std::max(farthest, net.slot_latency(u, i));
    }
    const bool short_of_links = g.degree(u) < params.min_degree;
    if (!short_of_links && best_latency >= farthest) break;
    g.add_edge(u, best);
    net.traffic().count(net.placement().host_of(u),
                        MessageKind::kExchangeCtrl);
    ++changed;
  }
  if (obs::EventBus* bus = net.trace()) {
    bus->emit(obs::TraceEventKind::kLtmRound, u, 0,
              static_cast<double>(g.degree(u)), changed);
  }
  return changed;
}

LtmEngine::LtmEngine(OverlayNetwork& net, Scheduler& sim,
                     const LtmParams& params, std::uint64_t seed)
    : net_(net), sim_(sim), params_(params), rng_(seed) {
  PROPSIM_CHECK(params_.interval_s > 0.0);
}

void LtmEngine::start() {
  PROPSIM_CHECK(!started_);
  started_ = true;
  pending_.assign(net_.graph().slot_count(), kInvalidEvent);
  for (const SlotId s : net_.graph().active_slots()) {
    // Global despite the shard hint: LTM rounds draw from the shared
    // engine Rng and rewire links whose endpoints span shards.
    pending_[s] = sim_.schedule_in(rng_.uniform_double(0.0, params_.interval_s),
                                   sim_.shard_of(s), Locality::kGlobal,
                                   [this, s] { on_timer(s); });
  }
}

void LtmEngine::stop() {
  for (EventId& id : pending_) {
    if (id != kInvalidEvent) {
      sim_.cancel(id);
      id = kInvalidEvent;
    }
  }
  started_ = false;
}

void LtmEngine::on_timer(SlotId s) {
  pending_[s] = kInvalidEvent;
  if (!net_.graph().is_active(s)) return;
  ++rounds_;
  links_changed_ += ltm_round(net_, s, params_);
  pending_[s] = sim_.schedule_in(params_.interval_s, sim_.shard_of(s),
                                 Locality::kGlobal,
                                 [this, s] { on_timer(s); });
}

}  // namespace propsim
