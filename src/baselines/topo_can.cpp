#include "baselines/topo_can.h"

#include <algorithm>
#include <numeric>

#include "baselines/pis.h"
#include "common/check.h"

namespace propsim {
namespace {

/// Spreads the low 32 bits of x so one zero bit separates every data
/// bit (standard Morton dilation).
std::uint64_t dilate32(std::uint64_t x) {
  x &= 0xFFFFFFFFULL;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

}  // namespace

std::uint64_t morton_key(const CanPoint& p) {
  static_assert(kCanDims == 2, "morton_key is specialized for 2-d CAN");
  return dilate32(p[0]) | (dilate32(p[1]) << 1);
}

std::vector<NodeId> topo_aware_can_assignment(
    const CanSpace& space, std::span<const NodeId> hosts,
    std::span<const NodeId> landmarks, const LatencyOracle& oracle,
    Rng& rng) {
  PROPSIM_CHECK(hosts.size() == space.size());
  PROPSIM_CHECK(!landmarks.empty());
  const std::size_t n = hosts.size();

  // Zones in Morton order of their centers.
  std::vector<SlotId> zone_order(n);
  std::iota(zone_order.begin(), zone_order.end(), SlotId{0});
  std::sort(zone_order.begin(), zone_order.end(), [&](SlotId a, SlotId b) {
    const std::uint64_t ka = morton_key(space.zone(a).center());
    const std::uint64_t kb = morton_key(space.zone(b).center());
    if (ka != kb) return ka < kb;
    return a < b;
  });

  // Hosts in landmark-bin order (ties shuffled so equal bins spread).
  struct Keyed {
    std::vector<std::uint32_t> ordering;
    std::uint64_t tiebreak;
    NodeId host;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(n);
  for (const NodeId h : hosts) {
    keyed.push_back(Keyed{landmark_ordering(h, landmarks, oracle),
                          rng.next(), h});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.ordering != b.ordering) return a.ordering < b.ordering;
    return a.tiebreak < b.tiebreak;
  });

  // Walk both orders in lockstep: the i-th bin-ordered host serves the
  // i-th curve-ordered zone.
  std::vector<NodeId> by_slot(n);
  for (std::size_t i = 0; i < n; ++i) {
    by_slot[zone_order[i]] = keyed[i].host;
  }
  return by_slot;
}

}  // namespace propsim
