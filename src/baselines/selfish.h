// Selfish nearest-neighbor rewiring — the strawman of the paper's
// Section 3.1.
//
// Each node greedily replaces its farthest logical neighbor with the
// closest candidate it discovers, without asking whether the counterpart
// (or the system) benefits. The ablation bench contrasts the resulting
// system-wide average latency and degree distortion against PROP's
// cooperative exchanges.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "overlay/overlay_network.h"

namespace propsim {

struct SelfishParams {
  /// Walk TTL used to discover candidates (same as PROP's nhops).
  std::size_t nhops = 2;
  /// Never leave any node below this degree.
  std::size_t min_degree = 2;
};

struct SelfishOutcome {
  bool rewired = false;
  double gain = 0.0;  // latency improvement for the acting node only
};

/// One selfish step for node u: random-walk to a candidate, and if it is
/// closer than u's farthest neighbor, cut that neighbor and connect to
/// the candidate. Preserves u's degree but not the ex-neighbor's.
SelfishOutcome selfish_step(OverlayNetwork& net, SlotId u,
                            const SelfishParams& params, Rng& rng);

}  // namespace propsim
