// Selfish nearest-neighbor rewiring — the strawman of the paper's
// Section 3.1.
//
// Each node greedily replaces its farthest logical neighbor with the
// closest candidate it discovers, without asking whether the counterpart
// (or the system) benefits. The ablation bench contrasts the resulting
// system-wide average latency and degree distortion against PROP's
// cooperative exchanges.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "overlay/overlay_network.h"

namespace propsim {

struct SelfishParams {
  /// Walk TTL used to discover candidates (same as PROP's nhops).
  std::size_t nhops = 2;
  /// Never leave any node below this degree.
  std::size_t min_degree = 2;
};

struct SelfishOutcome {
  bool rewired = false;
  double gain = 0.0;  // latency improvement for the acting node only
};

/// One selfish step for node u: random-walk to a candidate, and if it is
/// closer than u's farthest neighbor, cut that neighbor and connect to
/// the candidate. Preserves u's degree but not the ex-neighbor's.
SelfishOutcome selfish_step(OverlayNetwork& net, SlotId u,
                            const SelfishParams& params, Rng& rng);

/// A PROP exchange seen from one endpoint's selfish perspective.
///
/// Mirrors core's ExchangePlan without depending on it, so layers below
/// core (the adversary models) can reason about what a single peer wins
/// or loses from an exchange the cooperative Var metric would accept.
struct ExchangeView {
  bool prop_g = true;     // true: placement swap; false: neighbor transfer
  SlotId u = kInvalidSlot;
  SlotId v = kInvalidSlot;
  SlotId from_u = kInvalidSlot;  // PROP-O: neighbor u hands to v
  SlotId from_v = kInvalidSlot;  // PROP-O: neighbor v hands to u
};

/// Sum of latencies from endpoint's current host to its current logical
/// neighbors — the cost a selfish peer wants to shrink.
double endpoint_cost_now(const OverlayNetwork& net, SlotId endpoint);

/// Cost `endpoint` would carry after the exchange executes. For PROP-G
/// the endpoint's host moves to the other slot's seat (the logical graph
/// is untouched); for PROP-O the transferred neighbors swap.
double endpoint_cost_after(const OverlayNetwork& net,
                           const ExchangeView& view, SlotId endpoint);

/// Positive when the exchange improves `endpoint`'s own latency sum —
/// the quantity a latency liar inflates and a free-rider never spends
/// messages to discover.
double selfish_gain(const OverlayNetwork& net, const ExchangeView& view,
                    SlotId endpoint);

}  // namespace propsim
