// Location-aware Topology Matching (LTM) baseline.
//
// Liu et al., "Location awareness in unstructured peer-to-peer systems"
// (TPDS 2005) — the unstructured-overlay comparator of the paper's
// Figure 7. Each peer periodically floods a TTL-2 detector, measures the
// delay to its one- and two-hop neighborhood, cuts direct links that are
// slower than an existing two-hop detour (redundant, low-productive), and
// connects to the closest two-hop peer instead. Unlike PROP-O, node
// degrees are NOT preserved, which is exactly the property the paper's
// heterogeneity experiment exposes.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "overlay/overlay_network.h"
#include "sim/scheduler.h"

namespace propsim {

struct LtmParams {
  /// Detector flood period per node (seconds).
  double interval_s = 60.0;
  /// Never cut below this degree: the original LTM's "will not cut the
  /// only link" guard, generalized.
  std::size_t min_degree = 2;
  /// At most this many link replacements per round per node.
  std::size_t max_adds_per_round = 1;
};

/// Runs one LTM round for peer u; returns the number of links changed
/// (cuts + adds). Exposed for unit tests; the engine drives it on a timer.
std::size_t ltm_round(OverlayNetwork& net, SlotId u, const LtmParams& params);

class LtmEngine {
 public:
  LtmEngine(OverlayNetwork& net, Scheduler& sim, const LtmParams& params,
            std::uint64_t seed);

  /// Schedules the periodic detector round of every active slot.
  void start();
  void stop();

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t links_changed() const { return links_changed_; }

 private:
  void on_timer(SlotId s);

  OverlayNetwork& net_;
  Scheduler& sim_;
  LtmParams params_;
  Rng rng_;
  std::vector<EventId> pending_;
  std::uint64_t rounds_ = 0;
  std::uint64_t links_changed_ = 0;
  bool started_ = false;
};

}  // namespace propsim
