#include "gnutella/flood_search.h"

#include <limits>

namespace propsim {

FloodResult flood_search(OverlayNetwork& net, SlotId source,
                         const std::vector<bool>& holders, std::uint32_t ttl,
                         const std::vector<double>* processing_delay_ms) {
  const LogicalGraph& g = net.graph();
  PROPSIM_CHECK(holders.size() == g.slot_count());
  PROPSIM_CHECK(g.is_active(source));
  if (processing_delay_ms != nullptr) {
    PROPSIM_CHECK(processing_delay_ms->size() == g.slot_count());
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  obs::EventBus* bus = net.trace();
  FloodResult result;

  // Breadth-first wavefront by hop count; within the scope we track the
  // minimum latency at which each peer first hears the query. A real
  // flood delivers along every path — the first response corresponds to
  // the fastest one, which is what the latency tracking captures.
  std::vector<double> best(g.slot_count(), kInf);
  std::vector<std::uint32_t> hop_of(g.slot_count(), 0);
  std::vector<SlotId> frontier{source};
  std::vector<SlotId> next;
  best[source] = 0.0;
  result.peers_reached = 1;

  auto consider_hit = [&](SlotId s) {
    if (!holders[s]) return;
    if (best[s] < result.first_response_ms || !result.found) {
      result.found = true;
      result.first_response_ms = best[s];
      result.hops = hop_of[s];
    }
  };
  consider_hit(source);

  for (std::uint32_t hop = 1; hop <= ttl && !frontier.empty(); ++hop) {
    next.clear();
    for (const SlotId u : frontier) {
      for (const SlotId v : g.neighbors(u)) {
        ++result.messages;
        net.traffic().count(net.placement().host_of(u), MessageKind::kLookup);
        if (bus != nullptr) {
          bus->emit(obs::TraceEventKind::kFloodHop, u, v, 0.0, hop);
        }
        double arrive = best[u] + net.slot_latency(u, v);
        if (processing_delay_ms != nullptr) {
          arrive += (*processing_delay_ms)[v];
        }
        if (arrive < best[v]) {
          const bool first_visit = best[v] == kInf;
          best[v] = arrive;
          hop_of[v] = hop;
          consider_hit(v);
          if (first_visit) {
            ++result.peers_reached;
            next.push_back(v);
          }
          // Re-visits with lower latency do not re-forward: Gnutella
          // peers drop duplicate query ids. The latency improvement is
          // still recorded because the duplicate does arrive.
        }
      }
    }
    frontier.swap(next);
  }
  return result;
}

}  // namespace propsim
