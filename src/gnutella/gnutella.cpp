#include "gnutella/gnutella.h"

#include <algorithm>

namespace propsim {
namespace {

/// Picks attach targets among active slots: preferential picks follow a
/// random edge endpoint (degree-proportional), uniform picks draw from
/// `pool`. Repeats and `self` are rejected.
std::vector<SlotId> pick_attach_targets(const LogicalGraph& g,
                                        std::span<const SlotId> pool,
                                        SlotId self, std::size_t want,
                                        double preferential_fraction,
                                        Rng& rng) {
  std::vector<SlotId> targets;
  targets.reserve(want);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 200 * (want + 1);
  while (targets.size() < want && attempts < max_attempts) {
    ++attempts;
    SlotId candidate = kInvalidSlot;
    if (g.edge_count() > 0 && rng.bernoulli(preferential_fraction)) {
      // Degree-biased: uniformly random slot from pool, then one of its
      // incident edges' endpoints; high-degree slots surface more often.
      const SlotId anchor = rng.pick(pool);
      const auto neigh = g.neighbors(anchor);
      if (!neigh.empty()) {
        candidate = neigh[static_cast<std::size_t>(rng.uniform(neigh.size()))];
      }
    }
    if (candidate == kInvalidSlot) candidate = rng.pick(pool);
    if (candidate == self) continue;
    if (std::find(targets.begin(), targets.end(), candidate) !=
        targets.end()) {
      continue;
    }
    targets.push_back(candidate);
  }
  return targets;
}

}  // namespace

OverlayNetwork build_gnutella_overlay(const GnutellaConfig& config,
                                      std::span<const NodeId> hosts,
                                      const LatencyOracle& oracle, Rng& rng,
                                      obs::EventBus* trace) {
  PROPSIM_CHECK(config.attach_links >= 1);
  PROPSIM_CHECK(hosts.size() > config.attach_links);

  const std::size_t n = hosts.size();
  LogicalGraph graph(n);
  Placement placement(n, oracle.physical().node_count());
  for (std::size_t s = 0; s < n; ++s) {
    placement.bind(static_cast<SlotId>(s), hosts[s]);
  }

  // Join order is random so slot index carries no structural meaning.
  std::vector<SlotId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<SlotId>(i);
  rng.shuffle(order);

  // Seed clique keeps min degree == attach_links.
  const std::size_t seed = config.attach_links + 1;
  for (std::size_t i = 0; i < seed; ++i) {
    for (std::size_t j = i + 1; j < seed; ++j) {
      graph.add_edge(order[i], order[j]);
    }
  }

  std::vector<SlotId> joined(order.begin(),
                             order.begin() + static_cast<std::ptrdiff_t>(seed));
  for (std::size_t i = seed; i < n; ++i) {
    const SlotId joiner = order[i];
    const auto targets =
        pick_attach_targets(graph, joined, joiner, config.attach_links,
                            config.preferential_fraction, rng);
    PROPSIM_CHECK(targets.size() == config.attach_links);
    for (const SlotId t : targets) graph.add_edge(joiner, t);
    joined.push_back(joiner);
  }

  PROPSIM_CHECK(graph.active_subgraph_connected());
  PROPSIM_CHECK(graph.min_active_degree() == config.attach_links);
  OverlayNetwork net(std::move(graph), std::move(placement), oracle);
  net.set_trace(trace);
  if (trace != nullptr) {
    for (const SlotId s : net.graph().active_slots()) {
      trace->emit(obs::TraceEventKind::kJoin, s, net.placement().host_of(s));
    }
  }
  return net;
}

SlotId gnutella_join(OverlayNetwork& net, const GnutellaConfig& config,
                     NodeId host, Rng& rng) {
  LogicalGraph& g = net.graph();
  const auto pool = g.active_slots();
  PROPSIM_CHECK(pool.size() >= config.attach_links);
  const SlotId joiner = g.add_slot();
  net.placement().ensure_slot_capacity(g.slot_count());
  net.placement().bind(joiner, host);
  const auto targets = pick_attach_targets(
      g, pool, joiner, config.attach_links, config.preferential_fraction, rng);
  PROPSIM_CHECK(!targets.empty());
  for (const SlotId t : targets) g.add_edge(joiner, t);
  if (obs::EventBus* bus = net.trace()) {
    bus->emit(obs::TraceEventKind::kJoin, joiner, host);
  }
  return joiner;
}

}  // namespace propsim
