// Gnutella-like unstructured overlay construction.
//
// Peers join in random order and connect to a few existing peers chosen
// uniformly and/or preferentially by degree; the preferential share gives
// the overlay the heavy-tailed ("power-law-like") degree profile measured
// on the real Gnutella network, which PROP-O is designed to preserve.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "overlay/overlay_network.h"
#include "topology/latency_oracle.h"

namespace propsim {

struct GnutellaConfig {
  /// Links each joining peer opens to existing peers. The first
  /// (attach_links + 1) peers form a clique so the minimum degree of the
  /// finished overlay equals attach_links — the paper's delta(G).
  std::size_t attach_links = 4;

  /// Share of each joiner's links chosen preferentially (endpoint of a
  /// uniformly random existing edge: probability proportional to degree);
  /// the rest are uniform over peers.
  double preferential_fraction = 0.5;
};

/// Builds the overlay over `hosts` (distinct physical node ids); slot i is
/// bound to hosts[i]. Requires hosts.size() > attach_links. When `trace`
/// is non-null it becomes the overlay's event bus (one kJoin per slot).
OverlayNetwork build_gnutella_overlay(const GnutellaConfig& config,
                                      std::span<const NodeId> hosts,
                                      const LatencyOracle& oracle, Rng& rng,
                                      obs::EventBus* trace = nullptr);

/// Attaches a fresh joiner (bound to `host`) to an existing overlay using
/// the same link-selection rule; returns the new slot. Used by churn.
SlotId gnutella_join(OverlayNetwork& net, const GnutellaConfig& config,
                     NodeId host, Rng& rng);

}  // namespace propsim
