// Tapestry DHT over overlay slots (Zhao et al., JSAC 2004; routing after
// Plaxton/Rajaraman/Richa).
//
// Like Pastry, Tapestry routes by resolving one hexadecimal digit of the
// key per hop through per-level neighbor tables; unlike Pastry there are
// no leaf sets — when the exact next-digit class is empty, deterministic
// *surrogate routing* substitutes the next non-empty digit (scanning
// upward mod 16), so every key maps to a unique root node that any
// source reaches. Tapestry's defining locality feature — each table
// entry is the physically closest eligible node — is available through
// apply_proximity().
//
// As with the other DHTs, identifiers live on *slots*: PROP-G's
// identifier exchange is a placement swap.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/hex_id.h"
#include "common/rng.h"
#include "overlay/logical_graph.h"
#include "overlay/overlay_network.h"
#include "topology/latency_oracle.h"

namespace propsim {

using TapestryId = std::uint64_t;

struct TapestryConfig {
  /// Redundant entries kept per (level, digit) cell; the first is the
  /// primary route, the rest are fault-tolerance backups that also
  /// widen the logical neighbor set PROP operates on.
  std::size_t entries_per_cell = 1;
};

class TapestryNetwork {
 public:
  static TapestryNetwork build_random(std::size_t slot_count,
                                      const TapestryConfig& config, Rng& rng);
  static TapestryNetwork build_with_ids(std::vector<TapestryId> ids,
                                        const TapestryConfig& config);

  std::size_t size() const { return ids_.size(); }
  TapestryId id_of(SlotId s) const { return ids_[s]; }

  /// The unique root of `key` under surrogate routing: the digits of
  /// key are resolved one level at a time against the live prefix tree,
  /// each empty class replaced by the next non-empty digit upward
  /// (mod 16). Independent of any source node.
  SlotId root_of(TapestryId key) const;

  /// Primary table entry for (level, digit); kInvalidSlot when the
  /// class is empty. (Entry shares exactly `level` digits with s and
  /// has `digit` at that position.)
  SlotId table_entry(SlotId s, std::size_t level, std::size_t digit) const;

  /// All entries of a cell (primary first).
  std::span<const SlotId> cell(SlotId s, std::size_t level,
                               std::size_t digit) const;

  /// Routes from `source` toward `key`: at most one hop per level,
  /// ending at root_of(key).
  std::vector<SlotId> lookup_path(SlotId source, TapestryId key) const;

  /// Union of all table entries as an undirected logical graph.
  LogicalGraph to_logical_graph() const;

  /// Refills every cell with the physically closest eligible nodes —
  /// Tapestry's published neighbor-selection rule.
  void apply_proximity(std::span<const NodeId> hosts,
                       const LatencyOracle& oracle);

  const TapestryConfig& config() const { return config_; }

 private:
  TapestryNetwork(std::vector<TapestryId> ids, const TapestryConfig& config);

  void rebuild_tables();
  std::size_t cell_index(std::size_t level, std::size_t digit) const {
    return level * kHexBase + digit;
  }

  TapestryConfig config_;
  std::vector<TapestryId> ids_;
  /// tables_[s][level*16+digit] = up to entries_per_cell slots.
  std::vector<std::vector<std::vector<SlotId>>> tables_;
};

/// OverlayNetwork over a Tapestry mesh: slot i bound to hosts[i].
OverlayNetwork make_tapestry_overlay(const TapestryNetwork& tapestry,
                                     std::span<const NodeId> hosts,
                                     const LatencyOracle& oracle,
                                     obs::EventBus* trace = nullptr);

}  // namespace propsim
