#include "tapestry/tapestry.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace propsim {

TapestryNetwork::TapestryNetwork(std::vector<TapestryId> ids,
                                 const TapestryConfig& config)
    : config_(config), ids_(std::move(ids)) {
  PROPSIM_CHECK(ids_.size() >= 2);
  PROPSIM_CHECK(config_.entries_per_cell >= 1);
  rebuild_tables();
}

TapestryNetwork TapestryNetwork::build_random(std::size_t slot_count,
                                              const TapestryConfig& config,
                                              Rng& rng) {
  PROPSIM_CHECK(slot_count >= 2);
  // det-ok(D1): duplicate-id probe only; ids are emitted via the vector
  std::unordered_set<TapestryId> seen;
  std::vector<TapestryId> ids;
  ids.reserve(slot_count);
  while (ids.size() < slot_count) {
    const TapestryId id = rng.next();
    if (seen.insert(id).second) ids.push_back(id);
  }
  return TapestryNetwork(std::move(ids), config);
}

TapestryNetwork TapestryNetwork::build_with_ids(std::vector<TapestryId> ids,
                                                const TapestryConfig& config) {
  std::vector<TapestryId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  PROPSIM_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
  return TapestryNetwork(std::move(ids), config);
}

void TapestryNetwork::rebuild_tables() {
  const std::size_t n = ids_.size();
  tables_.assign(n, std::vector<std::vector<SlotId>>(kHexDigits * kHexBase));
  // One pass over ordered pairs; candidate t lands in s's cell
  // (shared, digit_t). Primary = id-ring-nearest (deterministic,
  // proximity-neutral); apply_proximity() re-ranks by latency.
  for (SlotId s = 0; s < n; ++s) {
    auto& table = tables_[s];
    for (SlotId t = 0; t < n; ++t) {
      if (t == s) continue;
      const std::size_t level = hex_shared_prefix(ids_[s], ids_[t]);
      auto& cell = table[cell_index(level, hex_digit(ids_[t], level))];
      // Keep the entries_per_cell nearest by ring distance, sorted.
      const auto rank = [&](SlotId x) {
        return id_ring_distance(ids_[x], ids_[s]);
      };
      auto pos = std::lower_bound(
          cell.begin(), cell.end(), t,
          [&](SlotId a, SlotId b) { return rank(a) < rank(b); });
      cell.insert(pos, t);
      if (cell.size() > config_.entries_per_cell) cell.pop_back();
    }
  }
}

SlotId TapestryNetwork::table_entry(SlotId s, std::size_t level,
                                    std::size_t digit) const {
  PROPSIM_DCHECK(s < ids_.size());
  PROPSIM_DCHECK(level < kHexDigits && digit < kHexBase);
  const auto& cell = tables_[s][cell_index(level, digit)];
  return cell.empty() ? kInvalidSlot : cell.front();
}

std::span<const SlotId> TapestryNetwork::cell(SlotId s, std::size_t level,
                                              std::size_t digit) const {
  return tables_[s][cell_index(level, digit)];
}

SlotId TapestryNetwork::root_of(TapestryId key) const {
  // Resolve digit by digit against the global prefix tree: at each
  // level pick the key's digit if its class is non-empty, else scan
  // upward mod 16 (surrogate routing). The choice depends only on the
  // key and the id set, so the root is source-independent.
  std::vector<SlotId> candidates(ids_.size());
  std::iota(candidates.begin(), candidates.end(), SlotId{0});
  std::vector<SlotId> next;
  for (std::size_t level = 0; level < kHexDigits; ++level) {
    if (candidates.size() == 1) return candidates.front();
    const std::uint32_t desired = hex_digit(key, level);
    for (std::uint32_t probe = 0; probe < kHexBase; ++probe) {
      const std::uint32_t d = (desired + probe) % kHexBase;
      next.clear();
      for (const SlotId c : candidates) {
        if (hex_digit(ids_[c], level) == d) next.push_back(c);
      }
      if (!next.empty()) break;
    }
    candidates.swap(next);
    PROPSIM_CHECK(!candidates.empty());
  }
  PROPSIM_CHECK(candidates.size() == 1);  // ids are distinct
  return candidates.front();
}

std::vector<SlotId> TapestryNetwork::lookup_path(SlotId source,
                                                 TapestryId key) const {
  PROPSIM_CHECK(source < ids_.size());
  std::vector<SlotId> path{source};
  SlotId here = source;
  // Invariant: entering level h, `here` matches the resolved prefix of
  // length h, so its level-h table row describes exactly the nodes
  // sharing that prefix — the local surrogate scan agrees with the
  // global one in root_of().
  for (std::size_t level = 0; level < kHexDigits; ++level) {
    const std::uint32_t desired = hex_digit(key, level);
    const std::uint32_t own = hex_digit(ids_[here], level);
    bool advanced = false;
    for (std::uint32_t probe = 0; probe < kHexBase; ++probe) {
      const std::uint32_t d = (desired + probe) % kHexBase;
      if (d == own) {
        advanced = true;  // resolved in place, no hop
        break;
      }
      const SlotId next = table_entry(here, level, d);
      if (next != kInvalidSlot) {
        here = next;
        path.push_back(here);
        advanced = true;
        break;
      }
    }
    PROPSIM_CHECK(advanced);  // the node's own digit always matches
  }
  return path;
}

LogicalGraph TapestryNetwork::to_logical_graph() const {
  const std::size_t n = ids_.size();
  LogicalGraph g(n);
  for (SlotId s = 0; s < n; ++s) {
    for (const auto& cell : tables_[s]) {
      for (const SlotId t : cell) {
        if (t != s && !g.has_edge(s, t)) g.add_edge(s, t);
      }
    }
  }
  return g;
}

void TapestryNetwork::apply_proximity(std::span<const NodeId> hosts,
                                      const LatencyOracle& oracle) {
  PROPSIM_CHECK(hosts.size() == ids_.size());
  const std::size_t n = ids_.size();
  for (SlotId s = 0; s < n; ++s) {
    auto& table = tables_[s];
    for (auto& cell : table) cell.clear();
    for (SlotId t = 0; t < n; ++t) {
      if (t == s) continue;
      const std::size_t level = hex_shared_prefix(ids_[s], ids_[t]);
      auto& cell = table[cell_index(level, hex_digit(ids_[t], level))];
      const auto rank = [&](SlotId x) {
        return oracle.latency(hosts[s], hosts[x]);
      };
      auto pos = std::lower_bound(
          cell.begin(), cell.end(), t,
          [&](SlotId a, SlotId b) { return rank(a) < rank(b); });
      cell.insert(pos, t);
      if (cell.size() > config_.entries_per_cell) cell.pop_back();
    }
  }
}

OverlayNetwork make_tapestry_overlay(const TapestryNetwork& tapestry,
                                     std::span<const NodeId> hosts,
                                     const LatencyOracle& oracle,
                                     obs::EventBus* trace) {
  PROPSIM_CHECK(hosts.size() == tapestry.size());
  LogicalGraph graph = tapestry.to_logical_graph();
  Placement placement(graph.slot_count(), oracle.physical().node_count());
  for (SlotId s = 0; s < graph.slot_count(); ++s) {
    placement.bind(s, hosts[s]);
  }
  OverlayNetwork net(std::move(graph), std::move(placement), oracle);
  net.set_trace(trace);
  if (trace != nullptr) {
    for (const SlotId s : net.graph().active_slots()) {
      trace->emit(obs::TraceEventKind::kJoin, s, net.placement().host_of(s));
    }
  }
  return net;
}

}  // namespace propsim
