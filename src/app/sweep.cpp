#include "app/sweep.h"

#include "common/check.h"

namespace propsim {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const auto comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
}

SweepAxis parse_sweep_axis(const std::string& arg) {
  PROPSIM_CHECK(arg.rfind("sweep:", 0) == 0);
  const std::string body = arg.substr(6);
  const auto eq = body.find('=');
  PROPSIM_CHECK(eq != std::string::npos && eq > 0);
  SweepAxis axis{body.substr(0, eq), split_commas(body.substr(eq + 1))};
  PROPSIM_CHECK(!axis.values.empty());
  for (const std::string& v : axis.values) PROPSIM_CHECK(!v.empty());
  return axis;
}

namespace {

void expand_recursive(const std::vector<SweepAxis>& axes, std::size_t axis,
                      SweepCombo current, std::vector<SweepCombo>& out) {
  if (axis == axes.size()) {
    if (current.label.empty()) current.label = "(base)";
    out.push_back(std::move(current));
    return;
  }
  for (const std::string& value : axes[axis].values) {
    SweepCombo next = current;
    next.config.set(axes[axis].key, value);
    if (!next.label.empty()) next.label += " ";
    next.label += axes[axis].key + "=" + value;
    expand_recursive(axes, axis + 1, std::move(next), out);
  }
}

}  // namespace

std::vector<SweepCombo> expand_sweep(const Config& base,
                                     const std::vector<SweepAxis>& axes) {
  std::vector<SweepCombo> out;
  SweepCombo seed;
  seed.config = base;
  expand_recursive(axes, 0, std::move(seed), out);
  return out;
}

}  // namespace propsim
