#include "app/result_json.h"

namespace propsim {

Json timeseries_json(const TimeSeries& series) {
  Json out = Json::array();
  for (const auto& p : series.points()) {
    Json point = Json::object();
    point.set("t", p.time).set("value", p.value);
    out.push_back(std::move(point));
  }
  return out;
}

Json experiment_result_json(const ExperimentSpec& spec,
                            const ExperimentResult& result) {
  Json out = Json::object();
  out.set("schema", "propsim.result");
  out.set("version", kResultSchemaVersion);

  Json spec_json = Json::object();
  spec_json.set("topology", to_string(spec.topology))
      .set("overlay", to_string(spec.overlay))
      .set("protocol", to_string(spec.protocol))
      .set("nodes", static_cast<std::uint64_t>(spec.nodes))
      .set("seed", static_cast<std::uint64_t>(spec.seed))
      .set("horizon_s", spec.horizon_s)
      .set("sample_interval_s", spec.sample_interval_s)
      .set("queries", static_cast<std::uint64_t>(spec.queries))
      .set("oracle", to_string(spec.oracle_mode))
      .set("measure_mode", to_string(spec.resolved_measure_mode()));
  out.set("spec", std::move(spec_json));

  Json metric = Json::object();
  metric.set("name", result.metric_name)
      .set("initial", result.initial_value)
      .set("final", result.final_value)
      .set("series", timeseries_json(result.series));
  out.set("metric", std::move(metric));

  Json counters = Json::object();
  for (const auto& [name, value] : result.counters()) {
    counters.set(name, value);
  }
  out.set("counters", std::move(counters));
  out.set("counters_version", ExperimentResult::kCountersVersion);

  // Scheduler stanza (additive). Only scheduler-invariant totals belong
  // here: sim_shards / shard_window are execution knobs and the sharded
  // core replays the identical event sequence, so emitting per-shard
  // internals (windows, handoffs) would break the byte-identity contract
  // between serial and sharded runs.
  Json sim = Json::object();
  sim.set("events_executed", result.sim_events_executed)
      .set("events_scheduled", result.sim_events_scheduled)
      .set("events_cancelled", result.sim_events_cancelled);
  // Speculation stanza (additive; present only when sim_speculative
  // arms a multi-shard run). This is the one deliberately shard-count-
  // dependent block in the result — it reports scheduler internals, so
  // cross-shard golden comparisons strip it before diffing.
  if (result.speculation_active) {
    Json speculation = Json::object();
    speculation.set("speculated", result.speculation_speculated)
        .set("replayed", result.speculation_replayed)
        .set("windows", result.speculation_windows)
        .set("conflicts", result.speculation_conflicts)
        .set("conflict_rate", result.speculation_conflict_rate);
    sim.set("speculation", std::move(speculation));
  }
  out.set("sim", std::move(sim));

  // Measurement stanza (additive). The resolved kernel plus its work
  // counters; flood counts are invariant across measure_threads and
  // sim_shards, and the capture/reuse split — like the trace counters —
  // depends only on the trace build mode, never on thread counts.
  Json measure = Json::object();
  measure.set("mode", to_string(spec.resolved_measure_mode()))
      .set("exact_floods", result.measure_exact_floods)
      .set("fast_floods", result.measure_fast_floods)
      .set("snapshot_captures", result.measure_snapshot_captures)
      .set("snapshot_reuses", result.measure_snapshot_reuses);
  out.set("measure", std::move(measure));

  // Observability summary (additive; schema stays v1). Per-phase kind
  // counts only list non-zero kinds to keep small results small.
  Json trace = Json::object();
  trace.set("enabled", result.trace.compiled_in)
      .set("phase_boundary_s", result.trace.phase_boundary_s)
      .set("events", result.trace.events);
  Json phases = Json::object();
  for (std::size_t p = 0; p < obs::kTracePhaseCount; ++p) {
    const auto phase = static_cast<obs::TracePhase>(p);
    Json phase_json = Json::object();
    phase_json.set("events", result.trace.events_by_phase[p])
        .set("wall_ms", phase == obs::TracePhase::kWarmup
                            ? result.trace.warmup_wall_ms
                            : result.trace.maintenance_wall_ms);
    Json by_kind = Json::object();
    for (std::size_t k = 0; k < obs::kTraceEventKindCount; ++k) {
      const auto kind = static_cast<obs::TraceEventKind>(k);
      if (result.trace.count(phase, kind) == 0) continue;
      by_kind.set(obs::to_string(kind), result.trace.count(phase, kind));
    }
    phase_json.set("by_kind", std::move(by_kind));
    phases.set(obs::to_string(phase), std::move(phase_json));
  }
  trace.set("by_phase", std::move(phases));
  if (!result.trace.sink_path.empty()) {
    Json sink = Json::object();
    sink.set("path", result.trace.sink_path)
        .set("events", result.trace.sink_events);
    trace.set("sink", std::move(sink));
  }
  out.set("trace", std::move(trace));

  // Fault-plan stanza (additive; present only when the spec injects
  // faults, so fault-free results stay byte-identical to pre-fault runs).
  if (spec.faults.active()) {
    Json faults = Json::object();
    faults.set("loss", spec.faults.message_loss)
        .set("jitter", spec.faults.latency_jitter)
        .set("crash", spec.faults.crash_per_negotiation)
        .set("max_retries",
             static_cast<std::uint64_t>(spec.faults.max_negotiation_retries))
        .set("messages", result.fault_messages)
        .set("losses", result.fault_losses)
        .set("partition_drops", result.fault_partition_drops)
        .set("crashes", result.fault_crashes)
        .set("timeouts", result.timeouts)
        .set("retries", result.retries)
        .set("aborted_mid_commit", result.aborted_mid_commit);
    if (!spec.faults.partitions.empty()) {
      Json windows = Json::array();
      for (const PartitionWindow& w : spec.faults.partitions) {
        Json window = Json::object();
        if (w.stub_domain == kPartitionDomainAuto) {
          window.set("stub_domain", "auto");
        } else {
          window.set("stub_domain",
                     static_cast<std::uint64_t>(w.stub_domain));
        }
        window.set("start_s", w.start_s).set("end_s", w.end_s);
        windows.push_back(std::move(window));
      }
      faults.set("partitions", std::move(windows));
    }
    // Burst-loss and storm fields are additive and keyed off their own
    // knobs, so Bernoulli-loss results stay byte-identical to pre-burst
    // runs.
    if (spec.faults.loss_burst_len > 0) {
      faults
          .set("loss_burst_len",
               static_cast<std::uint64_t>(spec.faults.loss_burst_len))
          .set("burst_losses", result.fault_burst_losses);
    }
    if (!spec.faults.storms.empty()) {
      Json storms = Json::array();
      for (const StormWindow& w : spec.faults.storms) {
        Json storm = Json::object();
        if (w.stub_domain == kPartitionDomainAuto) {
          storm.set("stub_domain", "auto");
        } else {
          storm.set("stub_domain",
                    static_cast<std::uint64_t>(w.stub_domain));
        }
        storm.set("start_s", w.start_s).set("window_s", w.window_s);
        storms.push_back(std::move(storm));
      }
      faults.set("storms", std::move(storms));
      faults.set("storm_failures", result.fault_storm_failures);
    }
    out.set("faults", std::move(faults));
  }

  // Adversary stanza (additive; present only when the spec assigns a
  // byzantine model, so honest results stay byte-identical).
  if (spec.adversary.active()) {
    Json adversary = Json::object();
    adversary.set("liar_fraction", spec.adversary.liar_fraction)
        .set("freeride_fraction", spec.adversary.freeride_fraction)
        .set("dropper_fraction", spec.adversary.dropper_fraction)
        .set("eclipse_fraction", spec.adversary.eclipse_fraction)
        .set("lie_factor", spec.adversary.lie_factor)
        .set("drop_probability", spec.adversary.drop_probability)
        .set("lies", result.adversary_lies)
        .set("drops", result.adversary_drops)
        .set("freeride_skips", result.adversary_freeride_skips);
    if (spec.adversary.eclipse_fraction > 0.0) {
      if (spec.adversary.eclipse_target == kInvalidSlot) {
        adversary.set("eclipse_target", "auto");
      } else {
        adversary.set("eclipse_target", static_cast<std::uint64_t>(
                                            spec.adversary.eclipse_target));
      }
      adversary.set("eclipse_attempts", result.adversary_eclipse_attempts)
          .set("eclipse_captures", result.adversary_eclipse_captures)
          .set("eclipse_held", result.adversary_eclipse_held);
    }
    out.set("adversary", std::move(adversary));
  }

  if (result.lookups_issued > 0) {
    Json traffic = Json::object();
    traffic.set("issued", result.lookups_issued)
        .set("unreachable", result.lookups_unreachable)
        .set("p50_ms", result.observed_p50_ms)
        .set("p95_ms", result.observed_p95_ms)
        .set("observed", timeseries_json(result.observed));
    out.set("traffic", std::move(traffic));
  }

  out.set("connected", result.connected);
  out.set("population", static_cast<std::uint64_t>(result.final_population));
  return out;
}

}  // namespace propsim
