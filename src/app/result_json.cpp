#include "app/result_json.h"

namespace propsim {

Json timeseries_json(const TimeSeries& series) {
  Json out = Json::array();
  for (const auto& p : series.points()) {
    Json point = Json::object();
    point.set("t", p.time).set("value", p.value);
    out.push_back(std::move(point));
  }
  return out;
}

Json experiment_result_json(const ExperimentSpec& spec,
                            const ExperimentResult& result) {
  Json out = Json::object();
  out.set("schema", "propsim.result");
  out.set("version", kResultSchemaVersion);

  Json spec_json = Json::object();
  spec_json.set("topology", to_string(spec.topology))
      .set("overlay", to_string(spec.overlay))
      .set("protocol", to_string(spec.protocol))
      .set("nodes", static_cast<std::uint64_t>(spec.nodes))
      .set("seed", static_cast<std::uint64_t>(spec.seed))
      .set("horizon_s", spec.horizon_s)
      .set("sample_interval_s", spec.sample_interval_s)
      .set("queries", static_cast<std::uint64_t>(spec.queries))
      .set("oracle", to_string(spec.oracle_mode));
  out.set("spec", std::move(spec_json));

  Json metric = Json::object();
  metric.set("name", result.metric_name)
      .set("initial", result.initial_value)
      .set("final", result.final_value)
      .set("series", timeseries_json(result.series));
  out.set("metric", std::move(metric));

  Json counters = Json::object();
  for (const auto& [name, value] : result.counters()) {
    counters.set(name, value);
  }
  out.set("counters", std::move(counters));
  out.set("counters_version", ExperimentResult::kCountersVersion);

  if (result.lookups_issued > 0) {
    Json traffic = Json::object();
    traffic.set("issued", result.lookups_issued)
        .set("unreachable", result.lookups_unreachable)
        .set("p50_ms", result.observed_p50_ms)
        .set("p95_ms", result.observed_p95_ms)
        .set("observed", timeseries_json(result.observed));
    out.set("traffic", std::move(traffic));
  }

  out.set("connected", result.connected);
  out.set("population", static_cast<std::uint64_t>(result.final_population));
  return out;
}

}  // namespace propsim
