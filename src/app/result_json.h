// Stable machine-readable serialization of experiment results.
//
// The `propsim.result` schema (docs/PERF.md documents every field):
//
//   {
//     "schema": "propsim.result", "version": 1,
//     "spec": { topology, overlay, protocol, nodes, seed, horizon_s,
//               sample_interval_s, queries, oracle },
//     "metric": { name, initial, final, series: [{t, value}, ...] },
//     "counters": { <name>: <value>, ... },   // ExperimentResult::counters()
//     "counters_version": 1,
//     "traffic": { issued, unreachable, p50_ms, p95_ms,
//                  observed: [{t, value}, ...] },  // only when lookups ran
//     "connected": bool, "population": int
//   }
//
// Version bumps accompany field removals or renames; additions are
// backward-compatible and do not bump.
#pragma once

#include "app/experiment.h"
#include "common/json.h"

namespace propsim {

inline constexpr int kResultSchemaVersion = 1;

/// A {t, value} array for a time series.
Json timeseries_json(const TimeSeries& series);

/// The full result under the `propsim.result` schema above.
Json experiment_result_json(const ExperimentSpec& spec,
                            const ExperimentResult& result);

}  // namespace propsim
