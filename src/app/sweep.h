// Parameter-sweep expansion: the combinatorics behind propsim_sweep,
// separated from the tool so it is unit-testable.
#pragma once

#include <string>
#include <vector>

#include "common/config.h"

namespace propsim {

struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// "a,b,c" -> {"a","b","c"}; empty segments are preserved (caller
/// validates), a lone string yields one element.
std::vector<std::string> split_commas(const std::string& s);

/// Parses "sweep:key=v1,v2" into an axis; check-fails when malformed.
SweepAxis parse_sweep_axis(const std::string& arg);

struct SweepCombo {
  Config config;
  std::string label;  // "key1=v1 key2=v2"
};

/// Cartesian product of the axes over a base config, in axis order
/// (first axis varies slowest). No axes -> one combo labelled "(base)".
std::vector<SweepCombo> expand_sweep(const Config& base,
                                     const std::vector<SweepAxis>& axes);

}  // namespace propsim
