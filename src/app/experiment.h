// Config-driven experiment runner — the engine behind tools/propsim_cli.
//
// An ExperimentSpec selects a physical topology, an overlay substrate, an
// optimization protocol, an optional heterogeneity/churn workload and a
// measurement schedule; run_experiment assembles the pieces and returns
// the paper-style metric series plus protocol counters.
//
// Config keys (see docs in README):
//   topology   = ts-large | ts-small | waxman        (default ts-large)
//   overlay    = gnutella | chord | pastry | tapestry | can
//   protocol   = none | prop-g | prop-o | ltm        (default prop-g)
//   nodes      = <int>                               (default 1000)
//   seed       = <int>                               (default 20070901)
//   horizon    = <seconds>                           (default 3600)
//   sample_interval = <seconds>                      (default horizon/15)
//   queries    = <int>                               (default 10000)
//   nhops, m, min_var, init_timer, max_init_trial    (PROP parameters)
//   random_target = true|false
//   selection  = greedy | random                     (PROP-O transfer sets)
//   model_message_delays = true|false                (delayed commits)
//   lookup_rate = <per second>   (event-driven lookup traffic; 0 = off)
//   heterogeneity = none | bimodal | bimodal-degree  (default none)
//   fast_fraction, fast_delay_ms, slow_delay_ms
//   fraction_fast_dest = <0..1>   (lookup destination bias; -1 uniform)
//   churn_join_rate, churn_leave_rate, churn_fail_rate = <per second>
//   churn_start, churn_end = <seconds>
//   oracle     = auto | hierarchical | dijkstra       (default auto)
//   oracle_cache_rows = <int>                         (default 1024)
//   measure_threads = auto | <int>   (metric-sweep worker threads;
//                          0/1 = serial, results bit-identical for any
//                          value)
//   measure_mode = auto | exact | fast   (flood kernel for the metric
//                          sweeps; exact = bit-identical binary-heap
//                          Dijkstra, fast = fixed-point bucket queue
//                          with <= 1e-6 relative latency error; auto
//                          resolves to exact; fast requires
//                          overlay = gnutella)
//   sim_shards = auto | <int>   (event-core shards; 0/1 = serial
//                          scheduler, auto = one per stub domain capped
//                          at hardware threads, results bit-identical
//                          for any value)
//   shard_window = <seconds>    (lock-step window between shard
//                          barriers; requires sim_shards)
//   sim_speculative = on | off | auto   (speculative shard-local
//                          execution inside scheduler windows; default
//                          off, auto = on when the event core runs more
//                          than one shard; results stay bit-identical —
//                          only wall-clock and the opt-in
//                          sim.speculation stanza change)
//   sim_local_ticks = <seconds>   (per-stub-domain shard-local
//                          maintenance tick period, 0 = off; requires a
//                          transit-stub topology)
//   trace      = <path>   (stream propsim.trace v1 JSONL; requires a
//                          PROPSIM_TRACE=ON build)
//   trace_buffer = <int>  (sink ring-buffer capacity, default 8192)
//   fault_loss = <0..1>     (per-message loss probability, default 0)
//   fault_jitter = <0..1>   (negotiation latency jitter amplitude)
//   fault_crash = <0..1>    (mid-negotiation crash probability;
//                            requires overlay = gnutella)
//   fault_max_retries = <int>  (prepare retransmissions, default 2)
//   fault_partition_domain = <int> | auto   (stub domain to cut;
//                            requires a transit-stub topology)
//   fault_partition_start, fault_partition_end = <seconds>
//   fault_storm_domain = <int> | auto   (correlated crash storm: every
//                            overlay host in the stub domain fails at an
//                            evenly spaced instant inside the window;
//                            requires transit-stub + gnutella)
//   fault_storm_start, fault_storm_window = <seconds>
//   fault_loss_burst_len = <int>   (mean burst length of Gilbert-Elliott
//                            two-state loss; 0 = Bernoulli; requires
//                            fault_loss > 0)
//   adversary_liar_fraction, adversary_freeride_fraction,
//   adversary_dropper_fraction, adversary_eclipse_fraction = <0..1)
//                            (disjoint byzantine host fractions, sum < 1;
//                            require overlay = gnutella and a PROP
//                            protocol; eclipse requires prop-g)
//   adversary_lie_factor = <0..1]   (liar cost deflation, default 0.5)
//   adversary_drop_probability = <0..1>  (dropper commit-leg drop
//                            probability, default 1.0)
//   adversary_eclipse_target = <int> | auto  (slot to eclipse; auto =
//                            highest-degree slot at assembly)
//
// from_config returns a SpecResult: structured per-key errors (including
// unknown keys, with did-you-mean suggestions) instead of aborting the
// process, so tools can report every problem at once.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "adversary/adversary.h"
#include "baselines/ltm.h"
#include "common/config.h"
#include "common/timeseries.h"
#include "core/params.h"
#include "faults/fault_plan.h"
#include "obs/event_bus.h"
#include "workload/churn.h"
#include "workload/heterogeneity.h"

namespace propsim {

struct SpecResult;

struct ExperimentSpec {
  enum class Topology { kTsLarge, kTsSmall, kWaxman };
  enum class Overlay { kGnutella, kChord, kPastry, kTapestry, kCan };
  enum class Protocol { kNone, kPropG, kPropO, kLtm };

  Topology topology = Topology::kTsLarge;
  Overlay overlay = Overlay::kGnutella;
  Protocol protocol = Protocol::kPropG;

  std::size_t nodes = 1000;
  std::uint64_t seed = 20070901;
  double horizon_s = 3600.0;
  double sample_interval_s = 240.0;
  std::size_t queries = 10000;

  PropParams prop;
  LtmParams ltm;

  enum class Heterogeneity { kNone, kBimodal, kBimodalByDegree };
  Heterogeneity heterogeneity = Heterogeneity::kNone;
  BimodalConfig bimodal;
  /// Destination bias toward fast nodes; negative = uniform workload.
  double fraction_fast_dest = -1.0;

  ChurnParams churn;  // all-zero rates = no churn

  /// Fault-injection plan (src/faults). An injector is constructed only
  /// when faults.active() — a config with fault_loss = 0 and no other
  /// fault knob runs the exact fault-free code path, bit-identically.
  FaultParams faults;

  /// Byzantine behavior plan (src/adversary). Like faults, a layer is
  /// constructed only when adversary.active(): all-zero fractions run
  /// the honest code path bit-identically.
  AdversaryParams adversary;

  /// Event-driven lookup arrivals per second (0 = snapshot metric only).
  double lookup_rate_per_s = 0.0;

  /// Latency-oracle engine selection. kAuto picks the exact hierarchical
  /// engine on transit-stub topologies and Dijkstra rows elsewhere.
  enum class OracleMode { kAuto, kHierarchical, kDijkstra };
  OracleMode oracle_mode = OracleMode::kAuto;
  /// LRU bound on resident Dijkstra rows (0 = unbounded).
  std::size_t oracle_cache_rows = 1024;

  /// Worker threads for metric-snapshot evaluation (the measurement
  /// engine): 0 or 1 = serial, kMeasureThreadsAuto = one per hardware
  /// thread. A pure execution knob: results are bit-identical for any
  /// value (and it is therefore not echoed into the result JSON).
  /// Defaults to serial so nested parallelism (propsim_sweep fans whole
  /// runs over a pool already) stays opt-in.
  static constexpr std::size_t kMeasureThreadsAuto =
      static_cast<std::size_t>(-1);
  std::size_t measure_threads = 1;

  /// Flood-kernel selection for the metric sweeps. kExact runs the
  /// binary-heap Dijkstra whose results are bit-identical to the live
  /// flood (the golden-JSON contract); kFast runs the fixed-point
  /// bucket-queue kernel — deterministic at any thread count, but its
  /// latencies carry quantization error (bounded, <= 1e-6 relative on
  /// paper-scale configs; equivalence-tested). kAuto resolves to kExact
  /// so existing configs keep byte-identical results. Unlike
  /// measure_threads this is NOT a pure execution knob, so the resolved
  /// mode is echoed into the result JSON. kFast requires the
  /// unstructured gnutella overlay (stretch metrics never flood).
  enum class MeasureMode { kAuto, kExact, kFast };
  MeasureMode measure_mode = MeasureMode::kAuto;
  /// The mode a run actually uses (kAuto resolved; never returns kAuto).
  MeasureMode resolved_measure_mode() const {
    return measure_mode == MeasureMode::kAuto ? MeasureMode::kExact
                                              : measure_mode;
  }

  /// Event-core shards for the discrete-event scheduler: 0 or 1 =
  /// SerialScheduler, N > 1 = ShardedScheduler with N event heaps,
  /// kSimShardsAuto = one shard per stub domain capped at hardware
  /// threads (requires a transit-stub topology). Like measure_threads a
  /// pure execution knob: the executed event sequence — and therefore
  /// the result JSON — is bit-identical at any shard count, so neither
  /// key is echoed into the result.
  static constexpr std::size_t kSimShardsAuto = static_cast<std::size_t>(-1);
  std::size_t sim_shards = 1;
  /// Conservative lock-step window between shard barriers, in simulated
  /// seconds. Only meaningful alongside sim_shards.
  double shard_window_s = 0.25;
  /// Speculative shard-local execution inside scheduler windows. kOff
  /// always merges serially; kOn and kAuto arm the speculative pass
  /// whenever the event core is sharded (a single-shard core has no
  /// workers to overlap with and silently stays serial, so `on` is
  /// legal at any shard count). Execution stays bit-identical either
  /// way: speculation changes wall-clock and the opt-in
  /// `sim.speculation` result stanza, never the event sequence.
  enum class Speculative { kOff, kOn, kAuto };
  Speculative sim_speculative = Speculative::kOff;
  /// True when the key asks for speculation at all (kOn or kAuto); the
  /// scheduler itself disarms it when only one shard exists.
  bool speculation_armed() const {
    return sim_speculative != Speculative::kOff;
  }
  /// Mean per-stub-domain shard-local maintenance tick period in
  /// seconds; 0 disables the stream (the default — existing configs are
  /// unaffected). Ticks are Locality::kShardLocal events, the workload
  /// the speculative path overlaps with the serial merge.
  double local_tick_period_s = 0.0;

  /// When non-empty, the run streams every trace event to this path as
  /// `propsim.trace` v1 JSONL (requires a PROPSIM_TRACE=ON build; the
  /// in-memory counters in ExperimentResult::trace work regardless).
  std::string trace_path;
  /// Sink ring-buffer capacity in events (flushed in batches on wrap).
  std::size_t trace_buffer_events = 8192;

  /// Parses and validates. Never aborts on bad input: every problem —
  /// unknown key, malformed value, out-of-range value, invalid
  /// combination (e.g. LTM or churn on a structured overlay) — is
  /// reported as a SpecIssue in the returned SpecResult.
  static SpecResult from_config(const Config& config);
};

/// Display names for the spec enums (also used in error messages and the
/// JSON output schema).
const char* to_string(ExperimentSpec::Topology v);
const char* to_string(ExperimentSpec::Overlay v);
const char* to_string(ExperimentSpec::Protocol v);
const char* to_string(ExperimentSpec::Heterogeneity v);
const char* to_string(ExperimentSpec::OracleMode v);
const char* to_string(ExperimentSpec::MeasureMode v);

/// One problem found while parsing a config into an ExperimentSpec.
struct SpecIssue {
  std::string key;      // offending key; empty for cross-key constraints
  std::string message;  // what is wrong
  std::string hint;     // optional fix ("did you mean ...", valid values)
};

/// Outcome of ExperimentSpec::from_config: either a valid spec, or the
/// full list of problems (parsing continues past the first error so a
/// config's issues are reported together).
struct SpecResult {
  bool ok() const { return errors.empty(); }
  /// The parsed spec; check-fails unless ok().
  const ExperimentSpec& spec() const;
  /// All issues, in config-key order; empty when ok().
  std::vector<SpecIssue> errors;
  /// One "config: <key>: <message> (<hint>)" line per issue.
  std::string error_report() const;

  ExperimentSpec spec_storage;  // valid only when ok()
};

struct ExperimentResult {
  /// Counter-name registry version for counters(): bumped whenever an
  /// existing name changes meaning or disappears; pure additions keep it.
  /// v2: added the event-bus counters (walk_hops, flood_hops,
  /// lookup_hops, exchange_aborts, warmup_exchanges,
  /// maintenance_exchanges, trace_events); all v1 names are unchanged.
  /// v3: added the resilience counters (timeouts, retries,
  /// aborted_mid_commit, fault_messages, fault_losses,
  /// fault_partition_drops, fault_crashes); v1/v2 names are unchanged.
  /// v4: added the scheduler counters (sim_events_executed,
  /// sim_events_scheduled, sim_events_cancelled) — all invariant across
  /// sim_shards values; v1-v3 names are unchanged.
  /// v5: added the measurement counters (measure_exact_floods,
  /// measure_fast_floods, measure_snapshot_captures,
  /// measure_snapshot_reuses) — flood counts are invariant across
  /// measure_threads and sim_shards; the snapshot split between
  /// captures and reuses depends on the trace build mode (OFF builds
  /// never reuse), like trace_events already does. v1-v4 names are
  /// unchanged.
  /// v6: added the threat-model counters (adversary_lies,
  /// adversary_drops, adversary_freeride_skips,
  /// adversary_eclipse_attempts, adversary_eclipse_captures,
  /// fault_storm_failures, fault_burst_losses) — all zero unless the
  /// corresponding adversary/storm/burst knob is set. v1-v5 names are
  /// unchanged.
  /// v7: added the shard-local tick counters (local_ticks,
  /// local_tick_digest) — zero unless sim_local_ticks is set, invariant
  /// across schedulers and shard counts — and the opt-in
  /// `sim.speculation` stanza (speculated, replayed, windows,
  /// conflicts, conflict_rate): the one deliberately shard-count-
  /// dependent block in the result, reporting scheduler internals; it
  /// appears only when sim_speculative arms a sharded run and the
  /// cross-shard golden comparisons strip it. v1-v6 names are
  /// unchanged.
  static constexpr int kCountersVersion = 7;

  /// "lookup_ms" for unstructured overlays, "stretch" for DHTs.
  std::string metric_name;
  TimeSeries series;
  double initial_value = 0.0;
  double final_value = 0.0;

  std::uint64_t exchanges = 0;
  std::uint64_t attempts = 0;
  std::uint64_t ltm_rounds = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t churn_joins = 0;
  std::uint64_t churn_leaves = 0;
  std::uint64_t churn_failures = 0;
  std::uint64_t commit_conflicts = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t aborted_mid_commit = 0;
  std::uint64_t fault_messages = 0;
  std::uint64_t fault_losses = 0;
  std::uint64_t fault_partition_drops = 0;
  std::uint64_t fault_crashes = 0;
  std::uint64_t fault_storm_failures = 0;
  std::uint64_t fault_burst_losses = 0;
  /// Byzantine layer totals (zero without an attached adversary).
  std::uint64_t adversary_lies = 0;
  std::uint64_t adversary_drops = 0;
  std::uint64_t adversary_freeride_skips = 0;
  std::uint64_t adversary_eclipse_attempts = 0;
  std::uint64_t adversary_eclipse_captures = 0;
  /// Eclipse-target neighbor seats held by attackers at the horizon.
  std::uint64_t adversary_eclipse_held = 0;
  /// Scheduler totals for the whole run. Invariant across sim_shards
  /// (the sharded core executes the identical event sequence), so they
  /// are safe to echo in counters and the result JSON `sim` stanza.
  std::uint64_t sim_events_executed = 0;
  std::uint64_t sim_events_scheduled = 0;
  std::uint64_t sim_events_cancelled = 0;
  /// Shard-local tick workload totals (zero unless sim_local_ticks is
  /// set). Deterministic per seed and invariant across scheduler
  /// implementations, shard counts and speculation — the digest is the
  /// cheapest end-to-end witness that speculative execution preserved
  /// the event sequence.
  std::uint64_t local_ticks = 0;
  std::uint64_t local_tick_digest = 0;
  /// Speculation report (meaningful only when speculation_active). The
  /// values are scheduler internals — window and conflict counts depend
  /// on the shard count and window size — so they live in their own
  /// opt-in stanza that cross-shard byte-comparisons strip.
  bool speculation_active = false;
  std::uint64_t speculation_speculated = 0;
  std::uint64_t speculation_replayed = 0;
  std::uint64_t speculation_windows = 0;
  std::uint64_t speculation_conflicts = 0;
  double speculation_conflict_rate = 0.0;
  /// Measurement-engine totals. Flood counts tally one per distinct
  /// query source per sample tick (zero for stretch metrics, which
  /// route instead of flooding); exactly one of the two is non-zero for
  /// an unstructured run, naming the kernel that ran. Snapshot captures
  /// + reuses sum to the sample count on unstructured runs; reuses stay
  /// zero in a PROPSIM_TRACE=OFF build (the bus cannot prove the
  /// overlay unchanged) and in the exact sense never affect values —
  /// a reused snapshot is byte-identical to the capture it skipped.
  std::uint64_t measure_exact_floods = 0;
  std::uint64_t measure_fast_floods = 0;
  std::uint64_t measure_snapshot_captures = 0;
  std::uint64_t measure_snapshot_reuses = 0;
  bool connected = false;
  std::size_t final_population = 0;

  /// Per-phase event counters and wall-clock phase timers from the run's
  /// event bus (zeros in a PROPSIM_TRACE=OFF build).
  obs::TraceSummary trace;

  /// Event-driven traffic results (lookup_rate > 0 only): windowed mean
  /// of what lookups actually experienced, plus distribution points.
  TimeSeries observed;
  std::uint64_t lookups_issued = 0;
  std::uint64_t lookups_unreachable = 0;
  double observed_p50_ms = 0.0;
  double observed_p95_ms = 0.0;

  /// Stable name -> value view of the protocol counters above, in a
  /// fixed order, so consumers (JSON output, sweep aggregation, new
  /// protocols) never need struct edits to pick up a new counter. Names
  /// are governed by kCountersVersion.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
};

ExperimentResult run_experiment(const ExperimentSpec& spec);

}  // namespace propsim
