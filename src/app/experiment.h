// Config-driven experiment runner — the engine behind tools/propsim_cli.
//
// An ExperimentSpec selects a physical topology, an overlay substrate, an
// optimization protocol, an optional heterogeneity/churn workload and a
// measurement schedule; run_experiment assembles the pieces and returns
// the paper-style metric series plus protocol counters.
//
// Config keys (see docs in README):
//   topology   = ts-large | ts-small | waxman        (default ts-large)
//   overlay    = gnutella | chord | pastry | tapestry | can
//   protocol   = none | prop-g | prop-o | ltm        (default prop-g)
//   nodes      = <int>                               (default 1000)
//   seed       = <int>                               (default 20070901)
//   horizon    = <seconds>                           (default 3600)
//   sample_interval = <seconds>                      (default horizon/15)
//   queries    = <int>                               (default 10000)
//   nhops, m, min_var, init_timer, max_init_trial    (PROP parameters)
//   random_target = true|false
//   selection  = greedy | random                     (PROP-O transfer sets)
//   model_message_delays = true|false                (delayed commits)
//   lookup_rate = <per second>   (event-driven lookup traffic; 0 = off)
//   heterogeneity = none | bimodal | bimodal-degree  (default none)
//   fast_fraction, fast_delay_ms, slow_delay_ms
//   fraction_fast_dest = <0..1>   (lookup destination bias; -1 uniform)
//   churn_join_rate, churn_leave_rate, churn_fail_rate = <per second>
//   churn_start, churn_end = <seconds>
#pragma once

#include <cstdint>
#include <string>

#include "baselines/ltm.h"
#include "common/config.h"
#include "common/timeseries.h"
#include "core/params.h"
#include "workload/churn.h"
#include "workload/heterogeneity.h"

namespace propsim {

struct ExperimentSpec {
  enum class Topology { kTsLarge, kTsSmall, kWaxman };
  enum class Overlay { kGnutella, kChord, kPastry, kTapestry, kCan };
  enum class Protocol { kNone, kPropG, kPropO, kLtm };

  Topology topology = Topology::kTsLarge;
  Overlay overlay = Overlay::kGnutella;
  Protocol protocol = Protocol::kPropG;

  std::size_t nodes = 1000;
  std::uint64_t seed = 20070901;
  double horizon_s = 3600.0;
  double sample_interval_s = 240.0;
  std::size_t queries = 10000;

  PropParams prop;
  LtmParams ltm;

  enum class Heterogeneity { kNone, kBimodal, kBimodalByDegree };
  Heterogeneity heterogeneity = Heterogeneity::kNone;
  BimodalConfig bimodal;
  /// Destination bias toward fast nodes; negative = uniform workload.
  double fraction_fast_dest = -1.0;

  ChurnParams churn;  // all-zero rates = no churn

  /// Event-driven lookup arrivals per second (0 = snapshot metric only).
  double lookup_rate_per_s = 0.0;

  /// Parses and validates; check-fails with a message on bad combos
  /// (e.g. LTM or churn on a structured overlay).
  static ExperimentSpec from_config(const Config& config);
};

struct ExperimentResult {
  /// "lookup_ms" for unstructured overlays, "stretch" for DHTs.
  std::string metric_name;
  TimeSeries series;
  double initial_value = 0.0;
  double final_value = 0.0;

  std::uint64_t exchanges = 0;
  std::uint64_t attempts = 0;
  std::uint64_t ltm_rounds = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t churn_joins = 0;
  std::uint64_t churn_leaves = 0;
  std::uint64_t churn_failures = 0;
  std::uint64_t commit_conflicts = 0;
  bool connected = false;
  std::size_t final_population = 0;

  /// Event-driven traffic results (lookup_rate > 0 only): windowed mean
  /// of what lookups actually experienced, plus distribution points.
  TimeSeries observed;
  std::uint64_t lookups_issued = 0;
  std::uint64_t lookups_unreachable = 0;
  double observed_p50_ms = 0.0;
  double observed_p95_ms = 0.0;
};

ExperimentResult run_experiment(const ExperimentSpec& spec);

}  // namespace propsim
