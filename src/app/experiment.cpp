#include "app/experiment.h"

#include <functional>
#include <memory>

#include "can/can_space.h"
#include "chord/chord_ring.h"
#include "core/prop_engine.h"
#include "gnutella/gnutella.h"
#include "metrics/convergence.h"
#include "metrics/metrics.h"
#include "pastry/pastry.h"
#include "sim/simulator.h"
#include "tapestry/tapestry.h"
#include "topology/random_graphs.h"
#include "topology/transit_stub.h"
#include "workload/host_selection.h"
#include "workload/lookup_traffic.h"
#include "workload/lookups.h"

namespace propsim {
namespace {

ExperimentSpec::Topology parse_topology(const std::string& v) {
  if (v == "ts-large") return ExperimentSpec::Topology::kTsLarge;
  if (v == "ts-small") return ExperimentSpec::Topology::kTsSmall;
  if (v == "waxman") return ExperimentSpec::Topology::kWaxman;
  PROPSIM_CHECK(false && "topology must be ts-large | ts-small | waxman");
  return ExperimentSpec::Topology::kTsLarge;
}

ExperimentSpec::Overlay parse_overlay(const std::string& v) {
  if (v == "gnutella") return ExperimentSpec::Overlay::kGnutella;
  if (v == "chord") return ExperimentSpec::Overlay::kChord;
  if (v == "pastry") return ExperimentSpec::Overlay::kPastry;
  if (v == "tapestry") return ExperimentSpec::Overlay::kTapestry;
  if (v == "can") return ExperimentSpec::Overlay::kCan;
  PROPSIM_CHECK(false &&
                "overlay must be gnutella | chord | pastry | tapestry | can");
  return ExperimentSpec::Overlay::kGnutella;
}

ExperimentSpec::Protocol parse_protocol(const std::string& v) {
  if (v == "none") return ExperimentSpec::Protocol::kNone;
  if (v == "prop-g") return ExperimentSpec::Protocol::kPropG;
  if (v == "prop-o") return ExperimentSpec::Protocol::kPropO;
  if (v == "ltm") return ExperimentSpec::Protocol::kLtm;
  PROPSIM_CHECK(false && "protocol must be none | prop-g | prop-o | ltm");
  return ExperimentSpec::Protocol::kNone;
}

ExperimentSpec::Heterogeneity parse_heterogeneity(const std::string& v) {
  if (v == "none") return ExperimentSpec::Heterogeneity::kNone;
  if (v == "bimodal") return ExperimentSpec::Heterogeneity::kBimodal;
  if (v == "bimodal-degree") {
    return ExperimentSpec::Heterogeneity::kBimodalByDegree;
  }
  PROPSIM_CHECK(false &&
                "heterogeneity must be none | bimodal | bimodal-degree");
  return ExperimentSpec::Heterogeneity::kNone;
}

}  // namespace

ExperimentSpec ExperimentSpec::from_config(const Config& config) {
  ExperimentSpec spec;
  spec.topology = parse_topology(config.get_string("topology", "ts-large"));
  spec.overlay = parse_overlay(config.get_string("overlay", "gnutella"));
  spec.protocol = parse_protocol(config.get_string("protocol", "prop-g"));

  spec.nodes = static_cast<std::size_t>(config.get_int("nodes", 1000));
  PROPSIM_CHECK(spec.nodes >= 8);
  spec.seed = static_cast<std::uint64_t>(config.get_int("seed", 20070901));
  spec.horizon_s = config.get_double("horizon", 3600.0);
  PROPSIM_CHECK(spec.horizon_s > 0.0);
  spec.sample_interval_s =
      config.get_double("sample_interval", spec.horizon_s / 15.0);
  PROPSIM_CHECK(spec.sample_interval_s > 0.0);
  spec.queries = static_cast<std::size_t>(config.get_int("queries", 10000));
  PROPSIM_CHECK(spec.queries >= 1);

  spec.prop.mode = spec.protocol == Protocol::kPropO ? PropMode::kPropO
                                                     : PropMode::kPropG;
  spec.prop.nhops =
      static_cast<std::size_t>(config.get_int("nhops", 2));
  spec.prop.m = static_cast<std::size_t>(config.get_int("m", 0));
  spec.prop.min_var = config.get_double("min_var", 0.0);
  spec.prop.init_timer_s = config.get_double("init_timer", 60.0);
  spec.prop.max_init_trial =
      static_cast<std::size_t>(config.get_int("max_init_trial", 10));
  spec.prop.random_target = config.get_bool("random_target", false);
  spec.prop.model_message_delays =
      config.get_bool("model_message_delays", false);
  const std::string selection = config.get_string("selection", "greedy");
  if (selection == "greedy") {
    spec.prop.selection = SelectionPolicy::kGreedy;
  } else if (selection == "random") {
    spec.prop.selection = SelectionPolicy::kRandom;
  } else {
    PROPSIM_CHECK(false && "selection must be greedy | random");
  }
  spec.ltm.interval_s = spec.prop.init_timer_s;
  spec.lookup_rate_per_s = config.get_double("lookup_rate", 0.0);
  PROPSIM_CHECK(spec.lookup_rate_per_s >= 0.0);

  spec.heterogeneity =
      parse_heterogeneity(config.get_string("heterogeneity", "none"));
  spec.bimodal.fast_fraction = config.get_double("fast_fraction", 0.2);
  spec.bimodal.fast_delay_ms = config.get_double("fast_delay_ms", 10.0);
  spec.bimodal.slow_delay_ms = config.get_double("slow_delay_ms", 100.0);
  spec.fraction_fast_dest = config.get_double("fraction_fast_dest", -1.0);
  if (spec.fraction_fast_dest >= 0.0) {
    PROPSIM_CHECK(spec.heterogeneity != Heterogeneity::kNone);
    PROPSIM_CHECK(spec.fraction_fast_dest <= 1.0);
  }

  spec.churn.join_rate_per_s = config.get_double("churn_join_rate", 0.0);
  spec.churn.leave_rate_per_s = config.get_double("churn_leave_rate", 0.0);
  spec.churn.fail_rate_per_s = config.get_double("churn_fail_rate", 0.0);
  spec.churn.start_s = config.get_double("churn_start", 0.0);
  spec.churn.end_s = config.get_double("churn_end", spec.horizon_s);

  const bool has_churn = spec.churn.join_rate_per_s > 0.0 ||
                         spec.churn.leave_rate_per_s > 0.0 ||
                         spec.churn.fail_rate_per_s > 0.0;
  if (spec.overlay != Overlay::kGnutella) {
    // LTM and the churn process are unstructured-overlay machinery.
    PROPSIM_CHECK(spec.protocol != Protocol::kLtm);
    PROPSIM_CHECK(!has_churn);
    // PROP-O rewires edges, which would corrupt a DHT's routing
    // structure; the paper applies it to unstructured systems only.
    PROPSIM_CHECK(spec.protocol != Protocol::kPropO);
  }
  return spec;
}

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  Rng rng(spec.seed);

  // --- Physical topology. ---
  Graph waxman;  // storage when selected
  std::unique_ptr<TransitStubTopology> ts;
  const Graph* physical = nullptr;
  std::vector<NodeId> stub_pool;
  switch (spec.topology) {
    case ExperimentSpec::Topology::kTsLarge:
    case ExperimentSpec::Topology::kTsSmall: {
      const auto cfg = spec.topology == ExperimentSpec::Topology::kTsLarge
                           ? TransitStubConfig::ts_large()
                           : TransitStubConfig::ts_small();
      ts = std::make_unique<TransitStubTopology>(make_transit_stub(cfg, rng));
      physical = &ts->graph;
      stub_pool = ts->stub_nodes;
      break;
    }
    case ExperimentSpec::Topology::kWaxman: {
      waxman = make_waxman_graph(std::max<std::size_t>(4 * spec.nodes, 64),
                                 0.25, 0.4, 200.0, 2.0, rng);
      physical = &waxman;
      stub_pool.resize(waxman.node_count());
      for (NodeId h = 0; h < waxman.node_count(); ++h) stub_pool[h] = h;
      break;
    }
  }
  PROPSIM_CHECK(spec.nodes + spec.nodes / 4 <= stub_pool.size());
  LatencyOracle oracle(*physical);

  // --- Overlay hosts (plus spares for churn joins). ---
  rng.shuffle(stub_pool);
  std::vector<NodeId> hosts(stub_pool.begin(),
                            stub_pool.begin() +
                                static_cast<std::ptrdiff_t>(spec.nodes));
  std::vector<NodeId> spares(
      stub_pool.begin() + static_cast<std::ptrdiff_t>(spec.nodes),
      stub_pool.begin() + static_cast<std::ptrdiff_t>(spec.nodes +
                                                      spec.nodes / 4));

  // --- Overlay substrate + routed-latency metric. ---
  GnutellaConfig gcfg;
  std::unique_ptr<ChordRing> chord;
  std::unique_ptr<PastryNetwork> pastry;
  std::unique_ptr<TapestryNetwork> tapestry;
  std::unique_ptr<CanSpace> can;
  std::unique_ptr<OverlayNetwork> net;
  switch (spec.overlay) {
    case ExperimentSpec::Overlay::kGnutella:
      net = std::make_unique<OverlayNetwork>(
          build_gnutella_overlay(gcfg, hosts, oracle, rng));
      break;
    case ExperimentSpec::Overlay::kChord:
      chord = std::make_unique<ChordRing>(
          ChordRing::build_random(spec.nodes, ChordConfig{}, rng));
      net = std::make_unique<OverlayNetwork>(
          make_chord_overlay(*chord, hosts, oracle));
      break;
    case ExperimentSpec::Overlay::kPastry:
      pastry = std::make_unique<PastryNetwork>(
          PastryNetwork::build_random(spec.nodes, PastryConfig{}, rng));
      net = std::make_unique<OverlayNetwork>(
          make_pastry_overlay(*pastry, hosts, oracle));
      break;
    case ExperimentSpec::Overlay::kTapestry:
      tapestry = std::make_unique<TapestryNetwork>(
          TapestryNetwork::build_random(spec.nodes, TapestryConfig{}, rng));
      net = std::make_unique<OverlayNetwork>(
          make_tapestry_overlay(*tapestry, hosts, oracle));
      break;
    case ExperimentSpec::Overlay::kCan:
      can = std::make_unique<CanSpace>(CanSpace::build(spec.nodes, rng));
      net = std::make_unique<OverlayNetwork>(
          make_can_overlay(*can, hosts, oracle));
      break;
  }

  // --- Heterogeneity (processing delays follow hosts). ---
  std::unique_ptr<BimodalDelays> delays;
  Rng hrng = rng.split();
  switch (spec.heterogeneity) {
    case ExperimentSpec::Heterogeneity::kNone:
      break;
    case ExperimentSpec::Heterogeneity::kBimodal:
      delays = std::make_unique<BimodalDelays>(
          make_bimodal_delays(*net, spec.bimodal, hrng));
      break;
    case ExperimentSpec::Heterogeneity::kBimodalByDegree:
      delays = std::make_unique<BimodalDelays>(
          make_bimodal_delays_by_degree(*net, spec.bimodal, hrng));
      break;
  }

  // --- Workload. ---
  // With churn the membership shifts under the workload, so queries are
  // regenerated at every sample; without churn a fixed query set keeps
  // the series noise-free.
  Rng qrng(spec.seed ^ 0x2545f4914f6cdd1dULL);
  const bool has_churn = spec.churn.join_rate_per_s > 0.0 ||
                         spec.churn.leave_rate_per_s > 0.0 ||
                         spec.churn.fail_rate_per_s > 0.0;
  auto make_queries = [&]() -> std::vector<QueryPair> {
    if (spec.fraction_fast_dest >= 0.0) {
      return biased_queries(net->graph(), delays->slot_fast(*net),
                            spec.fraction_fast_dest, spec.queries, qrng);
    }
    return uniform_queries(net->graph(), spec.queries, qrng);
  };
  std::vector<QueryPair> queries;
  if (!has_churn) queries = make_queries();

  // Metric closure. The slot-delay view is re-materialized per sample
  // because PROP-G moves hosts and churn rebinds slots.
  ExperimentResult result;
  const bool structured = spec.overlay != ExperimentSpec::Overlay::kGnutella;
  result.metric_name = structured ? "stretch" : "lookup_ms";
  auto metric = [&]() -> double {
    if (has_churn) queries = make_queries();
    std::vector<double> proc;
    const std::vector<double>* proc_ptr = nullptr;
    if (delays) {
      proc = delays->slot_delays(*net);
      proc_ptr = &proc;
    }
    switch (spec.overlay) {
      case ExperimentSpec::Overlay::kGnutella:
        return average_unstructured_lookup_latency(*net, queries, proc_ptr);
      case ExperimentSpec::Overlay::kChord:
        return stretch(*net, queries, chord_router(*net, *chord, proc_ptr))
            .stretch;
      case ExperimentSpec::Overlay::kPastry:
        return stretch(*net, queries,
                       [&](const QueryPair& q) {
                         const auto path = pastry->lookup_path(
                             q.src, pastry->id_of(q.dst));
                         return path_latency(*net, path, proc_ptr);
                       })
            .stretch;
      case ExperimentSpec::Overlay::kTapestry:
        return stretch(*net, queries,
                       [&](const QueryPair& q) {
                         const auto path = tapestry->lookup_path(
                             q.src, tapestry->id_of(q.dst));
                         return path_latency(*net, path, proc_ptr);
                       })
            .stretch;
      case ExperimentSpec::Overlay::kCan: {
        return stretch(*net, queries,
                       [&](const QueryPair& q) {
                         const auto path = can->route_path(
                             q.src, can->zone(q.dst).center());
                         return path_latency(*net, path, proc_ptr);
                       })
            .stretch;
      }
    }
    PROPSIM_CHECK(false && "unreachable");
    return 0.0;
  };

  // --- Protocol engines on the simulated clock. ---
  Simulator sim;
  std::unique_ptr<PropEngine> prop;
  std::unique_ptr<LtmEngine> ltm;
  switch (spec.protocol) {
    case ExperimentSpec::Protocol::kNone:
      break;
    case ExperimentSpec::Protocol::kPropG:
    case ExperimentSpec::Protocol::kPropO:
      prop = std::make_unique<PropEngine>(*net, sim, spec.prop,
                                          spec.seed + 101);
      break;
    case ExperimentSpec::Protocol::kLtm:
      ltm = std::make_unique<LtmEngine>(*net, sim, spec.ltm, spec.seed + 103);
      break;
  }

  std::unique_ptr<ChurnProcess> churn;
  if (has_churn) {
    churn = std::make_unique<ChurnProcess>(*net, sim, prop.get(), gcfg,
                                           spec.churn, spares,
                                           spec.seed + 107);
  }

  // Optional event-driven lookup traffic experiencing the live overlay.
  std::unique_ptr<LookupTrafficProcess> traffic;
  if (spec.lookup_rate_per_s > 0.0) {
    LookupTrafficParams tparams;
    tparams.rate_per_s = spec.lookup_rate_per_s;
    tparams.start_s = 0.0;
    tparams.end_s = spec.horizon_s;
    tparams.window_s = spec.sample_interval_s;
    auto resolve = [&, spec](const QueryPair& q) -> double {
      std::vector<double> proc;
      const std::vector<double>* proc_ptr = nullptr;
      if (delays) {
        proc = delays->slot_delays(*net);
        proc_ptr = &proc;
      }
      switch (spec.overlay) {
        case ExperimentSpec::Overlay::kGnutella:
          return net->flood_latencies(q.src, proc_ptr)[q.dst];
        case ExperimentSpec::Overlay::kChord:
          return path_latency(
              *net, chord->lookup_path(q.src, chord->id_of(q.dst)),
              proc_ptr);
        case ExperimentSpec::Overlay::kPastry:
          return path_latency(
              *net, pastry->lookup_path(q.src, pastry->id_of(q.dst)),
              proc_ptr);
        case ExperimentSpec::Overlay::kTapestry:
          return path_latency(
              *net,
              tapestry->lookup_path(q.src, tapestry->id_of(q.dst)),
              proc_ptr);
        case ExperimentSpec::Overlay::kCan:
          return path_latency(
              *net, can->route_path(q.src, can->zone(q.dst).center()),
              proc_ptr);
      }
      PROPSIM_CHECK(false && "unreachable");
      return 0.0;
    };
    traffic = std::make_unique<LookupTrafficProcess>(
        *net, sim, tparams, resolve, spec.seed + 109);
  }

  ConvergenceSampler sampler(sim, result.metric_name, 0.0, spec.horizon_s,
                             spec.sample_interval_s, metric);
  if (traffic) traffic->start();
  if (prop) prop->start();
  if (ltm) ltm->start();
  if (churn) churn->start();
  sim.run_until(spec.horizon_s);

  result.series = sampler.take_series();
  result.initial_value = result.series.first_value();
  result.final_value = result.series.last_value();
  if (prop) {
    result.exchanges = prop->stats().exchanges;
    result.attempts = prop->stats().attempts;
    result.commit_conflicts = prop->stats().commit_conflicts;
  }
  if (traffic) {
    result.observed = traffic->observed();
    result.lookups_issued = traffic->issued();
    result.lookups_unreachable = traffic->unreachable();
    if (!traffic->latencies().empty()) {
      result.observed_p50_ms = traffic->latencies().median();
      result.observed_p95_ms = traffic->latencies().quantile(0.95);
    }
  }
  if (ltm) result.ltm_rounds = ltm->rounds();
  result.control_messages = net->traffic().control_total();
  if (churn) {
    result.churn_joins = churn->joins();
    result.churn_leaves = churn->leaves();
    result.churn_failures = churn->failures();
  }
  result.connected = net->graph().active_subgraph_connected();
  result.final_population = net->size();
  return result;
}

}  // namespace propsim
