#include "app/experiment.h"

#include <algorithm>
#include <functional>
#include <initializer_list>
#include <memory>
#include <thread>

#include "analysis/invariant_checker.h"
#include "can/can_space.h"
#include "chord/chord_ring.h"
#include "core/prop_engine.h"
#include "gnutella/gnutella.h"
#include "measure/measure_engine.h"
#include "measure/snapshot_cache.h"
#include "metrics/convergence.h"
#include "metrics/metrics.h"
#include "pastry/pastry.h"
#include "sim/local_ticks.h"
#include "sim/serial_scheduler.h"
#include "sim/sharded_scheduler.h"
#include "tapestry/tapestry.h"
#include "topology/random_graphs.h"
#include "topology/transit_stub.h"
#include "workload/host_selection.h"
#include "workload/lookup_traffic.h"
#include "workload/lookups.h"

namespace propsim {
namespace {

/// Every key from_config understands; unknown keys are rejected with the
/// closest of these as a suggestion.
constexpr const char* kKnownKeys[] = {
    "topology",        "overlay",           "protocol",
    "nodes",           "seed",              "horizon",
    "sample_interval", "queries",           "nhops",
    "m",               "min_var",           "init_timer",
    "max_init_trial",  "random_target",     "model_message_delays",
    "selection",       "lookup_rate",       "heterogeneity",
    "fast_fraction",   "fast_delay_ms",     "slow_delay_ms",
    "fraction_fast_dest", "churn_join_rate", "churn_leave_rate",
    "churn_fail_rate", "churn_start",       "churn_end",
    "oracle",          "oracle_cache_rows", "measure_threads",
    "measure_mode",    "sim_shards",        "shard_window",
    "sim_speculative", "sim_local_ticks",
    "trace",
    "trace_buffer",    "fault_loss",        "fault_jitter",
    "fault_crash",     "fault_max_retries", "fault_partition_domain",
    "fault_partition_start", "fault_partition_end",
    "fault_storm_domain",    "fault_storm_start",
    "fault_storm_window",    "fault_loss_burst_len",
    "adversary_liar_fraction",    "adversary_freeride_fraction",
    "adversary_dropper_fraction", "adversary_eclipse_fraction",
    "adversary_lie_factor",       "adversary_drop_probability",
    "adversary_eclipse_target",
};

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t prev = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = prev;
    }
  }
  return row[b.size()];
}

std::string closest_known_key(const std::string& key) {
  std::string best;
  std::size_t best_d = key.size();  // a full rewrite is no suggestion
  for (const char* candidate : kKnownKeys) {
    const std::size_t d = edit_distance(key, candidate);
    if (d < best_d) {
      best_d = d;
      best = candidate;
    }
  }
  return best_d <= 3 ? best : std::string();
}

/// Collects typed values and accumulates SpecIssues instead of aborting;
/// on any error the corresponding fallback keeps the spec fields
/// well-defined (the caller discards the spec when !ok()).
class SpecParser {
 public:
  explicit SpecParser(const Config& config) : config_(config) {}

  void error(const std::string& key, std::string message,
             std::string hint = {}) {
    errors_.push_back(SpecIssue{key, std::move(message), std::move(hint)});
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) {
    if (!config_.has(key)) return fallback;
    const auto v = config_.try_get_int(key);
    if (!v) {
      error(key, "expected an integer, got '" +
                     config_.get_string(key, "") + "'");
      return fallback;
    }
    return *v;
  }

  double get_double(const std::string& key, double fallback) {
    if (!config_.has(key)) return fallback;
    const auto v = config_.try_get_double(key);
    if (!v) {
      error(key,
            "expected a number, got '" + config_.get_string(key, "") + "'");
      return fallback;
    }
    return *v;
  }

  bool get_bool(const std::string& key, bool fallback) {
    if (!config_.has(key)) return fallback;
    const auto v = config_.try_get_bool(key);
    if (!v) {
      error(key, "expected a boolean, got '" +
                     config_.get_string(key, "") + "'",
            "use true/false, 1/0, yes/no or on/off");
      return fallback;
    }
    return *v;
  }

  /// Matches the value against a fixed enum vocabulary; reports the valid
  /// spellings on mismatch.
  template <typename Enum>
  Enum get_enum(const std::string& key,
                std::initializer_list<std::pair<const char*, Enum>> choices,
                Enum fallback) {
    const std::string v = config_.get_string(key, "");
    if (v.empty() && !config_.has(key)) return fallback;
    std::string valid;
    for (const auto& [name, value] : choices) {
      if (v == name) return value;
      if (!valid.empty()) valid += " | ";
      valid += name;
    }
    error(key, "unknown value '" + v + "'", "must be " + valid);
    return fallback;
  }

  void reject_unknown_keys() {
    for (const auto& [key, value] : config_.values()) {
      bool known = false;
      for (const char* k : kKnownKeys) known = known || key == k;
      if (known) continue;
      const std::string suggestion = closest_known_key(key);
      error(key, "unknown config key",
            suggestion.empty() ? std::string("see README for the key table")
                               : "did you mean '" + suggestion + "'?");
    }
  }

  std::vector<SpecIssue> take_errors() { return std::move(errors_); }

 private:
  const Config& config_;
  std::vector<SpecIssue> errors_;
};

}  // namespace

const char* to_string(ExperimentSpec::Topology v) {
  switch (v) {
    case ExperimentSpec::Topology::kTsLarge: return "ts-large";
    case ExperimentSpec::Topology::kTsSmall: return "ts-small";
    case ExperimentSpec::Topology::kWaxman: return "waxman";
  }
  return "?";
}

const char* to_string(ExperimentSpec::Overlay v) {
  switch (v) {
    case ExperimentSpec::Overlay::kGnutella: return "gnutella";
    case ExperimentSpec::Overlay::kChord: return "chord";
    case ExperimentSpec::Overlay::kPastry: return "pastry";
    case ExperimentSpec::Overlay::kTapestry: return "tapestry";
    case ExperimentSpec::Overlay::kCan: return "can";
  }
  return "?";
}

const char* to_string(ExperimentSpec::Protocol v) {
  switch (v) {
    case ExperimentSpec::Protocol::kNone: return "none";
    case ExperimentSpec::Protocol::kPropG: return "prop-g";
    case ExperimentSpec::Protocol::kPropO: return "prop-o";
    case ExperimentSpec::Protocol::kLtm: return "ltm";
  }
  return "?";
}

const char* to_string(ExperimentSpec::Heterogeneity v) {
  switch (v) {
    case ExperimentSpec::Heterogeneity::kNone: return "none";
    case ExperimentSpec::Heterogeneity::kBimodal: return "bimodal";
    case ExperimentSpec::Heterogeneity::kBimodalByDegree:
      return "bimodal-degree";
  }
  return "?";
}

const char* to_string(ExperimentSpec::OracleMode v) {
  switch (v) {
    case ExperimentSpec::OracleMode::kAuto: return "auto";
    case ExperimentSpec::OracleMode::kHierarchical: return "hierarchical";
    case ExperimentSpec::OracleMode::kDijkstra: return "dijkstra";
  }
  return "?";
}

const char* to_string(ExperimentSpec::MeasureMode v) {
  switch (v) {
    case ExperimentSpec::MeasureMode::kAuto: return "auto";
    case ExperimentSpec::MeasureMode::kExact: return "exact";
    case ExperimentSpec::MeasureMode::kFast: return "fast";
  }
  return "?";
}

const ExperimentSpec& SpecResult::spec() const {
  PROPSIM_CHECK(ok() && "SpecResult::spec() on a failed parse");
  return spec_storage;
}

std::string SpecResult::error_report() const {
  std::string out;
  for (const SpecIssue& issue : errors) {
    out += "config: ";
    if (!issue.key.empty()) out += issue.key + ": ";
    out += issue.message;
    if (!issue.hint.empty()) out += " (" + issue.hint + ")";
    out += "\n";
  }
  return out;
}

SpecResult ExperimentSpec::from_config(const Config& config) {
  SpecResult result;
  ExperimentSpec& spec = result.spec_storage;
  SpecParser p(config);
  p.reject_unknown_keys();

  spec.topology = p.get_enum<Topology>(
      "topology",
      {{"ts-large", Topology::kTsLarge},
       {"ts-small", Topology::kTsSmall},
       {"waxman", Topology::kWaxman}},
      Topology::kTsLarge);
  spec.overlay = p.get_enum<Overlay>(
      "overlay",
      {{"gnutella", Overlay::kGnutella},
       {"chord", Overlay::kChord},
       {"pastry", Overlay::kPastry},
       {"tapestry", Overlay::kTapestry},
       {"can", Overlay::kCan}},
      Overlay::kGnutella);
  spec.protocol = p.get_enum<Protocol>(
      "protocol",
      {{"none", Protocol::kNone},
       {"prop-g", Protocol::kPropG},
       {"prop-o", Protocol::kPropO},
       {"ltm", Protocol::kLtm}},
      Protocol::kPropG);

  const std::int64_t nodes = p.get_int("nodes", 1000);
  if (nodes < 8) {
    p.error("nodes", "must be at least 8, got " + std::to_string(nodes));
  }
  spec.nodes = static_cast<std::size_t>(std::max<std::int64_t>(nodes, 8));
  spec.seed = static_cast<std::uint64_t>(p.get_int("seed", 20070901));
  spec.horizon_s = p.get_double("horizon", 3600.0);
  if (spec.horizon_s <= 0.0) {
    p.error("horizon", "must be positive");
    spec.horizon_s = 3600.0;
  }
  spec.sample_interval_s =
      p.get_double("sample_interval", spec.horizon_s / 15.0);
  if (spec.sample_interval_s <= 0.0) {
    p.error("sample_interval", "must be positive");
    spec.sample_interval_s = spec.horizon_s / 15.0;
  }
  const std::int64_t queries = p.get_int("queries", 10000);
  if (queries < 1) p.error("queries", "must be at least 1");
  spec.queries = static_cast<std::size_t>(std::max<std::int64_t>(queries, 1));

  spec.prop.mode = spec.protocol == Protocol::kPropO ? PropMode::kPropO
                                                     : PropMode::kPropG;
  spec.prop.nhops = static_cast<std::size_t>(p.get_int("nhops", 2));
  spec.prop.m = static_cast<std::size_t>(p.get_int("m", 0));
  spec.prop.min_var = p.get_double("min_var", 0.0);
  spec.prop.init_timer_s = p.get_double("init_timer", 60.0);
  spec.prop.max_init_trial =
      static_cast<std::size_t>(p.get_int("max_init_trial", 10));
  spec.prop.random_target = p.get_bool("random_target", false);
  spec.prop.model_message_delays =
      p.get_bool("model_message_delays", false);
  spec.prop.selection = p.get_enum<SelectionPolicy>(
      "selection",
      {{"greedy", SelectionPolicy::kGreedy},
       {"random", SelectionPolicy::kRandom}},
      SelectionPolicy::kGreedy);
  spec.ltm.interval_s = spec.prop.init_timer_s;
  spec.lookup_rate_per_s = p.get_double("lookup_rate", 0.0);
  if (spec.lookup_rate_per_s < 0.0) {
    p.error("lookup_rate", "must be >= 0");
    spec.lookup_rate_per_s = 0.0;
  }

  spec.heterogeneity = p.get_enum<Heterogeneity>(
      "heterogeneity",
      {{"none", Heterogeneity::kNone},
       {"bimodal", Heterogeneity::kBimodal},
       {"bimodal-degree", Heterogeneity::kBimodalByDegree}},
      Heterogeneity::kNone);
  spec.bimodal.fast_fraction = p.get_double("fast_fraction", 0.2);
  spec.bimodal.fast_delay_ms = p.get_double("fast_delay_ms", 10.0);
  spec.bimodal.slow_delay_ms = p.get_double("slow_delay_ms", 100.0);
  spec.fraction_fast_dest = p.get_double("fraction_fast_dest", -1.0);
  if (spec.fraction_fast_dest >= 0.0) {
    if (spec.heterogeneity == Heterogeneity::kNone) {
      p.error("fraction_fast_dest",
              "requires a heterogeneity model",
              "set heterogeneity = bimodal or bimodal-degree");
    }
    if (spec.fraction_fast_dest > 1.0) {
      p.error("fraction_fast_dest", "must be in [0, 1]");
      spec.fraction_fast_dest = 1.0;
    }
  }

  spec.churn.join_rate_per_s = p.get_double("churn_join_rate", 0.0);
  spec.churn.leave_rate_per_s = p.get_double("churn_leave_rate", 0.0);
  spec.churn.fail_rate_per_s = p.get_double("churn_fail_rate", 0.0);
  spec.churn.start_s = p.get_double("churn_start", 0.0);
  spec.churn.end_s = p.get_double("churn_end", spec.horizon_s);

  spec.oracle_mode = p.get_enum<OracleMode>(
      "oracle",
      {{"auto", OracleMode::kAuto},
       {"hierarchical", OracleMode::kHierarchical},
       {"dijkstra", OracleMode::kDijkstra}},
      OracleMode::kAuto);
  const std::int64_t cache_rows = p.get_int("oracle_cache_rows", 1024);
  if (cache_rows < 0) p.error("oracle_cache_rows", "must be >= 0");
  spec.oracle_cache_rows =
      static_cast<std::size_t>(std::max<std::int64_t>(cache_rows, 0));
  if (spec.oracle_mode == OracleMode::kHierarchical &&
      spec.topology == Topology::kWaxman) {
    p.error("oracle",
            "hierarchical oracle requires a transit-stub topology",
            "use topology = ts-large | ts-small, or oracle = dijkstra");
  }

  if (config.has("measure_threads")) {
    const std::string mt = config.get_string("measure_threads", "");
    if (mt == "auto") {
      spec.measure_threads = kMeasureThreadsAuto;
    } else {
      const std::int64_t v = p.get_int("measure_threads", 1);
      if (v < 0) {
        p.error("measure_threads", "must be >= 0 or 'auto'",
                "0 and 1 both mean serial");
      } else {
        spec.measure_threads = static_cast<std::size_t>(v);
      }
    }
  }

  spec.measure_mode = p.get_enum<MeasureMode>(
      "measure_mode",
      {{"auto", MeasureMode::kAuto},
       {"exact", MeasureMode::kExact},
       {"fast", MeasureMode::kFast}},
      MeasureMode::kAuto);
  if (spec.measure_mode == MeasureMode::kFast &&
      spec.overlay != Overlay::kGnutella) {
    p.error("measure_mode",
            "fast accelerates the unstructured flood kernel and requires "
            "overlay = gnutella",
            std::string("overlay is ") + to_string(spec.overlay) +
                "; stretch metrics route instead of flooding");
  }

  if (config.has("sim_shards")) {
    const std::string ss = config.get_string("sim_shards", "");
    if (ss == "auto") {
      spec.sim_shards = kSimShardsAuto;
    } else {
      const std::int64_t v = p.get_int("sim_shards", 1);
      if (v < 0 || v > static_cast<std::int64_t>(sim::ShardedScheduler::kMaxShards)) {
        p.error("sim_shards", "must be in [0, 64] or 'auto'",
                "0 and 1 both mean the serial scheduler");
      } else {
        spec.sim_shards = static_cast<std::size_t>(v);
      }
    }
  }
  const bool sharded =
      spec.sim_shards == kSimShardsAuto || spec.sim_shards > 1;
  spec.shard_window_s = p.get_double("shard_window", 0.25);
  if (spec.shard_window_s <= 0.0) {
    p.error("shard_window", "must be > 0 (simulated seconds)");
    spec.shard_window_s = 0.25;
  }
  if (config.has("shard_window") && !sharded) {
    p.error("shard_window",
            "only meaningful together with a sharded event core",
            "set sim_shards = auto or a shard count > 1");
  }
  if (sharded && spec.topology == Topology::kWaxman) {
    p.error("sim_shards",
            "event-core sharding decomposes by stub domain and requires "
            "a transit-stub topology",
            "use topology = ts-large | ts-small, or sim_shards = 1");
  }
  if (spec.sim_shards == kSimShardsAuto &&
      spec.measure_threads == kMeasureThreadsAuto) {
    p.error("sim_shards",
            "sim_shards = auto and measure_threads = auto together would "
            "both claim every hardware thread",
            "give at least one of them an explicit count");
  }

  spec.sim_speculative = p.get_enum<ExperimentSpec::Speculative>(
      "sim_speculative",
      {{"off", ExperimentSpec::Speculative::kOff},
       {"on", ExperimentSpec::Speculative::kOn},
       {"auto", ExperimentSpec::Speculative::kAuto}},
      ExperimentSpec::Speculative::kOff);

  spec.local_tick_period_s = p.get_double("sim_local_ticks", 0.0);
  if (spec.local_tick_period_s < 0.0) {
    p.error("sim_local_ticks", "must be >= 0 (seconds; 0 disables)");
    spec.local_tick_period_s = 0.0;
  }
  if (spec.local_tick_period_s > 0.0 &&
      spec.topology == Topology::kWaxman) {
    p.error("sim_local_ticks",
            "local maintenance ticks run per stub domain and require a "
            "transit-stub topology",
            "use topology = ts-large | ts-small, or drop the key");
  }

  spec.trace_path = config.get_string("trace", "");
  if (!spec.trace_path.empty() && !obs::trace_compiled_in()) {
    p.error("trace", "trace output requires a PROPSIM_TRACE=ON build",
            "rebuild with -DPROPSIM_TRACE=ON (the default preset has it)");
  }
  const std::int64_t trace_buffer = p.get_int("trace_buffer", 8192);
  if (trace_buffer < 1) p.error("trace_buffer", "must be at least 1");
  spec.trace_buffer_events =
      static_cast<std::size_t>(std::max<std::int64_t>(trace_buffer, 1));
  if (config.has("trace_buffer") && spec.trace_path.empty()) {
    p.error("trace_buffer", "only meaningful together with trace = <path>");
  }

  spec.faults.message_loss = p.get_double("fault_loss", 0.0);
  if (spec.faults.message_loss < 0.0 || spec.faults.message_loss >= 1.0) {
    p.error("fault_loss", "must be in [0, 1)");
    spec.faults.message_loss = 0.0;
  }
  spec.faults.latency_jitter = p.get_double("fault_jitter", 0.0);
  if (spec.faults.latency_jitter < 0.0 || spec.faults.latency_jitter >= 1.0) {
    p.error("fault_jitter", "must be in [0, 1)");
    spec.faults.latency_jitter = 0.0;
  }
  spec.faults.crash_per_negotiation = p.get_double("fault_crash", 0.0);
  if (spec.faults.crash_per_negotiation < 0.0 ||
      spec.faults.crash_per_negotiation >= 1.0) {
    p.error("fault_crash", "must be in [0, 1)");
    spec.faults.crash_per_negotiation = 0.0;
  }
  const std::int64_t fault_retries = p.get_int("fault_max_retries", 2);
  if (fault_retries < 0) p.error("fault_max_retries", "must be >= 0");
  spec.faults.max_negotiation_retries =
      static_cast<std::size_t>(std::max<std::int64_t>(fault_retries, 0));
  const bool wants_partition = config.has("fault_partition_domain") ||
                               config.has("fault_partition_start") ||
                               config.has("fault_partition_end");
  if (wants_partition) {
    if (!config.has("fault_partition_domain") ||
        !config.has("fault_partition_start") ||
        !config.has("fault_partition_end")) {
      p.error("fault_partition_domain",
              "a partition window needs fault_partition_domain, "
              "fault_partition_start and fault_partition_end together");
    } else {
      PartitionWindow w;
      const std::string domain =
          config.get_string("fault_partition_domain", "");
      if (domain == "auto") {
        w.stub_domain = kPartitionDomainAuto;
      } else {
        const std::int64_t d = p.get_int("fault_partition_domain", 0);
        if (d < 0) {
          p.error("fault_partition_domain", "must be >= 0 or 'auto'");
        }
        w.stub_domain =
            static_cast<std::uint32_t>(std::max<std::int64_t>(d, 0));
      }
      w.start_s = p.get_double("fault_partition_start", 0.0);
      w.end_s = p.get_double("fault_partition_end", 0.0);
      if (w.start_s < 0.0 || w.end_s <= w.start_s) {
        p.error("fault_partition_end",
                "window must satisfy 0 <= start < end");
      } else {
        spec.faults.partitions.push_back(w);
      }
      if (spec.topology == Topology::kWaxman) {
        p.error("fault_partition_domain",
                "partition windows cut a stub domain and require a "
                "transit-stub topology",
                "use topology = ts-large | ts-small");
      }
    }
  }
  if (spec.faults.crash_per_negotiation > 0.0 &&
      spec.overlay != Overlay::kGnutella) {
    p.error("fault_crash",
            "crash injection repairs through the churn path and requires "
            "the unstructured gnutella overlay",
            std::string("overlay is ") + to_string(spec.overlay));
  }

  const std::int64_t burst_len = p.get_int("fault_loss_burst_len", 0);
  if (burst_len < 0) {
    p.error("fault_loss_burst_len", "must be >= 0 (0 = Bernoulli loss)");
  }
  spec.faults.loss_burst_len =
      static_cast<std::size_t>(std::max<std::int64_t>(burst_len, 0));
  if (spec.faults.loss_burst_len > 0 && spec.faults.message_loss <= 0.0) {
    p.error("fault_loss_burst_len",
            "burst loss shapes the fault_loss stream and requires "
            "fault_loss > 0");
    spec.faults.loss_burst_len = 0;
  }

  const bool wants_storm = config.has("fault_storm_domain") ||
                           config.has("fault_storm_start") ||
                           config.has("fault_storm_window");
  if (wants_storm) {
    if (!config.has("fault_storm_domain") ||
        !config.has("fault_storm_start") ||
        !config.has("fault_storm_window")) {
      p.error("fault_storm_domain",
              "a crash storm needs fault_storm_domain, fault_storm_start "
              "and fault_storm_window together");
    } else {
      StormWindow w;
      const std::string domain = config.get_string("fault_storm_domain", "");
      if (domain == "auto") {
        w.stub_domain = kPartitionDomainAuto;
      } else {
        const std::int64_t d = p.get_int("fault_storm_domain", 0);
        if (d < 0) p.error("fault_storm_domain", "must be >= 0 or 'auto'");
        w.stub_domain =
            static_cast<std::uint32_t>(std::max<std::int64_t>(d, 0));
      }
      w.start_s = p.get_double("fault_storm_start", 0.0);
      w.window_s = p.get_double("fault_storm_window", 0.0);
      if (w.start_s < 0.0 || w.window_s <= 0.0) {
        p.error("fault_storm_window",
                "storm must satisfy start >= 0 and window > 0");
      } else {
        spec.faults.storms.push_back(w);
      }
      if (spec.topology == Topology::kWaxman) {
        p.error("fault_storm_domain",
                "crash storms fail a stub domain and require a "
                "transit-stub topology",
                "use topology = ts-large | ts-small");
      }
      if (spec.overlay != Overlay::kGnutella) {
        p.error("fault_storm_domain",
                "crash storms repair through the churn path and require "
                "the unstructured gnutella overlay",
                std::string("overlay is ") + to_string(spec.overlay));
      }
    }
  }

  spec.adversary.liar_fraction =
      p.get_double("adversary_liar_fraction", 0.0);
  spec.adversary.freeride_fraction =
      p.get_double("adversary_freeride_fraction", 0.0);
  spec.adversary.dropper_fraction =
      p.get_double("adversary_dropper_fraction", 0.0);
  spec.adversary.eclipse_fraction =
      p.get_double("adversary_eclipse_fraction", 0.0);
  for (const auto& [key, value] :
       {std::pair<const char*, double*>{"adversary_liar_fraction",
                                        &spec.adversary.liar_fraction},
        {"adversary_freeride_fraction", &spec.adversary.freeride_fraction},
        {"adversary_dropper_fraction", &spec.adversary.dropper_fraction},
        {"adversary_eclipse_fraction", &spec.adversary.eclipse_fraction}}) {
    if (*value < 0.0 || *value >= 1.0) {
      p.error(key, "must be in [0, 1)");
      *value = 0.0;
    }
  }
  if (spec.adversary.liar_fraction + spec.adversary.freeride_fraction +
          spec.adversary.dropper_fraction +
          spec.adversary.eclipse_fraction >=
      1.0) {
    p.error("", "adversary fractions must sum below 1",
            "some honest majority has to remain");
  }
  spec.adversary.lie_factor = p.get_double("adversary_lie_factor", 0.5);
  if (spec.adversary.lie_factor <= 0.0 || spec.adversary.lie_factor > 1.0) {
    p.error("adversary_lie_factor", "must be in (0, 1]");
    spec.adversary.lie_factor = 0.5;
  }
  spec.adversary.drop_probability =
      p.get_double("adversary_drop_probability", 1.0);
  if (spec.adversary.drop_probability < 0.0 ||
      spec.adversary.drop_probability > 1.0) {
    p.error("adversary_drop_probability", "must be in [0, 1]");
    spec.adversary.drop_probability = 1.0;
  }
  if (config.has("adversary_eclipse_target")) {
    if (spec.adversary.eclipse_fraction <= 0.0) {
      p.error("adversary_eclipse_target",
              "only meaningful with adversary_eclipse_fraction > 0");
    }
    const std::string target =
        config.get_string("adversary_eclipse_target", "");
    if (target == "auto") {
      spec.adversary.eclipse_target = kInvalidSlot;
    } else {
      const std::int64_t t = p.get_int("adversary_eclipse_target", 0);
      if (t < 0) {
        p.error("adversary_eclipse_target", "must be >= 0 or 'auto'");
      }
      spec.adversary.eclipse_target =
          static_cast<SlotId>(std::max<std::int64_t>(t, 0));
    }
  }
  if (spec.adversary.active()) {
    if (spec.overlay != Overlay::kGnutella) {
      p.error("", "adversary models target the PROP negotiation path and "
                  "require the unstructured gnutella overlay",
              std::string("overlay is ") + to_string(spec.overlay));
    }
    if (spec.protocol != Protocol::kPropG &&
        spec.protocol != Protocol::kPropO) {
      p.error("", "adversary models intercept PROP negotiations",
              "set protocol = prop-g or prop-o");
    }
  }
  if (spec.adversary.eclipse_fraction > 0.0 &&
      spec.protocol != Protocol::kPropG) {
    p.error("adversary_eclipse_fraction",
            "eclipse attackers monopolize seats via placement swaps",
            "requires protocol = prop-g");
  }

  const bool has_churn = spec.churn.join_rate_per_s > 0.0 ||
                         spec.churn.leave_rate_per_s > 0.0 ||
                         spec.churn.fail_rate_per_s > 0.0;
  if (spec.overlay != Overlay::kGnutella) {
    // LTM and the churn process are unstructured-overlay machinery.
    if (spec.protocol == Protocol::kLtm) {
      p.error("protocol",
              "ltm requires the unstructured gnutella overlay",
              std::string("overlay is ") + to_string(spec.overlay));
    }
    if (has_churn) {
      p.error("", "churn rates require the unstructured gnutella overlay",
              std::string("overlay is ") + to_string(spec.overlay));
    }
    // PROP-O rewires edges, which would corrupt a DHT's routing
    // structure; the paper applies it to unstructured systems only.
    if (spec.protocol == Protocol::kPropO) {
      p.error("protocol",
              "prop-o rewires overlay edges and only applies to gnutella",
              std::string("overlay is ") + to_string(spec.overlay));
    }
  }
  result.errors = p.take_errors();
  return result;
}

std::vector<std::pair<std::string, std::uint64_t>>
ExperimentResult::counters() const {
  using obs::TraceEventKind;
  using obs::TracePhase;
  return {
      {"exchanges", exchanges},
      {"attempts", attempts},
      {"ltm_rounds", ltm_rounds},
      {"control_messages", control_messages},
      {"churn_joins", churn_joins},
      {"churn_leaves", churn_leaves},
      {"churn_failures", churn_failures},
      {"commit_conflicts", commit_conflicts},
      {"lookups_issued", lookups_issued},
      {"lookups_unreachable", lookups_unreachable},
      // v2: event-bus counters (all zero in a PROPSIM_TRACE=OFF build).
      {"walk_hops", trace.count(TraceEventKind::kWalkHop)},
      {"flood_hops", trace.count(TraceEventKind::kFloodHop)},
      {"lookup_hops", trace.count(TraceEventKind::kLookupHop)},
      {"exchange_aborts", trace.count(TraceEventKind::kExchangeAbort)},
      {"warmup_exchanges",
       trace.count(TracePhase::kWarmup, TraceEventKind::kExchangeCommit)},
      {"maintenance_exchanges",
       trace.count(TracePhase::kMaintenance,
                   TraceEventKind::kExchangeCommit)},
      {"trace_events", trace.events},
      // v3: resilience counters (two-phase protocol + fault injection).
      {"timeouts", timeouts},
      {"retries", retries},
      {"aborted_mid_commit", aborted_mid_commit},
      {"fault_messages", fault_messages},
      {"fault_losses", fault_losses},
      {"fault_partition_drops", fault_partition_drops},
      {"fault_crashes", fault_crashes},
      // v4: scheduler counters — invariant across sim_shards, so a
      // sharded run's counters stay byte-identical to the serial run's.
      {"sim_events_executed", sim_events_executed},
      {"sim_events_scheduled", sim_events_scheduled},
      {"sim_events_cancelled", sim_events_cancelled},
      // v5: measurement-engine counters — flood counts are invariant
      // across measure_threads and sim_shards; the capture/reuse split
      // depends on the trace build mode (OFF builds never reuse).
      {"measure_exact_floods", measure_exact_floods},
      {"measure_fast_floods", measure_fast_floods},
      {"measure_snapshot_captures", measure_snapshot_captures},
      {"measure_snapshot_reuses", measure_snapshot_reuses},
      // v6: byzantine-behavior + correlated-failure counters; all zero
      // unless an adversary layer or storm/burst fault knobs are active.
      {"adversary_lies", adversary_lies},
      {"adversary_drops", adversary_drops},
      {"adversary_freeride_skips", adversary_freeride_skips},
      {"adversary_eclipse_attempts", adversary_eclipse_attempts},
      {"adversary_eclipse_captures", adversary_eclipse_captures},
      {"fault_storm_failures", fault_storm_failures},
      {"fault_burst_losses", fault_burst_losses},
      // v7: shard-local tick counters; zero unless sim_local_ticks is
      // set, and then invariant across schedulers, shard counts and
      // speculation — the digest witnesses event-order preservation.
      {"local_ticks", local_ticks},
      {"local_tick_digest", local_tick_digest},
  };
}

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  Rng rng(spec.seed);

  // --- Physical topology. ---
  Graph waxman;  // storage when selected
  std::unique_ptr<TransitStubTopology> ts;
  const Graph* physical = nullptr;
  std::vector<NodeId> stub_pool;
  switch (spec.topology) {
    case ExperimentSpec::Topology::kTsLarge:
    case ExperimentSpec::Topology::kTsSmall: {
      const auto cfg = spec.topology == ExperimentSpec::Topology::kTsLarge
                           ? TransitStubConfig::ts_large()
                           : TransitStubConfig::ts_small();
      ts = std::make_unique<TransitStubTopology>(make_transit_stub(cfg, rng));
      physical = &ts->graph;
      stub_pool = ts->stub_nodes;
      break;
    }
    case ExperimentSpec::Topology::kWaxman: {
      waxman = make_waxman_graph(std::max<std::size_t>(4 * spec.nodes, 64),
                                 0.25, 0.4, 200.0, 2.0, rng);
      physical = &waxman;
      stub_pool.resize(waxman.node_count());
      for (NodeId h = 0; h < waxman.node_count(); ++h) stub_pool[h] = h;
      break;
    }
  }
  PROPSIM_CHECK(spec.nodes + spec.nodes / 4 <= stub_pool.size());

  // Oracle engine: exact hierarchical tables on transit-stub graphs
  // (unless the spec forces Dijkstra rows), LRU-bounded rows elsewhere.
  LatencyOracleOptions oracle_options;
  oracle_options.max_cached_rows = spec.oracle_cache_rows;
  std::unique_ptr<LatencyOracle> oracle_owner;
  if (ts && spec.oracle_mode != ExperimentSpec::OracleMode::kDijkstra) {
    oracle_owner = std::make_unique<LatencyOracle>(*ts, oracle_options);
  } else {
    PROPSIM_CHECK(spec.oracle_mode !=
                  ExperimentSpec::OracleMode::kHierarchical);
    oracle_owner = std::make_unique<LatencyOracle>(*physical, oracle_options);
  }
  LatencyOracle& oracle = *oracle_owner;

  // --- Simulated clock + observability bus. Both exist before the
  // substrate so build-time join events are stamped (at t = 0) and every
  // engine reaches the bus through the overlay. The bus is created
  // unconditionally: its counters never touch the RNG or the event
  // queue, so results are identical with and without a trace sink. ---
  // sim_shards is a pure execution knob like measure_threads: the
  // sharded core executes the identical event sequence (golden-tested at
  // 1/2/4/8 shards), so neither the shard count nor the window is echoed
  // into the result JSON.
  std::size_t sim_shards = spec.sim_shards;
  if (sim_shards == ExperimentSpec::kSimShardsAuto) {
    const std::size_t hw = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
    const std::size_t domains =
        ts ? std::max<std::size_t>(ts->stub_domain_count, 1) : 1;
    sim_shards =
        std::min({domains, hw, sim::ShardedScheduler::kMaxShards});
  }
  std::unique_ptr<Scheduler> sim_owner;
  ShardedScheduler* sharded_sim = nullptr;  // for the speculation report
  if (sim_shards > 1) {
    auto sharded = std::make_unique<ShardedScheduler>(
        sim_shards, spec.shard_window_s, spec.speculation_armed());
    sharded_sim = sharded.get();
    sim_owner = std::move(sharded);
  } else {
    sim_owner = std::make_unique<SerialScheduler>();
  }
  Scheduler& sim = *sim_owner;
  obs::EventBus bus;
  bus.set_clock([&sim] { return sim.now(); });
  if (spec.protocol == ExperimentSpec::Protocol::kPropG ||
      spec.protocol == ExperimentSpec::Protocol::kPropO) {
    // Global warm-up approximation: each node probes at the base rate
    // for its first MAX_INIT_TRIAL trials, one trial per INIT_TIMER.
    bus.set_phase_boundary(spec.prop.init_timer_s *
                           static_cast<double>(spec.prop.max_init_trial));
  }
  std::unique_ptr<obs::TraceSink> sink;
  if (!spec.trace_path.empty()) {
    sink = std::make_unique<obs::TraceSink>(spec.trace_path,
                                            spec.trace_buffer_events);
    PROPSIM_CHECK(sink->ok() && "cannot open trace output file");
    bus.attach_sink(sink.get());
  }

  // --- Overlay hosts (plus spares for churn joins). ---
  rng.shuffle(stub_pool);
  std::vector<NodeId> hosts(stub_pool.begin(),
                            stub_pool.begin() +
                                static_cast<std::ptrdiff_t>(spec.nodes));
  std::vector<NodeId> spares(
      stub_pool.begin() + static_cast<std::ptrdiff_t>(spec.nodes),
      stub_pool.begin() + static_cast<std::ptrdiff_t>(spec.nodes +
                                                      spec.nodes / 4));

  // --- Fault plan, between the overlay and the engines. The injector is
  // constructed only when the spec asks for faults; otherwise every code
  // path below runs byte-identically to a fault-free build (the engines
  // gate all hardened branches on the injector's presence). ---
  std::unique_ptr<FaultInjector> faults;
  if (spec.faults.active()) {
    FaultParams fparams = spec.faults;
    // "auto" picks the stub domain hosting the most overlay nodes so
    // the window (or storm) is guaranteed to hit a meaningful
    // population.
    const auto densest_stub_domain = [&]() -> std::uint32_t {
      PROPSIM_CHECK(ts != nullptr);
      std::vector<std::size_t> population(ts->stub_domain_count, 0);
      for (const NodeId h : hosts) {
        if (ts->kind[h] == NodeKind::kStub) ++population[ts->domain[h]];
      }
      return static_cast<std::uint32_t>(
          std::max_element(population.begin(), population.end()) -
          population.begin());
    };
    for (PartitionWindow& w : fparams.partitions) {
      PROPSIM_CHECK(ts != nullptr &&
                    "partition windows require a transit-stub topology");
      if (w.stub_domain == kPartitionDomainAuto) {
        w.stub_domain = densest_stub_domain();
      }
      PROPSIM_CHECK(w.stub_domain < ts->stub_domain_count);
    }
    for (StormWindow& w : fparams.storms) {
      PROPSIM_CHECK(ts != nullptr &&
                    "crash storms require a transit-stub topology");
      if (w.stub_domain == kPartitionDomainAuto) {
        w.stub_domain = densest_stub_domain();
      }
      PROPSIM_CHECK(w.stub_domain < ts->stub_domain_count);
    }
    faults = std::make_unique<FaultInjector>(sim, fparams, spec.seed + 131);
    faults->set_trace(&bus);
    if (ts) {
      std::vector<std::uint32_t> host_domain(physical->node_count(),
                                             FaultInjector::kNoDomain);
      for (NodeId h = 0; h < physical->node_count(); ++h) {
        if (ts->kind[h] == NodeKind::kStub) host_domain[h] = ts->domain[h];
      }
      faults->set_host_domains(std::move(host_domain));
    }
  }

  // --- Overlay substrate + routed-latency metric. ---
  GnutellaConfig gcfg;
  std::unique_ptr<ChordRing> chord;
  std::unique_ptr<PastryNetwork> pastry;
  std::unique_ptr<TapestryNetwork> tapestry;
  std::unique_ptr<CanSpace> can;
  std::unique_ptr<OverlayNetwork> net;
  switch (spec.overlay) {
    case ExperimentSpec::Overlay::kGnutella:
      net = std::make_unique<OverlayNetwork>(
          build_gnutella_overlay(gcfg, hosts, oracle, rng, &bus));
      break;
    case ExperimentSpec::Overlay::kChord:
      chord = std::make_unique<ChordRing>(
          ChordRing::build_random(spec.nodes, ChordConfig{}, rng));
      net = std::make_unique<OverlayNetwork>(
          make_chord_overlay(*chord, hosts, oracle, &bus));
      break;
    case ExperimentSpec::Overlay::kPastry:
      pastry = std::make_unique<PastryNetwork>(
          PastryNetwork::build_random(spec.nodes, PastryConfig{}, rng));
      net = std::make_unique<OverlayNetwork>(
          make_pastry_overlay(*pastry, hosts, oracle, &bus));
      break;
    case ExperimentSpec::Overlay::kTapestry:
      tapestry = std::make_unique<TapestryNetwork>(
          TapestryNetwork::build_random(spec.nodes, TapestryConfig{}, rng));
      net = std::make_unique<OverlayNetwork>(
          make_tapestry_overlay(*tapestry, hosts, oracle, &bus));
      break;
    case ExperimentSpec::Overlay::kCan:
      can = std::make_unique<CanSpace>(CanSpace::build(spec.nodes, rng));
      net = std::make_unique<OverlayNetwork>(
          make_can_overlay(*can, hosts, oracle, &bus));
      break;
  }

  // Slot -> shard affinity from the initial placement: slot events run
  // on the shard owning their host's stub domain. A pure routing hint —
  // churn rebinding a slot to another domain later only costs locality,
  // never correctness (cross-shard events ride the handoff buffers).
  if (sim.shard_count() > 1 && ts != nullptr) {
    std::vector<ShardId> slot_shard(net->graph().slot_count(), kNoShard);
    for (SlotId s = 0; s < net->graph().slot_count(); ++s) {
      const NodeId h = net->placement().host_of(s);
      if (h < ts->kind.size() && ts->kind[h] == NodeKind::kStub) {
        slot_shard[s] = static_cast<ShardId>(
            ts->domain[h] % sim.shard_count());
      }
    }
    sim.set_shard_map(std::move(slot_shard));
  }

  // --- Heterogeneity (processing delays follow hosts). ---
  std::unique_ptr<BimodalDelays> delays;
  Rng hrng = rng.split();
  switch (spec.heterogeneity) {
    case ExperimentSpec::Heterogeneity::kNone:
      break;
    case ExperimentSpec::Heterogeneity::kBimodal:
      delays = std::make_unique<BimodalDelays>(
          make_bimodal_delays(*net, spec.bimodal, hrng));
      break;
    case ExperimentSpec::Heterogeneity::kBimodalByDegree:
      delays = std::make_unique<BimodalDelays>(
          make_bimodal_delays_by_degree(*net, spec.bimodal, hrng));
      break;
  }

  // --- Workload. ---
  // With churn the membership shifts under the workload, so queries are
  // regenerated at every sample; without churn a fixed query set keeps
  // the series noise-free.
  Rng qrng(spec.seed ^ 0x2545f4914f6cdd1dULL);
  const bool has_churn = spec.churn.join_rate_per_s > 0.0 ||
                         spec.churn.leave_rate_per_s > 0.0 ||
                         spec.churn.fail_rate_per_s > 0.0;
  // Injected crashes change membership just like churn failures do, so
  // they force per-sample query regeneration too.
  const bool fault_crashes_on =
      faults != nullptr && (spec.faults.crash_per_negotiation > 0.0 ||
                            !spec.faults.storms.empty());
  const bool membership_changes = has_churn || fault_crashes_on;
  auto make_queries = [&]() -> std::vector<QueryPair> {
    if (spec.fraction_fast_dest >= 0.0) {
      return biased_queries(net->graph(), delays->slot_fast(*net),
                            spec.fraction_fast_dest, spec.queries, qrng);
    }
    return uniform_queries(net->graph(), spec.queries, qrng);
  };
  std::vector<QueryPair> queries;
  if (!membership_changes) queries = make_queries();

  // Under a fault plan, measurement and floods honor partition windows:
  // links whose hosts sit on opposite sides of a cut gateway are pruned.
  // Random per-message loss is deliberately not applied to floods —
  // flooding is redundant enough that independent edge loss rarely
  // changes the first response, and modeling it would burn RNG per edge
  // per lookup.
  OverlayNetwork::LinkFilter flood_filter;
  if (faults) {
    flood_filter = [n = net.get(), f = faults.get()](SlotId a, SlotId b) {
      return !f->partitioned(n->placement().host_of(a),
                             n->placement().host_of(b));
    };
  }

  // Storm victims are enumerated at the storm's fire time (not at
  // start()) so churn-era membership is honored: every slot active at
  // that instant whose host is a stub node of the failed domain goes
  // down, in active-slot order — no RNG involved.
  if (faults && !spec.faults.storms.empty()) {
    faults->set_storm_enumerator(
        [n = net.get(), t = ts.get()](std::uint32_t domain) {
          std::vector<SlotId> victims;
          for (const SlotId s : n->graph().active_slots()) {
            const NodeId h = n->placement().host_of(s);
            if (h < t->kind.size() && t->kind[h] == NodeKind::kStub &&
                t->domain[h] == domain) {
              victims.push_back(s);
            }
          }
          return victims;
        });
  }

  // --- Byzantine behavior layer, between the overlay and the engines.
  // Constructed only when a model fraction is nonzero; the engines gate
  // every adversarial branch on its presence, so an honest spec runs
  // byte-identically to a build without the layer. ---
  std::unique_ptr<AdversaryLayer> adversary;
  if (spec.adversary.active()) {
    adversary =
        std::make_unique<AdversaryLayer>(*net, spec.adversary, spec.seed);
    adversary->set_trace(&bus);
  }

  // Measurement engine for the metric sweeps. measure_threads is a pure
  // execution knob: results are bit-identical to the serial path for
  // any value (golden-tested), which is why it is not echoed into the
  // result JSON. measure_mode selects the flood kernel and IS echoed —
  // the fast kernel's values carry (bounded) quantization error.
  MeasureEngine measure(spec.measure_threads,
                        spec.resolved_measure_mode() ==
                                ExperimentSpec::MeasureMode::kFast
                            ? MeasureMode::kFast
                            : MeasureMode::kExact);

  // Snapshot reuse across sample ticks: the cache recaptures only when
  // the topology version moved. The version is the sum of the bus's
  // topology-affecting event counts — every mutation of the overlay
  // graph, placement or partition state emits at least one of these, and
  // counts only grow, so an unchanged sum proves an unchanged overlay.
  // In a PROPSIM_TRACE=OFF build the counters cannot witness anything;
  // the fallback version bumps every call so the cache conservatively
  // recaptures (values are identical either way — reuse is pure
  // caching — matching the trace-off bit-identity contract).
  SnapshotCache snap_cache([&net, &flood_filter] {
    return OverlaySnapshot::capture(*net,
                                    flood_filter ? &flood_filter : nullptr);
  });
  std::uint64_t untracked_version = 0;
  auto topology_version = [&]() -> std::uint64_t {
    if (!obs::trace_compiled_in()) return ++untracked_version;
    using K = obs::TraceEventKind;
    return bus.count(K::kExchangeCommit) + bus.count(K::kJoin) +
           bus.count(K::kLeave) + bus.count(K::kFail) +
           bus.count(K::kLtmRound) + bus.count(K::kFaultCrash) +
           bus.count(K::kPartitionStart) + bus.count(K::kPartitionEnd);
  };

  // Per-tick shared state + metric closure, in the sampler's batched
  // form. The slot-delay view is re-materialized per sample because
  // PROP-G moves hosts and churn rebinds slots; each sample works
  // against one immutable snapshot, so worker threads never touch live
  // sim state and the partition filter is baked into the adjacency.
  // Query regeneration stays unconditional under membership churn (it
  // consumes qrng; skipping a tick would shift every later draw).
  ExperimentResult result;
  const bool structured = spec.overlay != ExperimentSpec::Overlay::kGnutella;
  result.metric_name = structured ? "stretch" : "lookup_ms";
  const OverlaySnapshot* snap = nullptr;
  std::vector<double> proc;
  const std::vector<double>* proc_ptr = nullptr;
  auto prepare = [&] {
    if (membership_changes) queries = make_queries();
    if (delays) {
      proc = delays->slot_delays(*net);
      proc_ptr = &proc;
    }
    if (spec.overlay == ExperimentSpec::Overlay::kGnutella) {
      snap = &snap_cache.at(topology_version());
    }
  };
  auto metric = [&]() -> double {
    switch (spec.overlay) {
      case ExperimentSpec::Overlay::kGnutella:
        return measure.average_lookup_latency(*snap, queries, proc_ptr);
      case ExperimentSpec::Overlay::kChord:
        return measure
            .stretch(*net, queries, chord_router(*net, *chord, proc_ptr))
            .stretch;
      case ExperimentSpec::Overlay::kPastry:
        return measure
            .stretch(*net, queries,
                     [&](const QueryPair& q) {
                       const auto path = pastry->lookup_path(
                           q.src, pastry->id_of(q.dst));
                       return path_latency(*net, path, proc_ptr);
                     })
            .stretch;
      case ExperimentSpec::Overlay::kTapestry:
        return measure
            .stretch(*net, queries,
                     [&](const QueryPair& q) {
                       const auto path = tapestry->lookup_path(
                           q.src, tapestry->id_of(q.dst));
                       return path_latency(*net, path, proc_ptr);
                     })
            .stretch;
      case ExperimentSpec::Overlay::kCan: {
        return measure
            .stretch(*net, queries,
                     [&](const QueryPair& q) {
                       const auto path = can->route_path(
                           q.src, can->zone(q.dst).center());
                       return path_latency(*net, path, proc_ptr);
                     })
            .stretch;
      }
    }
    PROPSIM_CHECK(false && "unreachable");
    return 0.0;
  };

  // --- Protocol engines on the simulated clock. ---
  std::unique_ptr<PropEngine> prop;
  std::unique_ptr<LtmEngine> ltm;
  switch (spec.protocol) {
    case ExperimentSpec::Protocol::kNone:
      break;
    case ExperimentSpec::Protocol::kPropG:
    case ExperimentSpec::Protocol::kPropO:
      prop = std::make_unique<PropEngine>(*net, sim, spec.prop,
                                          spec.seed + 101);
      if (faults) prop->set_faults(faults.get());
      if (adversary) prop->set_adversary(adversary.get());
      break;
    case ExperimentSpec::Protocol::kLtm:
      ltm = std::make_unique<LtmEngine>(*net, sim, spec.ltm, spec.seed + 103);
      break;
  }

  std::unique_ptr<ChurnProcess> churn;
  if (has_churn || fault_crashes_on) {
    // Injected crashes reuse the churn failure path (node_left, survivor
    // repair, component stitching); with all-zero rates start() schedules
    // no Poisson arrivals, so a crash-only run pays nothing extra.
    churn = std::make_unique<ChurnProcess>(*net, sim, prop.get(), gcfg,
                                           spec.churn, spares,
                                           spec.seed + 107);
    if (faults) churn->set_faults(faults.get());
    if (fault_crashes_on) {
      faults->set_failure_executor(churn.get());
    }
  }

  // Optional event-driven lookup traffic experiencing the live overlay.
  std::unique_ptr<LookupTrafficProcess> traffic;
  if (spec.lookup_rate_per_s > 0.0) {
    LookupTrafficParams tparams;
    tparams.rate_per_s = spec.lookup_rate_per_s;
    tparams.start_s = 0.0;
    tparams.end_s = spec.horizon_s;
    tparams.window_s = spec.sample_interval_s;
    // Flood scratch shared across lookup events (one resolve at a time
    // on the sim thread); shared_ptr keeps it alive inside the closure.
    auto flood_scratch = std::make_shared<OverlayNetwork::FloodScratch>();
    auto resolve = [&, spec, flood_scratch](const QueryPair& q) -> double {
      std::vector<double> proc;
      const std::vector<double>* proc_ptr = nullptr;
      if (delays) {
        proc = delays->slot_delays(*net);
        proc_ptr = &proc;
      }
      // Event-driven lookups are the only routed queries traced per hop;
      // the 10k-query metric snapshots stay untraced so sampling does
      // not dominate the event stream.
      auto routed = [&](const std::vector<SlotId>& path) -> double {
        if (obs::EventBus* tb = net->trace()) {
          for (std::size_t i = 1; i < path.size(); ++i) {
            tb->emit(obs::TraceEventKind::kLookupHop, path[i - 1], path[i],
                     net->slot_latency(path[i - 1], path[i]));
          }
        }
        return path_latency(*net, path, proc_ptr);
      };
      switch (spec.overlay) {
        case ExperimentSpec::Overlay::kGnutella:
          return net->flood_latencies_into(
              *flood_scratch, q.src, proc_ptr,
              flood_filter ? &flood_filter : nullptr)[q.dst];
        case ExperimentSpec::Overlay::kChord:
          return routed(chord->lookup_path(q.src, chord->id_of(q.dst)));
        case ExperimentSpec::Overlay::kPastry:
          return routed(pastry->lookup_path(q.src, pastry->id_of(q.dst)));
        case ExperimentSpec::Overlay::kTapestry:
          return routed(
              tapestry->lookup_path(q.src, tapestry->id_of(q.dst)));
        case ExperimentSpec::Overlay::kCan:
          return routed(can->route_path(q.src, can->zone(q.dst).center()));
      }
      PROPSIM_CHECK(false && "unreachable");
      return 0.0;
    };
    traffic = std::make_unique<LookupTrafficProcess>(
        *net, sim, tparams, resolve, spec.seed + 109);
  }

  // Shard-local maintenance ticks: the only event stream annotated
  // Locality::kShardLocal, so the speculative scheduler path has work
  // to overlap with the serial merge. Seeded independently of the main
  // Rng chain — enabling ticks never perturbs any other stream.
  std::unique_ptr<sim::LocalTickProcess> local_ticks;
  if (spec.local_tick_period_s > 0.0) {
    PROPSIM_CHECK(ts != nullptr);  // from_config enforces transit-stub
    sim::LocalTickParams tick_params;
    tick_params.period_s = spec.local_tick_period_s;
    tick_params.start_s = 0.0;
    tick_params.end_s = spec.horizon_s;
    local_ticks = std::make_unique<sim::LocalTickProcess>(
        sim, tick_params,
        static_cast<std::uint32_t>(std::max<std::size_t>(
            ts->stub_domain_count, 1)),
        spec.seed + 0x9e3779b9ULL);
  }

  // Paranoid builds re-lint the live overlay as it runs (no-op
  // otherwise). Degree conservation and partition closure assume stable
  // membership, and LTM rewires degrees by design, so both disengage
  // there; the fault-era rules activate exactly when their engines do.
  if (paranoid_checks_enabled()) {
    install_paranoid_audit(sim, *net, /*every_n_events=*/4096,
                           /*churn_expected=*/membership_changes ||
                               ltm != nullptr,
                           ParanoidAuditHooks{faults.get(), prop.get()});
  }

  ConvergenceSampler sampler(
      sim, 0.0, spec.horizon_s, spec.sample_interval_s, prepare,
      {ConvergenceSampler::NamedMetric{result.metric_name, metric}});
  if (faults) faults->start();
  if (local_ticks) local_ticks->start();
  if (traffic) traffic->start();
  if (prop) prop->start();
  if (ltm) ltm->start();
  if (churn) churn->start();
  sim.run_until(spec.horizon_s);

  result.series = sampler.take_series();
  result.initial_value = result.series.first_value();
  result.final_value = result.series.last_value();
  if (prop) {
    result.exchanges = prop->stats().exchanges;
    result.attempts = prop->stats().attempts;
    result.commit_conflicts = prop->stats().commit_conflicts;
    result.timeouts = prop->stats().timeouts;
    result.retries = prop->stats().retries;
    result.aborted_mid_commit = prop->stats().aborted_mid_commit;
  }
  if (faults) {
    result.fault_messages = faults->stats().messages;
    result.fault_losses = faults->stats().losses;
    result.fault_partition_drops = faults->stats().partition_drops;
    result.fault_crashes = faults->stats().crashes_executed;
    result.fault_storm_failures = faults->stats().storm_failures;
    result.fault_burst_losses = faults->stats().burst_losses;
  }
  if (adversary) {
    result.adversary_lies = adversary->stats().lies;
    result.adversary_drops = adversary->stats().drops;
    result.adversary_freeride_skips = adversary->stats().freeride_skips;
    result.adversary_eclipse_attempts = adversary->stats().eclipse_attempts;
    result.adversary_eclipse_captures = adversary->stats().eclipse_captures;
    result.adversary_eclipse_held = adversary->eclipse_captured();
  }
  if (traffic) {
    result.observed = traffic->observed();
    result.lookups_issued = traffic->issued();
    result.lookups_unreachable = traffic->unreachable();
    if (!traffic->latencies().empty()) {
      result.observed_p50_ms = traffic->latencies().median();
      result.observed_p95_ms = traffic->latencies().quantile(0.95);
    }
  }
  if (ltm) result.ltm_rounds = ltm->rounds();
  result.sim_events_executed = sim.executed_events();
  result.sim_events_scheduled = sim.scheduled_events();
  result.sim_events_cancelled = sim.cancelled_events();
  if (local_ticks) {
    result.local_ticks = local_ticks->ticks();
    result.local_tick_digest = local_ticks->digest();
  }
  if (sharded_sim != nullptr && sharded_sim->speculative()) {
    const auto& st = sharded_sim->stats();
    result.speculation_active = true;
    result.speculation_speculated = st.speculated;
    result.speculation_replayed = st.replayed;
    result.speculation_windows = st.spec_windows;
    result.speculation_conflicts = st.conflicts;
    result.speculation_conflict_rate = st.conflict_rate();
  }
  result.measure_exact_floods = measure.stats().exact_floods;
  result.measure_fast_floods = measure.stats().fast_floods;
  result.measure_snapshot_captures = snap_cache.captures();
  result.measure_snapshot_reuses = snap_cache.reuses();
  result.control_messages = net->traffic().control_total();
  if (churn) {
    result.churn_joins = churn->joins();
    result.churn_leaves = churn->leaves();
    result.churn_failures = churn->failures();
  }
  result.connected = net->graph().active_subgraph_connected();
  result.final_population = net->size();
  result.trace = bus.summary();
  if (sink) sink->close();
  return result;
}

}  // namespace propsim
