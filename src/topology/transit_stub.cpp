#include "topology/transit_stub.h"

#include <algorithm>
#include <numeric>

namespace propsim {
namespace {

/// Adds a connected random subgraph over `members` (already nodes of g):
/// a random spanning tree first, then each remaining pair independently
/// with probability `extra_edge_probability`.
void connect_random_subgraph(Graph& g, std::span<const NodeId> members,
                             double extra_edge_probability, double latency,
                             Rng& rng) {
  if (members.size() <= 1) return;
  // Random spanning tree: attach each node (in random order) to a uniformly
  // chosen earlier node. This yields a random recursive tree, which is a
  // standard connected backbone for GT-ITM-style domain graphs.
  std::vector<NodeId> order(members.begin(), members.end());
  rng.shuffle(order);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform(i));
    g.add_edge(order[i], order[j], latency);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      if (g.has_edge(order[i], order[j])) continue;
      if (rng.bernoulli(extra_edge_probability)) {
        g.add_edge(order[i], order[j], latency);
      }
    }
  }
}

}  // namespace

TransitStubConfig TransitStubConfig::ts_large() {
  // Large backbone (10 x 4 transit nodes), sparse edge (40-node stubs);
  // 10*4*(1 + 3*40) = 4840 nodes.
  TransitStubConfig c;
  c.transit_domains = 10;
  c.transit_nodes_per_domain = 4;
  c.stub_domains_per_transit = 3;
  c.nodes_per_stub = 40;
  c.extra_interdomain_edges = 5;
  return c;
}

TransitStubConfig TransitStubConfig::ts_small() {
  // Small backbone (2 x 4 transit nodes), dense edge (200-node stubs);
  // 2*4*(1 + 3*200) = 4808 nodes.
  TransitStubConfig c;
  c.transit_domains = 2;
  c.transit_nodes_per_domain = 4;
  c.stub_domains_per_transit = 3;
  c.nodes_per_stub = 200;
  c.stub_edge_probability = 0.02;
  c.extra_interdomain_edges = 1;
  return c;
}

TransitStubTopology make_transit_stub(const TransitStubConfig& config,
                                      Rng& rng) {
  PROPSIM_CHECK(config.transit_domains >= 1);
  PROPSIM_CHECK(config.transit_nodes_per_domain >= 1);
  PROPSIM_CHECK(config.nodes_per_stub >= 1);

  TransitStubTopology topo;
  topo.graph = Graph(config.total_nodes());
  topo.kind.assign(config.total_nodes(), NodeKind::kStub);
  topo.domain.assign(config.total_nodes(), 0);

  NodeId next = 0;
  std::vector<std::vector<NodeId>> transit_by_domain(config.transit_domains);

  // 1. Transit nodes and intra-domain backbone graphs.
  for (std::size_t d = 0; d < config.transit_domains; ++d) {
    for (std::size_t i = 0; i < config.transit_nodes_per_domain; ++i) {
      topo.kind[next] = NodeKind::kTransit;
      topo.domain[next] = static_cast<std::uint32_t>(d);
      transit_by_domain[d].push_back(next);
      topo.transit_nodes.push_back(next);
      ++next;
    }
    connect_random_subgraph(topo.graph, transit_by_domain[d],
                            config.transit_edge_probability,
                            config.transit_transit_ms, rng);
  }

  // 2. Inter-domain backbone: spanning tree over domains + shortcuts, each
  //    edge landing on uniformly chosen transit nodes of the two domains.
  if (config.transit_domains > 1) {
    std::vector<std::size_t> dorder(config.transit_domains);
    std::iota(dorder.begin(), dorder.end(), std::size_t{0});
    rng.shuffle(dorder);
    for (std::size_t i = 1; i < dorder.size(); ++i) {
      const std::size_t j = static_cast<std::size_t>(rng.uniform(i));
      const NodeId a = rng.pick(transit_by_domain[dorder[i]]);
      const NodeId b = rng.pick(transit_by_domain[dorder[j]]);
      topo.graph.add_edge(a, b, config.transit_transit_ms);
    }
    for (std::size_t k = 0; k < config.extra_interdomain_edges; ++k) {
      const std::size_t d1 =
          static_cast<std::size_t>(rng.uniform(config.transit_domains));
      std::size_t d2 =
          static_cast<std::size_t>(rng.uniform(config.transit_domains - 1));
      if (d2 >= d1) ++d2;
      const NodeId a = rng.pick(transit_by_domain[d1]);
      const NodeId b = rng.pick(transit_by_domain[d2]);
      if (!topo.graph.has_edge(a, b)) {
        topo.graph.add_edge(a, b, config.transit_transit_ms);
      }
    }
  }

  // 3. Stub domains hanging off each transit node.
  std::uint32_t stub_domain_index = 0;
  std::vector<NodeId> stub_members;
  for (const NodeId transit : topo.transit_nodes) {
    for (std::size_t s = 0; s < config.stub_domains_per_transit; ++s) {
      stub_members.clear();
      for (std::size_t i = 0; i < config.nodes_per_stub; ++i) {
        topo.kind[next] = NodeKind::kStub;
        topo.domain[next] = stub_domain_index;
        stub_members.push_back(next);
        topo.stub_nodes.push_back(next);
        ++next;
      }
      connect_random_subgraph(topo.graph, stub_members,
                              config.stub_edge_probability,
                              config.stub_stub_ms, rng);
      // Attach the stub domain to its transit node through a random member.
      // Exactly one attachment edge per domain — the hierarchical oracle
      // relies on this (see StubDomain).
      const NodeId gateway = rng.pick(stub_members);
      topo.graph.add_edge(gateway, transit, config.stub_transit_ms);
      topo.stub_domains.push_back(
          StubDomain{stub_members.front(),
                     static_cast<std::uint32_t>(stub_members.size()), gateway,
                     transit, config.stub_transit_ms});
      ++stub_domain_index;
    }
  }
  topo.stub_domain_count = stub_domain_index;

  PROPSIM_CHECK(next == config.total_nodes());
  PROPSIM_CHECK(topo.graph.is_connected());
  return topo;
}

}  // namespace propsim
