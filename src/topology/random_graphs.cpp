#include "topology/random_graphs.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace propsim {

Graph make_connected_random_graph(std::size_t node_count,
                                  std::size_t edge_count, double weight,
                                  Rng& rng) {
  PROPSIM_CHECK(node_count >= 1);
  Graph g(node_count);
  if (node_count == 1) return g;

  std::vector<NodeId> order(node_count);
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.shuffle(order);
  for (std::size_t i = 1; i < node_count; ++i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform(i));
    g.add_edge(order[i], order[j], weight);
  }

  const std::size_t max_edges = node_count * (node_count - 1) / 2;
  const std::size_t target = std::min(edge_count, max_edges);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * (target + node_count);
  while (g.edge_count() < target && attempts < max_attempts) {
    ++attempts;
    const NodeId u = static_cast<NodeId>(rng.uniform(node_count));
    NodeId v = static_cast<NodeId>(rng.uniform(node_count - 1));
    if (v >= u) ++v;
    if (!g.has_edge(u, v)) g.add_edge(u, v, weight);
  }
  return g;
}

Graph make_waxman_graph(std::size_t node_count, double alpha, double beta,
                        double latency_scale, double min_latency, Rng& rng) {
  PROPSIM_CHECK(node_count >= 1);
  PROPSIM_CHECK(alpha > 0.0 && beta > 0.0 && beta <= 1.0);
  Graph g(node_count);
  std::vector<double> x(node_count);
  std::vector<double> y(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    x[i] = rng.uniform_double();
    y[i] = rng.uniform_double();
  }
  const double max_dist = std::sqrt(2.0);
  auto latency = [&](std::size_t i, std::size_t j) {
    const double dx = x[i] - x[j];
    const double dy = y[i] - y[j];
    const double d = std::sqrt(dx * dx + dy * dy);
    return std::max(min_latency, d * latency_scale);
  };
  for (std::size_t i = 0; i < node_count; ++i) {
    for (std::size_t j = i + 1; j < node_count; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      const double d = std::sqrt(dx * dx + dy * dy);
      const double p = beta * std::exp(-d / (alpha * max_dist));
      if (rng.bernoulli(p)) {
        g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j),
                   latency(i, j));
      }
    }
  }
  // Stitch components together: connect each later component root to a
  // uniformly chosen node of the growing connected part.
  std::vector<NodeId> component(node_count, kInvalidNode);
  std::vector<NodeId> stack;
  std::vector<NodeId> roots;
  for (NodeId s = 0; s < node_count; ++s) {
    if (component[s] != kInvalidNode) continue;
    roots.push_back(s);
    stack.push_back(s);
    component[s] = s;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const Graph::Edge& e : g.neighbors(u)) {
        if (component[e.to] == kInvalidNode) {
          component[e.to] = s;
          stack.push_back(e.to);
        }
      }
    }
  }
  for (std::size_t r = 1; r < roots.size(); ++r) {
    NodeId target;
    do {
      target = static_cast<NodeId>(rng.uniform(node_count));
    } while (component[target] == roots[r]);
    g.add_edge(roots[r], target, latency(roots[r], target));
  }
  PROPSIM_CHECK(g.is_connected());
  return g;
}

Graph make_ring_graph(std::size_t node_count, double weight) {
  PROPSIM_CHECK(node_count >= 3);
  Graph g(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    g.add_edge(static_cast<NodeId>(i),
               static_cast<NodeId>((i + 1) % node_count), weight);
  }
  return g;
}

}  // namespace propsim
