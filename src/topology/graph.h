// Weighted undirected graph used for the physical (underlay) network.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace propsim {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Adjacency-list weighted undirected graph. Node ids are dense
/// [0, node_count). Edge weights are latencies in milliseconds.
class Graph {
 public:
  struct Edge {
    NodeId to;
    double weight;
  };

  Graph() = default;
  explicit Graph(std::size_t node_count) : adjacency_(node_count) {}

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  NodeId add_node();

  /// Adds an undirected edge; parallel edges are allowed but propsim's
  /// generators never create them. Requires u != v and positive weight.
  void add_edge(NodeId u, NodeId v, double weight);

  std::span<const Edge> neighbors(NodeId u) const {
    PROPSIM_DCHECK(u < adjacency_.size());
    return adjacency_[u];
  }

  std::size_t degree(NodeId u) const { return neighbors(u).size(); }

  /// True if an edge u—v exists (linear scan of u's adjacency).
  bool has_edge(NodeId u, NodeId v) const;

  /// Weight of edge u—v; requires the edge to exist.
  double edge_weight(NodeId u, NodeId v) const;

  /// True if every node is reachable from node 0 (or the graph is empty).
  bool is_connected() const;

  /// Number of nodes reachable from `start`.
  std::size_t reachable_count(NodeId start) const;

  double total_edge_weight() const;
  std::size_t min_degree() const;
  std::size_t max_degree() const;
  double average_degree() const;

 private:
  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edge_count_ = 0;
};

/// Compressed-sparse-row snapshot of a Graph: all adjacency in three flat
/// arrays, so traversal-heavy code (Dijkstra, the latency oracle) walks
/// contiguous memory instead of chasing one heap vector per node. Build
/// once after the graph is final; the snapshot does not track later edits.
class CsrGraph {
 public:
  CsrGraph() = default;
  explicit CsrGraph(const Graph& g);

  std::size_t node_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t edge_count() const { return targets_.size() / 2; }

  /// Neighbor ids of `u`; weights() is index-aligned with this span.
  std::span<const NodeId> targets(NodeId u) const {
    PROPSIM_DCHECK(u + 1 < offsets_.size());
    return {targets_.data() + offsets_[u],
            offsets_[u + 1] - offsets_[u]};
  }
  std::span<const double> weights(NodeId u) const {
    PROPSIM_DCHECK(u + 1 < offsets_.size());
    return {weights_.data() + offsets_[u],
            offsets_[u + 1] - offsets_[u]};
  }

 private:
  // offsets_[u]..offsets_[u+1] brackets u's slice of targets_/weights_.
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> targets_;
  std::vector<double> weights_;
};

}  // namespace propsim
