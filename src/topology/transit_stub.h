// GT-ITM-style transit-stub physical topology generator.
//
// The paper evaluates over two GT-ITM transit-stub models ("ts-large" with a
// large backbone and sparse edge, and "ts-small" with a small backbone and
// dense edge). GT-ITM itself is a standalone tool we do not ship; the
// transit-stub model is fully specified by the domain counts and edge
// probabilities below, so we generate the same graph family directly.
//
// Structure:
//   * `transit_domains` transit domains, each a connected random graph of
//     `transit_nodes_per_domain` nodes with transit-transit latency links;
//   * the domains are interconnected by a random domain-level spanning tree
//     plus `extra_interdomain_edges` shortcuts (also transit-transit);
//   * every transit node anchors `stub_domains_per_transit` stub domains;
//     each stub domain is a connected random graph of `nodes_per_stub`
//     nodes with stub-stub latency links, attached to its transit node by
//     one stub-transit link.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "topology/graph.h"

namespace propsim {

enum class NodeKind : std::uint8_t { kTransit, kStub };

struct TransitStubConfig {
  std::size_t transit_domains = 10;
  std::size_t transit_nodes_per_domain = 4;
  std::size_t stub_domains_per_transit = 3;
  std::size_t nodes_per_stub = 40;

  /// Probability of each additional intra-domain edge beyond the spanning
  /// tree that guarantees connectivity.
  double transit_edge_probability = 0.6;
  double stub_edge_probability = 0.05;

  /// Extra transit-domain-level shortcut edges beyond the spanning tree.
  std::size_t extra_interdomain_edges = 5;

  /// Link latencies in milliseconds by class (canonical GT-ITM assignment).
  double stub_stub_ms = 5.0;
  double stub_transit_ms = 20.0;
  double transit_transit_ms = 100.0;

  std::size_t total_nodes() const {
    return transit_domains * transit_nodes_per_domain *
               (1 + stub_domains_per_transit * nodes_per_stub);
  }

  /// Paper preset: large backbone, sparse edge (~4.8k nodes).
  static TransitStubConfig ts_large();
  /// Paper preset: small backbone, dense edge (~4.8k nodes).
  static TransitStubConfig ts_small();
};

/// Per-stub-domain attachment record. The generator connects every stub
/// domain to the backbone through exactly one stub-transit edge; that
/// single-gateway property is what makes the hierarchical latency oracle
/// exact, so it is exported explicitly rather than re-derived.
struct StubDomain {
  /// Members are the contiguous id range [first, first + size).
  NodeId first = kInvalidNode;
  std::uint32_t size = 0;
  /// The stub member carrying the attachment edge.
  NodeId gateway = kInvalidNode;
  /// The transit node the domain hangs off, and the attachment latency.
  NodeId transit = kInvalidNode;
  double attach_ms = 0.0;
};

/// The generated physical network plus per-node metadata.
struct TransitStubTopology {
  Graph graph;
  std::vector<NodeKind> kind;
  /// Transit domain index for transit nodes; owning stub domain index for
  /// stub nodes (stub domains are numbered globally).
  std::vector<std::uint32_t> domain;
  std::vector<NodeId> transit_nodes;
  std::vector<NodeId> stub_nodes;
  /// One record per stub domain, indexed by the global stub domain id
  /// stored in `domain`.
  std::vector<StubDomain> stub_domains;
  std::string preset_name;

  std::size_t stub_domain_count = 0;
};

/// Generates a connected transit-stub topology; deterministic per (config,
/// rng state).
TransitStubTopology make_transit_stub(const TransitStubConfig& config,
                                      Rng& rng);

}  // namespace propsim
