// Auxiliary random-graph generators (used for tests, baselines and as
// alternative underlays to sanity-check that PROP's gains are not an
// artifact of the transit-stub structure).
#pragma once

#include "common/rng.h"
#include "topology/graph.h"

namespace propsim {

/// Connected Erdos-Renyi-style graph: random spanning tree plus extra
/// uniformly random edges until reaching `edge_count` total edges (clamped
/// to the complete-graph maximum). All edges get `weight`.
Graph make_connected_random_graph(std::size_t node_count,
                                  std::size_t edge_count, double weight,
                                  Rng& rng);

/// Waxman random geometric graph on the unit square, made connected by a
/// spanning tree over nearest unconnected components. Edge weight is
/// euclidean distance scaled by `latency_scale` (ms per unit length),
/// with a floor of `min_latency`.
Graph make_waxman_graph(std::size_t node_count, double alpha, double beta,
                        double latency_scale, double min_latency, Rng& rng);

/// Ring of `node_count` nodes with constant `weight`; smallest useful
/// connected topology for unit tests.
Graph make_ring_graph(std::size_t node_count, double weight);

}  // namespace propsim
