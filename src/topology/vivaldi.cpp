#include "topology/vivaldi.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace propsim {

VivaldiSystem::VivaldiSystem(std::size_t host_count,
                             const VivaldiConfig& config, std::uint64_t seed)
    : config_(config),
      coords_(host_count * config.dimensions, 0.0),
      height_(host_count, config.initial_height_ms),
      error_(host_count, config.initial_error),
      rng_(seed) {
  PROPSIM_CHECK(config_.dimensions >= 1);
  PROPSIM_CHECK(config_.cc > 0.0 && config_.cc <= 1.0);
  PROPSIM_CHECK(config_.ce > 0.0 && config_.ce <= 1.0);
  // Tiny jitter: two nodes at the exact same point cannot compute a
  // push direction deterministically.
  for (double& c : coords_) c = rng_.uniform_double(-0.01, 0.01);
}

double VivaldiSystem::coordinate_distance(NodeId i, NodeId j) const {
  double sum = 0.0;
  const std::size_t d = config_.dimensions;
  for (std::size_t k = 0; k < d; ++k) {
    const double delta = coords_[i * d + k] - coords_[j * d + k];
    sum += delta * delta;
  }
  return std::sqrt(sum);
}

double VivaldiSystem::estimate(NodeId i, NodeId j) const {
  PROPSIM_DCHECK(i < error_.size() && j < error_.size());
  if (i == j) return 0.0;
  return coordinate_distance(i, j) + height_[i] + height_[j];
}

void VivaldiSystem::update(NodeId i, NodeId j, double rtt_ms) {
  PROPSIM_CHECK(i < error_.size() && j < error_.size());
  PROPSIM_CHECK(i != j);
  PROPSIM_CHECK(rtt_ms > 0.0);

  const double predicted = estimate(i, j);
  // Sample weight: how much i trusts this measurement relative to its
  // own confidence vs j's.
  const double w = error_[i] / (error_[i] + error_[j] + 1e-12);
  const double sample_error =
      std::abs(predicted - rtt_ms) / std::max(rtt_ms, 1e-9);
  error_[i] = std::clamp(
      sample_error * config_.ce * w + error_[i] * (1.0 - config_.ce * w),
      0.001, 10.0);

  const double delta = config_.cc * w;
  const double force = rtt_ms - predicted;  // >0: too close, push apart

  // Unit vector from j toward i in coordinate space.
  const std::size_t d = config_.dimensions;
  double norm = coordinate_distance(i, j);
  if (norm < 1e-9) {
    // Coincident points: pick a deterministic random direction.
    double sum = 0.0;
    std::vector<double> dir(d);
    for (std::size_t k = 0; k < d; ++k) {
      dir[k] = rng_.uniform_double(-1.0, 1.0);
      sum += dir[k] * dir[k];
    }
    const double len = std::sqrt(std::max(sum, 1e-12));
    for (std::size_t k = 0; k < d; ++k) {
      coords_[i * d + k] += delta * force * dir[k] / len;
    }
  } else {
    for (std::size_t k = 0; k < d; ++k) {
      const double unit = (coords_[i * d + k] - coords_[j * d + k]) / norm;
      coords_[i * d + k] += delta * force * unit;
    }
  }
  // Height absorbs the non-Euclidean access-link share; never negative.
  height_[i] = std::max(config_.initial_height_ms * 0.01,
                        height_[i] + delta * force *
                                         (height_[i] /
                                          std::max(predicted, 1e-9)));
}

void VivaldiSystem::train(std::span<const NodeId> hosts,
                          const LatencyOracle& oracle, std::size_t samples,
                          Rng& rng) {
  PROPSIM_CHECK(hosts.size() >= 2);
  for (std::size_t s = 0; s < samples; ++s) {
    const NodeId i = hosts[static_cast<std::size_t>(
        rng.uniform(hosts.size()))];
    NodeId j;
    do {
      j = hosts[static_cast<std::size_t>(rng.uniform(hosts.size()))];
    } while (j == i);
    const double rtt = oracle.latency(i, j);
    if (rtt <= 0.0) continue;
    update(i, j, rtt);
  }
}

double VivaldiSystem::median_relative_error(std::span<const NodeId> hosts,
                                            const LatencyOracle& oracle,
                                            std::size_t samples,
                                            Rng& rng) const {
  PROPSIM_CHECK(hosts.size() >= 2);
  Samples errors;
  for (std::size_t s = 0; s < samples; ++s) {
    const NodeId i = hosts[static_cast<std::size_t>(
        rng.uniform(hosts.size()))];
    NodeId j;
    do {
      j = hosts[static_cast<std::size_t>(rng.uniform(hosts.size()))];
    } while (j == i);
    const double actual = oracle.latency(i, j);
    if (actual <= 0.0) continue;
    errors.add(std::abs(estimate(i, j) - actual) / actual);
  }
  PROPSIM_CHECK(!errors.empty());
  return errors.median();
}

}  // namespace propsim
