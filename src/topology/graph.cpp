#include "topology/graph.h"

#include <algorithm>

namespace propsim {

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Graph::add_edge(NodeId u, NodeId v, double weight) {
  PROPSIM_CHECK(u < adjacency_.size());
  PROPSIM_CHECK(v < adjacency_.size());
  PROPSIM_CHECK(u != v);
  PROPSIM_CHECK(weight > 0.0);
  adjacency_[u].push_back(Edge{v, weight});
  adjacency_[v].push_back(Edge{u, weight});
  ++edge_count_;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  for (const Edge& e : neighbors(u)) {
    if (e.to == v) return true;
  }
  return false;
}

double Graph::edge_weight(NodeId u, NodeId v) const {
  for (const Edge& e : neighbors(u)) {
    if (e.to == v) return e.weight;
  }
  PROPSIM_CHECK(false && "edge_weight: edge not present");
  return 0.0;
}

std::size_t Graph::reachable_count(NodeId start) const {
  PROPSIM_CHECK(start < adjacency_.size());
  std::vector<bool> seen(adjacency_.size(), false);
  std::vector<NodeId> frontier{start};
  seen[start] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    for (const Edge& e : adjacency_[u]) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        ++visited;
        frontier.push_back(e.to);
      }
    }
  }
  return visited;
}

bool Graph::is_connected() const {
  if (adjacency_.empty()) return true;
  return reachable_count(0) == adjacency_.size();
}

double Graph::total_edge_weight() const {
  double sum = 0.0;
  for (const auto& adj : adjacency_) {
    for (const Edge& e : adj) sum += e.weight;
  }
  return sum / 2.0;
}

std::size_t Graph::min_degree() const {
  PROPSIM_CHECK(!adjacency_.empty());
  std::size_t best = adjacency_.front().size();
  for (const auto& adj : adjacency_) best = std::min(best, adj.size());
  return best;
}

std::size_t Graph::max_degree() const {
  PROPSIM_CHECK(!adjacency_.empty());
  std::size_t best = adjacency_.front().size();
  for (const auto& adj : adjacency_) best = std::max(best, adj.size());
  return best;
}

double Graph::average_degree() const {
  if (adjacency_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edge_count_) /
         static_cast<double>(adjacency_.size());
}

CsrGraph::CsrGraph(const Graph& g) {
  const std::size_t n = g.node_count();
  offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u + 1] = offsets_[u] + g.degree(u);
  }
  targets_.resize(offsets_[n]);
  weights_.resize(offsets_[n]);
  for (NodeId u = 0; u < n; ++u) {
    std::size_t at = offsets_[u];
    for (const Graph::Edge& e : g.neighbors(u)) {
      targets_[at] = e.to;
      weights_[at] = e.weight;
      ++at;
    }
  }
}

}  // namespace propsim
