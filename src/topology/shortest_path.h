// Single-source shortest paths over the physical graph.
#pragma once

#include <vector>

#include "topology/graph.h"

namespace propsim {

/// Dijkstra from `source`; result[i] is the latency of the shortest path
/// source -> i, or +infinity if unreachable.
std::vector<double> dijkstra(const Graph& g, NodeId source);

/// As above over a CSR snapshot — the form the latency oracle uses on its
/// hot path, where the flat adjacency arrays matter.
std::vector<double> dijkstra(const CsrGraph& g, NodeId source);

/// As above but also returns the predecessor of each node on its shortest
/// path (kInvalidNode for the source and unreachable nodes).
struct ShortestPathTree {
  std::vector<double> distance;
  std::vector<NodeId> parent;
};
ShortestPathTree dijkstra_tree(const Graph& g, NodeId source);

/// Reconstructs the node sequence source -> ... -> target from a tree;
/// empty if target is unreachable.
std::vector<NodeId> extract_path(const ShortestPathTree& tree, NodeId source,
                                 NodeId target);

}  // namespace propsim
