#include "topology/latency_oracle.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/thread_pool.h"
#include "topology/shortest_path.h"

namespace propsim {
namespace {

constexpr std::size_t kMaxShards = 16;

}  // namespace

LatencyOracle::LatencyOracle(const Graph& physical,
                             LatencyOracleOptions options)
    : physical_(physical), options_(options), csr_(physical) {
  const std::size_t cap = options_.max_cached_rows;
  const std::size_t shard_count =
      cap == 0 ? kMaxShards : std::min(kMaxShards, cap);
  // Distribute the row budget across shards, rounding down, so the total
  // resident count can never exceed the configured cap.
  per_shard_cap_ = cap == 0 ? 0 : cap / shard_count;
  shards_ = std::vector<Shard>(shard_count);
}

LatencyOracle::LatencyOracle(const TransitStubTopology& topo,
                             LatencyOracleOptions options)
    : physical_(topo.graph), options_(options) {
  build_hierarchical(topo);
  hierarchical_ = true;
}

// --------------------------------------------------- hierarchical engine

void LatencyOracle::build_hierarchical(const TransitStubTopology& topo) {
  const std::size_t n = physical_.node_count();
  PROPSIM_CHECK(!topo.transit_nodes.empty());
  PROPSIM_CHECK(topo.stub_domains.size() == topo.stub_domain_count);

  stub_domain_of_.assign(n, kNoDomain);
  local_index_.assign(n, 0);
  anchor_.assign(n, 0);
  up_ms_.assign(n, 0.0);

  // Backbone APSP over the transit-only subgraph. Exact: a path between
  // transit nodes cannot shortcut through a stub domain, because it would
  // have to traverse that domain's single attachment edge twice.
  backbone_n_ = topo.transit_nodes.size();
  std::vector<std::uint32_t> backbone_index(n, kNoDomain);
  for (std::size_t i = 0; i < backbone_n_; ++i) {
    backbone_index[topo.transit_nodes[i]] = static_cast<std::uint32_t>(i);
  }
  Graph backbone(backbone_n_);
  for (std::size_t i = 0; i < backbone_n_; ++i) {
    const NodeId t = topo.transit_nodes[i];
    anchor_[t] = static_cast<std::uint32_t>(i);
    for (const Graph::Edge& e : physical_.neighbors(t)) {
      const std::uint32_t j = backbone_index[e.to];
      if (j != kNoDomain && j > i) {
        backbone.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j),
                          e.weight);
      }
    }
  }
  backbone_dist_.assign(backbone_n_ * backbone_n_, 0.0);
  for (std::size_t i = 0; i < backbone_n_; ++i) {
    const auto row = dijkstra(backbone, static_cast<NodeId>(i));
    for (std::size_t j = 0; j < backbone_n_; ++j) {
      PROPSIM_CHECK(row[j] != std::numeric_limits<double>::infinity());
      backbone_dist_[i * backbone_n_ + j] = row[j];
    }
  }

  // Per-stub-domain local distance tables plus each member's cost up to
  // its anchor transit node.
  domains_.resize(topo.stub_domains.size());
  for (std::size_t d = 0; d < topo.stub_domains.size(); ++d) {
    const StubDomain& meta = topo.stub_domains[d];
    PROPSIM_CHECK(meta.size > 0);
    PROPSIM_CHECK(meta.first + meta.size <= n);
    PROPSIM_CHECK(meta.gateway >= meta.first &&
                  meta.gateway < meta.first + meta.size);
    PROPSIM_CHECK(backbone_index[meta.transit] != kNoDomain);

    DomainTable& table = domains_[d];
    table.first = meta.first;
    table.size = meta.size;

    // Domain-local subgraph; while collecting it, verify the
    // single-gateway property the exactness argument rests on.
    Graph local(meta.size);
    std::size_t attachment_edges = 0;
    for (std::uint32_t i = 0; i < meta.size; ++i) {
      const NodeId v = meta.first + i;
      for (const Graph::Edge& e : physical_.neighbors(v)) {
        if (e.to >= meta.first && e.to < meta.first + meta.size) {
          if (e.to > v) {
            local.add_edge(static_cast<NodeId>(i),
                           static_cast<NodeId>(e.to - meta.first), e.weight);
          }
        } else {
          PROPSIM_CHECK(v == meta.gateway && e.to == meta.transit);
          ++attachment_edges;
        }
      }
    }
    PROPSIM_CHECK(attachment_edges == 1);

    table.dist.resize(static_cast<std::size_t>(meta.size) * meta.size);
    const std::uint32_t gateway_local = meta.gateway - meta.first;
    for (std::uint32_t i = 0; i < meta.size; ++i) {
      const auto row = dijkstra(local, static_cast<NodeId>(i));
      for (std::uint32_t j = 0; j < meta.size; ++j) {
        PROPSIM_CHECK(row[j] != std::numeric_limits<double>::infinity());
        table.dist[static_cast<std::size_t>(i) * meta.size + j] = row[j];
      }
      const NodeId v = meta.first + i;
      stub_domain_of_[v] = static_cast<std::uint32_t>(d);
      local_index_[v] = i;
      anchor_[v] = backbone_index[meta.transit];
      up_ms_[v] = row[gateway_local] + meta.attach_ms;
    }
  }
}

double LatencyOracle::hierarchical_latency(NodeId a, NodeId b) const {
  const std::uint32_t da = stub_domain_of_[a];
  if (da != kNoDomain && da == stub_domain_of_[b]) {
    // Same stub domain: the local table is exact, since leaving and
    // re-entering the domain would cross the attachment edge twice.
    const DomainTable& table = domains_[da];
    return table.dist[static_cast<std::size_t>(local_index_[a]) * table.size +
                      local_index_[b]];
  }
  return up_ms_[a] +
         backbone_dist_[static_cast<std::size_t>(anchor_[a]) * backbone_n_ +
                        anchor_[b]] +
         up_ms_[b];
}

// ------------------------------------------------ Dijkstra-row fallback

LatencyOracle::Shard& LatencyOracle::shard_for(NodeId source) const {
  return shards_[source % shards_.size()];
}

std::shared_ptr<const std::vector<double>> LatencyOracle::find_cached(
    NodeId source) const {
  Shard& shard = shard_for(source);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.rows.find(source);
  if (it == shard.rows.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return it->second.row;
}

std::shared_ptr<const std::vector<double>> LatencyOracle::row_for(
    NodeId source) const {
  if (auto row = find_cached(source)) return row;
  // Compute outside the lock: the Dijkstra dominates, and two threads
  // racing on the same source at worst duplicate work, never state — the
  // second insert loses and adopts the published row.
  auto fresh =
      std::make_shared<const std::vector<double>>(dijkstra(csr_, source));
  Shard& shard = shard_for(source);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.rows.try_emplace(source);
  if (!inserted) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return it->second.row;
  }
  shard.lru.push_front(source);
  it->second = Shard::Entry{std::move(fresh), shard.lru.begin()};
  auto row = it->second.row;
  if (per_shard_cap_ != 0 && shard.rows.size() > per_shard_cap_) {
    const NodeId victim = shard.lru.back();
    shard.lru.pop_back();
    shard.rows.erase(victim);
  }
  return row;
}

// ------------------------------------------------------- shared surface

double LatencyOracle::latency(NodeId a, NodeId b) const {
  PROPSIM_DCHECK(a < physical_.node_count());
  PROPSIM_DCHECK(b < physical_.node_count());
  if (a == b) return 0.0;
  if (hierarchical_) return hierarchical_latency(a, b);
  // Canonicalize on the smaller id. Answering from whichever row happens
  // to be cached would make the result depend on cache state: with
  // real-valued weights (Waxman), dijkstra(a)[b] and dijkstra(b)[a] can
  // differ in the last ulp. Canonical rows keep latency(a, b) exactly
  // symmetric and reproducible regardless of query history.
  return (*row_for(std::min(a, b)))[std::max(a, b)];
}

DistanceRow LatencyOracle::distances_from(NodeId source) const {
  PROPSIM_CHECK(source < physical_.node_count());
  if (hierarchical_) {
    auto row = std::make_shared<std::vector<double>>(physical_.node_count());
    for (NodeId v = 0; v < physical_.node_count(); ++v) {
      (*row)[v] = v == source ? 0.0 : hierarchical_latency(source, v);
    }
    return DistanceRow(std::move(row));
  }
  return DistanceRow(row_for(source));
}

double LatencyOracle::average_pairwise_latency(
    std::span<const NodeId> hosts) const {
  PROPSIM_CHECK(!hosts.empty());
  double sum = 0.0;
  if (hierarchical_) {
    for (const NodeId a : hosts) {
      for (const NodeId b : hosts) {
        if (a != b) sum += hierarchical_latency(a, b);
      }
    }
  } else {
    for (const NodeId a : hosts) {
      const auto row = row_for(a);
      for (const NodeId b : hosts) sum += (*row)[b];
    }
  }
  const auto n = static_cast<double>(hosts.size());
  return sum / (n * n);
}

double LatencyOracle::average_physical_link_latency() const {
  PROPSIM_CHECK(physical_.edge_count() > 0);
  return physical_.total_edge_weight() /
         static_cast<double>(physical_.edge_count());
}

std::size_t LatencyOracle::cached_sources() const {
  std::size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    count += shard.rows.size();
  }
  return count;
}

void LatencyOracle::warm(std::span<const NodeId> sources,
                         ThreadPool& pool) const {
  if (hierarchical_) return;  // nothing to prefetch: answers are O(1)
  std::vector<NodeId> todo;
  std::vector<bool> seen(physical_.node_count(), false);
  for (const NodeId s : sources) {
    PROPSIM_CHECK(s < physical_.node_count());
    if (!seen[s]) {
      seen[s] = true;
      todo.push_back(s);
    }
  }
  pool.parallel_for(todo.size(),
                    [&](std::size_t i) { row_for(todo[i]); });
}

}  // namespace propsim
