#include "topology/latency_oracle.h"

#include <vector>

#include "common/thread_pool.h"
#include "topology/shortest_path.h"

namespace propsim {

LatencyOracle::LatencyOracle(const Graph& physical)
    : physical_(physical), cache_(physical.node_count()) {}

std::span<const double> LatencyOracle::distances_from(NodeId source) const {
  PROPSIM_CHECK(source < physical_.node_count());
  auto& row = cache_[source];
  if (!row) {
    row = std::make_unique<std::vector<double>>(dijkstra(physical_, source));
  }
  return *row;
}

double LatencyOracle::latency(NodeId a, NodeId b) const {
  if (a == b) return 0.0;
  // Prefer whichever row is already cached to avoid duplicating work.
  if (cache_[b] && !cache_[a]) return (*cache_[b])[a];
  return distances_from(a)[b];
}

double LatencyOracle::average_pairwise_latency(
    std::span<const NodeId> hosts) const {
  PROPSIM_CHECK(!hosts.empty());
  double sum = 0.0;
  for (const NodeId a : hosts) {
    const auto row = distances_from(a);
    for (const NodeId b : hosts) sum += row[b];
  }
  const auto n = static_cast<double>(hosts.size());
  return sum / (n * n);
}

double LatencyOracle::average_physical_link_latency() const {
  PROPSIM_CHECK(physical_.edge_count() > 0);
  return physical_.total_edge_weight() /
         static_cast<double>(physical_.edge_count());
}

void LatencyOracle::warm(std::span<const NodeId> sources,
                         ThreadPool& pool) const {
  // Deduplicate and drop already-cached rows so each task owns a
  // distinct cache slot (no synchronization needed).
  std::vector<NodeId> todo;
  std::vector<bool> seen(physical_.node_count(), false);
  for (const NodeId s : sources) {
    PROPSIM_CHECK(s < physical_.node_count());
    if (!seen[s] && !cache_[s]) {
      seen[s] = true;
      todo.push_back(s);
    }
  }
  pool.parallel_for(todo.size(), [&](std::size_t i) {
    cache_[todo[i]] =
        std::make_unique<std::vector<double>>(dijkstra(physical_, todo[i]));
  });
}

std::size_t LatencyOracle::cached_sources() const {
  std::size_t count = 0;
  for (const auto& row : cache_) {
    if (row) ++count;
  }
  return count;
}

}  // namespace propsim
