// Vivaldi virtual network coordinates (Dabek, Cox, Kaashoek, Morris,
// SIGCOMM 2004) — decentralized latency estimation.
//
// PROP pays `2c` (or `2m`) probe messages per exchange attempt
// (Section 4.3); with every peer holding a Vivaldi coordinate, the Var
// of a hypothetical exchange can be *estimated* from coordinates alone,
// trading probe traffic for estimation error. The ext_vivaldi bench
// quantifies that trade on the real overlay.
//
// Implementation: the classic adaptive-timestep spring relaxation in a
// Euclidean space plus a non-negative "height" per node modelling the
// access-link hop.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"
#include "topology/latency_oracle.h"

namespace propsim {

struct VivaldiConfig {
  std::size_t dimensions = 3;
  /// Adaptive timestep gain (c_c in the paper).
  double cc = 0.25;
  /// Error-average gain (c_e in the paper).
  double ce = 0.25;
  /// Initial per-node error estimate (1.0 = know nothing).
  double initial_error = 1.0;
  /// Initial height in milliseconds.
  double initial_height_ms = 1.0;
};

class VivaldiSystem {
 public:
  /// Coordinates for hosts [0, host_count); all start at the origin with
  /// tiny random jitter so springs have directions to push along.
  VivaldiSystem(std::size_t host_count, const VivaldiConfig& config,
                std::uint64_t seed);

  std::size_t host_count() const { return error_.size(); }

  /// One observation: host `i` measured `rtt_ms` to host `j`. Updates
  /// i's coordinate, error and height (the paper's node-at-a-time rule;
  /// j is untouched, matching a one-way deployment).
  void update(NodeId i, NodeId j, double rtt_ms);

  /// Estimated latency between two hosts (coordinate distance plus both
  /// heights).
  double estimate(NodeId i, NodeId j) const;

  double error_of(NodeId i) const { return error_[i]; }

  /// Drives `samples` random-pair measurements against ground truth —
  /// the bootstrap a deployed system gets for free from its traffic.
  void train(std::span<const NodeId> hosts, const LatencyOracle& oracle,
             std::size_t samples, Rng& rng);

  /// Median of |estimate - actual| / actual over sampled pairs.
  double median_relative_error(std::span<const NodeId> hosts,
                               const LatencyOracle& oracle,
                               std::size_t samples, Rng& rng) const;

 private:
  double coordinate_distance(NodeId i, NodeId j) const;

  VivaldiConfig config_;
  /// coords_[host * dimensions + d]
  std::vector<double> coords_;
  std::vector<double> height_;
  std::vector<double> error_;
  Rng rng_;
};

}  // namespace propsim
