// Cached shortest-path latency oracle over the physical network.
//
// Protocols and metrics ask for d(host_a, host_b) millions of times; the
// oracle lazily runs one Dijkstra per distinct source host and caches the
// full distance vector, so each source costs O(E log V) exactly once.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "topology/graph.h"

namespace propsim {

class ThreadPool;

class LatencyOracle {
 public:
  /// The oracle keeps a reference to `physical`; the graph must outlive it.
  explicit LatencyOracle(const Graph& physical);

  const Graph& physical() const { return physical_; }

  /// Shortest-path latency between two physical hosts, in milliseconds.
  double latency(NodeId a, NodeId b) const;

  /// Full distance vector from `source` (cached).
  std::span<const double> distances_from(NodeId source) const;

  /// Mean latency over all unordered pairs of `hosts` (self-pairs count as
  /// zero, matching the paper's AL definition over n^2 ordered pairs).
  double average_pairwise_latency(std::span<const NodeId> hosts) const;

  /// Mean latency over the physical graph's direct links; the denominator
  /// of the paper's stretch metric.
  double average_physical_link_latency() const;

  std::size_t cached_sources() const;

  /// Precomputes the distance rows of `sources` in parallel. The oracle
  /// is NOT thread-safe for concurrent lazy queries; warming up-front
  /// from one thread (with the pool doing the Dijkstras into disjoint
  /// rows) is the supported way to parallelize, after which reads are
  /// pure lookups.
  void warm(std::span<const NodeId> sources, ThreadPool& pool) const;

 private:
  const Graph& physical_;
  // Lazily filled per-source rows; mutable because caching is not an
  // observable state change.
  mutable std::vector<std::unique_ptr<std::vector<double>>> cache_;
};

}  // namespace propsim
