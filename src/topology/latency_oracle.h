// Latency oracle over the physical network: d(host_a, host_b) in O(1).
//
// Protocols and metrics ask for pairwise latencies millions of times. The
// oracle has two engines behind one interface:
//
//  * Hierarchical (transit-stub graphs): precomputes APSP over the small
//    transit backbone, a local distance table per stub domain, and each
//    node's cost up to its anchor transit node. latency(a,b) is then one
//    table lookup (same stub domain) or up[a] + backbone + up[b] —
//    exact, because every stub domain attaches to the backbone through a
//    single gateway edge, so no shortest path re-enters a foreign stub
//    domain. Resident state is O(V * stub_size + T^2), not O(V^2).
//
//  * Dijkstra rows (any graph, e.g. Waxman): one Dijkstra per distinct
//    source over a CSR snapshot, rows kept in a sharded, LRU-bounded
//    cache so memory stays at O(max_cached_rows * V) regardless of how
//    many sources are queried.
//
// Both engines are safe for concurrent queries from many threads; warm()
// is a pure prefetch that parallelizes row construction.
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "topology/graph.h"
#include "topology/transit_stub.h"

namespace propsim {

class ThreadPool;

struct LatencyOracleOptions {
  /// Upper bound on resident Dijkstra rows in fallback mode; least
  /// recently used rows are evicted beyond it. 0 = unbounded.
  std::size_t max_cached_rows = 1024;
};

/// Shared-ownership view of one source's full distance row. Holding a
/// DistanceRow keeps the row alive even if the oracle's LRU cache evicts
/// it concurrently.
class DistanceRow {
 public:
  DistanceRow() = default;
  explicit DistanceRow(std::shared_ptr<const std::vector<double>> row)
      : row_(std::move(row)) {}

  double operator[](std::size_t i) const { return (*row_)[i]; }
  std::size_t size() const { return row_ ? row_->size() : 0; }
  std::span<const double> span() const {
    return row_ ? std::span<const double>(*row_) : std::span<const double>();
  }

 private:
  std::shared_ptr<const std::vector<double>> row_;
};

class LatencyOracle {
 public:
  /// Dijkstra-row engine over an arbitrary graph. The oracle keeps a
  /// reference to `physical`; the graph must outlive it.
  explicit LatencyOracle(const Graph& physical,
                         LatencyOracleOptions options = {});

  /// Hierarchical engine over a transit-stub topology (exact; verified
  /// against Dijkstra by the test suite). Keeps a reference to
  /// `topo.graph`; the topology must outlive the oracle.
  explicit LatencyOracle(const TransitStubTopology& topo,
                         LatencyOracleOptions options = {});

  LatencyOracle(const LatencyOracle&) = delete;
  LatencyOracle& operator=(const LatencyOracle&) = delete;

  const Graph& physical() const { return physical_; }

  /// True when the O(1) hierarchical engine answers queries.
  bool hierarchical() const { return hierarchical_; }

  /// Shortest-path latency between two physical hosts, in milliseconds.
  /// Thread-safe in both modes.
  double latency(NodeId a, NodeId b) const;

  /// Full distance vector from `source`. In fallback mode the row comes
  /// from (or enters) the LRU cache; in hierarchical mode it is
  /// materialized on demand in O(V) — prefer latency() for point queries.
  DistanceRow distances_from(NodeId source) const;

  /// Mean latency over all unordered pairs of `hosts` (self-pairs count as
  /// zero, matching the paper's AL definition over n^2 ordered pairs).
  double average_pairwise_latency(std::span<const NodeId> hosts) const;

  /// Mean latency over the physical graph's direct links; the denominator
  /// of the paper's stretch metric.
  double average_physical_link_latency() const;

  /// Dijkstra rows currently resident (0 in hierarchical mode, which
  /// keeps no rows). Never exceeds options.max_cached_rows.
  std::size_t cached_sources() const;

  /// Prefetches the distance rows of `sources` in parallel. Purely an
  /// optimization: concurrent lazy queries are safe with or without it.
  /// No-op in hierarchical mode. Rows beyond max_cached_rows are evicted
  /// LRU as usual.
  void warm(std::span<const NodeId> sources, ThreadPool& pool) const;

 private:
  // ---- Dijkstra-row fallback engine ----
  struct Shard {
    struct Entry {
      std::shared_ptr<const std::vector<double>> row;
      std::list<NodeId>::iterator lru_it;
    };
    mutable std::mutex mutex;
    // det-ok(D1): keyed cache probe; eviction order comes from the list
    std::unordered_map<NodeId, Entry> rows;
    std::list<NodeId> lru;  // front = most recently used
  };

  Shard& shard_for(NodeId source) const;
  /// Cached row for `source` (touching LRU), or nullptr on miss.
  std::shared_ptr<const std::vector<double>> find_cached(NodeId source) const;
  std::shared_ptr<const std::vector<double>> row_for(NodeId source) const;

  // ---- Hierarchical transit-stub engine ----
  void build_hierarchical(const TransitStubTopology& topo);
  double hierarchical_latency(NodeId a, NodeId b) const;

  static constexpr std::uint32_t kNoDomain = 0xffffffffu;

  const Graph& physical_;
  LatencyOracleOptions options_;
  bool hierarchical_ = false;

  // Fallback state. `csr_` is the traversal snapshot for row Dijkstras;
  // shards stripe the lock so concurrent queries rarely contend.
  CsrGraph csr_;
  std::size_t per_shard_cap_ = 0;  // 0 = unbounded
  mutable std::vector<Shard> shards_;

  // Hierarchical tables, all O(V) for bounded stub-domain size:
  //   stub_domain_of_[v]  owning stub domain, kNoDomain for transit nodes
  //   local_index_[v]     index inside the domain table / backbone matrix
  //   anchor_[v]          backbone index of the node's anchor transit node
  //   up_ms_[v]           cost from v up to its anchor (0 for transit)
  std::vector<std::uint32_t> stub_domain_of_;
  std::vector<std::uint32_t> local_index_;
  std::vector<std::uint32_t> anchor_;
  std::vector<double> up_ms_;
  struct DomainTable {
    NodeId first = kInvalidNode;
    std::uint32_t size = 0;
    std::vector<double> dist;  // size x size, row-major
  };
  std::vector<DomainTable> domains_;
  std::size_t backbone_n_ = 0;
  std::vector<double> backbone_dist_;  // backbone_n_ x backbone_n_
};

}  // namespace propsim
