#include "topology/shortest_path.h"

#include <algorithm>
#include <limits>

#include "common/indexed_priority_queue.h"

namespace propsim {
namespace {

ShortestPathTree run_dijkstra(const Graph& g, NodeId source,
                              bool want_parents) {
  PROPSIM_CHECK(source < g.node_count());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ShortestPathTree tree;
  tree.distance.assign(g.node_count(), kInf);
  if (want_parents) tree.parent.assign(g.node_count(), kInvalidNode);

  IndexedPriorityQueue<double> queue(g.node_count());
  tree.distance[source] = 0.0;
  queue.push_or_update(source, 0.0);
  while (!queue.empty()) {
    const auto u = static_cast<NodeId>(queue.pop());
    const double du = tree.distance[u];
    for (const Graph::Edge& e : g.neighbors(u)) {
      const double candidate = du + e.weight;
      if (candidate < tree.distance[e.to]) {
        tree.distance[e.to] = candidate;
        if (want_parents) tree.parent[e.to] = u;
        queue.push_or_update(e.to, candidate);
      }
    }
  }
  return tree;
}

}  // namespace

std::vector<double> dijkstra(const Graph& g, NodeId source) {
  return run_dijkstra(g, source, /*want_parents=*/false).distance;
}

std::vector<double> dijkstra(const CsrGraph& g, NodeId source) {
  PROPSIM_CHECK(source < g.node_count());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> distance(g.node_count(), kInf);
  IndexedPriorityQueue<double> queue(g.node_count());
  distance[source] = 0.0;
  queue.push_or_update(source, 0.0);
  while (!queue.empty()) {
    const auto u = static_cast<NodeId>(queue.pop());
    const double du = distance[u];
    const auto targets = g.targets(u);
    const auto weights = g.weights(u);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const NodeId v = targets[i];
      const double candidate = du + weights[i];
      if (candidate < distance[v]) {
        distance[v] = candidate;
        queue.push_or_update(v, candidate);
      }
    }
  }
  return distance;
}

ShortestPathTree dijkstra_tree(const Graph& g, NodeId source) {
  return run_dijkstra(g, source, /*want_parents=*/true);
}

std::vector<NodeId> extract_path(const ShortestPathTree& tree, NodeId source,
                                 NodeId target) {
  PROPSIM_CHECK(target < tree.distance.size());
  std::vector<NodeId> path;
  if (tree.distance[target] == std::numeric_limits<double>::infinity()) {
    return path;
  }
  for (NodeId at = target; at != kInvalidNode; at = tree.parent[at]) {
    path.push_back(at);
    if (at == source) break;
  }
  std::reverse(path.begin(), path.end());
  PROPSIM_CHECK(!path.empty() && path.front() == source);
  return path;
}

}  // namespace propsim
