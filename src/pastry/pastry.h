// Pastry DHT over overlay slots (Rowstron & Druschel, Middleware 2001).
//
// 64-bit identifiers interpreted as 16 hexadecimal digits (b = 4).
// Each slot keeps a routing table (row r, column c: some node sharing an
// r-digit prefix whose next digit is c), a leaf set of the L/2
// numerically nearest ids on each side, and routes by prefix matching
// with the leaf set as the final step.
//
// As with Chord and CAN, the structure lives on *slots*; PROP-G swaps
// the hosts bound to two slots, which is exactly Pastry peers trading
// nodeIds. The optional proximity-aware table fill (Castro et al.,
// "Exploiting network proximity in peer-to-peer overlay networks") picks
// the physically nearest candidate per routing-table cell — the PNS
// analogue the paper groups under proximity neighbor selection.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "overlay/logical_graph.h"
#include "overlay/overlay_network.h"
#include "topology/latency_oracle.h"

namespace propsim {

using PastryId = std::uint64_t;

/// Digits per id and columns per row with b = 4 (hex digits).
constexpr std::size_t kPastryDigits = 16;
constexpr std::size_t kPastryBase = 16;

/// Digit d (0 = most significant) of an id.
constexpr std::uint32_t pastry_digit(PastryId id, std::size_t d) {
  return static_cast<std::uint32_t>(
      (id >> (4 * (kPastryDigits - 1 - d))) & 0xF);
}

/// Length of the common hex-digit prefix of two ids (0..16).
constexpr std::size_t shared_prefix_len(PastryId a, PastryId b) {
  std::size_t len = 0;
  while (len < kPastryDigits && pastry_digit(a, len) == pastry_digit(b, len)) {
    ++len;
  }
  return len;
}

/// Circular distance on the 64-bit id ring (min of both directions).
constexpr PastryId ring_distance(PastryId a, PastryId b) {
  const PastryId d = a - b;
  const PastryId e = b - a;
  return d < e ? d : e;
}

struct PastryConfig {
  /// Leaf-set size (L/2 on each side).
  std::size_t leaf_set_half = 4;
};

class PastryNetwork {
 public:
  /// Random distinct ids over `slot_count` slots.
  static PastryNetwork build_random(std::size_t slot_count,
                                    const PastryConfig& config, Rng& rng);

  /// Caller-chosen distinct ids (landmark-binned ids, tests).
  static PastryNetwork build_with_ids(std::vector<PastryId> ids,
                                      const PastryConfig& config);

  std::size_t size() const { return ids_.size(); }
  PastryId id_of(SlotId s) const { return ids_[s]; }

  /// Ground truth: the slot numerically closest to `key` on the ring
  /// (ties broken toward the lower id).
  SlotId owner_of(PastryId key) const;

  /// Routing-table entry for (row, col); kInvalidSlot when empty.
  SlotId table_entry(SlotId s, std::size_t row, std::size_t col) const;

  /// The leaf set of a slot: the leaf_set_half nearest ids on either
  /// side, by ring order.
  std::span<const SlotId> leaf_set(SlotId s) const { return leaves_[s]; }

  /// Prefix routing from `source` toward `key`; the path ends at
  /// owner_of(key). Each hop either lengthens the shared prefix or
  /// (within the leaf set) jumps straight to the numerically closest
  /// node.
  std::vector<SlotId> lookup_path(SlotId source, PastryId key) const;

  /// Routing-state links (table entries + leaf sets) as an undirected
  /// logical graph — the neighbor set PROP operates on.
  LogicalGraph to_logical_graph() const;

  /// Refills every routing-table cell with the physically nearest
  /// candidate among the nodes eligible for that cell (Castro et al.'s
  /// proximity-aware Pastry). Leaf sets are constrained by id order and
  /// stay as they are.
  void apply_proximity(std::span<const NodeId> hosts,
                       const LatencyOracle& oracle);

  const PastryConfig& config() const { return config_; }

 private:
  PastryNetwork(std::vector<PastryId> ids, const PastryConfig& config);

  void rebuild_tables();
  /// All slots whose id shares exactly `row` digits with s and whose
  /// next digit is `col` (candidates for the table cell).
  std::vector<SlotId> cell_candidates(SlotId s, std::size_t row,
                                      std::size_t col) const;

  PastryConfig config_;
  std::vector<PastryId> ids_;
  std::vector<SlotId> ring_order_;     // slots sorted by id
  std::vector<std::size_t> ring_pos_;  // slot -> position in ring_order_
  /// tables_[s][row * kPastryBase + col]
  std::vector<std::vector<SlotId>> tables_;
  std::vector<std::vector<SlotId>> leaves_;
};

/// OverlayNetwork over a Pastry network: slot i bound to hosts[i].
OverlayNetwork make_pastry_overlay(const PastryNetwork& pastry,
                                   std::span<const NodeId> hosts,
                                   const LatencyOracle& oracle,
                                   obs::EventBus* trace = nullptr);

}  // namespace propsim
