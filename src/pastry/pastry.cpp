#include "pastry/pastry.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace propsim {

PastryNetwork::PastryNetwork(std::vector<PastryId> ids,
                             const PastryConfig& config)
    : config_(config), ids_(std::move(ids)) {
  PROPSIM_CHECK(ids_.size() >= 2);
  PROPSIM_CHECK(config_.leaf_set_half >= 1);
  rebuild_tables();
}

PastryNetwork PastryNetwork::build_random(std::size_t slot_count,
                                          const PastryConfig& config,
                                          Rng& rng) {
  PROPSIM_CHECK(slot_count >= 2);
  // det-ok(D1): duplicate-id probe only; ids are emitted via the vector
  std::unordered_set<PastryId> seen;
  std::vector<PastryId> ids;
  ids.reserve(slot_count);
  while (ids.size() < slot_count) {
    const PastryId id = rng.next();
    if (seen.insert(id).second) ids.push_back(id);
  }
  return PastryNetwork(std::move(ids), config);
}

PastryNetwork PastryNetwork::build_with_ids(std::vector<PastryId> ids,
                                            const PastryConfig& config) {
  std::vector<PastryId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  PROPSIM_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
  return PastryNetwork(std::move(ids), config);
}

void PastryNetwork::rebuild_tables() {
  const std::size_t n = ids_.size();
  ring_order_.resize(n);
  std::iota(ring_order_.begin(), ring_order_.end(), SlotId{0});
  std::sort(ring_order_.begin(), ring_order_.end(),
            [&](SlotId a, SlotId b) { return ids_[a] < ids_[b]; });
  ring_pos_.resize(n);
  for (std::size_t i = 0; i < n; ++i) ring_pos_[ring_order_[i]] = i;

  // Leaf sets: leaf_set_half ring neighbors on each side (the whole
  // ring for tiny networks).
  const std::size_t half = std::min(config_.leaf_set_half, (n - 1) / 2);
  leaves_.assign(n, {});
  for (SlotId s = 0; s < n; ++s) {
    auto& set = leaves_[s];
    const std::size_t pos = ring_pos_[s];
    for (std::size_t k = 1; k <= half; ++k) {
      set.push_back(ring_order_[(pos + k) % n]);
      set.push_back(ring_order_[(pos + n - k) % n]);
    }
    if (half == 0 && n == 2) set.push_back(ring_order_[(pos + 1) % 2]);
  }

  // Routing tables: one pass over all ordered pairs; each candidate t
  // lands in cell (shared, digit_t); keep the candidate with the
  // smallest ring distance (deterministic, proximity-neutral).
  tables_.assign(n, std::vector<SlotId>(kPastryDigits * kPastryBase,
                                        kInvalidSlot));
  for (SlotId s = 0; s < n; ++s) {
    auto& table = tables_[s];
    for (SlotId t = 0; t < n; ++t) {
      if (t == s) continue;
      const std::size_t shared = shared_prefix_len(ids_[s], ids_[t]);
      if (shared == kPastryDigits) continue;  // impossible: distinct ids
      const std::size_t cell =
          shared * kPastryBase + pastry_digit(ids_[t], shared);
      const SlotId cur = table[cell];
      if (cur == kInvalidSlot ||
          ring_distance(ids_[t], ids_[s]) <
              ring_distance(ids_[cur], ids_[s])) {
        table[cell] = t;
      }
    }
  }
}

SlotId PastryNetwork::owner_of(PastryId key) const {
  // Nearest id on the ring: check the two candidates around the key's
  // insertion point in ring order.
  const auto it = std::lower_bound(
      ring_order_.begin(), ring_order_.end(), key,
      [&](SlotId s, PastryId k) { return ids_[s] < k; });
  const std::size_t n = ring_order_.size();
  const std::size_t hi_pos =
      (it == ring_order_.end()) ? 0
                                : static_cast<std::size_t>(
                                      it - ring_order_.begin());
  const std::size_t lo_pos = (hi_pos + n - 1) % n;
  const SlotId hi = ring_order_[hi_pos];
  const SlotId lo = ring_order_[lo_pos];
  const PastryId dh = ring_distance(ids_[hi], key);
  const PastryId dl = ring_distance(ids_[lo], key);
  if (dh != dl) return dh < dl ? hi : lo;
  return ids_[hi] < ids_[lo] ? hi : lo;
}

SlotId PastryNetwork::table_entry(SlotId s, std::size_t row,
                                  std::size_t col) const {
  PROPSIM_DCHECK(s < ids_.size());
  PROPSIM_DCHECK(row < kPastryDigits && col < kPastryBase);
  return tables_[s][row * kPastryBase + col];
}

std::vector<SlotId> PastryNetwork::lookup_path(SlotId source,
                                               PastryId key) const {
  PROPSIM_CHECK(source < ids_.size());
  const SlotId owner = owner_of(key);
  std::vector<SlotId> path{source};
  SlotId here = source;
  for (std::size_t guard = 0; here != owner; ++guard) {
    PROPSIM_CHECK(guard < 256);
    SlotId next = kInvalidSlot;

    // Leaf-set delivery: the owner within reach means one final hop.
    const auto& leaves = leaves_[here];
    if (std::find(leaves.begin(), leaves.end(), owner) != leaves.end()) {
      next = owner;
    } else {
      // Prefix step: the table cell for the key's next digit.
      const std::size_t shared = shared_prefix_len(ids_[here], key);
      next = tables_[here][shared * kPastryBase + pastry_digit(key, shared)];
      if (next == kInvalidSlot) {
        // Rare case: no entry — forward to a known node at least as
        // prefix-matched and strictly ring-closer to the key; if the
        // prefix constraint cannot be met (the key sits on a digit
        // boundary, e.g. 0x7FF.. vs 0x800..), fall back to pure ring
        // greed, which the leaf set always satisfies: the ring neighbor
        // toward the key is strictly closer unless it *is* the owner,
        // and that case was handled above.
        const PastryId here_dist = ring_distance(ids_[here], key);
        auto consider = [&](SlotId cand, bool require_prefix) {
          if (cand == kInvalidSlot || cand == here) return;
          if (require_prefix &&
              shared_prefix_len(ids_[cand], key) < shared) {
            return;
          }
          const PastryId d = ring_distance(ids_[cand], key);
          if (d >= here_dist) return;
          if (next == kInvalidSlot || d < ring_distance(ids_[next], key)) {
            next = cand;
          }
        };
        for (const bool require_prefix : {true, false}) {
          for (const SlotId leaf : leaves) consider(leaf, require_prefix);
          for (const SlotId entry : tables_[here]) {
            consider(entry, require_prefix);
          }
          if (next != kInvalidSlot) break;
        }
      }
    }
    // Globally consistent state guarantees progress until the owner.
    PROPSIM_CHECK(next != kInvalidSlot);
    here = next;
    path.push_back(here);
  }
  return path;
}

LogicalGraph PastryNetwork::to_logical_graph() const {
  const std::size_t n = ids_.size();
  LogicalGraph g(n);
  auto link = [&](SlotId a, SlotId b) {
    if (b != kInvalidSlot && a != b && !g.has_edge(a, b)) g.add_edge(a, b);
  };
  for (SlotId s = 0; s < n; ++s) {
    for (const SlotId leaf : leaves_[s]) link(s, leaf);
    for (const SlotId entry : tables_[s]) link(s, entry);
  }
  return g;
}

void PastryNetwork::apply_proximity(std::span<const NodeId> hosts,
                                    const LatencyOracle& oracle) {
  PROPSIM_CHECK(hosts.size() == ids_.size());
  const std::size_t n = ids_.size();
  // Same single pass as rebuild_tables but the per-cell winner is the
  // physically nearest candidate instead of the id-nearest one.
  for (SlotId s = 0; s < n; ++s) {
    auto& table = tables_[s];
    std::fill(table.begin(), table.end(), kInvalidSlot);
    for (SlotId t = 0; t < n; ++t) {
      if (t == s) continue;
      const std::size_t shared = shared_prefix_len(ids_[s], ids_[t]);
      const std::size_t cell =
          shared * kPastryBase + pastry_digit(ids_[t], shared);
      const SlotId cur = table[cell];
      if (cur == kInvalidSlot ||
          oracle.latency(hosts[s], hosts[t]) <
              oracle.latency(hosts[s], hosts[cur])) {
        table[cell] = t;
      }
    }
  }
}

OverlayNetwork make_pastry_overlay(const PastryNetwork& pastry,
                                   std::span<const NodeId> hosts,
                                   const LatencyOracle& oracle,
                                   obs::EventBus* trace) {
  PROPSIM_CHECK(hosts.size() == pastry.size());
  LogicalGraph graph = pastry.to_logical_graph();
  Placement placement(graph.slot_count(), oracle.physical().node_count());
  for (SlotId s = 0; s < graph.slot_count(); ++s) {
    placement.bind(s, hosts[s]);
  }
  OverlayNetwork net(std::move(graph), std::move(placement), oracle);
  net.set_trace(trace);
  if (trace != nullptr) {
    for (const SlotId s : net.graph().active_slots()) {
      trace->emit(obs::TraceEventKind::kJoin, s, net.placement().host_of(s));
    }
  }
  return net;
}

}  // namespace propsim
