#include "overlay/logical_graph.h"

#include <algorithm>

namespace propsim {

SlotId LogicalGraph::add_slot() {
  adjacency_.emplace_back();
  active_.push_back(true);
  ++active_count_;
  return static_cast<SlotId>(adjacency_.size() - 1);
}

void LogicalGraph::deactivate_slot(SlotId s) {
  PROPSIM_CHECK(s < adjacency_.size());
  PROPSIM_CHECK(active_[s]);
  // Detach from every neighbor first.
  while (!adjacency_[s].empty()) {
    remove_edge(s, adjacency_[s].back());
  }
  active_[s] = false;
  --active_count_;
}

void LogicalGraph::reactivate_slot(SlotId s) {
  PROPSIM_CHECK(s < adjacency_.size());
  PROPSIM_CHECK(!active_[s]);
  PROPSIM_CHECK(adjacency_[s].empty());
  active_[s] = true;
  ++active_count_;
}

void LogicalGraph::add_edge(SlotId a, SlotId b) {
  PROPSIM_CHECK(a < adjacency_.size() && b < adjacency_.size());
  PROPSIM_CHECK(a != b);
  PROPSIM_CHECK(active_[a] && active_[b]);
  PROPSIM_CHECK(!has_edge(a, b));
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++edge_count_;
}

void LogicalGraph::erase_directed(SlotId from, SlotId to) {
  auto& adj = adjacency_[from];
  const auto it = std::find(adj.begin(), adj.end(), to);
  PROPSIM_CHECK(it != adj.end());
  *it = adj.back();
  adj.pop_back();
}

void LogicalGraph::remove_edge(SlotId a, SlotId b) {
  PROPSIM_CHECK(a < adjacency_.size() && b < adjacency_.size());
  erase_directed(a, b);
  erase_directed(b, a);
  PROPSIM_CHECK(edge_count_ > 0);
  --edge_count_;
}

bool LogicalGraph::has_edge(SlotId a, SlotId b) const {
  PROPSIM_DCHECK(a < adjacency_.size() && b < adjacency_.size());
  const auto& adj = adjacency_[a];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

std::size_t LogicalGraph::min_active_degree() const {
  PROPSIM_CHECK(active_count_ > 0);
  std::size_t best = static_cast<std::size_t>(-1);
  for (std::size_t s = 0; s < adjacency_.size(); ++s) {
    if (active_[s]) best = std::min(best, adjacency_[s].size());
  }
  return best;
}

double LogicalGraph::average_active_degree() const {
  if (active_count_ == 0) return 0.0;
  std::size_t sum = 0;
  for (std::size_t s = 0; s < adjacency_.size(); ++s) {
    if (active_[s]) sum += adjacency_[s].size();
  }
  return static_cast<double>(sum) / static_cast<double>(active_count_);
}

bool LogicalGraph::active_subgraph_connected() const {
  if (active_count_ == 0) return true;
  SlotId start = kInvalidSlot;
  for (std::size_t s = 0; s < adjacency_.size(); ++s) {
    if (active_[s]) {
      start = static_cast<SlotId>(s);
      break;
    }
  }
  std::vector<bool> seen(adjacency_.size(), false);
  std::vector<SlotId> stack{start};
  seen[start] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const SlotId u = stack.back();
    stack.pop_back();
    for (const SlotId v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == active_count_;
}

std::vector<std::size_t> LogicalGraph::degree_multiset() const {
  std::vector<std::size_t> degrees;
  degrees.reserve(active_count_);
  for (std::size_t s = 0; s < adjacency_.size(); ++s) {
    if (active_[s]) degrees.push_back(adjacency_[s].size());
  }
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

std::vector<SlotId> LogicalGraph::active_slots() const {
  std::vector<SlotId> out;
  out.reserve(active_count_);
  for (std::size_t s = 0; s < adjacency_.size(); ++s) {
    if (active_[s]) out.push_back(static_cast<SlotId>(s));
  }
  return out;
}

}  // namespace propsim
