#include "overlay/isomorphism.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace propsim {

std::vector<HostEdge> host_edges(const LogicalGraph& graph,
                                 const Placement& placement) {
  std::vector<HostEdge> edges;
  edges.reserve(graph.edge_count());
  for (const SlotId s : graph.active_slots()) {
    const NodeId hs = placement.host_of(s);
    for (const SlotId v : graph.neighbors(s)) {
      if (v > s) {
        const NodeId hv = placement.host_of(v);
        edges.emplace_back(std::min(hs, hv), std::max(hs, hv));
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

bool isomorphic_via(const std::vector<HostEdge>& before,
                    const std::vector<HostEdge>& after,
                    const std::vector<NodeId>& hosts,
                    const std::vector<NodeId>& phi) {
  PROPSIM_CHECK(hosts.size() == phi.size());
  if (before.size() != after.size()) return false;
  // det-ok(D1): keyed lookup while re-mapping edges; never iterated
  std::unordered_map<NodeId, NodeId> map;
  map.reserve(hosts.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    map.emplace(hosts[i], phi[i]);
  }
  std::vector<HostEdge> mapped;
  mapped.reserve(before.size());
  for (const HostEdge& e : before) {
    const auto a = map.find(e.first);
    const auto b = map.find(e.second);
    if (a == map.end() || b == map.end()) return false;
    mapped.emplace_back(std::min(a->second, b->second),
                        std::max(a->second, b->second));
  }
  std::sort(mapped.begin(), mapped.end());
  return mapped == after;
}

std::pair<std::vector<NodeId>, std::vector<NodeId>> placement_bijection(
    const Placement& before, const Placement& after) {
  PROPSIM_CHECK(before.slot_capacity() == after.slot_capacity());
  std::vector<NodeId> hosts;
  std::vector<NodeId> phi;
  for (SlotId s = 0; s < before.slot_capacity(); ++s) {
    if (!before.slot_bound(s)) continue;
    PROPSIM_CHECK(after.slot_bound(s));
    hosts.push_back(before.host_of(s));
    phi.push_back(after.host_of(s));
  }
  return {std::move(hosts), std::move(phi)};
}

}  // namespace propsim
