#include "overlay/placement.h"

namespace propsim {

void Placement::bind(SlotId s, NodeId h) {
  PROPSIM_CHECK(s < host_of_.size());
  PROPSIM_CHECK(h < slot_of_.size());
  PROPSIM_CHECK(!slot_bound(s));
  PROPSIM_CHECK(!host_bound(h));
  host_of_[s] = h;
  slot_of_[h] = s;
  ++bound_count_;
}

void Placement::unbind(SlotId s) {
  PROPSIM_CHECK(s < host_of_.size());
  PROPSIM_CHECK(slot_bound(s));
  slot_of_[host_of_[s]] = kInvalidSlot;
  host_of_[s] = kInvalidNode;
  PROPSIM_CHECK(bound_count_ > 0);
  --bound_count_;
}

void Placement::swap_slots(SlotId a, SlotId b) {
  PROPSIM_CHECK(a != b);
  PROPSIM_CHECK(slot_bound(a) && slot_bound(b));
  const NodeId ha = host_of_[a];
  const NodeId hb = host_of_[b];
  host_of_[a] = hb;
  host_of_[b] = ha;
  slot_of_[ha] = b;
  slot_of_[hb] = a;
}

std::vector<NodeId> Placement::bound_hosts() const {
  std::vector<NodeId> hosts;
  hosts.reserve(bound_count_);
  for (const NodeId h : host_of_) {
    if (h != kInvalidNode) hosts.push_back(h);
  }
  return hosts;
}

bool Placement::validate() const {
  std::size_t bound = 0;
  for (std::size_t s = 0; s < host_of_.size(); ++s) {
    const NodeId h = host_of_[s];
    if (h == kInvalidNode) continue;
    ++bound;
    if (h >= slot_of_.size()) return false;
    if (slot_of_[h] != static_cast<SlotId>(s)) return false;
  }
  if (bound != bound_count_) return false;
  for (std::size_t h = 0; h < slot_of_.size(); ++h) {
    const SlotId s = slot_of_[h];
    if (s == kInvalidSlot) continue;
    if (s >= host_of_.size()) return false;
    if (host_of_[s] != static_cast<NodeId>(h)) return false;
  }
  return true;
}

}  // namespace propsim
