// OverlayNetwork: a logical graph, a placement binding slots to physical
// hosts, and the physical latency oracle — everything a location-aware
// protocol needs in one place.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/indexed_priority_queue.h"
#include "common/rng.h"
#include "obs/event_bus.h"
#include "overlay/logical_graph.h"
#include "overlay/placement.h"
#include "sim/traffic.h"
#include "topology/latency_oracle.h"

namespace propsim {

class OverlayNetwork {
 public:
  /// `oracle` must outlive the overlay.
  OverlayNetwork(LogicalGraph graph, Placement placement,
                 const LatencyOracle& oracle);

  LogicalGraph& graph() { return graph_; }
  const LogicalGraph& graph() const { return graph_; }
  Placement& placement() { return placement_; }
  const Placement& placement() const { return placement_; }
  const LatencyOracle& oracle() const { return *oracle_; }
  TrafficCounter& traffic() { return traffic_; }
  const TrafficCounter& traffic() const { return traffic_; }

  /// Observability hook shared by every engine that works over this
  /// overlay (PROP, LTM, churn, lookup traffic, floods): emitted events
  /// go to `bus` (not owned, may be null, must outlive the overlay).
  void set_trace(obs::EventBus* bus) { trace_ = bus; }
  obs::EventBus* trace() const { return trace_; }

  std::size_t size() const { return graph_.active_count(); }

  /// Physical latency between the hosts occupying two slots (ms).
  double slot_latency(SlotId a, SlotId b) const {
    if (a == b) return 0.0;
    return oracle_->latency(placement_.host_of(a), placement_.host_of(b));
  }

  /// Sum of physical latencies from slot s to each logical neighbor —
  /// the per-node quantity the PROP Var formula is built from.
  double neighbor_latency_sum(SlotId s) const;

  /// Mean physical latency over all logical edges.
  double average_logical_link_latency() const;

  /// TTL-scoped random walk used by PROP to find an exchange counterpart.
  /// path[0] == from, path[1] == first_hop, |path| == ttl + 1 unless the
  /// walk gets stuck (dead end with no unvisited neighbor); walks avoid
  /// revisiting nodes, mirroring the paper's repeated-forwarding guard.
  /// Returns nullopt when the walk cannot reach the requested depth.
  /// Reuses a per-overlay epoch-stamped visited buffer (the former
  /// std::find over the path made each step O(ttl)); call from the
  /// simulation thread only.
  std::optional<std::vector<SlotId>> random_walk(SlotId from, SlotId first_hop,
                                                 std::size_t ttl,
                                                 Rng& rng) const;

  /// Caller-owned scratch for flood_latencies_into / hop_distances_into:
  /// hot-loop callers (metric kernels, event-driven lookup resolution)
  /// reuse one of these instead of reallocating the distance vector and
  /// priority queue on every call. A default-constructed instance works
  /// for any overlay; buffers size themselves on first use.
  struct FloodScratch {
    std::vector<double> dist;
    std::vector<std::uint32_t> hops;
    std::vector<SlotId> frontier;
    std::vector<SlotId> next;
    IndexedPriorityQueue<double> queue{0};
  };

  /// Weighted single-source shortest latency over *logical* edges (each
  /// edge costs the physical latency between the slot hosts, plus the
  /// receiving slot's processing delay when provided). This is the
  /// first-response latency of an idealized flood, and the routing
  /// latency oracle for unstructured lookups. Inactive/unreachable slots
  /// get +infinity. `link_ok` (optional) prunes logical edges the flood
  /// may not traverse — e.g. links crossing a partitioned stub-domain
  /// gateway; slots cut off by the filter come back +infinity too.
  using LinkFilter = std::function<bool(SlotId from, SlotId to)>;
  std::vector<double> flood_latencies(
      SlotId source, const std::vector<double>* processing_delay_ms = nullptr,
      const LinkFilter* link_ok = nullptr) const;

  /// flood_latencies into caller-owned scratch; the returned reference
  /// aliases scratch.dist and is valid until the next _into call.
  const std::vector<double>& flood_latencies_into(
      FloodScratch& scratch, SlotId source,
      const std::vector<double>* processing_delay_ms = nullptr,
      const LinkFilter* link_ok = nullptr) const;

  /// Hop-count BFS distances over logical edges, capped at max_hops
  /// (entries beyond the cap are UINT32_MAX).
  std::vector<std::uint32_t> hop_distances(SlotId source,
                                           std::uint32_t max_hops) const;

  /// hop_distances into caller-owned scratch; the returned reference
  /// aliases scratch.hops and is valid until the next _into call.
  const std::vector<std::uint32_t>& hop_distances_into(
      FloodScratch& scratch, SlotId source, std::uint32_t max_hops) const;

 private:
  LogicalGraph graph_;
  Placement placement_;
  const LatencyOracle* oracle_;
  TrafficCounter traffic_;
  obs::EventBus* trace_ = nullptr;
  // random_walk's visited marks (slot stamped == visited this walk);
  // mutable because walks are logically const queries. Sim-thread only.
  mutable std::vector<std::uint32_t> walk_stamp_;
  mutable std::uint32_t walk_epoch_ = 0;
};

/// Total latency of a hop-by-hop route under the current placement (sum
/// of the physical latencies of consecutive hops, plus the per-slot
/// processing delay of every hop receiver when provided).
double path_latency(const OverlayNetwork& net, std::span<const SlotId> path,
                    const std::vector<double>* processing_delay_ms = nullptr);

}  // namespace propsim
