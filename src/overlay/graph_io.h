// Graph persistence and visualization export.
//
// Edge-list text format (round-trippable):
//   # comment
//   nodes <N>
//   <u> <v> <weight>
//
// DOT export renders the physical network or an overlay snapshot for
// graphviz; overlay edges can be colored by their physical latency so
// mismatch is visible at a glance.
#pragma once

#include <string>

#include "overlay/overlay_network.h"
#include "topology/graph.h"

namespace propsim {

/// Serializes a graph to the edge-list format.
std::string graph_to_edge_list(const Graph& g);

/// Parses the edge-list format; check-fails on malformed input.
Graph graph_from_edge_list(const std::string& text);

/// Writes/reads edge-list files.
void save_graph(const Graph& g, const std::string& path);
Graph load_graph(const std::string& path);

/// Graphviz DOT of a physical graph (undirected; weight as edge label
/// when label_weights is set).
std::string graph_to_dot(const Graph& g, bool label_weights = false);

/// Graphviz DOT of an overlay: one node per active slot (labelled
/// "slot/host"), edges colored green→red by physical latency relative
/// to the overlay's current min/max link latency.
std::string overlay_to_dot(const OverlayNetwork& net);

}  // namespace propsim
