// Slot <-> host binding.
//
// A Placement is a partial bijection between overlay slots and physical
// hosts. PROP-G's "exchange all neighbors / swap positions" is exactly a
// transposition of this bijection, which is why the logical graph is
// provably untouched by it (Theorem 2 of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "overlay/logical_graph.h"
#include "topology/graph.h"

namespace propsim {

class Placement {
 public:
  Placement(std::size_t slot_capacity, std::size_t host_capacity)
      : host_of_(slot_capacity, kInvalidNode),
        slot_of_(host_capacity, kInvalidSlot) {}

  std::size_t slot_capacity() const { return host_of_.size(); }
  std::size_t host_capacity() const { return slot_of_.size(); }

  bool slot_bound(SlotId s) const {
    PROPSIM_DCHECK(s < host_of_.size());
    return host_of_[s] != kInvalidNode;
  }
  bool host_bound(NodeId h) const {
    PROPSIM_DCHECK(h < slot_of_.size());
    return slot_of_[h] != kInvalidSlot;
  }

  NodeId host_of(SlotId s) const {
    PROPSIM_DCHECK(slot_bound(s));
    return host_of_[s];
  }
  SlotId slot_of(NodeId h) const {
    PROPSIM_DCHECK(host_bound(h));
    return slot_of_[h];
  }

  /// Grows capacity when slots are added after construction.
  void ensure_slot_capacity(std::size_t slots) {
    if (slots > host_of_.size()) host_of_.resize(slots, kInvalidNode);
  }

  /// Binds a free slot to a free host.
  void bind(SlotId s, NodeId h);

  /// Releases a bound slot (departing peer).
  void unbind(SlotId s);

  /// Swaps the hosts of two bound slots — the PROP-G primitive.
  void swap_slots(SlotId a, SlotId b);

  /// Number of currently bound slots.
  std::size_t bound_count() const { return bound_count_; }

  /// Hosts of all bound slots, ordered by slot id.
  std::vector<NodeId> bound_hosts() const;

  /// Internal-consistency audit (bijection both ways); O(slots + hosts).
  bool validate() const;

 private:
  std::vector<NodeId> host_of_;
  std::vector<SlotId> slot_of_;
  std::size_t bound_count_ = 0;
};

}  // namespace propsim
