// Mutable logical (application-level) overlay graph.
//
// Vertices are *slots* — positions in the overlay — kept distinct from the
// physical hosts occupying them (see Placement). PROP-G permutes hosts
// across slots without touching this graph; PROP-O and the LTM baseline
// edit edges here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace propsim {

using SlotId = std::uint32_t;
constexpr SlotId kInvalidSlot = static_cast<SlotId>(-1);

class LogicalGraph {
 public:
  LogicalGraph() = default;
  explicit LogicalGraph(std::size_t slot_count)
      : adjacency_(slot_count), active_(slot_count, true),
        active_count_(slot_count) {}

  std::size_t slot_count() const { return adjacency_.size(); }
  std::size_t active_count() const { return active_count_; }
  std::size_t edge_count() const { return edge_count_; }

  bool is_active(SlotId s) const {
    PROPSIM_DCHECK(s < active_.size());
    return active_[s];
  }

  /// Adds a fresh, active, isolated slot.
  SlotId add_slot();

  /// Removes every incident edge and marks the slot inactive (a departed
  /// peer). The id is never reused.
  void deactivate_slot(SlotId s);

  /// Re-marks an inactive slot active (a rejoining peer); it starts
  /// isolated.
  void reactivate_slot(SlotId s);

  void add_edge(SlotId a, SlotId b);
  /// Removes edge a—b; requires it to exist.
  void remove_edge(SlotId a, SlotId b);
  bool has_edge(SlotId a, SlotId b) const;

  std::span<const SlotId> neighbors(SlotId s) const {
    PROPSIM_DCHECK(s < adjacency_.size());
    return adjacency_[s];
  }

  std::size_t degree(SlotId s) const { return neighbors(s).size(); }

  /// Minimum degree over active slots (the paper's delta(G), the default
  /// exchange size m for PROP-O).
  std::size_t min_active_degree() const;
  double average_active_degree() const;

  /// True if all active slots are mutually reachable.
  bool active_subgraph_connected() const;

  /// Sorted degree multiset of active slots; invariant under PROP-O.
  std::vector<std::size_t> degree_multiset() const;

  /// Active slot ids in increasing order.
  std::vector<SlotId> active_slots() const;

 private:
  void erase_directed(SlotId from, SlotId to);

  std::vector<std::vector<SlotId>> adjacency_;
  std::vector<bool> active_;
  std::size_t active_count_ = 0;
  std::size_t edge_count_ = 0;
};

}  // namespace propsim
