// Host-level isomorphism certificates for Theorem 2.
//
// General graph isomorphism is hard, but PROP-G hands us the bijection for
// free: it is the composition of the placements before and after the
// exchanges. These helpers extract host-labelled edge sets and verify the
// mapping in O(E log E).
#pragma once

#include <utility>
#include <vector>

#include "overlay/logical_graph.h"
#include "overlay/placement.h"

namespace propsim {

using HostEdge = std::pair<NodeId, NodeId>;

/// The overlay's edges labelled by the hosts currently occupying the slot
/// endpoints, canonicalized (lo, hi) and sorted.
std::vector<HostEdge> host_edges(const LogicalGraph& graph,
                                 const Placement& placement);

/// Verifies that phi (host -> host over `hosts`) maps edge set `before`
/// exactly onto edge set `after`. phi is given as parallel arrays.
bool isomorphic_via(const std::vector<HostEdge>& before,
                    const std::vector<HostEdge>& after,
                    const std::vector<NodeId>& hosts,
                    const std::vector<NodeId>& phi);

/// The canonical PROP-G bijection between two placements of the same
/// logical graph: phi(h) = host occupying (after) the slot h occupied
/// (before). Returns parallel (hosts, phi) arrays over bound hosts.
std::pair<std::vector<NodeId>, std::vector<NodeId>> placement_bijection(
    const Placement& before, const Placement& after);

}  // namespace propsim
