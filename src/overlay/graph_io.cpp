#include "overlay/graph_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace propsim {

std::string graph_to_edge_list(const Graph& g) {
  std::ostringstream os;
  os << "# propsim edge list\n";
  os << "nodes " << g.node_count() << "\n";
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const Graph::Edge& e : g.neighbors(u)) {
      if (e.to > u) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%u %u %.17g\n", u, e.to, e.weight);
        os << buf;
      }
    }
  }
  return os.str();
}

Graph graph_from_edge_list(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  Graph g;
  bool have_nodes = false;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string first;
    if (!(fields >> first)) continue;  // blank line
    if (first == "nodes") {
      std::size_t n = 0;
      PROPSIM_CHECK(static_cast<bool>(fields >> n));
      PROPSIM_CHECK(!have_nodes);
      g = Graph(n);
      have_nodes = true;
      continue;
    }
    PROPSIM_CHECK(have_nodes);
    NodeId u = 0;
    NodeId v = 0;
    double w = 0.0;
    u = static_cast<NodeId>(std::stoul(first));
    PROPSIM_CHECK(static_cast<bool>(fields >> v >> w));
    g.add_edge(u, v, w);
  }
  PROPSIM_CHECK(have_nodes);
  return g;
}

void save_graph(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  PROPSIM_CHECK(out.good());
  out << graph_to_edge_list(g);
  PROPSIM_CHECK(out.good());
}

Graph load_graph(const std::string& path) {
  std::ifstream in(path);
  PROPSIM_CHECK(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  return graph_from_edge_list(buf.str());
}

std::string graph_to_dot(const Graph& g, bool label_weights) {
  std::ostringstream os;
  os << "graph physical {\n  node [shape=point];\n";
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const Graph::Edge& e : g.neighbors(u)) {
      if (e.to <= u) continue;
      os << "  n" << u << " -- n" << e.to;
      if (label_weights) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), " [label=\"%.0f\"]", e.weight);
        os << buf;
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string overlay_to_dot(const OverlayNetwork& net) {
  const LogicalGraph& g = net.graph();
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (const SlotId s : g.active_slots()) {
    for (const SlotId t : g.neighbors(s)) {
      if (t > s) {
        const double lat = net.slot_latency(s, t);
        lo = std::min(lo, lat);
        hi = std::max(hi, lat);
      }
    }
  }
  std::ostringstream os;
  os << "graph overlay {\n  node [shape=circle fontsize=8];\n";
  for (const SlotId s : g.active_slots()) {
    os << "  s" << s << " [label=\"" << s << "/"
       << net.placement().host_of(s) << "\"];\n";
  }
  for (const SlotId s : g.active_slots()) {
    for (const SlotId t : g.neighbors(s)) {
      if (t <= s) continue;
      const double lat = net.slot_latency(s, t);
      // Hue 0.33 (green, short link) -> 0.0 (red, long link).
      const double frac = hi > lo ? (lat - lo) / (hi - lo) : 0.0;
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "  s%u -- s%u [color=\"%.3f 1.0 0.8\"];\n", s, t,
                    0.33 * (1.0 - frac));
      os << buf;
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace propsim
