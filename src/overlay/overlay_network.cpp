#include "overlay/overlay_network.h"

#include <algorithm>
#include <limits>

#include "common/indexed_priority_queue.h"

namespace propsim {

OverlayNetwork::OverlayNetwork(LogicalGraph graph, Placement placement,
                               const LatencyOracle& oracle)
    : graph_(std::move(graph)),
      placement_(std::move(placement)),
      oracle_(&oracle),
      traffic_(oracle.physical().node_count()) {
  PROPSIM_CHECK(placement_.slot_capacity() >= graph_.slot_count());
  PROPSIM_CHECK(placement_.host_capacity() ==
                oracle.physical().node_count());
}

double OverlayNetwork::neighbor_latency_sum(SlotId s) const {
  double sum = 0.0;
  for (const SlotId v : graph_.neighbors(s)) sum += slot_latency(s, v);
  return sum;
}

double OverlayNetwork::average_logical_link_latency() const {
  PROPSIM_CHECK(graph_.edge_count() > 0);
  double sum = 0.0;
  for (const SlotId s : graph_.active_slots()) {
    for (const SlotId v : graph_.neighbors(s)) {
      if (v > s) sum += slot_latency(s, v);
    }
  }
  return sum / static_cast<double>(graph_.edge_count());
}

std::optional<std::vector<SlotId>> OverlayNetwork::random_walk(
    SlotId from, SlotId first_hop, std::size_t ttl, Rng& rng) const {
  PROPSIM_CHECK(ttl >= 1);
  PROPSIM_CHECK(graph_.is_active(from));
  PROPSIM_CHECK(graph_.has_edge(from, first_hop));
  // The paper's walk message carries visited identifiers to avoid
  // repetitive forwarding. Visited membership is an epoch-stamped mark
  // per slot (stamp == current epoch <=> on the path), so each step is
  // O(degree) instead of the former O(degree * ttl) std::find scan —
  // candidate order and RNG draws are unchanged, so walks are identical.
  if (walk_stamp_.size() != graph_.slot_count()) {
    walk_stamp_.assign(graph_.slot_count(), 0);
    walk_epoch_ = 0;
  }
  if (++walk_epoch_ == 0) {
    std::fill(walk_stamp_.begin(), walk_stamp_.end(), 0u);
    walk_epoch_ = 1;
  }
  const std::uint32_t epoch = walk_epoch_;
  std::vector<SlotId> path{from, first_hop};
  path.reserve(ttl + 1);
  walk_stamp_[from] = epoch;
  walk_stamp_[first_hop] = epoch;
  std::vector<SlotId> candidates;
  while (path.size() < ttl + 1) {
    const SlotId here = path.back();
    candidates.clear();
    for (const SlotId v : graph_.neighbors(here)) {
      if (walk_stamp_[v] != epoch) candidates.push_back(v);
    }
    if (candidates.empty()) return std::nullopt;
    const SlotId chosen = rng.pick(candidates);
    walk_stamp_[chosen] = epoch;
    path.push_back(chosen);
  }
  return path;
}

std::vector<double> OverlayNetwork::flood_latencies(
    SlotId source, const std::vector<double>* processing_delay_ms,
    const LinkFilter* link_ok) const {
  FloodScratch scratch;
  flood_latencies_into(scratch, source, processing_delay_ms, link_ok);
  return std::move(scratch.dist);
}

const std::vector<double>& OverlayNetwork::flood_latencies_into(
    FloodScratch& scratch, SlotId source,
    const std::vector<double>* processing_delay_ms,
    const LinkFilter* link_ok) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  scratch.dist.assign(graph_.slot_count(), kInf);
  std::vector<double>& dist = scratch.dist;
  PROPSIM_CHECK(graph_.is_active(source));
  if (processing_delay_ms != nullptr) {
    PROPSIM_CHECK(processing_delay_ms->size() == graph_.slot_count());
  }
  // A prior run leaves the queue empty (Dijkstra pops it dry), so only a
  // capacity change forces a rebuild.
  if (scratch.queue.capacity() != graph_.slot_count()) {
    scratch.queue = IndexedPriorityQueue<double>(graph_.slot_count());
  }
  IndexedPriorityQueue<double>& queue = scratch.queue;
  dist[source] = 0.0;
  queue.push_or_update(source, 0.0);
  while (!queue.empty()) {
    const auto u = static_cast<SlotId>(queue.pop());
    for (const SlotId v : graph_.neighbors(u)) {
      if (link_ok != nullptr && !(*link_ok)(u, v)) continue;
      double cost = slot_latency(u, v);
      if (processing_delay_ms != nullptr) {
        cost += (*processing_delay_ms)[v];
      }
      const double candidate = dist[u] + cost;
      if (candidate < dist[v]) {
        dist[v] = candidate;
        queue.push_or_update(v, candidate);
      }
    }
  }
  return dist;
}

double path_latency(const OverlayNetwork& net, std::span<const SlotId> path,
                    const std::vector<double>* processing_delay_ms) {
  PROPSIM_CHECK(!path.empty());
  double total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    total += net.slot_latency(path[i - 1], path[i]);
    if (processing_delay_ms != nullptr) {
      total += (*processing_delay_ms)[path[i]];
    }
  }
  return total;
}

std::vector<std::uint32_t> OverlayNetwork::hop_distances(
    SlotId source, std::uint32_t max_hops) const {
  FloodScratch scratch;
  hop_distances_into(scratch, source, max_hops);
  return std::move(scratch.hops);
}

const std::vector<std::uint32_t>& OverlayNetwork::hop_distances_into(
    FloodScratch& scratch, SlotId source, std::uint32_t max_hops) const {
  constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
  scratch.hops.assign(graph_.slot_count(), kUnreached);
  std::vector<std::uint32_t>& dist = scratch.hops;
  PROPSIM_CHECK(graph_.is_active(source));
  dist[source] = 0;
  scratch.frontier.assign(1, source);
  std::vector<SlotId>& frontier = scratch.frontier;
  std::vector<SlotId>& next = scratch.next;
  for (std::uint32_t hop = 1; hop <= max_hops && !frontier.empty(); ++hop) {
    next.clear();
    for (const SlotId u : frontier) {
      for (const SlotId v : graph_.neighbors(u)) {
        if (dist[v] == kUnreached) {
          dist[v] = hop;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

}  // namespace propsim
