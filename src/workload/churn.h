// Poisson churn over an unstructured overlay.
//
// Joins draw a spare physical host, attach via the Gnutella rule and
// notify the PROP engine; leaves deactivate a random slot and return its
// host to the spare pool. The paper's dynamics claim — probing frequency
// spikes and re-quiesces — is driven by this process.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/prop_engine.h"
#include "faults/fault_plan.h"
#include "gnutella/gnutella.h"
#include "overlay/overlay_network.h"
#include "sim/scheduler.h"

namespace propsim {

struct ChurnParams {
  /// Mean joins (and, independently, leaves) per second.
  double join_rate_per_s = 0.1;
  double leave_rate_per_s = 0.1;
  /// Mean sudden crashes per second (no graceful handoff; survivors
  /// repair the overlay like real Gnutella peers re-dialing).
  double fail_rate_per_s = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;
  /// Leaves/failures are refused when the overlay would drop below this
  /// size.
  std::size_t min_population = 8;
};

class ChurnProcess : public FailureExecutor {
 public:
  /// `engine` may be null (churn without PROP, for baselines). `spares`
  /// seeds the pool of joinable hosts; departed peers' hosts are reused.
  ChurnProcess(OverlayNetwork& net, Scheduler& sim, PropEngine* engine,
               const GnutellaConfig& overlay_config,
               const ChurnParams& params, std::vector<NodeId> spares,
               std::uint64_t seed);

  /// Schedules the first join and leave arrivals (clamped to end_s like
  /// every later arrival).
  void start();

  /// Attaches a fault injector (not owned, may be null): survivor
  /// repair re-dials become real messages that can be lost, so repair
  /// slows down under loss and stalls across a partition.
  void set_faults(FaultInjector* faults) { faults_ = faults; }

  std::uint64_t joins() const { return joins_; }
  std::uint64_t leaves() const { return leaves_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t repair_links() const { return repair_links_; }

  /// One forced join/leave/crash (tests).
  bool do_join();
  bool do_leave();
  /// Sudden failure: the victim vanishes with no handoff; its former
  /// neighbors re-dial replacement links (degree floor restored, and
  /// any partition reconnected), mirroring Gnutella's keepalive repair.
  bool do_fail();

 private:
  /// FailureExecutor: crashes a specific slot (fault-injection path):
  /// same survivor repair as do_fail, but the victim is chosen by the
  /// caller. Returns false when the slot is inactive or the population
  /// floor refuses. Private on purpose — callers go through the
  /// FailureExecutor interface (faults/failure_executor.h), never
  /// directly.
  bool fail_slot(SlotId victim) override;


  void schedule_join();
  void schedule_leave();
  void schedule_fail();
  void add_repair_edge(SlotId a, SlotId b);

  OverlayNetwork& net_;
  Scheduler& sim_;
  PropEngine* engine_;
  FaultInjector* faults_ = nullptr;
  GnutellaConfig overlay_config_;
  ChurnParams params_;
  std::vector<NodeId> spares_;
  Rng rng_;
  std::uint64_t joins_ = 0;
  std::uint64_t leaves_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t repair_links_ = 0;
};

}  // namespace propsim
