#include "workload/lookup_traffic.h"

#include <cmath>

namespace propsim {

LookupTrafficProcess::LookupTrafficProcess(OverlayNetwork& net,
                                           Scheduler& sim,
                                           const LookupTrafficParams& params,
                                           ResolveFn resolve,
                                           std::uint64_t seed)
    : net_(net),
      sim_(sim),
      params_(params),
      resolve_(std::move(resolve)),
      rng_(seed) {
  PROPSIM_CHECK(params_.rate_per_s > 0.0);
  PROPSIM_CHECK(params_.end_s > params_.start_s);
  PROPSIM_CHECK(params_.window_s > 0.0);
  PROPSIM_CHECK(resolve_ != nullptr);
}

void LookupTrafficProcess::start() {
  sim_.schedule_at(params_.start_s +
                       rng_.exponential(1.0 / params_.rate_per_s),
                   [this] { issue_one(); });
  for (double t = params_.start_s + params_.window_s;
       t <= params_.end_s + 1e-9; t += params_.window_s) {
    sim_.schedule_at(t, [this] { close_window(); });
  }
}

void LookupTrafficProcess::schedule_next() {
  const double next =
      sim_.now() + rng_.exponential(1.0 / params_.rate_per_s);
  if (next > params_.end_s) return;
  sim_.schedule_at(next, [this] { issue_one(); });
}

void LookupTrafficProcess::issue_one() {
  schedule_next();
  const auto slots = net_.graph().active_slots();
  if (slots.size() < 2) return;
  QueryPair q;
  q.src = slots[static_cast<std::size_t>(rng_.uniform(slots.size()))];
  do {
    q.dst = slots[static_cast<std::size_t>(rng_.uniform(slots.size()))];
  } while (q.dst == q.src);
  ++issued_;
  const double latency = resolve_(q);
  if (!std::isfinite(latency)) {
    ++unreachable_;
    if (obs::EventBus* bus = net_.trace()) {
      bus->emit(obs::TraceEventKind::kLookup, q.src, q.dst, 0.0,
                /*detail: unreachable=*/1);
    }
    return;
  }
  if (obs::EventBus* bus = net_.trace()) {
    bus->emit(obs::TraceEventKind::kLookup, q.src, q.dst, latency);
  }
  window_.add(latency);
  latencies_.add(latency);
}

void LookupTrafficProcess::close_window() {
  if (window_.count() > 0) {
    observed_.record(sim_.now(), window_.mean());
    window_.reset();
  }
}

}  // namespace propsim
