#include "workload/heterogeneity.h"

#include <algorithm>

#include "common/check.h"

namespace propsim {
namespace {

BimodalDelays init_all_slow(const OverlayNetwork& net,
                            const BimodalConfig& config) {
  BimodalDelays out;
  const std::size_t hosts = net.oracle().physical().node_count();
  out.host_delay_ms.assign(hosts, config.slow_delay_ms);
  out.host_fast.assign(hosts, false);
  return out;
}

void mark_fast(BimodalDelays& delays, NodeId host,
               const BimodalConfig& config) {
  if (delays.host_fast[host]) return;
  delays.host_fast[host] = true;
  delays.host_delay_ms[host] = config.fast_delay_ms;
  ++delays.fast_count;
}

}  // namespace

std::vector<double> BimodalDelays::slot_delays(
    const OverlayNetwork& net) const {
  std::vector<double> out(net.graph().slot_count(), 0.0);
  // Unbound slots keep a slow default so the vector is always usable.
  double slow = 0.0;
  for (std::size_t h = 0; h < host_delay_ms.size(); ++h) {
    if (!host_fast[h]) {
      slow = host_delay_ms[h];
      break;
    }
  }
  for (SlotId s = 0; s < out.size(); ++s) {
    out[s] = net.placement().slot_bound(s)
                 ? host_delay_ms[net.placement().host_of(s)]
                 : slow;
  }
  return out;
}

std::vector<bool> BimodalDelays::slot_fast(const OverlayNetwork& net) const {
  std::vector<bool> out(net.graph().slot_count(), false);
  for (SlotId s = 0; s < out.size(); ++s) {
    if (net.placement().slot_bound(s)) {
      out[s] = host_fast[net.placement().host_of(s)];
    }
  }
  return out;
}

BimodalDelays make_bimodal_delays(const OverlayNetwork& net,
                                  const BimodalConfig& config, Rng& rng) {
  PROPSIM_CHECK(config.fast_fraction > 0.0 && config.fast_fraction < 1.0);
  const auto hosts = net.placement().bound_hosts();
  PROPSIM_CHECK(hosts.size() >= 2);
  BimodalDelays out = init_all_slow(net, config);
  for (const NodeId h : hosts) {
    if (rng.bernoulli(config.fast_fraction)) mark_fast(out, h, config);
  }
  // Degenerate draws would make the biased-lookup sweep meaningless.
  if (out.fast_count == 0) {
    mark_fast(out, hosts.front(), config);
  } else if (out.fast_count == hosts.size()) {
    out.host_fast[hosts.front()] = false;
    out.host_delay_ms[hosts.front()] = config.slow_delay_ms;
    --out.fast_count;
  }
  return out;
}

BimodalDelays make_bimodal_delays_by_degree(const OverlayNetwork& net,
                                            const BimodalConfig& config,
                                            Rng& rng) {
  PROPSIM_CHECK(config.fast_fraction > 0.0 && config.fast_fraction < 1.0);
  const LogicalGraph& graph = net.graph();
  PROPSIM_CHECK(graph.active_count() >= 2);
  const auto slots = graph.active_slots();

  // Sort active slots by degree descending; random tiebreak spreads the
  // fast set across equal-degree peers.
  struct Keyed {
    SlotId slot;
    std::size_t degree;
    std::uint64_t tiebreak;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(slots.size());
  for (const SlotId s : slots) {
    keyed.push_back(Keyed{s, graph.degree(s), rng.next()});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.degree != b.degree) return a.degree > b.degree;
    return a.tiebreak < b.tiebreak;
  });

  std::size_t fast_count = static_cast<std::size_t>(
      config.fast_fraction * static_cast<double>(slots.size()));
  fast_count = std::clamp<std::size_t>(fast_count, 1, slots.size() - 1);

  BimodalDelays out = init_all_slow(net, config);
  for (std::size_t i = 0; i < fast_count; ++i) {
    mark_fast(out, net.placement().host_of(keyed[i].slot), config);
  }
  return out;
}

}  // namespace propsim
