#include "workload/host_selection.h"

namespace propsim {

std::vector<NodeId> select_stub_hosts(const TransitStubTopology& topo,
                                      std::size_t count, Rng& rng) {
  PROPSIM_CHECK(count <= topo.stub_nodes.size());
  const auto indices = rng.sample_indices(topo.stub_nodes.size(), count);
  std::vector<NodeId> hosts;
  hosts.reserve(count);
  for (const std::size_t i : indices) hosts.push_back(topo.stub_nodes[i]);
  return hosts;
}

std::pair<std::vector<NodeId>, std::vector<NodeId>>
select_stub_hosts_with_spares(const TransitStubTopology& topo,
                              std::size_t count, std::size_t spare_count,
                              Rng& rng) {
  PROPSIM_CHECK(count + spare_count <= topo.stub_nodes.size());
  const auto indices =
      rng.sample_indices(topo.stub_nodes.size(), count + spare_count);
  std::vector<NodeId> hosts;
  std::vector<NodeId> spares;
  hosts.reserve(count);
  spares.reserve(spare_count);
  for (std::size_t k = 0; k < indices.size(); ++k) {
    if (k < count) {
      hosts.push_back(topo.stub_nodes[indices[k]]);
    } else {
      spares.push_back(topo.stub_nodes[indices[k]]);
    }
  }
  return {std::move(hosts), std::move(spares)};
}

std::vector<NodeId> select_landmarks(const TransitStubTopology& topo,
                                     std::size_t count, Rng& rng) {
  PROPSIM_CHECK(count <= topo.transit_nodes.size());
  const auto indices = rng.sample_indices(topo.transit_nodes.size(), count);
  std::vector<NodeId> landmarks;
  landmarks.reserve(count);
  for (const std::size_t i : indices) {
    landmarks.push_back(topo.transit_nodes[i]);
  }
  return landmarks;
}

}  // namespace propsim
