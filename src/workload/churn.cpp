#include "workload/churn.h"

#include <algorithm>

namespace propsim {

ChurnProcess::ChurnProcess(OverlayNetwork& net, Scheduler& sim,
                           PropEngine* engine,
                           const GnutellaConfig& overlay_config,
                           const ChurnParams& params,
                           std::vector<NodeId> spares, std::uint64_t seed)
    : net_(net),
      sim_(sim),
      engine_(engine),
      overlay_config_(overlay_config),
      params_(params),
      spares_(std::move(spares)),
      rng_(seed) {
  PROPSIM_CHECK(params_.end_s >= params_.start_s);
}

void ChurnProcess::start() {
  // The first arrival obeys the same end_s clamp as every rescheduled
  // one; without it a short churn window could fire one stray event
  // past its end.
  if (params_.join_rate_per_s > 0.0) {
    const double first =
        params_.start_s + rng_.exponential(1.0 / params_.join_rate_per_s);
    if (first <= params_.end_s) {
      sim_.schedule_at(first, [this] {
        do_join();
        schedule_join();
      });
    }
  }
  if (params_.leave_rate_per_s > 0.0) {
    const double first =
        params_.start_s + rng_.exponential(1.0 / params_.leave_rate_per_s);
    if (first <= params_.end_s) {
      sim_.schedule_at(first, [this] {
        do_leave();
        schedule_leave();
      });
    }
  }
  if (params_.fail_rate_per_s > 0.0) {
    const double first =
        params_.start_s + rng_.exponential(1.0 / params_.fail_rate_per_s);
    if (first <= params_.end_s) {
      sim_.schedule_at(first, [this] {
        do_fail();
        schedule_fail();
      });
    }
  }
}

void ChurnProcess::schedule_fail() {
  const double next =
      sim_.now() + rng_.exponential(1.0 / params_.fail_rate_per_s);
  if (next > params_.end_s) return;
  sim_.schedule_at(next, [this] {
    do_fail();
    schedule_fail();
  });
}

void ChurnProcess::schedule_join() {
  const double next =
      sim_.now() + rng_.exponential(1.0 / params_.join_rate_per_s);
  if (next > params_.end_s) return;
  sim_.schedule_at(next, [this] {
    do_join();
    schedule_join();
  });
}

void ChurnProcess::schedule_leave() {
  const double next =
      sim_.now() + rng_.exponential(1.0 / params_.leave_rate_per_s);
  if (next > params_.end_s) return;
  sim_.schedule_at(next, [this] {
    do_leave();
    schedule_leave();
  });
}

bool ChurnProcess::do_join() {
  if (spares_.empty()) return false;
  const NodeId host = spares_.back();
  spares_.pop_back();
  const SlotId joiner = gnutella_join(net_, overlay_config_, host, rng_);
  if (engine_ != nullptr) {
    const auto neigh = net_.graph().neighbors(joiner);
    engine_->node_joined(joiner,
                         std::vector<SlotId>(neigh.begin(), neigh.end()));
  }
  ++joins_;
  return true;
}

bool ChurnProcess::do_leave() {
  const auto actives = net_.graph().active_slots();
  if (actives.size() <= params_.min_population) return false;
  // Uniformly random departure, retried a few times if the victim is a
  // cut vertex whose removal would partition the overlay (real peers can
  // vanish arbitrarily, but the paper's protocols assume the overlay's
  // own repair keeps it connected; retrying models that repair without
  // building a full join-stabilization pipeline — see DESIGN.md).
  for (int attempt = 0; attempt < 8; ++attempt) {
    const SlotId victim =
        actives[static_cast<std::size_t>(rng_.uniform(actives.size()))];
    const auto neigh = net_.graph().neighbors(victim);
    const std::vector<SlotId> former(neigh.begin(), neigh.end());
    net_.graph().deactivate_slot(victim);
    if (!net_.graph().active_subgraph_connected()) {
      // Roll back: reconnect exactly as before.
      net_.graph().reactivate_slot(victim);
      for (const SlotId nb : former) net_.graph().add_edge(victim, nb);
      continue;
    }
    if (engine_ != nullptr) engine_->node_left(victim, former);
    const NodeId host = net_.placement().host_of(victim);
    spares_.push_back(host);
    net_.placement().unbind(victim);
    ++leaves_;
    if (obs::EventBus* bus = net_.trace()) {
      bus->emit(obs::TraceEventKind::kLeave, victim, host, 0.0,
                former.size());
    }
    return true;
  }
  return false;
}

}  // namespace propsim

namespace propsim {

void ChurnProcess::add_repair_edge(SlotId a, SlotId b) {
  net_.graph().add_edge(a, b);
  ++repair_links_;
  if (engine_ != nullptr) engine_->edge_added(a, b);
}

bool ChurnProcess::do_fail() {
  const auto actives = net_.graph().active_slots();
  if (actives.size() <= params_.min_population) return false;
  const SlotId victim =
      actives[static_cast<std::size_t>(rng_.uniform(actives.size()))];
  return fail_slot(victim);
}

bool ChurnProcess::fail_slot(SlotId victim) {
  if (!net_.graph().is_active(victim)) return false;
  if (net_.graph().active_slots().size() <= params_.min_population) {
    return false;
  }
  const auto neigh = net_.graph().neighbors(victim);
  const std::vector<SlotId> former(neigh.begin(), neigh.end());

  // The crash itself: no handoff, edges just vanish.
  net_.graph().deactivate_slot(victim);
  if (engine_ != nullptr) engine_->node_left(victim, former);
  const NodeId host = net_.placement().host_of(victim);
  spares_.push_back(host);
  net_.placement().unbind(victim);
  ++failures_;
  if (obs::EventBus* bus = net_.trace()) {
    bus->emit(obs::TraceEventKind::kFail, victim, host, 0.0, former.size());
  }

  // Survivor repair, as deployed unstructured peers do on keepalive
  // timeout: every orphaned neighbor below the attach floor re-dials a
  // random peer it is not yet connected to. Under fault injection each
  // dial is a real message — a lost one burns an attempt, so repair
  // slows down with loss and cannot cross an open partition.
  const auto pool = net_.graph().active_slots();
  for (const SlotId orphan : former) {
    std::size_t attempts = 0;
    while (net_.graph().degree(orphan) < overlay_config_.attach_links &&
           attempts < 64) {
      ++attempts;
      const SlotId peer =
          pool[static_cast<std::size_t>(rng_.uniform(pool.size()))];
      if (peer == orphan || net_.graph().has_edge(orphan, peer)) continue;
      if (faults_ != nullptr &&
          !faults_->deliver(net_.placement().host_of(orphan),
                            net_.placement().host_of(peer))) {
        continue;
      }
      add_repair_edge(orphan, peer);
    }
  }

  // Random re-dials almost always restore connectivity; when they do
  // not (the victim was a cut vertex toward a small component), stitch
  // each stray component back deterministically.
  if (!net_.graph().active_subgraph_connected()) {
    std::vector<SlotId> component(net_.graph().slot_count(), kInvalidSlot);
    std::vector<SlotId> stack;
    std::vector<SlotId> roots;
    for (const SlotId s : pool) {
      if (component[s] != kInvalidSlot) continue;
      roots.push_back(s);
      stack.push_back(s);
      component[s] = s;
      while (!stack.empty()) {
        const SlotId u = stack.back();
        stack.pop_back();
        for (const SlotId v : net_.graph().neighbors(u)) {
          if (component[v] == kInvalidSlot) {
            component[v] = s;
            stack.push_back(v);
          }
        }
      }
    }
    for (std::size_t r = 1; r < roots.size(); ++r) {
      add_repair_edge(roots[r], roots[0]);
    }
  }
  return true;
}

}  // namespace propsim
