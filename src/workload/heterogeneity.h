// Node heterogeneity: the bimodal processing-delay model of the paper's
// Section 5.3 (fast nodes vs slow nodes, after Dabek et al.).
//
// Capability is a property of the physical peer (host), not of its
// overlay position: when PROP-G swaps two peers' positions, each keeps
// its own processing speed. Delays are therefore stored per host and
// materialized into per-slot vectors under the overlay's *current*
// placement right before each measurement.
#pragma once

#include <vector>

#include "common/rng.h"
#include "overlay/overlay_network.h"

namespace propsim {

struct BimodalConfig {
  double fast_fraction = 0.2;
  double fast_delay_ms = 10.0;
  double slow_delay_ms = 100.0;
};

struct BimodalDelays {
  /// Indexed by physical host id; hosts outside the overlay are slow.
  std::vector<double> host_delay_ms;
  std::vector<bool> host_fast;
  std::size_t fast_count = 0;

  /// Per-slot processing delays under the overlay's current placement
  /// (inactive/unbound slots get the slow delay).
  std::vector<double> slot_delays(const OverlayNetwork& net) const;
  /// Per-slot fast flags under the current placement.
  std::vector<bool> slot_fast(const OverlayNetwork& net) const;
};

/// I.i.d. assignment over the overlay's bound hosts with the configured
/// fraction (coerced to at least one host of each kind).
BimodalDelays make_bimodal_delays(const OverlayNetwork& net,
                                  const BimodalConfig& config, Rng& rng);

/// Degree-correlated assignment: the hosts occupying the top
/// fast_fraction of active slots *by overlay degree* are fast (ties
/// broken randomly). This is the paper's model — "powerful, reliable
/// nodes always provide more services and inherently have more
/// connections" — and is what makes degree preservation (PROP-O) matter
/// in the Figure 7 experiment.
BimodalDelays make_bimodal_delays_by_degree(const OverlayNetwork& net,
                                            const BimodalConfig& config,
                                            Rng& rng);

}  // namespace propsim
