#include "workload/lookups.h"

namespace propsim {

std::vector<QueryPair> uniform_queries(const LogicalGraph& graph,
                                       std::size_t count, Rng& rng) {
  return sample_query_pairs(graph, count, rng);
}

std::vector<QueryPair> biased_queries(const LogicalGraph& graph,
                                      const std::vector<bool>& fast,
                                      double fraction_fast_dest,
                                      std::size_t count, Rng& rng) {
  PROPSIM_CHECK(fast.size() == graph.slot_count());
  PROPSIM_CHECK(fraction_fast_dest >= 0.0 && fraction_fast_dest <= 1.0);
  const auto slots = graph.active_slots();
  PROPSIM_CHECK(slots.size() >= 2);

  std::vector<SlotId> fast_slots;
  std::vector<SlotId> slow_slots;
  for (const SlotId s : slots) {
    (fast[s] ? fast_slots : slow_slots).push_back(s);
  }
  PROPSIM_CHECK(!fast_slots.empty() && !slow_slots.empty());

  std::vector<QueryPair> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const bool to_fast = rng.bernoulli(fraction_fast_dest);
    const auto& pool = to_fast ? fast_slots : slow_slots;
    SlotId dst = pool[static_cast<std::size_t>(rng.uniform(pool.size()))];
    SlotId src;
    do {
      src = slots[static_cast<std::size_t>(rng.uniform(slots.size()))];
    } while (src == dst);
    queries.push_back(QueryPair{src, dst});
  }
  return queries;
}

}  // namespace propsim
