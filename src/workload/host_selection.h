// Overlay host selection from the physical topology.
//
// The paper selects overlay peers from the generated physical network;
// end systems live in stub domains, so selection defaults to stub nodes.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "topology/transit_stub.h"

namespace propsim {

/// `count` distinct stub hosts drawn uniformly (count <= stub node
/// count).
std::vector<NodeId> select_stub_hosts(const TransitStubTopology& topo,
                                      std::size_t count, Rng& rng);

/// As above, but also returns `spare_count` additional distinct stub
/// hosts for churn joins. First vector has `count` entries, second has
/// `spare_count`.
std::pair<std::vector<NodeId>, std::vector<NodeId>> select_stub_hosts_with_spares(
    const TransitStubTopology& topo, std::size_t count,
    std::size_t spare_count, Rng& rng);

/// Uniformly chosen transit hosts to serve as PIS landmarks.
std::vector<NodeId> select_landmarks(const TransitStubTopology& topo,
                                     std::size_t count, Rng& rng);

}  // namespace propsim
