// Lookup workload generators.
#pragma once

#include <vector>

#include "common/rng.h"
#include "metrics/metrics.h"

namespace propsim {

/// Uniform (src != dst) queries over the active slots.
std::vector<QueryPair> uniform_queries(const LogicalGraph& graph,
                                       std::size_t count, Rng& rng);

/// Heterogeneity workload (Figure 7): each query's destination is a fast
/// node with probability `fraction_fast_dest`, a slow node otherwise;
/// sources are uniform. Models "the destination of lookup operations
/// will be concentrated on the powerful nodes".
std::vector<QueryPair> biased_queries(const LogicalGraph& graph,
                                      const std::vector<bool>& fast,
                                      double fraction_fast_dest,
                                      std::size_t count, Rng& rng);

}  // namespace propsim
