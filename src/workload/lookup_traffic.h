// Event-driven lookup traffic: lookups issued as Poisson arrivals on the
// simulated clock, each resolved against the overlay *as it is at that
// instant* — the closest model of the paper's "average lookup latency
// derived from 10,000 lookup operations ... varied according to time".
//
// Snapshot sampling (metrics/convergence.h) asks "how good is the
// overlay right now?" at fixed times; this process asks "what did the
// users actually experience?", including every transient the optimizer
// and churn produce between samples.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/stats.h"
#include "common/timeseries.h"
#include "metrics/metrics.h"
#include "overlay/overlay_network.h"
#include "sim/scheduler.h"

namespace propsim {

struct LookupTrafficParams {
  /// Mean lookup arrivals per second across the whole overlay.
  double rate_per_s = 10.0;
  double start_s = 0.0;
  double end_s = 3600.0;
  /// Completed-lookup latencies are averaged per window of this length
  /// into the observed time series.
  double window_s = 240.0;
};

class LookupTrafficProcess {
 public:
  /// Resolves one query to its latency in ms under the current overlay
  /// state (e.g. a flood first-response or a DHT route). Infinite
  /// results are counted as unreachable, not averaged.
  using ResolveFn = std::function<double(const QueryPair&)>;

  /// `net` provides the live membership for source/destination draws.
  LookupTrafficProcess(OverlayNetwork& net, Scheduler& sim,
                       const LookupTrafficParams& params, ResolveFn resolve,
                       std::uint64_t seed);

  /// Schedules the first arrival and the window-close events.
  void start();

  std::uint64_t issued() const { return issued_; }
  std::uint64_t unreachable() const { return unreachable_; }
  /// Windowed mean experienced latency (one point per closed window
  /// that saw at least one lookup).
  const TimeSeries& observed() const { return observed_; }
  /// All completed-lookup latencies (distribution queries: p50/p95/...).
  const Samples& latencies() const { return latencies_; }

 private:
  void schedule_next();
  void issue_one();
  void close_window();

  OverlayNetwork& net_;
  Scheduler& sim_;
  LookupTrafficParams params_;
  ResolveFn resolve_;
  Rng rng_;
  std::uint64_t issued_ = 0;
  std::uint64_t unreachable_ = 0;
  RunningStats window_;
  TimeSeries observed_{"observed_lookup_ms"};
  Samples latencies_;
};

}  // namespace propsim
