#include "chord/dynamic_chord.h"

#include <algorithm>

#include "common/check.h"

namespace propsim {

DynamicChord::DynamicChord(const DynamicChordConfig& config)
    : config_(config) {
  PROPSIM_CHECK(config_.successor_list >= 1);
  PROPSIM_CHECK(config_.finger_bits >= 1 && config_.finger_bits <= 64);
}

SlotId DynamicChord::new_slot(ChordId id) {
  for (std::size_t s = 0; s < ids_.size(); ++s) {
    PROPSIM_CHECK(!active_[s] || ids_[s] != id);
  }
  ids_.push_back(id);
  active_.push_back(true);
  pred_.push_back(kInvalidSlot);
  succ_.emplace_back();
  finger_.emplace_back(config_.finger_bits, kInvalidSlot);
  next_finger_.push_back(0);
  ++active_count_;
  return static_cast<SlotId>(ids_.size() - 1);
}

SlotId DynamicChord::bootstrap(ChordId id) {
  PROPSIM_CHECK(active_count_ == 0);
  const SlotId s = new_slot(id);
  succ_[s].assign(1, s);  // alone: own successor
  pred_[s] = s;
  return s;
}

SlotId DynamicChord::join(ChordId id, SlotId gateway) {
  PROPSIM_CHECK(is_active(gateway));
  const LookupResult res = lookup(gateway, id);
  PROPSIM_CHECK(res.ok);
  const SlotId successor_slot = res.path.back();
  const SlotId s = new_slot(id);
  succ_[s].assign(1, successor_slot);
  pred_[s] = kInvalidSlot;
  refresh_successor_list(s);
  // The rest (successor's predecessor pointer, neighbors' lists, the
  // fingers) is repaired by subsequent stabilization rounds, exactly as
  // in the protocol.
  return s;
}

void DynamicChord::leave(SlotId s) {
  PROPSIM_CHECK(is_active(s));
  // Graceful: point the predecessor at our successor and vice versa.
  const SlotId succ0 = first_live_successor(s);
  const SlotId p = pred_[s];
  if (p != kInvalidSlot && p != s && active_[p]) {
    auto& plist = succ_[p];
    std::replace(plist.begin(), plist.end(), s, succ0);
  }
  if (succ0 != s && pred_[succ0] == s) {
    pred_[succ0] = (p != kInvalidSlot && p != s && active_[p])
                       ? p
                       : kInvalidSlot;
  }
  active_[s] = false;
  --active_count_;
}

void DynamicChord::fail(SlotId s) {
  PROPSIM_CHECK(is_active(s));
  active_[s] = false;  // everyone else's pointers silently go stale
  --active_count_;
}

SlotId DynamicChord::first_live_successor(SlotId s) const {
  for (const SlotId t : succ_[s]) {
    if (t < active_.size() && active_[t]) return t;
  }
  // Total successor-list wipeout (more simultaneous failures than the
  // list covers): fall back to self; stabilization cannot repair this
  // node without external help, mirroring real Chord.
  return s;
}

SlotId DynamicChord::successor(SlotId s) const {
  PROPSIM_CHECK(is_active(s));
  return first_live_successor(s);
}

std::optional<SlotId> DynamicChord::predecessor(SlotId s) const {
  PROPSIM_CHECK(is_active(s));
  const SlotId p = pred_[s];
  if (p == kInvalidSlot || !active_[p]) return std::nullopt;
  return p;
}

void DynamicChord::refresh_successor_list(SlotId s) {
  const SlotId succ0 = first_live_successor(s);
  std::vector<SlotId> list{succ0};
  // Extend with the successor's list (the remote read every stabilize
  // round performs).
  if (succ0 != s) {
    for (const SlotId t : succ_[succ0]) {
      if (list.size() >= config_.successor_list) break;
      if (t == s) break;  // wrapped all the way around
      if (active_[t] && std::find(list.begin(), list.end(), t) == list.end()) {
        list.push_back(t);
      }
    }
  }
  succ_[s] = std::move(list);
}

void DynamicChord::notify(SlotId target, SlotId candidate) {
  if (target == candidate) return;
  const SlotId p = pred_[target];
  if (p == kInvalidSlot || !active_[p] ||
      in_interval_oo(ids_[p], ids_[target], ids_[candidate])) {
    pred_[target] = candidate;
  }
}

void DynamicChord::stabilize(SlotId s) {
  PROPSIM_CHECK(is_active(s));
  SlotId succ0 = first_live_successor(s);
  if (succ0 == s) {
    // Self-successor view: either a genuine singleton, or the node that
    // bootstrapped the ring before anyone notified it. In the latter
    // case the predecessor (set by a joiner's notify) re-closes the
    // ring — without this step a two-node ring can never form.
    const SlotId p = pred_[s];
    if (p != kInvalidSlot && p != s && p < active_.size() && active_[p]) {
      succ0 = p;
    } else {
      succ_[s].assign(1, s);
      return;
    }
  }
  // The round opens with a remote read of succ0's state; when a lossy
  // network drops it, this round learns nothing and stale entries wait
  // for the next one.
  if (filter_ && !filter_(s, succ0)) return;
  // Adopt succ0's predecessor when it sits between us and succ0.
  const SlotId x = pred_[succ0];
  if (x != kInvalidSlot && x < active_.size() && active_[x] && x != s &&
      in_interval_oo(ids_[s], ids_[succ0], ids_[x])) {
    succ0 = x;
  }
  succ_[s].erase(succ_[s].begin(),
                 std::find(succ_[s].begin(), succ_[s].end(), succ0));
  if (succ_[s].empty() || succ_[s].front() != succ0) {
    succ_[s].insert(succ_[s].begin(), succ0);
  }
  notify(succ0, s);
  refresh_successor_list(s);
}

void DynamicChord::fix_finger(SlotId s) {
  PROPSIM_CHECK(is_active(s));
  const std::size_t k = next_finger_[s];
  next_finger_[s] = (k + 1) % config_.finger_bits;
  // The refresh lookup leaves s toward its ring successor; dropping
  // that first message skips the refresh (the finger keeps its stale
  // value, still round-robin advanced so the others get their turn).
  if (filter_ && !filter_(s, first_live_successor(s))) return;
  const ChordId point = ids_[s] + (ChordId{1} << k);
  const LookupResult res = lookup(s, point);
  if (res.ok) finger_[s][k] = res.path.back();
}

void DynamicChord::stabilize_all(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) {
    for (SlotId s = 0; s < ids_.size(); ++s) {
      if (!active_[s]) continue;
      stabilize(s);
      for (std::size_t k = 0; k < config_.finger_bits; ++k) {
        fix_finger(s);
      }
    }
  }
}

SlotId DynamicChord::closest_preceding(SlotId s, ChordId key) const {
  SlotId best = kInvalidSlot;
  ChordId best_dist = 0;
  auto consider = [&](SlotId cand) {
    if (cand == kInvalidSlot || cand == s) return;
    if (cand >= active_.size() || !active_[cand]) return;  // stale entry
    if (!in_interval_oo(ids_[s], key, ids_[cand])) return;
    const ChordId dist = clockwise_distance(ids_[cand], key);
    if (best == kInvalidSlot || dist < best_dist) {
      best = cand;
      best_dist = dist;
    }
  };
  for (const SlotId f : finger_[s]) consider(f);
  for (const SlotId t : succ_[s]) consider(t);
  return best;
}

DynamicChord::LookupResult DynamicChord::lookup(SlotId source,
                                                ChordId key) const {
  PROPSIM_CHECK(is_active(source));
  LookupResult res;
  res.path.push_back(source);
  SlotId here = source;
  for (std::size_t guard = 0; guard < 512; ++guard) {
    const SlotId succ0 = first_live_successor(here);
    if (succ0 == here) {
      // Alone in its own view (fresh ring or wiped-out successor list):
      // the node is the owner of everything it can see.
      res.ok = true;
      return res;
    }
    if (in_interval_oc(ids_[here], ids_[succ0], key)) {
      res.path.push_back(succ0);
      res.ok = true;
      return res;
    }
    const SlotId next = closest_preceding(here, key);
    if (next == kInvalidSlot) {
      // No live preceding entry: step to the successor; progress is
      // slower (O(n) worst case) but correct.
      res.path.push_back(succ0);
      here = succ0;
      continue;
    }
    res.path.push_back(next);
    here = next;
  }
  res.ok = false;  // churn storm: give up, caller retries later
  return res;
}

SlotId DynamicChord::true_owner(ChordId key) const {
  PROPSIM_CHECK(active_count_ > 0);
  SlotId best = kInvalidSlot;
  ChordId best_dist = 0;
  for (SlotId s = 0; s < ids_.size(); ++s) {
    if (!active_[s]) continue;
    const ChordId dist = clockwise_distance(key, ids_[s]);
    if (best == kInvalidSlot || dist < best_dist) {
      best = s;
      best_dist = dist;
    }
  }
  return best;
}

LogicalGraph DynamicChord::to_logical_graph() const {
  LogicalGraph g(ids_.size());
  for (SlotId s = 0; s < ids_.size(); ++s) {
    if (!active_[s]) g.deactivate_slot(s);
  }
  auto link = [&](SlotId a, SlotId b) {
    if (b == kInvalidSlot || a == b) return;
    if (b >= active_.size() || !active_[b] || !active_[a]) return;
    if (!g.has_edge(a, b)) g.add_edge(a, b);
  };
  for (SlotId s = 0; s < ids_.size(); ++s) {
    if (!active_[s]) continue;
    for (const SlotId t : succ_[s]) link(s, t);
    for (const SlotId f : finger_[s]) link(s, f);
    if (pred_[s] != kInvalidSlot) link(s, pred_[s]);
  }
  return g;
}

bool DynamicChord::ring_consistent() const {
  for (SlotId s = 0; s < ids_.size(); ++s) {
    if (!active_[s]) continue;
    // True ring successor: the active slot with the smallest clockwise
    // distance strictly after s.
    SlotId expected = kInvalidSlot;
    ChordId best = 0;
    for (SlotId t = 0; t < ids_.size(); ++t) {
      if (!active_[t] || t == s) continue;
      const ChordId d = clockwise_distance(ids_[s], ids_[t]);
      if (expected == kInvalidSlot || d < best) {
        expected = t;
        best = d;
      }
    }
    if (expected == kInvalidSlot) return active_count_ == 1;
    if (first_live_successor(s) != expected) return false;
  }
  return true;
}

}  // namespace propsim
