// Chord identifier-space arithmetic (64-bit ring, modular intervals).
#pragma once

#include <cstdint>

namespace propsim {

using ChordId = std::uint64_t;

/// x in (a, b] on the ring. When a == b the interval is the full ring.
constexpr bool in_interval_oc(ChordId a, ChordId b, ChordId x) {
  if (a == b) return true;
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;
}

/// x in (a, b) on the ring. When a == b the interval is the ring minus a.
constexpr bool in_interval_oo(ChordId a, ChordId b, ChordId x) {
  if (a == b) return x != a;
  if (a < b) return x > a && x < b;
  return x > a || x < b;
}

/// Clockwise distance from a to b (how far forward b lies from a).
constexpr ChordId clockwise_distance(ChordId a, ChordId b) {
  return b - a;  // modular arithmetic wraps exactly as required
}

}  // namespace propsim
