// Chord distributed hash table over overlay slots.
//
// The ring is built over *slots*; the placement decides which physical
// host serves each slot. PROP-G's identifier exchange is then a placement
// swap — fingers, successor lists and the key->slot mapping never change,
// exactly matching the paper's "each node is only allowed to get old
// identifiers of other nodes".
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "chord/id_space.h"
#include "common/rng.h"
#include "overlay/logical_graph.h"
#include "overlay/overlay_network.h"
#include "topology/latency_oracle.h"

namespace propsim {

struct ChordConfig {
  /// Successor-list length (fault tolerance and the final routing step).
  std::size_t successor_list = 4;
  /// Number of finger levels (2^k steps, k < finger_bits).
  std::size_t finger_bits = 64;
  /// Proximity Neighbor Selection: when > 1, each finger slot is the
  /// physically nearest of this many candidate ring positions after the
  /// finger point (the PNS baseline; 1 = plain Chord).
  std::size_t pns_candidates = 1;
};

class ChordRing {
 public:
  /// Random identifier assignment (plain Chord / PROP-G substrate).
  static ChordRing build_random(std::size_t slot_count,
                                const ChordConfig& config, Rng& rng);

  /// Caller-chosen identifiers (the PIS baseline assigns ids by landmark
  /// bins). Ids must be distinct.
  static ChordRing build_with_ids(std::vector<ChordId> ids,
                                  const ChordConfig& config);

  std::size_t size() const { return ids_.size(); }
  ChordId id_of(SlotId s) const { return ids_[s]; }

  /// Ground truth: the slot owning `key` (first id clockwise >= key).
  SlotId successor_of(ChordId key) const;

  /// Immediate ring successor / predecessor slots of a slot.
  SlotId ring_successor(SlotId s, std::size_t steps = 1) const;
  SlotId ring_predecessor(SlotId s, std::size_t steps = 1) const;

  std::span<const SlotId> fingers(SlotId s) const { return fingers_[s]; }
  std::span<const SlotId> successors(SlotId s) const { return succ_[s]; }

  /// Greedy iterative lookup from `source` for `key`; returns the slot
  /// sequence ending at the key's owner. Hop count is O(log n) w.h.p.
  std::vector<SlotId> lookup_path(SlotId source, ChordId key) const;

  /// Routing-table links as an undirected logical graph (fingers +
  /// successor lists + predecessor back-links, deduplicated) — the
  /// neighbor set PROP probes and exchanges over.
  LogicalGraph to_logical_graph() const;

  /// Recomputes fingers with Proximity Neighbor Selection against the
  /// given hosts (hosts[i] = physical node of slot i). Used by the PNS
  /// baseline after the plain ring is built.
  void apply_pns(std::span<const NodeId> hosts, const LatencyOracle& oracle);

  const ChordConfig& config() const { return config_; }

 private:
  ChordRing(std::vector<ChordId> ids, const ChordConfig& config);

  void rebuild_tables();
  SlotId closest_preceding(SlotId u, ChordId key) const;

  ChordConfig config_;
  std::vector<ChordId> ids_;           // by slot
  std::vector<SlotId> ring_order_;     // slots sorted by id
  std::vector<std::size_t> ring_pos_;  // slot -> index in ring_order_
  std::vector<std::vector<SlotId>> fingers_;  // by slot, deduplicated
  std::vector<std::vector<SlotId>> succ_;     // by slot
};

/// Builds the OverlayNetwork for a chord ring: logical graph from the
/// routing tables, slot i bound to hosts[i].
/// (Route latency helpers live in overlay/overlay_network.h.)
OverlayNetwork make_chord_overlay(const ChordRing& ring,
                                  std::span<const NodeId> hosts,
                                  const LatencyOracle& oracle,
                                  obs::EventBus* trace = nullptr);

}  // namespace propsim
