#include "chord/chord_ring.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace propsim {

ChordRing::ChordRing(std::vector<ChordId> ids, const ChordConfig& config)
    : config_(config), ids_(std::move(ids)) {
  PROPSIM_CHECK(!ids_.empty());
  PROPSIM_CHECK(config_.successor_list >= 1);
  PROPSIM_CHECK(config_.finger_bits >= 1 && config_.finger_bits <= 64);
  rebuild_tables();
}

ChordRing ChordRing::build_random(std::size_t slot_count,
                                  const ChordConfig& config, Rng& rng) {
  PROPSIM_CHECK(slot_count >= 2);
  // det-ok(D1): duplicate-id probe only; ids are emitted via the vector
  std::unordered_set<ChordId> seen;
  std::vector<ChordId> ids;
  ids.reserve(slot_count);
  while (ids.size() < slot_count) {
    const ChordId id = rng.next();
    if (seen.insert(id).second) ids.push_back(id);
  }
  return ChordRing(std::move(ids), config);
}

ChordRing ChordRing::build_with_ids(std::vector<ChordId> ids,
                                    const ChordConfig& config) {
  std::vector<ChordId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  PROPSIM_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
  return ChordRing(std::move(ids), config);
}

void ChordRing::rebuild_tables() {
  const std::size_t n = ids_.size();
  ring_order_.resize(n);
  std::iota(ring_order_.begin(), ring_order_.end(), SlotId{0});
  std::sort(ring_order_.begin(), ring_order_.end(),
            [&](SlotId a, SlotId b) { return ids_[a] < ids_[b]; });
  ring_pos_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ring_pos_[ring_order_[i]] = i;
  }

  succ_.assign(n, {});
  const std::size_t list_len = std::min(config_.successor_list, n - 1);
  for (SlotId s = 0; s < n; ++s) {
    succ_[s].reserve(list_len);
    for (std::size_t k = 1; k <= list_len; ++k) {
      succ_[s].push_back(ring_successor(s, k));
    }
  }

  fingers_.assign(n, {});
  for (SlotId s = 0; s < n; ++s) {
    auto& table = fingers_[s];
    for (std::size_t k = 0; k < config_.finger_bits; ++k) {
      const ChordId point = ids_[s] + (ChordId{1} << k);
      const SlotId target = successor_of(point);
      if (target == s) continue;  // tiny rings: the point wraps to self
      if (std::find(table.begin(), table.end(), target) == table.end()) {
        table.push_back(target);
      }
    }
  }
}

SlotId ChordRing::successor_of(ChordId key) const {
  // First slot clockwise whose id >= key, wrapping to the smallest id.
  const auto it = std::lower_bound(
      ring_order_.begin(), ring_order_.end(), key,
      [&](SlotId s, ChordId k) { return ids_[s] < k; });
  if (it == ring_order_.end()) return ring_order_.front();
  return *it;
}

SlotId ChordRing::ring_successor(SlotId s, std::size_t steps) const {
  const std::size_t n = ring_order_.size();
  return ring_order_[(ring_pos_[s] + steps) % n];
}

SlotId ChordRing::ring_predecessor(SlotId s, std::size_t steps) const {
  const std::size_t n = ring_order_.size();
  return ring_order_[(ring_pos_[s] + n - (steps % n)) % n];
}

SlotId ChordRing::closest_preceding(SlotId u, ChordId key) const {
  // Scan fingers and successors for the id closest to (but before) key;
  // examining all table entries matches Chord's closest_preceding_finger
  // generalized to the whole routing table.
  SlotId best = kInvalidSlot;
  ChordId best_dist = 0;
  auto consider = [&](SlotId cand) {
    if (cand == u) return;
    if (!in_interval_oo(ids_[u], key, ids_[cand])) return;
    const ChordId dist = clockwise_distance(ids_[cand], key);
    if (best == kInvalidSlot || dist < best_dist) {
      best = cand;
      best_dist = dist;
    }
  };
  for (const SlotId f : fingers_[u]) consider(f);
  for (const SlotId s : succ_[u]) consider(s);
  return best;
}

std::vector<SlotId> ChordRing::lookup_path(SlotId source, ChordId key) const {
  PROPSIM_CHECK(source < ids_.size());
  const SlotId owner = successor_of(key);
  std::vector<SlotId> path{source};
  SlotId here = source;
  // 128 is far beyond any reachable hop count for a correct greedy walk;
  // the check guards against routing-table corruption.
  for (std::size_t guard = 0; here != owner; ++guard) {
    PROPSIM_CHECK(guard < 128);
    if (in_interval_oc(ids_[here], ids_[ring_successor(here)], key)) {
      here = ring_successor(here);
    } else {
      const SlotId next = closest_preceding(here, key);
      // The successor list always yields progress, so next is valid.
      PROPSIM_CHECK(next != kInvalidSlot);
      here = next;
    }
    path.push_back(here);
  }
  return path;
}

LogicalGraph ChordRing::to_logical_graph() const {
  const std::size_t n = ids_.size();
  LogicalGraph g(n);
  auto link = [&](SlotId a, SlotId b) {
    if (a != b && !g.has_edge(a, b)) g.add_edge(a, b);
  };
  for (SlotId s = 0; s < n; ++s) {
    for (const SlotId f : fingers_[s]) link(s, f);
    for (const SlotId k : succ_[s]) link(s, k);
  }
  return g;
}

void ChordRing::apply_pns(std::span<const NodeId> hosts,
                          const LatencyOracle& oracle) {
  PROPSIM_CHECK(hosts.size() == ids_.size());
  PROPSIM_CHECK(config_.pns_candidates >= 1);
  const std::size_t n = ids_.size();
  for (SlotId s = 0; s < n; ++s) {
    auto& table = fingers_[s];
    table.clear();
    for (std::size_t k = 0; k < config_.finger_bits; ++k) {
      const ChordId point = ids_[s] + (ChordId{1} << k);
      // Candidates: the first pns_candidates slots clockwise from the
      // finger point; all of them own keys "near" the point, so any is a
      // legal finger. Pick the physically nearest.
      const SlotId first = successor_of(point);
      SlotId best = kInvalidSlot;
      double best_latency = 0.0;
      std::size_t pos = ring_pos_[first];
      for (std::size_t c = 0; c < config_.pns_candidates && c < n; ++c) {
        const SlotId cand = ring_order_[(pos + c) % n];
        if (cand == s) continue;
        // Candidates must stay within the half-ring of the finger point
        // so greedy routing still makes clockwise progress.
        if (!in_interval_oo(ids_[s], ids_[s] + (ChordId{1} << k) * 2,
                            ids_[cand]) &&
            c > 0) {
          break;
        }
        const double lat = oracle.latency(hosts[s], hosts[cand]);
        if (best == kInvalidSlot || lat < best_latency) {
          best = cand;
          best_latency = lat;
        }
      }
      if (best == kInvalidSlot) continue;
      if (std::find(table.begin(), table.end(), best) == table.end()) {
        table.push_back(best);
      }
    }
  }
}

OverlayNetwork make_chord_overlay(const ChordRing& ring,
                                  std::span<const NodeId> hosts,
                                  const LatencyOracle& oracle,
                                  obs::EventBus* trace) {
  PROPSIM_CHECK(hosts.size() == ring.size());
  LogicalGraph graph = ring.to_logical_graph();
  Placement placement(graph.slot_count(), oracle.physical().node_count());
  for (SlotId s = 0; s < graph.slot_count(); ++s) {
    placement.bind(s, hosts[s]);
  }
  OverlayNetwork net(std::move(graph), std::move(placement), oracle);
  net.set_trace(trace);
  if (trace != nullptr) {
    for (const SlotId s : net.graph().active_slots()) {
      trace->emit(obs::TraceEventKind::kJoin, s, net.placement().host_of(s));
    }
  }
  return net;
}

}  // namespace propsim
