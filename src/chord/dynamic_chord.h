// Dynamic Chord: per-node routing state with join / leave / failure and
// the stabilization protocol (Stoica et al., SIGCOMM 2001).
//
// ChordRing (chord_ring.h) models a converged ring with globally
// consistent tables — ideal for the paper's steady-state measurements.
// This class models the *protocol*: every node owns only its local view
// (successor list, predecessor, fingers), new peers join through a
// bootstrap lookup, departures and crashes leave stale entries behind,
// and periodic stabilize/fix-finger rounds repair the ring. The paper's
// peer-exchange leans on exactly these mechanisms ("notifications can
// still be implemented by using the underlying mechanisms just as what
// happens when peers arrive or depart").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "chord/id_space.h"
#include "common/rng.h"
#include "overlay/logical_graph.h"

namespace propsim {

struct DynamicChordConfig {
  std::size_t successor_list = 4;
  std::size_t finger_bits = 64;
};

class DynamicChord {
 public:
  explicit DynamicChord(const DynamicChordConfig& config);

  std::size_t active_count() const { return active_count_; }
  std::size_t slot_count() const { return ids_.size(); }
  bool is_active(SlotId s) const { return s < active_.size() && active_[s]; }
  ChordId id_of(SlotId s) const { return ids_[s]; }

  /// Creates the first node of a fresh ring.
  SlotId bootstrap(ChordId id);

  /// Joins a new node through `gateway` (any active node): one lookup
  /// finds the successor, the rest is repaired by stabilization.
  SlotId join(ChordId id, SlotId gateway);

  /// Graceful departure: hands its position to the successor and tells
  /// the predecessor, then goes inactive.
  void leave(SlotId s);

  /// Crash: the node vanishes; neighbors discover the failure lazily
  /// when stabilize probes dead entries.
  void fail(SlotId s);

  /// Optional message filter modelling a lossy network between repair
  /// rounds: (from, to) -> deliverable. When present and the remote read
  /// opening a stabilize or fix-finger round is dropped, that round is
  /// skipped — stale entries persist until a later round gets through,
  /// which is exactly how the real protocol degrades under loss. Pass an
  /// empty function to restore the reliable network.
  using MessageFilter = std::function<bool(SlotId from, SlotId to)>;
  void set_message_filter(MessageFilter filter) {
    filter_ = std::move(filter);
  }

  /// One stabilization round for node s: repair the successor (skipping
  /// dead list entries), adopt a closer predecessor-of-successor, notify,
  /// and refresh the successor list.
  void stabilize(SlotId s);

  /// Fixes one finger of s (round-robin over finger levels).
  void fix_finger(SlotId s);

  /// Runs `rounds` full sweeps of stabilize + fix all fingers for every
  /// active node (deterministic order). Convenience for tests/benches.
  void stabilize_all(std::size_t rounds);

  /// Local-view iterative lookup. Returns the visited path; `ok` is
  /// false when routing hit a dead end (possible mid-churn before
  /// stabilization). On success path.back() owns the key.
  struct LookupResult {
    std::vector<SlotId> path;
    bool ok = false;
  };
  LookupResult lookup(SlotId source, ChordId key) const;

  /// Ground truth owner among active nodes (for verification).
  SlotId true_owner(ChordId key) const;

  SlotId successor(SlotId s) const;
  std::optional<SlotId> predecessor(SlotId s) const;
  const std::vector<SlotId>& successor_list(SlotId s) const {
    return succ_[s];
  }

  /// Current routing links as an undirected logical graph over active
  /// slots.
  LogicalGraph to_logical_graph() const;

  /// Invariant audit: every active node's first live successor is the
  /// true ring successor. True only after enough stabilization.
  bool ring_consistent() const;

 private:
  SlotId new_slot(ChordId id);
  SlotId first_live_successor(SlotId s) const;
  SlotId closest_preceding(SlotId s, ChordId key) const;
  void refresh_successor_list(SlotId s);
  void notify(SlotId target, SlotId candidate);

  DynamicChordConfig config_;
  std::vector<ChordId> ids_;
  std::vector<bool> active_;
  std::vector<SlotId> pred_;                 // kInvalidSlot when unknown
  std::vector<std::vector<SlotId>> succ_;    // successor lists
  std::vector<std::vector<SlotId>> finger_;  // finger_bits entries
  std::vector<std::size_t> next_finger_;     // round-robin fix index
  MessageFilter filter_;                     // empty = reliable network
  std::size_t active_count_ = 0;
};

}  // namespace propsim
