#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace propsim {
namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "config: line %zu has no '=': %s\n", line_no,
                   stripped.c_str());
      PROPSIM_CHECK(false && "malformed config line");
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    PROPSIM_CHECK(!key.empty());
    config.values_[key] = value;
  }
  return config;
}

Config Config::load_file(const std::string& path) {
  std::ifstream in(path);
  PROPSIM_CHECK(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool Config::has(const std::string& key) const {
  return values_.contains(key);
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::string Config::require_string(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    std::fprintf(stderr, "config: missing required key '%s'\n", key.c_str());
    PROPSIM_CHECK(false && "missing required config key");
  }
  return it->second;
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  if (!has(key)) return fallback;
  const auto v = try_get_int(key);
  PROPSIM_CHECK(v.has_value());
  return *v;
}

double Config::get_double(const std::string& key, double fallback) const {
  if (!has(key)) return fallback;
  const auto v = try_get_double(key);
  PROPSIM_CHECK(v.has_value());
  return *v;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  if (!has(key)) return fallback;
  const auto v = try_get_bool(key);
  PROPSIM_CHECK(v.has_value() && "config value is not a boolean");
  return *v;
}

std::optional<std::int64_t> Config::try_get_int(
    const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return std::nullopt;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return v;
}

std::optional<double> Config::try_get_double(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return v;
}

std::optional<bool> Config::try_get_bool(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return std::nullopt;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

}  // namespace propsim
