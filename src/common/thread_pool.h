// Fixed-size worker pool for embarrassingly parallel experiment sweeps.
//
// propsim simulations are single-threaded and deterministic; parallelism
// lives one level up, across independent (seed, parameter) runs. The
// pool keeps that structure: submit returns a future, tasks never share
// mutable state, and results are therefore identical to a serial run.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace propsim {

class ThreadPool {
 public:
  /// Spawns `workers` threads (>= 1); defaults to hardware concurrency.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Drains queued tasks and joins the workers. Idempotent; called by the
  /// destructor. After shutdown, submit/parallel_for throw.
  void shutdown();

  /// Enqueues a callable; the future carries its result (or exception).
  /// Throws std::runtime_error if the pool has been shut down — a stopped
  /// pool would silently never run the task, and the caller (typically a
  /// sweep mid-teardown) deserves a diagnosable failure instead of a
  /// future that never resolves.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error(
            "ThreadPool::submit: pool is shut down; tasks submitted after "
            "shutdown() (or during destruction) would never run");
      }
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits for all.
  /// Exceptions propagate (the first one encountered rethrows).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace propsim
