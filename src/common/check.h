// Lightweight invariant checking for propsim.
//
// PROPSIM_CHECK is always on (simulation correctness beats a few ns);
// PROPSIM_DCHECK compiles away in release builds and is meant for hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace propsim {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "propsim: check failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

}  // namespace propsim

#define PROPSIM_CHECK(expr)                                \
  do {                                                     \
    if (!(expr)) {                                         \
      ::propsim::check_failed(#expr, __FILE__, __LINE__);  \
    }                                                      \
  } while (false)

#ifdef NDEBUG
#define PROPSIM_DCHECK(expr) \
  do {                       \
  } while (false)
#else
#define PROPSIM_DCHECK(expr) PROPSIM_CHECK(expr)
#endif
