// Addressable binary-heap priority queue over dense integer keys.
//
// Used by Dijkstra (decrease-key) and by the PROP neighbour queue, where an
// entry's priority changes while it is enqueued. Keys are indices in
// [0, capacity); the queue stores at most one entry per key.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace propsim {

/// Min-heap by default; pass a different Compare for max-heap behaviour.
template <typename Priority, typename Compare = std::less<Priority>>
class IndexedPriorityQueue {
 public:
  explicit IndexedPriorityQueue(std::size_t capacity, Compare cmp = Compare())
      : cmp_(cmp), position_(capacity, kAbsent) {}

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  std::size_t capacity() const { return position_.size(); }

  bool contains(std::size_t key) const {
    PROPSIM_DCHECK(key < position_.size());
    return position_[key] != kAbsent;
  }

  const Priority& priority_of(std::size_t key) const {
    PROPSIM_CHECK(contains(key));
    return heap_[position_[key]].priority;
  }

  /// Inserts a new key or updates the priority of an existing one.
  void push_or_update(std::size_t key, Priority priority) {
    PROPSIM_CHECK(key < position_.size());
    if (contains(key)) {
      const std::size_t idx = position_[key];
      const bool improves = cmp_(priority, heap_[idx].priority);
      heap_[idx].priority = std::move(priority);
      if (improves) {
        sift_up(idx);
      } else {
        sift_down(idx);
      }
    } else {
      heap_.push_back(Entry{key, std::move(priority)});
      position_[key] = heap_.size() - 1;
      sift_up(heap_.size() - 1);
    }
  }

  /// The key with the smallest priority (under Compare).
  std::size_t top_key() const {
    PROPSIM_CHECK(!heap_.empty());
    return heap_.front().key;
  }

  const Priority& top_priority() const {
    PROPSIM_CHECK(!heap_.empty());
    return heap_.front().priority;
  }

  /// Removes and returns the top key.
  std::size_t pop() {
    PROPSIM_CHECK(!heap_.empty());
    const std::size_t key = heap_.front().key;
    remove_at(0);
    return key;
  }

  /// Removes an arbitrary key; returns false if it was not enqueued.
  bool erase(std::size_t key) {
    PROPSIM_DCHECK(key < position_.size());
    if (!contains(key)) return false;
    remove_at(position_[key]);
    return true;
  }

  void clear() {
    for (const Entry& e : heap_) position_[e.key] = kAbsent;
    heap_.clear();
  }

 private:
  struct Entry {
    std::size_t key;
    Priority priority;
  };

  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

  void remove_at(std::size_t idx) {
    position_[heap_[idx].key] = kAbsent;
    if (idx + 1 != heap_.size()) {
      heap_[idx] = std::move(heap_.back());
      position_[heap_[idx].key] = idx;
      heap_.pop_back();
      // The moved element may need to travel either direction.
      sift_up(idx);
      sift_down(idx);
    } else {
      heap_.pop_back();
    }
  }

  void sift_up(std::size_t idx) {
    while (idx > 0) {
      const std::size_t parent = (idx - 1) / 2;
      if (!cmp_(heap_[idx].priority, heap_[parent].priority)) break;
      swap_entries(idx, parent);
      idx = parent;
    }
  }

  void sift_down(std::size_t idx) {
    for (;;) {
      const std::size_t left = 2 * idx + 1;
      const std::size_t right = 2 * idx + 2;
      std::size_t best = idx;
      if (left < heap_.size() &&
          cmp_(heap_[left].priority, heap_[best].priority)) {
        best = left;
      }
      if (right < heap_.size() &&
          cmp_(heap_[right].priority, heap_[best].priority)) {
        best = right;
      }
      if (best == idx) break;
      swap_entries(idx, best);
      idx = best;
    }
  }

  void swap_entries(std::size_t a, std::size_t b) {
    using std::swap;
    swap(heap_[a], heap_[b]);
    position_[heap_[a].key] = a;
    position_[heap_[b].key] = b;
  }

  Compare cmp_;
  std::vector<Entry> heap_;
  std::vector<std::size_t> position_;
};

}  // namespace propsim
