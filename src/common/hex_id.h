// Hexadecimal-digit views of 64-bit identifiers, shared by the
// prefix-routing DHTs (Pastry, Tapestry): 16 digits, base 16, digit 0
// is the most significant.
#pragma once

#include <cstdint>

namespace propsim {

constexpr std::size_t kHexDigits = 16;
constexpr std::size_t kHexBase = 16;

/// Digit d (0 = most significant) of an id.
constexpr std::uint32_t hex_digit(std::uint64_t id, std::size_t d) {
  return static_cast<std::uint32_t>((id >> (4 * (kHexDigits - 1 - d))) & 0xF);
}

/// Length of the common hex-digit prefix of two ids (0..16).
constexpr std::size_t hex_shared_prefix(std::uint64_t a, std::uint64_t b) {
  std::size_t len = 0;
  while (len < kHexDigits && hex_digit(a, len) == hex_digit(b, len)) {
    ++len;
  }
  return len;
}

/// Circular distance on the 64-bit id ring (min of both directions).
constexpr std::uint64_t id_ring_distance(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t d = a - b;
  const std::uint64_t e = b - a;
  return d < e ? d : e;
}

}  // namespace propsim
