// Streaming and batch statistics used across metrics, tests and benches.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace propsim {

/// Welford's online algorithm: numerically stable mean/variance plus
/// min/max, in O(1) space.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch container for quantiles; keeps all samples.
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  /// Quantile in [0, 1] by linear interpolation; requires non-empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& values() const { return values_; }
  void clear() { values_.clear(); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace propsim
