#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace propsim {

Json Json::array() {
  Json j;
  j.value_ = Array{};
  return j;
}

Json Json::object() {
  Json j;
  j.value_ = Object{};
  return j;
}

bool Json::is_null() const {
  return std::holds_alternative<std::nullptr_t>(value_);
}

bool Json::is_bool() const {
  return std::holds_alternative<bool>(value_);
}

bool Json::is_number() const {
  return std::holds_alternative<double>(value_);
}

bool Json::is_string() const {
  return std::holds_alternative<std::string>(value_);
}

bool Json::is_array() const {
  return std::holds_alternative<Array>(value_);
}

bool Json::is_object() const {
  return std::holds_alternative<Object>(value_);
}

bool Json::as_bool() const {
  PROPSIM_CHECK(is_bool());
  return std::get<bool>(value_);
}

double Json::as_double() const {
  PROPSIM_CHECK(is_number());
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  PROPSIM_CHECK(is_string());
  return std::get<std::string>(value_);
}

const Json::Array& Json::array_items() const {
  PROPSIM_CHECK(is_array());
  return std::get<Array>(value_);
}

const Json::Object& Json::object_items() const {
  PROPSIM_CHECK(is_object());
  return std::get<Object>(value_);
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& o = std::get<Object>(value_);
  const auto it = o.find(key);
  return it == o.end() ? nullptr : &it->second;
}

Json& Json::push_back(Json v) {
  PROPSIM_CHECK(is_array());
  std::get<Array>(value_).push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  PROPSIM_CHECK(is_object());
  std::get<Object>(value_)[key] = std::move(v);
  return *this;
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  return 0;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no Inf/NaN
    return;
  }
  // Integers small enough to be exact render without a decimal point.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const double* d = std::get_if<double>(&value_)) {
    append_number(out, *d);
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    out += '"';
    out += escape(*s);
    out += '"';
  } else if (const Array* a = std::get_if<Array>(&value_)) {
    out += '[';
    bool first = true;
    for (const Json& v : *a) {
      if (!first) out += ',';
      first = false;
      append_newline_indent(out, indent, depth + 1);
      v.dump_to(out, indent, depth + 1);
    }
    if (!a->empty()) append_newline_indent(out, indent, depth);
    out += ']';
  } else if (const Object* o = std::get_if<Object>(&value_)) {
    out += '{';
    bool first = true;
    for (const auto& [key, v] : *o) {
      if (!first) out += ',';
      first = false;
      append_newline_indent(out, indent, depth + 1);
      out += '"';
      out += escape(key);
      out += "\":";
      if (indent > 0) out += ' ';
      v.dump_to(out, indent, depth + 1);
    }
    if (!o->empty()) append_newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --------------------------------------------------------------- parsing

namespace {

/// Recursive-descent RFC 8259 parser over a borrowed buffer. Fails soft:
/// every error sets `message` + the byte offset and propagates as
/// nullopt, so callers can report malformed input instead of aborting.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<Json> run(std::string* error) {
    std::optional<Json> v = parse_value(0);
    skip_whitespace();
    if (v.has_value() && pos_ != text_.size()) {
      fail("trailing characters after document");
      v.reset();
    }
    if (!v.has_value() && error != nullptr) {
      *error = message_ + " at byte " + std::to_string(error_pos_);
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  void fail(const std::string& message) {
    if (message_.empty()) {
      message_ = message;
      error_pos_ = pos_;
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  std::optional<Json> parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    skip_whitespace();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        std::optional<std::string> s = parse_string();
        if (!s.has_value()) return std::nullopt;
        return Json(std::move(*s));
      }
      case 't':
        if (consume_literal("true")) return Json(true);
        break;
      case 'f':
        if (consume_literal("false")) return Json(false);
        break;
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        break;
      default:
        return parse_number();
    }
    fail("invalid value");
    return std::nullopt;
  }

  std::optional<Json> parse_object(int depth) {
    consume('{');
    Json out = Json::object();
    skip_whitespace();
    if (consume('}')) return out;
    while (true) {
      skip_whitespace();
      std::optional<std::string> key = parse_string();
      if (!key.has_value()) return std::nullopt;
      skip_whitespace();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<Json> value = parse_value(depth + 1);
      if (!value.has_value()) return std::nullopt;
      out.set(*key, std::move(*value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume('}')) return out;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<Json> parse_array(int depth) {
    consume('[');
    Json out = Json::array();
    skip_whitespace();
    if (consume(']')) return out;
    while (true) {
      std::optional<Json> value = parse_value(depth + 1);
      if (!value.has_value()) return std::nullopt;
      out.push_back(std::move(*value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume(']')) return out;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) { /* sign */ }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("invalid number");
      return std::nullopt;
    }
    const std::string token = text_.substr(start, pos_ - start);
    // RFC 8259: no leading zeros ("01"), which strtod would accept.
    const std::size_t first_digit = token[0] == '-' ? 1 : 0;
    if (token.size() > first_digit + 1 && token[first_digit] == '0' &&
        std::isdigit(static_cast<unsigned char>(token[first_digit + 1])) != 0) {
      pos_ = start;
      fail("invalid number");
      return std::nullopt;
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("invalid number");
      return std::nullopt;
    }
    return Json(d);
  }

  /// One \uXXXX unit (pos_ past the 'u'); 0xFFFFFFFF on bad hex.
  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) return 0xFFFFFFFFu;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return 0xFFFFFFFFu;
      }
    }
    pos_ += 4;
    return v;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
        return std::nullopt;
      }
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
        return std::nullopt;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp == 0xFFFFFFFFu) {
            fail("invalid \\u escape");
            return std::nullopt;
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if (!consume_literal("\\u")) {
              fail("unpaired high surrogate");
              return std::nullopt;
            }
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("invalid low surrogate");
              return std::nullopt;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
            return std::nullopt;
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape character");
          return std::nullopt;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string message_;
  std::size_t error_pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace propsim
