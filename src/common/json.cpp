#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace propsim {

Json Json::array() {
  Json j;
  j.value_ = Array{};
  return j;
}

Json Json::object() {
  Json j;
  j.value_ = Object{};
  return j;
}

bool Json::is_array() const {
  return std::holds_alternative<Array>(value_);
}

bool Json::is_object() const {
  return std::holds_alternative<Object>(value_);
}

Json& Json::push_back(Json v) {
  PROPSIM_CHECK(is_array());
  std::get<Array>(value_).push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  PROPSIM_CHECK(is_object());
  std::get<Object>(value_)[key] = std::move(v);
  return *this;
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  return 0;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no Inf/NaN
    return;
  }
  // Integers small enough to be exact render without a decimal point.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const double* d = std::get_if<double>(&value_)) {
    append_number(out, *d);
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    out += '"';
    out += escape(*s);
    out += '"';
  } else if (const Array* a = std::get_if<Array>(&value_)) {
    out += '[';
    bool first = true;
    for (const Json& v : *a) {
      if (!first) out += ',';
      first = false;
      append_newline_indent(out, indent, depth + 1);
      v.dump_to(out, indent, depth + 1);
    }
    if (!a->empty()) append_newline_indent(out, indent, depth);
    out += ']';
  } else if (const Object* o = std::get_if<Object>(&value_)) {
    out += '{';
    bool first = true;
    for (const auto& [key, v] : *o) {
      if (!first) out += ',';
      first = false;
      append_newline_indent(out, indent, depth + 1);
      out += '"';
      out += escape(key);
      out += "\":";
      if (indent > 0) out += ' ';
      v.dump_to(out, indent, depth + 1);
    }
    if (!o->empty()) append_newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace propsim
