#include "common/thread_pool.h"

#include <algorithm>

namespace propsim {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace propsim
