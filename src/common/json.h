// Minimal JSON value builder and parser for structured tool output.
//
// Build values imperatively and dump() them, or parse() an RFC 8259
// document back into a value tree; no external dependencies. Numbers
// render with up-to-17-significant-digit round-trip precision; strings
// are escaped per RFC 8259. The parser accepts exactly the grammar the
// builder emits (all of standard JSON; \uXXXX escapes are decoded to
// UTF-8, surrogate pairs included).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace propsim {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}  // NOLINT(runtime/explicit)
  Json(bool b) : value_(b) {}                // NOLINT(runtime/explicit)
  Json(double d) : value_(d) {}              // NOLINT(runtime/explicit)
  Json(int i) : value_(static_cast<double>(i)) {}  // NOLINT
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}   // NOLINT
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}            // NOLINT
  Json(std::string s) : value_(std::move(s)) {}              // NOLINT

  static Json array();
  static Json object();

  /// Parses one JSON document (trailing whitespace allowed, trailing
  /// garbage rejected). Returns nullopt on malformed input and, when
  /// `error` is non-null, a one-line description with byte offset.
  static std::optional<Json> parse(const std::string& text,
                                   std::string* error = nullptr);

  bool is_null() const;
  bool is_bool() const;
  bool is_number() const;
  bool is_string() const;
  bool is_array() const;
  bool is_object() const;

  /// Typed reads; each check-fails unless the value holds that type.
  bool as_bool() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& array_items() const;
  const Object& object_items() const;

  /// Object member lookup: nullptr when this is not an object or the key
  /// is absent.
  const Json* find(const std::string& key) const;

  /// Appends to an array (the value must be an array).
  Json& push_back(Json v);
  /// Sets an object member (the value must be an object).
  Json& set(const std::string& key, Json v);

  std::size_t size() const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  static std::string escape(const std::string& s);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace propsim
