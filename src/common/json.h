// Minimal JSON value builder for structured tool output.
//
// Build values imperatively and dump() them; no parsing, no external
// dependencies. Numbers render with up-to-17-significant-digit
// round-trip precision; strings are escaped per RFC 8259.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace propsim {

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}  // NOLINT(runtime/explicit)
  Json(bool b) : value_(b) {}                // NOLINT(runtime/explicit)
  Json(double d) : value_(d) {}              // NOLINT(runtime/explicit)
  Json(int i) : value_(static_cast<double>(i)) {}  // NOLINT
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}   // NOLINT
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}            // NOLINT
  Json(std::string s) : value_(std::move(s)) {}              // NOLINT

  static Json array();
  static Json object();

  bool is_array() const;
  bool is_object() const;

  /// Appends to an array (the value must be an array).
  Json& push_back(Json v);
  /// Sets an object member (the value must be an object).
  Json& set(const std::string& key, Json v);

  std::size_t size() const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  static std::string escape(const std::string& s);

 private:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace propsim
