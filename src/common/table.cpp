#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace propsim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PROPSIM_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PROPSIM_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(std::initializer_list<double> values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v));
  add_row(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      os << std::string(width[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace propsim
