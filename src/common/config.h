// Minimal key = value configuration format for the experiment driver.
//
//   # comment
//   overlay  = chord
//   nodes    = 1000
//   horizon  = 3600
//
// Keys are case-sensitive; later assignments override earlier ones.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace propsim {

class Config {
 public:
  /// Parses the text; throws via PROPSIM_CHECK on malformed lines.
  static Config parse(const std::string& text);
  /// Reads and parses a file; check-fails if unreadable.
  static Config load_file(const std::string& path);

  bool has(const std::string& key) const;
  std::size_t size() const { return values_.size(); }

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Non-aborting variants for error-reporting parsers: nullopt when the
  /// key is missing or its value does not parse (use has() to tell the
  /// two apart), where get_* would check-fail on a malformed value.
  std::optional<std::int64_t> try_get_int(const std::string& key) const;
  std::optional<double> try_get_double(const std::string& key) const;
  std::optional<bool> try_get_bool(const std::string& key) const;

  /// Required variants: check-fail with the key name when missing.
  std::string require_string(const std::string& key) const;

  void set(const std::string& key, const std::string& value);

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace propsim
