#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace propsim {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::quantile(double q) const {
  PROPSIM_CHECK(!values_.empty());
  PROPSIM_CHECK(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (values_.size() == 1) return values_.front();
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= values_.size()) return values_.back();
  return values_[idx] * (1.0 - frac) + values_[idx + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  PROPSIM_CHECK(hi > lo);
  PROPSIM_CHECK(buckets > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return bucket_lo(i + 1);
}

}  // namespace propsim
