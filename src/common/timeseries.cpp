#include "common/timeseries.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace propsim {

void TimeSeries::record(double time, double value) {
  PROPSIM_CHECK(points_.empty() || time >= points_.back().time);
  points_.push_back(Point{time, value});
}

double TimeSeries::first_value() const {
  PROPSIM_CHECK(!points_.empty());
  return points_.front().value;
}

double TimeSeries::last_value() const {
  PROPSIM_CHECK(!points_.empty());
  return points_.back().value;
}

double TimeSeries::min_value() const {
  PROPSIM_CHECK(!points_.empty());
  double best = std::numeric_limits<double>::infinity();
  for (const Point& p : points_) best = std::min(best, p.value);
  return best;
}

double TimeSeries::value_at(double t) const {
  PROPSIM_CHECK(!points_.empty());
  PROPSIM_CHECK(t >= points_.front().time);
  // Last point with time <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double lhs, const Point& rhs) { return lhs < rhs.time; });
  return std::prev(it)->value;
}

TimeSeries TimeSeries::resample(std::size_t buckets) const {
  PROPSIM_CHECK(!points_.empty());
  PROPSIM_CHECK(buckets >= 2);
  TimeSeries out(name_);
  const double t0 = points_.front().time;
  const double t1 = points_.back().time;
  for (std::size_t i = 0; i < buckets; ++i) {
    const double t =
        t0 + (t1 - t0) * static_cast<double>(i) /
                 static_cast<double>(buckets - 1);
    out.record(t, value_at(t));
  }
  return out;
}

std::string series_to_csv(const std::vector<TimeSeries>& series,
                          std::size_t grid_points) {
  PROPSIM_CHECK(!series.empty());
  PROPSIM_CHECK(grid_points >= 2);
  double t0 = std::numeric_limits<double>::infinity();
  double t1 = -std::numeric_limits<double>::infinity();
  for (const TimeSeries& s : series) {
    PROPSIM_CHECK(!s.empty());
    t0 = std::min(t0, s.points().front().time);
    t1 = std::max(t1, s.points().back().time);
  }
  std::ostringstream os;
  os << "time";
  for (const TimeSeries& s : series) os << ',' << s.name();
  os << '\n';
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                              static_cast<double>(grid_points - 1);
    os << t;
    for (const TimeSeries& s : series) {
      os << ',';
      // Series that start later hold their first value before their
      // first sample so columns stay rectangular.
      if (t < s.points().front().time) {
        os << s.first_value();
      } else {
        os << s.value_at(t);
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace propsim
