// Console table / CSV emitter for bench output.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace propsim {

/// Collects rows of string cells and renders them either as an aligned
/// ASCII table (for humans) or CSV (for plotting scripts).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats arithmetic values with %g-style precision.
  void add_row_values(std::initializer_list<double> values);

  std::size_t rows() const { return rows_.size(); }

  std::string to_ascii() const;
  std::string to_csv() const;

  static std::string fmt(double value, int precision = 6);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace propsim
