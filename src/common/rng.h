// Deterministic pseudo-random number generation.
//
// All stochastic components of propsim draw from an explicitly seeded Rng so
// that every simulation, test and benchmark is reproducible bit-for-bit.
// The generator is xoshiro256** seeded through SplitMix64, which is both
// faster and of higher statistical quality than std::mt19937_64 and — unlike
// the standard distributions — produces identical streams on every platform.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace propsim {

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with platform-independent helper distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d1e5c8fb7a3d241ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Lemire's multiply-shift rejection method: unbiased and division-free
  /// in the common case.
  std::uint64_t uniform(std::uint64_t bound) {
    PROPSIM_DCHECK(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    PROPSIM_DCHECK(lo <= hi);
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
    const std::uint64_t draw = (span == 0) ? next() : uniform(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform_double();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform_double() < p; }

  /// Exponentially distributed sample with the given mean (> 0).
  double exponential(double mean);

  /// Fisher–Yates shuffle of the whole span.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& values) {
    shuffle(std::span<T>(values));
  }

  /// One element drawn uniformly from a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> values) {
    PROPSIM_CHECK(!values.empty());
    return values[static_cast<std::size_t>(uniform(values.size()))];
  }

  template <typename T>
  const T& pick(const std::vector<T>& values) {
    return pick(std::span<const T>(values));
  }

  /// k distinct indices drawn uniformly from [0, n) (Floyd's algorithm).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// An independent generator whose stream will not overlap with this one
  /// for practical purposes (derived via SplitMix64 of fresh output).
  Rng split() {
    std::uint64_t s = next();
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace propsim
