// Time-series recorder used to reproduce the paper's "metric vs time" plots.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace propsim {

/// Append-only sequence of (time, value) points with monotone times.
class TimeSeries {
 public:
  struct Point {
    double time;
    double value;
  };

  explicit TimeSeries(std::string name = {}) : name_(std::move(name)) {}

  void record(double time, double value);

  const std::string& name() const { return name_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const Point& operator[](std::size_t i) const { return points_[i]; }
  const std::vector<Point>& points() const { return points_; }

  double first_value() const;
  double last_value() const;
  double min_value() const;
  /// Value at the latest point with time <= t (step interpolation);
  /// requires at least one point at or before t.
  double value_at(double t) const;

  /// Resamples onto a uniform grid of `buckets` steps spanning
  /// [first.time, last.time] with step interpolation.
  TimeSeries resample(std::size_t buckets) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

/// Writes aligned series as CSV: time,name1,name2,... using step
/// interpolation at the union of sample times (or a uniform grid).
std::string series_to_csv(const std::vector<TimeSeries>& series,
                          std::size_t grid_points);

}  // namespace propsim
