#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace propsim {

double Rng::exponential(double mean) {
  PROPSIM_CHECK(mean > 0.0);
  // Inverse CDF on (0, 1]; 1 - uniform_double() never returns exactly 0.
  return -mean * std::log(1.0 - uniform_double());
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  PROPSIM_CHECK(k <= n);
  // Floyd's subset sampling: O(k) expected work, no O(n) scratch space.
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(uniform(j + 1));
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  return chosen;
}

}  // namespace propsim
