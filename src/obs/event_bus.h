// Low-overhead structured event bus for simulation observability.
//
// Protocol code emits typed TraceEvents (obs/events.h) into an EventBus;
// the bus stamps simulated time via a pluggable clock, classifies each
// event into the paper's warm-up/maintenance phases, keeps per-phase ×
// per-kind counters and wall-clock phase timers, and optionally streams
// every event through a bounded ring-buffer TraceSink as `propsim.trace`
// v1 JSONL.
//
// Like the paranoid invariant audit, emission compiles out: built with
// -DPROPSIM_TRACE=OFF, emit() is an empty inline, counters stay zero and
// sinks only ever hold a header — and because the bus never touches the
// RNG or the event queue, simulation results are bit-identical in both
// build modes (tests/test_trace.cpp holds this).
//
// The bus is single-threaded by design: one bus per simulation, owned by
// whoever owns the Scheduler (parallel sweeps give each run its own).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/check.h"
#include "obs/events.h"

namespace propsim::obs {

/// True when the library was compiled with PROPSIM_TRACE (emission
/// paths active); mirrors analysis::paranoid_compiled_in().
constexpr bool trace_compiled_in() {
#ifdef PROPSIM_TRACE
  return true;
#else
  return false;
#endif
}

/// Bounded ring-buffer JSONL writer for the `propsim.trace` v1 schema:
/// one header line, then one object per event. Events accumulate in a
/// fixed-capacity buffer and are formatted + written in batches when it
/// wraps, so steady-state emission costs one struct copy; nothing is
/// ever dropped.
class TraceSink {
 public:
  static constexpr int kSchemaVersion = 1;

  explicit TraceSink(std::string path, std::size_t buffer_events = 8192);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// False when the file could not be opened for writing.
  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Writes the schema header line. Called once by EventBus::attach_sink.
  void begin(double phase_boundary_s);

  void append(const TraceEvent& event, TracePhase phase);

  /// Drains the buffer to the file (also called by close and on wrap).
  void flush();

  /// Flushes and closes; further appends are invalid. Idempotent.
  void close();

  /// Event lines written so far, buffered ones included (header excluded).
  std::uint64_t events_written() const { return appended_; }

 private:
  struct Record {
    TraceEvent event;
    TracePhase phase;
  };

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<Record> buffer_;
  std::size_t capacity_;
  std::uint64_t appended_ = 0;
  bool header_written_ = false;
};

/// Everything a finished run's observability adds up to; embedded in
/// ExperimentResult and serialized under the result JSON's "trace" key.
struct TraceSummary {
  bool compiled_in = trace_compiled_in();
  double phase_boundary_s = 0.0;
  std::uint64_t events = 0;
  std::array<std::uint64_t, kTracePhaseCount> events_by_phase{};
  std::array<std::array<std::uint64_t, kTraceEventKindCount>,
             kTracePhaseCount>
      by_phase_kind{};
  /// Wall-clock spent while the simulated clock was inside each phase
  /// (attributed at event granularity).
  double warmup_wall_ms = 0.0;
  double maintenance_wall_ms = 0.0;
  /// Sink output, when a sink was attached.
  std::string sink_path;
  std::uint64_t sink_events = 0;

  std::uint64_t count(TracePhase phase, TraceEventKind kind) const {
    return by_phase_kind[static_cast<std::size_t>(phase)]
                        [static_cast<std::size_t>(kind)];
  }
  std::uint64_t count(TraceEventKind kind) const {
    std::uint64_t total = 0;
    for (std::size_t p = 0; p < kTracePhaseCount; ++p) {
      total += by_phase_kind[p][static_cast<std::size_t>(kind)];
    }
    return total;
  }
};

class EventBus {
 public:
  /// Returns the current simulated time; emitted events are stamped with
  /// it. Typically `[&sim] { return sim.now(); }`.
  using Clock = std::function<double()>;

  EventBus();

  /// No clock => events are stamped 0.0 (build-time emission).
  void set_clock(Clock clock) { clock_ = std::move(clock); }

  /// Events with time < `boundary_s` are warm-up, the rest maintenance.
  /// The experiment sets this to MAX_INIT_TRIAL x INIT_TIMER for PROP
  /// runs; the default 0 classifies everything as maintenance.
  void set_phase_boundary(double boundary_s) {
    PROPSIM_CHECK(boundary_s >= 0.0);
    boundary_s_ = boundary_s;
  }
  double phase_boundary() const { return boundary_s_; }

  /// Streams every subsequent event into `sink` (not owned; must outlive
  /// the bus or be detached with nullptr). Writes the schema header.
  void attach_sink(TraceSink* sink);

  /// The one hot call. Compiled out entirely under PROPSIM_TRACE=OFF.
  void emit(TraceEventKind kind, std::uint32_t a = 0, std::uint32_t b = 0,
            double value = 0.0, std::uint64_t detail = 0) {
#ifdef PROPSIM_TRACE
    do_emit(kind, a, b, value, detail);
#else
    (void)kind;
    (void)a;
    (void)b;
    (void)value;
    (void)detail;
#endif
  }

  std::uint64_t total_events() const { return total_; }
  std::uint64_t count(TracePhase phase, TraceEventKind kind) const {
    return counters_[static_cast<std::size_t>(phase)]
                    [static_cast<std::size_t>(kind)];
  }
  std::uint64_t count(TraceEventKind kind) const {
    std::uint64_t total = 0;
    for (std::size_t p = 0; p < kTracePhaseCount; ++p) {
      total += counters_[p][static_cast<std::size_t>(kind)];
    }
    return total;
  }

  /// Stops the wall-clock phase timers (idempotent; later emissions keep
  /// counting but the timers stay frozen at the first finalize).
  void finalize();

  /// Counters + phase timers + sink stats as one value; finalizes.
  TraceSummary summary();

 private:
  using WallClock = std::chrono::steady_clock;

  void do_emit(TraceEventKind kind, std::uint32_t a, std::uint32_t b,
               double value, std::uint64_t detail);

  Clock clock_;
  double boundary_s_ = 0.0;
  TraceSink* sink_ = nullptr;
  std::array<std::array<std::uint64_t, kTraceEventKindCount>,
             kTracePhaseCount>
      counters_{};
  std::uint64_t total_ = 0;
  WallClock::time_point wall_start_;
  WallClock::time_point wall_transition_;
  bool transition_seen_ = false;
  double warmup_wall_ms_ = 0.0;
  double maintenance_wall_ms_ = 0.0;
  bool finalized_ = false;
};

}  // namespace propsim::obs
