// Typed simulation events for the observability layer.
//
// Every protocol action the paper's cost trajectories are built from —
// probe trials, random-walk hops, exchange attempt/commit/abort, flood
// and DHT lookup hops, membership churn, baseline optimizer rounds —
// maps to one TraceEventKind. Events are fixed-size PODs so the bus can
// count and buffer them with near-zero overhead; the JSONL sink gives
// them names from this header (the `propsim.trace` v1 vocabulary).
#pragma once

#include <cstdint>

namespace propsim::obs {

enum class TraceEventKind : std::uint8_t {
  kProbe,            // PROP probe trial started (a = initiator)
  kWalkHop,          // one TTL random-walk hop (a -> b)
  kExchangeAttempt,  // exchange plan evaluated (a, b; value = Var)
  kExchangeCommit,   // exchange applied (a, b; value = Var,
                     // detail = neighbors transferred, 0 for PROP-G)
  kExchangeAbort,    // attempt abandoned (a = initiator;
                     // detail = AbortReason)
  kFloodHop,         // unstructured flood edge traversal (a -> b)
  kLookupHop,        // structured (DHT) lookup hop (a -> b)
  kLookup,           // application lookup completed (a = src, b = dst;
                     // value = latency ms; detail = 1 if unreachable)
  kJoin,             // membership: slot a became active (detail = links)
  kLeave,            // membership: slot a departed gracefully
  kFail,             // membership: slot a crashed (detail = repair links)
  kLtmRound,         // one LTM detector round at a (detail = links changed)
  kLandmarkProbe,    // PIS landmark latency measurement (a = host,
                     // b = landmark; value = latency ms)
  kFaultLoss,        // injected message loss (a = from host, b = to host;
                     // detail = 1 random loss, 2 partition drop)
  kFaultCrash,       // injected crash executed (a = victim slot,
                     // b = negotiation counterpart, or the victim itself
                     // with detail = 1 for storm-driven failures)
  kPartitionStart,   // scheduled stub-domain partition opened
                     // (a = stub domain id)
  kPartitionEnd,     // scheduled stub-domain partition healed
                     // (a = stub domain id)
  kNegotiationTimeout,  // negotiation message lost, initiator timed out
                        // (a = initiator, b = counterpart;
                        // detail = retries already used)
  kAdversaryLie,     // byzantine var distortion flipped a MIN_VAR decision
                     // (a, b = endpoints; value = reported - true Var;
                     // detail = 1 lie forced the exchange, 2 vetoed it)
  kAdversaryDrop,    // selective dropper discarded the commit leg toward
                     // an honest victim (a = dropper, b = initiator)
  kEclipseCapture,   // eclipse attacker's host landed in a slot adjacent
                     // to the victim (a = captured slot, b = target)
  kStormStart,       // correlated-failure storm opened (a = stub domain;
                     // detail = victims enumerated in the window)
  kStormEnd,         // correlated-failure storm window closed
                     // (a = stub domain)
  kCount
};

/// Why an exchange attempt died, carried in TraceEvent::detail.
enum class AbortReason : std::uint64_t {
  kWalkFailure = 1,     // random walk could not reach nhops depth
  kNoPlan = 2,          // no applicable exchange between the endpoints
  kBelowMinVar = 3,     // plan rejected by the MIN_VAR gate
  kCommitConflict = 4,  // delayed commit invalidated by a concurrent change
  kMessageLost = 5,     // commit leg lost after prepare (fault injection)
  kNegotiationTimeout = 6,  // prepare retries exhausted (fault injection)
  kPeerCrashed = 7,     // endpoint crashed inside the two-phase window
  kPeerBusy = 8,        // counterpart already locked in another exchange
  kAdversaryDrop = 9,   // dropper discarded the commit leg (byzantine)
};

/// The paper's protocol phases: warm-up (nodes still inside their first
/// MAX_INIT_TRIAL probe trials, probing at the base rate) versus steady
/// maintenance. The bus classifies events by simulated time against a
/// per-run boundary (see EventBus::set_phase_boundary).
enum class TracePhase : std::uint8_t { kWarmup, kMaintenance, kCount };

struct TraceEvent {
  double time = 0.0;  // simulated seconds (stamped by the bus clock)
  TraceEventKind kind = TraceEventKind::kProbe;
  std::uint32_t a = 0;  // primary actor (slot or host id)
  std::uint32_t b = 0;  // counterpart, when the event has one
  double value = 0.0;   // kind-specific payload (Var, latency ms, ...)
  std::uint64_t detail = 0;  // kind-specific payload (counts, reasons)
};

inline constexpr std::size_t kTraceEventKindCount =
    static_cast<std::size_t>(TraceEventKind::kCount);
inline constexpr std::size_t kTracePhaseCount =
    static_cast<std::size_t>(TracePhase::kCount);

const char* to_string(TraceEventKind kind);
const char* to_string(TracePhase phase);

}  // namespace propsim::obs
