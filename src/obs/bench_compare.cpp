#include "obs/bench_compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace propsim::obs {
namespace {

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Fields that are identity/configuration, not performance: comparing
/// them as metrics would flag e.g. a seed change as a "regression".
bool is_identity_field(const std::string& path) {
  for (const char* token :
       {"seed", "version", "nodes", "queries", "domains", "quick",
        "horizon", "sample_interval", "boundary"}) {
    if (contains(path, token)) return true;
  }
  return false;
}

}  // namespace

const char* to_string(MetricDirection d) {
  switch (d) {
    case MetricDirection::kHigherIsBetter: return "higher-is-better";
    case MetricDirection::kLowerIsBetter: return "lower-is-better";
    case MetricDirection::kInformational: return "informational";
  }
  return "?";
}

MetricDirection metric_direction(const std::string& path) {
  if (is_identity_field(path)) return MetricDirection::kInformational;
  // Lower-is-better tokens first: "hierarchical_wall_ms" must not match
  // some future higher-better token by accident, and times/memory are
  // the overwhelmingly common gate metrics.
  for (const char* token : {"wall_ms", "build_ms", "rss", "latency",
                            "stretch", "messages", "conflicts",
                            "unreachable", "metric.final", "p50", "p95"}) {
    if (contains(path, token)) return MetricDirection::kLowerIsBetter;
  }
  if (ends_with(path, "_ms") || ends_with(path, "_mb")) {
    return MetricDirection::kLowerIsBetter;
  }
  for (const char* token :
       {"qps", "speedup", "improvement", "throughput"}) {
    if (contains(path, token)) return MetricDirection::kHigherIsBetter;
  }
  return MetricDirection::kInformational;
}

void flatten_numeric(const Json& value, const std::string& prefix,
                     std::map<std::string, double>& out) {
  if (value.is_number()) {
    out[prefix] = value.as_double();
    return;
  }
  if (value.is_object()) {
    for (const auto& [key, child] : value.object_items()) {
      flatten_numeric(child, prefix.empty() ? key : prefix + "." + key, out);
    }
    return;
  }
  if (value.is_array()) {
    std::size_t index = 0;
    for (const Json& child : value.array_items()) {
      flatten_numeric(child, prefix + "." + std::to_string(index), out);
      ++index;
    }
  }
}

std::size_t CompareReport::regressions() const {
  return static_cast<std::size_t>(
      std::count_if(deltas.begin(), deltas.end(),
                    [](const MetricDelta& d) { return d.regression; }));
}

std::string CompareReport::render(bool list_all) const {
  std::string out;
  char line[512];
  for (const std::string& e : errors) out += "error: " + e + "\n";
  for (const MetricDelta& d : deltas) {
    if (!d.regression && !list_all) continue;
    std::snprintf(line, sizeof(line),
                  "%s %s: %.6g -> %.6g (%+.1f%% worse, tolerance %.1f%%, "
                  "%s)\n",
                  d.regression ? "REGRESSION" : "ok        ", d.path.c_str(),
                  d.baseline, d.candidate, d.worsening_pct, d.tolerance_pct,
                  to_string(d.direction));
    out += line;
  }
  for (const std::string& r : required_failures) {
    out += "REQUIRED   " + r + "\n";
  }
  for (const std::string& n : notes) out += "note: " + n + "\n";
  std::snprintf(line, sizeof(line),
                "%zu metric(s) compared, %zu regression(s)\n", deltas.size(),
                regressions());
  out += line;
  return out;
}

CompareReport compare_metrics(const Json& baseline, const Json& candidate,
                              const CompareOptions& options) {
  CompareReport report;

  if (options.require_same_schema) {
    const Json* bs = baseline.find("schema");
    const Json* cs = candidate.find("schema");
    if (bs == nullptr || cs == nullptr || !bs->is_string() ||
        !cs->is_string() || bs->as_string() != cs->as_string()) {
      report.errors.push_back(
          "schema mismatch (pass --allow-schema-mismatch to compare "
          "anyway)");
      return report;
    }
  }

  std::map<std::string, double> base_metrics;
  std::map<std::string, double> cand_metrics;
  flatten_numeric(baseline, "", base_metrics);
  flatten_numeric(candidate, "", cand_metrics);

  std::size_t missing = 0;
  for (const auto& [path, base_value] : base_metrics) {
    const auto it = cand_metrics.find(path);
    if (it == cand_metrics.end()) {
      ++missing;
      continue;
    }
    MetricDelta d;
    d.path = path;
    d.baseline = base_value;
    d.candidate = it->second;
    d.direction = metric_direction(path);
    d.tolerance_pct = options.tolerance_pct;
    for (const auto& [needle, tolerance] : options.per_metric) {
      if (contains(path, needle.c_str())) {
        if (tolerance < 0.0) {
          d.direction = MetricDirection::kInformational;
        } else {
          d.tolerance_pct = tolerance;
        }
        break;
      }
    }
    if (d.direction != MetricDirection::kInformational) {
      if (d.baseline > 0.0) {
        const double delta_pct =
            100.0 * (d.candidate - d.baseline) / d.baseline;
        d.worsening_pct = d.direction == MetricDirection::kLowerIsBetter
                              ? delta_pct
                              : -delta_pct;
        d.regression = d.worsening_pct > d.tolerance_pct;
      } else if (d.baseline == 0.0 &&
                 d.direction == MetricDirection::kLowerIsBetter &&
                 d.candidate > 1e-9) {
        // A cost that was zero and no longer is: infinite worsening.
        d.worsening_pct = std::numeric_limits<double>::infinity();
        d.regression = true;
      } else {
        report.notes.push_back("non-positive baseline for " + path +
                               "; compared informationally");
        d.direction = MetricDirection::kInformational;
      }
    }
    report.deltas.push_back(std::move(d));
  }
  if (missing > 0) {
    report.notes.push_back(std::to_string(missing) +
                           " baseline metric(s) absent from candidate");
  }
  std::size_t fresh = 0;
  for (const auto& [path, value] : cand_metrics) {
    if (base_metrics.find(path) == base_metrics.end()) ++fresh;
  }
  if (fresh > 0) {
    report.notes.push_back(std::to_string(fresh) +
                           " candidate metric(s) absent from baseline");
  }

  // --require-metric: each needle must match a numeric path the
  // candidate actually carries, and the gate only covers what the
  // baseline carries too — so a candidate-only match is worth a warning
  // (a failure under strict_baseline: regenerate the baseline).
  for (const std::string& needle : options.require_metrics) {
    bool in_candidate = false;
    for (const auto& [path, value] : cand_metrics) {
      if (!contains(path, needle.c_str())) continue;
      in_candidate = true;
      if (base_metrics.find(path) != base_metrics.end()) continue;
      const std::string what = "required metric '" + needle +
                               "' matches candidate path '" + path +
                               "' that is missing from the baseline";
      if (options.strict_baseline) {
        report.required_failures.push_back(
            what + " (regenerate the baseline)");
      } else {
        report.notes.push_back(what + " (not gated; pass "
                               "--strict-baseline to fail instead)");
      }
    }
    if (!in_candidate) {
      report.required_failures.push_back(
          "required metric '" + needle +
          "' matches no numeric path in the candidate");
    }
  }
  return report;
}

}  // namespace propsim::obs
