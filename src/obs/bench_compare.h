// Perf-regression comparison between two propsim JSON artifacts.
//
// Understands any numeric document the tools emit — `propsim.bench.*`
// files (bench/perf_scaling's BENCH_oracle.json), `propsim.result` runs,
// `propsim.sweep` grids — by flattening both to dotted-path -> number
// maps and comparing paths present in both. Each metric gets a
// direction inferred from its name (qps up is good, wall_ms up is bad,
// unnamed metrics are informational) and a worsening tolerance in
// percent; any metric that worsens past its tolerance is a regression.
// tools/propsim_bench_compare is the CLI over this; CI's perf gates run
// it against the committed bench/baselines/ snapshots.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"

namespace propsim::obs {

enum class MetricDirection {
  kHigherIsBetter,   // throughputs, speedups, improvements
  kLowerIsBetter,    // times, memory, message counts
  kInformational,    // compared and reported, never gates
};

const char* to_string(MetricDirection d);

/// Direction of one flattened metric path, by name convention (the
/// whole dotted path is searched, case-sensitively; schemas emit
/// lowercase). See docs/OBSERVABILITY.md for the token table.
MetricDirection metric_direction(const std::string& path);

/// Flattens every number reachable from `value` into `out` as
/// "a.b.3.c" -> number (array indices become path segments). Booleans,
/// strings and nulls are skipped.
void flatten_numeric(const Json& value, const std::string& prefix,
                     std::map<std::string, double>& out);

struct CompareOptions {
  /// Worsening tolerance (percent) for every directional metric without
  /// an override. 25 means "fail when a metric is >25% worse".
  double tolerance_pct = 25.0;
  /// (path substring, tolerance) overrides; the first matching entry
  /// wins. A negative tolerance makes matching metrics informational.
  std::vector<std::pair<std::string, double>> per_metric;
  /// Require both documents to carry the same "schema" and "version".
  bool require_same_schema = true;
  /// Path substrings that must match at least one numeric metric in the
  /// candidate; a metric the candidate lost entirely fails the gate.
  /// Candidate matches with no baseline counterpart are warned about
  /// (the gate cannot compare them) — or fail, under strict_baseline.
  std::vector<std::string> require_metrics;
  /// Escalates "required metric present in candidate but missing from
  /// baseline" from a note to a failure, so a fresh bench field cannot
  /// silently bypass the gate until the baseline is regenerated.
  bool strict_baseline = false;
};

struct MetricDelta {
  std::string path;
  double baseline = 0.0;
  double candidate = 0.0;
  /// How much worse the candidate is, in percent of baseline, along the
  /// metric's direction (negative = improved). 0 for informational.
  double worsening_pct = 0.0;
  MetricDirection direction = MetricDirection::kInformational;
  double tolerance_pct = 0.0;
  bool regression = false;
};

struct CompareReport {
  std::vector<MetricDelta> deltas;  // every path present in both docs
  std::vector<std::string> notes;   // skipped/missing-metric diagnostics
  std::vector<std::string> errors;  // schema mismatch etc. => not ok
  /// --require-metric violations: needles the candidate does not carry,
  /// plus (under strict_baseline) candidate matches the baseline lacks.
  /// Gate failures like regressions, not invocation errors.
  std::vector<std::string> required_failures;
  std::size_t regressions() const;
  bool ok() const {
    return errors.empty() && regressions() == 0 &&
           required_failures.empty();
  }
  /// Human-readable multi-line report (regressions first).
  std::string render(bool list_all = false) const;
};

CompareReport compare_metrics(const Json& baseline, const Json& candidate,
                              const CompareOptions& options);

}  // namespace propsim::obs
