#include "obs/event_bus.h"

namespace propsim::obs {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kProbe: return "probe";
    case TraceEventKind::kWalkHop: return "walk-hop";
    case TraceEventKind::kExchangeAttempt: return "exchange-attempt";
    case TraceEventKind::kExchangeCommit: return "exchange-commit";
    case TraceEventKind::kExchangeAbort: return "exchange-abort";
    case TraceEventKind::kFloodHop: return "flood-hop";
    case TraceEventKind::kLookupHop: return "lookup-hop";
    case TraceEventKind::kLookup: return "lookup";
    case TraceEventKind::kJoin: return "join";
    case TraceEventKind::kLeave: return "leave";
    case TraceEventKind::kFail: return "fail";
    case TraceEventKind::kLtmRound: return "ltm-round";
    case TraceEventKind::kLandmarkProbe: return "landmark-probe";
    case TraceEventKind::kFaultLoss: return "fault-loss";
    case TraceEventKind::kFaultCrash: return "fault-crash";
    case TraceEventKind::kPartitionStart: return "partition-start";
    case TraceEventKind::kPartitionEnd: return "partition-end";
    case TraceEventKind::kNegotiationTimeout: return "negotiation-timeout";
    case TraceEventKind::kAdversaryLie: return "adversary-lie";
    case TraceEventKind::kAdversaryDrop: return "adversary-drop";
    case TraceEventKind::kEclipseCapture: return "eclipse-capture";
    case TraceEventKind::kStormStart: return "storm-start";
    case TraceEventKind::kStormEnd: return "storm-end";
    case TraceEventKind::kCount: break;
  }
  return "?";
}

const char* to_string(TracePhase phase) {
  switch (phase) {
    case TracePhase::kWarmup: return "warmup";
    case TracePhase::kMaintenance: return "maintenance";
    case TracePhase::kCount: break;
  }
  return "?";
}

// ------------------------------------------------------------- TraceSink

TraceSink::TraceSink(std::string path, std::size_t buffer_events)
    : path_(std::move(path)),
      capacity_(buffer_events > 0 ? buffer_events : 1) {
  file_ = std::fopen(path_.c_str(), "w");
  buffer_.reserve(capacity_);
}

TraceSink::~TraceSink() { close(); }

void TraceSink::begin(double phase_boundary_s) {
  if (file_ == nullptr || header_written_) return;
  header_written_ = true;
  std::string kinds;
  for (std::size_t k = 0; k < kTraceEventKindCount; ++k) {
    if (!kinds.empty()) kinds += ',';
    kinds += '"';
    kinds += to_string(static_cast<TraceEventKind>(k));
    kinds += '"';
  }
  std::fprintf(file_,
               "{\"schema\":\"propsim.trace\",\"version\":%d,"
               "\"phase_boundary_s\":%.17g,"
               "\"phases\":[\"warmup\",\"maintenance\"],"
               "\"kinds\":[%s]}\n",
               kSchemaVersion, phase_boundary_s, kinds.c_str());
}

void TraceSink::append(const TraceEvent& event, TracePhase phase) {
  if (file_ == nullptr) return;
  buffer_.push_back(Record{event, phase});
  ++appended_;
  if (buffer_.size() >= capacity_) flush();
}

void TraceSink::flush() {
  if (file_ == nullptr) return;
  char line[256];
  for (const Record& r : buffer_) {
    const int n = std::snprintf(
        line, sizeof(line),
        "{\"t\":%.17g,\"kind\":\"%s\",\"phase\":\"%s\",\"a\":%u,\"b\":%u,"
        "\"value\":%.17g,\"detail\":%llu}\n",
        r.event.time, to_string(r.event.kind), to_string(r.phase), r.event.a,
        r.event.b, r.event.value,
        static_cast<unsigned long long>(r.event.detail));
    if (n > 0) {
      std::fwrite(line, 1, static_cast<std::size_t>(n), file_);
    }
  }
  buffer_.clear();
}

void TraceSink::close() {
  if (file_ == nullptr) return;
  flush();
  std::fclose(file_);
  file_ = nullptr;
}

// -------------------------------------------------------------- EventBus

EventBus::EventBus() : wall_start_(WallClock::now()) {}

void EventBus::attach_sink(TraceSink* sink) {
  sink_ = sink;
  if (sink_ != nullptr) sink_->begin(boundary_s_);
}

void EventBus::do_emit(TraceEventKind kind, std::uint32_t a, std::uint32_t b,
                       double value, std::uint64_t detail) {
  PROPSIM_DCHECK(kind != TraceEventKind::kCount);
  TraceEvent event;
  event.time = clock_ ? clock_() : 0.0;
  event.kind = kind;
  event.a = a;
  event.b = b;
  event.value = value;
  event.detail = detail;
  const TracePhase phase = event.time < boundary_s_
                               ? TracePhase::kWarmup
                               : TracePhase::kMaintenance;
  ++counters_[static_cast<std::size_t>(phase)]
             [static_cast<std::size_t>(kind)];
  ++total_;
  if (phase == TracePhase::kMaintenance && !transition_seen_) {
    transition_seen_ = true;
    wall_transition_ = WallClock::now();
  }
  if (sink_ != nullptr) sink_->append(event, phase);
}

void EventBus::finalize() {
  if (finalized_) return;
  finalized_ = true;
  const WallClock::time_point end = WallClock::now();
  using MsDouble = std::chrono::duration<double, std::milli>;
  if (transition_seen_) {
    warmup_wall_ms_ = MsDouble(wall_transition_ - wall_start_).count();
    maintenance_wall_ms_ = MsDouble(end - wall_transition_).count();
  } else {
    // The run never crossed the boundary: with a boundary set everything
    // was warm-up; without one (boundary 0) it was all maintenance.
    const double total_ms = MsDouble(end - wall_start_).count();
    if (boundary_s_ > 0.0) {
      warmup_wall_ms_ = total_ms;
    } else {
      maintenance_wall_ms_ = total_ms;
    }
  }
  if (sink_ != nullptr) sink_->flush();
}

TraceSummary EventBus::summary() {
  finalize();
  TraceSummary s;
  s.phase_boundary_s = boundary_s_;
  s.events = total_;
  for (std::size_t p = 0; p < kTracePhaseCount; ++p) {
    for (std::size_t k = 0; k < kTraceEventKindCount; ++k) {
      s.by_phase_kind[p][k] = counters_[p][k];
      s.events_by_phase[p] += counters_[p][k];
    }
  }
  s.warmup_wall_ms = warmup_wall_ms_;
  s.maintenance_wall_ms = maintenance_wall_ms_;
  if (sink_ != nullptr) {
    s.sink_path = sink_->path();
    s.sink_events = sink_->events_written();
  }
  return s;
}

}  // namespace propsim::obs
