#include "can/can_space.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace propsim {
namespace {

/// Wrap-around distance between two scalar coordinates on [0, kCanSpan).
CanCoord wrap_distance(CanCoord a, CanCoord b) {
  const CanCoord d = (a > b) ? a - b : b - a;
  return std::min(d, kCanSpan - d);
}

/// Torus distance from coordinate x to the half-open interval [lo, hi).
CanCoord coord_to_interval(CanCoord x, CanCoord lo, CanCoord hi) {
  if (x >= lo && x < hi) return 0;
  return std::min(wrap_distance(x, lo), wrap_distance(x, hi - 1));
}

/// L1 torus distance from point p to zone z (0 when contained); the
/// monotone potential greedy routing descends.
double point_to_zone(const CanPoint& p, const CanZone& z) {
  double total = 0.0;
  for (std::size_t d = 0; d < kCanDims; ++d) {
    total += static_cast<double>(coord_to_interval(p[d], z.lo[d], z.hi[d]));
  }
  return total;
}

/// True if [alo, ahi) and [blo, bhi) share positive-length overlap,
/// including across the torus seam (intervals themselves never wrap).
bool intervals_overlap(CanCoord alo, CanCoord ahi, CanCoord blo,
                       CanCoord bhi) {
  return alo < bhi && blo < ahi;
}

/// True if the intervals abut: one's hi is the other's lo, possibly
/// across the seam (hi == kCanSpan meets lo == 0).
bool intervals_abut(CanCoord alo, CanCoord ahi, CanCoord blo, CanCoord bhi) {
  auto meets = [](CanCoord hi, CanCoord lo) {
    return hi == lo || (hi == kCanSpan && lo == 0);
  };
  return meets(ahi, blo) || meets(bhi, alo);
}

}  // namespace

bool CanZone::contains(const CanPoint& p) const {
  for (std::size_t d = 0; d < kCanDims; ++d) {
    if (p[d] < lo[d] || p[d] >= hi[d]) return false;
  }
  return true;
}

CanPoint CanZone::center() const {
  CanPoint c;
  for (std::size_t d = 0; d < kCanDims; ++d) {
    c[d] = lo[d] + extent(d) / 2;
  }
  return c;
}

double CanZone::volume_fraction() const {
  double v = 1.0;
  for (std::size_t d = 0; d < kCanDims; ++d) {
    v *= static_cast<double>(extent(d)) / static_cast<double>(kCanSpan);
  }
  return v;
}

double torus_distance(const CanPoint& a, const CanPoint& b) {
  double total = 0.0;
  for (std::size_t d = 0; d < kCanDims; ++d) {
    total += static_cast<double>(wrap_distance(a[d], b[d]));
  }
  return total;
}

bool zones_adjacent(const CanZone& a, const CanZone& b) {
  // Exactly one dimension abuts; all others overlap.
  std::size_t abutting = 0;
  for (std::size_t d = 0; d < kCanDims; ++d) {
    const bool overlap =
        intervals_overlap(a.lo[d], a.hi[d], b.lo[d], b.hi[d]);
    const bool abut = intervals_abut(a.lo[d], a.hi[d], b.lo[d], b.hi[d]);
    if (overlap) continue;
    if (abut) {
      ++abutting;
      continue;
    }
    return false;  // neither overlapping nor touching in this dimension
  }
  return abutting == 1;
}

CanSpace::CanSpace(std::size_t reserve_hint) {
  zones_.reserve(reserve_hint);
  neighbors_.reserve(reserve_hint);
}

CanSpace CanSpace::build(std::size_t slot_count, Rng& rng) {
  PROPSIM_CHECK(slot_count >= 2);
  CanSpace space(slot_count);
  CanZone whole;
  whole.lo.fill(0);
  whole.hi.fill(kCanSpan);
  space.zones_.push_back(whole);

  while (space.zones_.size() < slot_count) {
    // A uniformly random point lands in a zone with probability equal to
    // its volume — exactly CAN's join rule, which keeps the partition
    // statistically balanced.
    CanPoint p;
    for (std::size_t d = 0; d < kCanDims; ++d) {
      p[d] = rng.uniform(kCanSpan);
    }
    const SlotId victim = space.owner_of(p);
    CanZone& zone = space.zones_[victim];

    // Split along the widest dimension so zones stay close to square.
    std::size_t dim = 0;
    for (std::size_t d = 1; d < kCanDims; ++d) {
      if (zone.extent(d) > zone.extent(dim)) dim = d;
    }
    if (zone.extent(dim) < 2) continue;  // unsplittable sliver; re-draw

    const CanCoord mid = zone.lo[dim] + zone.extent(dim) / 2;
    CanZone upper = zone;
    upper.lo[dim] = mid;
    zone.hi[dim] = mid;
    space.zones_.push_back(upper);
  }
  space.rebuild_neighbors();
  return space;
}

void CanSpace::rebuild_neighbors() {
  const std::size_t n = zones_.size();
  neighbors_.assign(n, {});
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (zones_adjacent(zones_[a], zones_[b])) {
        neighbors_[a].push_back(static_cast<SlotId>(b));
        neighbors_[b].push_back(static_cast<SlotId>(a));
      }
    }
  }
}

SlotId CanSpace::owner_of(const CanPoint& p) const {
  for (std::size_t s = 0; s < zones_.size(); ++s) {
    if (zones_[s].contains(p)) return static_cast<SlotId>(s);
  }
  PROPSIM_CHECK(false && "CAN zones must tile the space");
  return kInvalidSlot;
}

std::vector<SlotId> CanSpace::route_path(SlotId source,
                                         const CanPoint& target) const {
  PROPSIM_CHECK(source < zones_.size());
  std::vector<SlotId> path{source};
  SlotId here = source;
  double here_dist = point_to_zone(target, zones_[here]);
  while (here_dist > 0.0) {
    SlotId best = kInvalidSlot;
    double best_dist = here_dist;
    for (const SlotId nb : neighbors_[here]) {
      const double d = point_to_zone(target, zones_[nb]);
      if (d < best_dist) {
        best = nb;
        best_dist = d;
      }
    }
    // The zone crossed next by the geodesic toward the target abuts this
    // one, so a strictly closer neighbor always exists.
    PROPSIM_CHECK(best != kInvalidSlot);
    here = best;
    here_dist = best_dist;
    path.push_back(here);
  }
  return path;
}

LogicalGraph CanSpace::to_logical_graph() const {
  LogicalGraph g(zones_.size());
  for (std::size_t a = 0; a < zones_.size(); ++a) {
    for (const SlotId b : neighbors_[a]) {
      if (b > static_cast<SlotId>(a)) {
        g.add_edge(static_cast<SlotId>(a), b);
      }
    }
  }
  return g;
}

bool CanSpace::validate() const {
  double volume = 0.0;
  for (const CanZone& z : zones_) {
    for (std::size_t d = 0; d < kCanDims; ++d) {
      if (z.lo[d] >= z.hi[d] || z.hi[d] > kCanSpan) return false;
    }
    volume += z.volume_fraction();
  }
  if (std::abs(volume - 1.0) > 1e-9) return false;
  for (std::size_t a = 0; a < zones_.size(); ++a) {
    for (std::size_t b = 0; b < zones_.size(); ++b) {
      if (a == b) continue;
      const bool adj = zones_adjacent(zones_[a], zones_[b]);
      const auto& na = neighbors_[a];
      const bool listed =
          std::find(na.begin(), na.end(), static_cast<SlotId>(b)) != na.end();
      if (adj != listed) return false;
    }
  }
  return true;
}

OverlayNetwork make_can_overlay(const CanSpace& space,
                                std::span<const NodeId> hosts,
                                const LatencyOracle& oracle,
                                obs::EventBus* trace) {
  PROPSIM_CHECK(hosts.size() == space.size());
  LogicalGraph graph = space.to_logical_graph();
  Placement placement(graph.slot_count(), oracle.physical().node_count());
  for (SlotId s = 0; s < graph.slot_count(); ++s) {
    placement.bind(s, hosts[s]);
  }
  OverlayNetwork net(std::move(graph), std::move(placement), oracle);
  net.set_trace(trace);
  if (trace != nullptr) {
    for (const SlotId s : net.graph().active_slots()) {
      trace->emit(obs::TraceEventKind::kJoin, s, net.placement().host_of(s));
    }
  }
  return net;
}

}  // namespace propsim
