// Content-Addressable Network (CAN) over a d-dimensional torus.
//
// Zones are axis-aligned boxes in a fixed-point coordinate space
// [0, 2^32)^d; joins split an existing zone at its midpoint along a
// round-robin dimension, so all coordinates stay exact dyadic values —
// adjacency tests are integer comparisons, never epsilon games.
//
// As with Chord, zones belong to *slots*; PROP-G swaps the hosts bound to
// two zones without touching the space partition.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "overlay/logical_graph.h"
#include "overlay/overlay_network.h"
#include "topology/latency_oracle.h"

namespace propsim {

using CanCoord = std::uint64_t;
/// Coordinates live in [0, kCanSpan) per dimension.
constexpr CanCoord kCanSpan = CanCoord{1} << 32;

constexpr std::size_t kCanDims = 2;
using CanPoint = std::array<CanCoord, kCanDims>;

/// Half-open box [lo, hi) per dimension; boxes never wrap internally
/// (only neighbor tests wrap across the torus seam).
struct CanZone {
  CanPoint lo;
  CanPoint hi;

  CanCoord extent(std::size_t dim) const { return hi[dim] - lo[dim]; }
  bool contains(const CanPoint& p) const;
  CanPoint center() const;
  /// Fraction of the full torus volume this zone covers.
  double volume_fraction() const;
};

/// Torus distance between two points (L1 over per-dimension wrap-around
/// distances), used by greedy routing.
double torus_distance(const CanPoint& a, const CanPoint& b);

/// True if the zones abut across exactly one dimension and overlap in all
/// others (the CAN neighbor relation), including across the torus seam.
bool zones_adjacent(const CanZone& a, const CanZone& b);

class CanSpace {
 public:
  /// Builds an n-zone CAN by n-1 random joins: each join picks a uniform
  /// random point and splits the owning zone at its midpoint along the
  /// dimension with the largest extent (ties -> lowest dim).
  static CanSpace build(std::size_t slot_count, Rng& rng);

  std::size_t size() const { return zones_.size(); }
  const CanZone& zone(SlotId s) const { return zones_[s]; }
  std::span<const SlotId> neighbors(SlotId s) const { return neighbors_[s]; }

  /// Slot owning point p (exactly one, since zones tile the torus).
  SlotId owner_of(const CanPoint& p) const;

  /// Greedy routing from `source` to the owner of `target`: each hop
  /// moves to the neighbor whose zone center is torus-closest to the
  /// target. Returns the slot path.
  std::vector<SlotId> route_path(SlotId source, const CanPoint& target) const;

  /// Neighbor relation as an undirected logical graph.
  LogicalGraph to_logical_graph() const;

  /// Audit: zones tile the space (volumes sum to 1) and the neighbor
  /// lists are symmetric and complete. O(n^2); for tests.
  bool validate() const;

 private:
  explicit CanSpace(std::size_t reserve_hint);
  void rebuild_neighbors();

  std::vector<CanZone> zones_;
  std::vector<std::vector<SlotId>> neighbors_;
};

/// OverlayNetwork over a CAN: slot i bound to hosts[i].
OverlayNetwork make_can_overlay(const CanSpace& space,
                                std::span<const NodeId> hosts,
                                const LatencyOracle& oracle,
                                obs::EventBus* trace = nullptr);

}  // namespace propsim
