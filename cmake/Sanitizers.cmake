# Sanitizer wiring for all propsim targets.
#
# PROPSIM_SANITIZE is a semicolon- or comma-separated subset of
# {address, undefined, thread, leak}:
#
#   cmake -B build -DPROPSIM_SANITIZE=address,undefined
#   cmake -B build -DPROPSIM_SANITIZE=thread
#
# thread is mutually exclusive with address/leak (the runtimes cannot be
# linked together). Flags are applied globally (add_compile_options) so
# every library, test, bench and tool in the build is instrumented —
# mixing instrumented and uninstrumented TUs produces false negatives.
#
# Suppression files live in tools/sanitizers/; CMakePresets.json exports
# the matching *SAN_OPTIONS so `ctest --preset asan-ubsan` picks them up
# without shell setup.

set(PROPSIM_SANITIZE "" CACHE STRING
  "Sanitizers to enable: comma/semicolon list of address;undefined;thread;leak")

if(PROPSIM_SANITIZE)
  string(REPLACE "," ";" _propsim_san_list "${PROPSIM_SANITIZE}")

  set(_propsim_san_flags "")
  foreach(_san IN LISTS _propsim_san_list)
    string(STRIP "${_san}" _san)
    string(TOLOWER "${_san}" _san)
    if(_san STREQUAL "address")
      list(APPEND _propsim_san_flags -fsanitize=address)
    elseif(_san STREQUAL "undefined")
      list(APPEND _propsim_san_flags -fsanitize=undefined)
    elseif(_san STREQUAL "thread")
      list(APPEND _propsim_san_flags -fsanitize=thread)
    elseif(_san STREQUAL "leak")
      list(APPEND _propsim_san_flags -fsanitize=leak)
    else()
      message(FATAL_ERROR "PROPSIM_SANITIZE: unknown sanitizer '${_san}' "
        "(expected address, undefined, thread or leak)")
    endif()
  endforeach()

  if("-fsanitize=thread" IN_LIST _propsim_san_flags AND
     ("-fsanitize=address" IN_LIST _propsim_san_flags OR
      "-fsanitize=leak" IN_LIST _propsim_san_flags))
    message(FATAL_ERROR
      "PROPSIM_SANITIZE: thread cannot be combined with address/leak")
  endif()

  # Frame pointers keep sanitizer stack traces readable; O1 keeps TSan
  # runs fast enough for the full test suite without optimizing away the
  # races it is meant to see.
  list(APPEND _propsim_san_flags -fno-omit-frame-pointer)

  add_compile_options(${_propsim_san_flags})
  add_link_options(${_propsim_san_flags})

  message(STATUS "propsim: sanitizers enabled: ${PROPSIM_SANITIZE}")
endif()
