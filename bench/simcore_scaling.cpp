// simcore_scaling — scheduler-core scaling bench (not a paper figure).
//
// Measures the domain-sharded scheduler on a transit-stub event workload
// at shard counts 1/2/4/8 over one physical topology. Full scale builds
// an n >= 1M transit-stub network (25 transit domains x 5 transit nodes,
// 4 x 2000-node stub domains per transit node = 1,000,125 nodes / 500
// stub domains) and drives ~5M events through it per run: one
// self-rescheduling event chain per stub domain, each owning its own
// Rng, pinned to its domain's shard, with a 10% chance per hop of
// pinning the next event to a random other domain (cross-shard handoff
// traffic) and a 5% chance of a zero-delay hop (equal-time FIFO
// pressure).
//
// Every run folds (chain id, sequence number, sim clock bits) into an
// FNV-1a checksum *in execution order*. The sharded core's contract is
// bit-identical execution at any shard count, so all four checksums
// must match the serial run exactly — the bench exits non-zero if they
// do not. Wall-clock, resident memory, and event throughput go to
// stdout and to BENCH_simcore.json (stable schema
// `propsim.bench.simcore`, version 2: adds the `hardware` stanza and
// the drain gate; the checksum is emitted as a hex string so baseline
// comparison treats it as schema, not as a drifting numeric).
//
// The drain gate bounds the sharded core's window-drain overhead: on a
// host with >= 4 hardware threads, the 4-shard run must finish within
// 1.25x the serial wall-clock (the sharded core keeps determinism by
// draining bounded windows, so it is not expected to *beat* serial on
// this handoff-heavy workload — but it must not collapse). On smaller
// hosts the ratio is reported informationally.
//
// `--quick` shrinks to 120,024 nodes / 120 stub domains and ~300k
// events per run so the bench fits in CI time.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "sim/serial_scheduler.h"
#include "sim/sharded_scheduler.h"
#include "topology/transit_stub.h"

namespace propsim::bench {
namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

/// Peak resident set of this process so far, in MiB (ru_maxrss is KiB on
/// Linux).
double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Current resident set in MiB via /proc/self/statm (Linux); 0 if
/// unreadable.
double current_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long pages = 0, resident = 0;
  const int got = std::fscanf(f, "%ld %ld", &pages, &resident);
  std::fclose(f);
  if (got != 2) return 0.0;
  const long page_kb = sysconf(_SC_PAGESIZE) / 1024;
  return static_cast<double>(resident * page_kb) / 1024.0;
}

struct SimScale {
  std::size_t transit_domains;
  std::size_t transit_nodes_per_domain;
  std::size_t stub_domains_per_transit;
  std::size_t nodes_per_stub;
  double stub_edge_probability;  // scaled down so edges stay O(nodes)
  std::uint64_t events_per_domain;
};

TransitStubConfig scaled_config(const SimScale& scale) {
  TransitStubConfig config = TransitStubConfig::ts_large();
  config.transit_domains = scale.transit_domains;
  config.transit_nodes_per_domain = scale.transit_nodes_per_domain;
  config.stub_domains_per_transit = scale.stub_domains_per_transit;
  config.nodes_per_stub = scale.nodes_per_stub;
  config.stub_edge_probability = scale.stub_edge_probability;
  return config;
}

/// One self-rescheduling event chain bound to a stub domain. The chain
/// object (and its Rng) stays put; "hopping" only changes which shard
/// the next event is pinned to, so cross-domain hops become cross-shard
/// handoff traffic without perturbing the RNG stream.
class SimWorkload {
 public:
  SimWorkload(Scheduler& sim, std::size_t domains, std::uint64_t seed,
              std::uint64_t events_per_domain)
      : sim_(sim), domains_(domains) {
    chains_.reserve(domains);
    for (std::size_t d = 0; d < domains; ++d) {
      chains_.push_back(Chain{
          Rng(seed + 0x9e3779b97f4a7c15ULL * (d + 1)),
          static_cast<std::uint32_t>(d), events_per_domain, 0});
    }
  }

  void start() {
    for (Chain& chain : chains_) schedule_next(chain);
  }

  std::uint64_t checksum() const { return checksum_; }
  std::uint64_t fired() const { return fired_; }

 private:
  struct Chain {
    Rng rng;
    std::uint32_t id;
    std::uint64_t remaining;
    std::uint64_t seq;
  };

  void schedule_next(Chain& chain) {
    if (chain.remaining == 0) return;
    --chain.remaining;
    // Mostly stay home; sometimes pin the next hop to another domain's
    // shard so the window machinery sees real handoff traffic.
    const std::uint32_t target =
        chain.rng.bernoulli(0.1)
            ? static_cast<std::uint32_t>(chain.rng.uniform(domains_))
            : chain.id;
    const double delay = chain.rng.bernoulli(0.05)
                             ? 0.0
                             : chain.rng.uniform_double(0.0005, 0.5);
    Chain* c = &chain;  // chains_ never reallocates after construction
    sim_.schedule_in(delay, sim_.shard_of(target), [this, c] { fire(*c); });
  }

  void fire(Chain& chain) {
    ++fired_;
    mix(chain.id);
    mix(chain.seq++);
    mix(std::bit_cast<std::uint64_t>(sim_.now()));
    schedule_next(chain);
  }

  void mix(std::uint64_t v) {
    // FNV-1a over the value's bytes; order-sensitive, so equal checksums
    // mean equal execution order, clocks included.
    for (int b = 0; b < 8; ++b) {
      checksum_ ^= (v >> (8 * b)) & 0xFF;
      checksum_ *= 1099511628211ULL;
    }
  }

  Scheduler& sim_;
  std::size_t domains_;
  std::vector<Chain> chains_;
  std::uint64_t checksum_ = 14695981039346656037ULL;
  std::uint64_t fired_ = 0;
};

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

struct RunResult {
  std::size_t shards = 0;
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  double throughput = 0.0;  // events per second
  double rss_mb = 0.0;
  std::uint64_t checksum = 0;
};

RunResult run_one(std::size_t shards, double window_s, std::size_t domains,
                  std::uint64_t seed, std::uint64_t events_per_domain) {
  std::unique_ptr<Scheduler> sim_owner;
  if (shards > 1) {
    sim_owner = std::make_unique<ShardedScheduler>(shards, window_s);
  } else {
    sim_owner = std::make_unique<SerialScheduler>();
  }
  Scheduler& sim = *sim_owner;

  // Slot namespace here is the stub-domain index itself: chain d pins to
  // shard d % shards, matching the app's domain-major assignment.
  std::vector<ShardId> map(domains);
  for (std::size_t d = 0; d < domains; ++d) {
    map[d] = static_cast<ShardId>(d % std::max<std::size_t>(shards, 1));
  }
  sim.set_shard_map(std::move(map));

  SimWorkload workload(sim, domains, seed, events_per_domain);
  const double start = now_ms();
  workload.start();
  sim.run_until(1e12);

  RunResult r;
  r.shards = shards;
  r.events = workload.fired();
  r.wall_ms = now_ms() - start;
  r.throughput =
      r.wall_ms > 0.0
          ? 1000.0 * static_cast<double>(r.events) / r.wall_ms
          : 0.0;
  r.rss_mb = current_rss_mb();
  r.checksum = workload.checksum();
  return r;
}

int run(const BenchOptions& opts) {
  // Full: 25*5*(1 + 4*2000) = 1,000,125 nodes / 500 stub domains, 5M
  // events per run. Quick: 6*4*(1 + 5*1000) = 120,024 nodes / 120 stub
  // domains, 300k events per run.
  const SimScale scale =
      opts.quick ? SimScale{6, 4, 5, 1000, 0.005, 2500}
                 : SimScale{25, 5, 4, 2000, 0.002, 10000};
  const TransitStubConfig config = scaled_config(scale);

  print_header(
      "simcore_scaling: domain-sharded scheduler at 1/2/4/8 shards",
      "sharded execution is bit-identical to serial at every shard count");

  std::printf("building transit-stub topology: %zu nodes, %zu stub "
              "domains\n",
              config.total_nodes(),
              config.transit_domains * config.transit_nodes_per_domain *
                  config.stub_domains_per_transit);
  Rng rng(opts.seed + 211);
  const double build_start = now_ms();
  const TransitStubTopology topo = make_transit_stub(config, rng);
  const double build_ms = now_ms() - build_start;
  std::printf("built in %.0f ms (%zu edges, rss %.1f MiB)\n", build_ms,
              topo.graph.edge_count(), current_rss_mb());

  const std::size_t domains = topo.stub_domain_count;
  const double window_s = ShardedScheduler::kDefaultWindowS;
  const std::size_t shard_counts[] = {1, 2, 4, 8};

  const std::size_t cores = std::thread::hardware_concurrency();
  constexpr double kMaxDrainRatio4s = 1.25;

  Json doc = Json::object();
  doc.set("schema", "propsim.bench.simcore");
  doc.set("version", 2);
  doc.set("quick", opts.quick);
  doc.set("seed", opts.seed);
  doc.set("hardware", hardware_info());
  doc.set("window_s", window_s);
  doc.set("max_drain_ratio_4s", kMaxDrainRatio4s);

  Json topology = Json::object();
  topology.set("nodes", static_cast<std::uint64_t>(config.total_nodes()))
      .set("stub_domains", static_cast<std::uint64_t>(domains))
      .set("edges", static_cast<std::uint64_t>(topo.graph.edge_count()))
      .set("build_ms", build_ms);
  doc.set("topology", std::move(topology));

  Json rows = Json::array();
  bool bit_identical = true;
  std::uint64_t serial_checksum = 0;
  std::uint64_t serial_events = 0;
  double serial_wall_ms = 0.0;
  double wall_4s_ms = 0.0;
  for (const std::size_t shards : shard_counts) {
    const RunResult r = run_one(shards, window_s, domains, opts.seed,
                                scale.events_per_domain);
    if (shards == 4) wall_4s_ms = r.wall_ms;
    if (shards == 1) {
      serial_checksum = r.checksum;
      serial_events = r.events;
      serial_wall_ms = r.wall_ms;
    } else {
      bit_identical = bit_identical && r.checksum == serial_checksum &&
                      r.events == serial_events;
    }
    std::printf("  shards %zu: %llu events in %.0f ms (%.0f events/s, "
                "rss %.1f MiB, checksum %s)\n",
                shards, static_cast<unsigned long long>(r.events),
                r.wall_ms, r.throughput, r.rss_mb,
                hex64(r.checksum).c_str());
    Json row = Json::object();
    row.set("shards", static_cast<std::uint64_t>(r.shards))
        .set("events", r.events)
        .set("wall_ms", r.wall_ms)
        .set("throughput", r.throughput)
        .set("rss_mb", r.rss_mb)
        .set("checksum", hex64(r.checksum));
    rows.push_back(std::move(row));
  }
  doc.set("runs", std::move(rows));
  doc.set("bit_identical", bit_identical);

  // Drain gate: 4-shard wall-clock relative to serial. Hard gate on
  // multicore hosts, informational on smaller ones.
  const double drain_ratio_4s =
      serial_wall_ms > 0.0 ? wall_4s_ms / serial_wall_ms : 0.0;
  const bool gate_drain_checked = cores >= 4;
  bool drain_ok = true;
  std::printf("  drain ratio (4 shards / serial): %.3f (%s, ceiling "
              "%.2f)\n",
              drain_ratio_4s,
              gate_drain_checked ? "gated" : "informational",
              kMaxDrainRatio4s);
  if (gate_drain_checked && drain_ratio_4s > kMaxDrainRatio4s) {
    std::printf("  drain gate FAILED: %.3f > %.2f\n", drain_ratio_4s,
                kMaxDrainRatio4s);
    drain_ok = false;
  }
  doc.set("drain_ratio_4s", drain_ratio_4s);
  doc.set("gate_drain_checked", gate_drain_checked);
  const bool pass = bit_identical && drain_ok;
  doc.set("pass", pass);
  doc.set("peak_rss_mb", peak_rss_mb());

  const std::string out = doc.dump(2);
  if (std::FILE* f = std::fopen("BENCH_simcore.json", "w")) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_simcore.json (peak rss %.1f MiB)\n",
                peak_rss_mb());
  } else {
    std::fprintf(stderr, "could not write BENCH_simcore.json\n");
    return 1;
  }

  print_verdict(pass,
                pass ? (gate_drain_checked
                            ? "all shard counts replayed the serial "
                              "checksum; drain gate holds"
                            : "all shard counts replayed the serial "
                              "checksum (drain gate informational)")
                     : (bit_identical
                            ? "drain gate failed: 4-shard run too far "
                              "behind serial"
                            : "checksum mismatch: sharded execution "
                              "diverged"));
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  const auto opts = propsim::bench::parse_options(argc, argv);
  return propsim::bench::run(opts);
}
