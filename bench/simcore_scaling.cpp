// simcore_scaling — scheduler-core scaling bench (not a paper figure).
//
// Measures the domain-sharded scheduler on a transit-stub event workload
// at shard counts 1/2/4/8 over one physical topology, then repeats the
// sharded counts with speculative shard-local execution armed. Full
// scale builds an n >= 1M transit-stub network (25 transit domains x 5
// transit nodes, 4 x 2000-node stub domains per transit node =
// 1,000,125 nodes / 500 stub domains) and drives ~10M events through it
// per run: per stub domain, one *global* self-rescheduling chain (10%
// chance per hop of pinning the next event to a random other domain —
// cross-shard handoff traffic — and a 5% chance of a zero-delay hop)
// plus one *shard-local* chain that never leaves its domain's shard and
// is scheduled Locality::kShardLocal, giving the speculative runs real
// in-window work to overlap.
//
// Every chain folds (chain id, sequence number, sim clock bits) into
// its own FNV-1a checksum *in its own execution order*; the run
// checksum folds the per-chain sums in chain-index order. Per-chain
// accumulation is what makes the workload speculation-safe: a local
// chain's callback touches nothing but its own chain, so it obeys the
// kShardLocal locality contract, while the fold order keeps the final
// checksum independent of which pool thread ran which shard. The
// sharded and speculative cores' contract is bit-identical execution at
// any shard count, so every checksum must match the serial run exactly
// — the bench exits non-zero if any does not. Wall-clock, resident
// memory, and event throughput go to stdout and to BENCH_simcore.json
// (stable schema `propsim.bench.simcore`, version 3: adds the
// speculative rows with their conflict counters, the speculation
// speedup gate, and the 1-core overhead ratio).
//
// Gates:
//   - drain gate (v2): on a host with >= 4 hardware threads the
//     non-speculative 4-shard run must finish within 1.25x serial.
//   - speculation gate (v3): on a host with >= 4 hardware threads the
//     speculative 4-shard run must beat serial (speedup > 1.0). On
//     smaller hosts both are reported informationally, and
//     `speculation_gate_checked` records which case this was.
//   - overhead_ratio_1core (v3, informational): speculative 4-shard
//     wall over serial wall — on a single-core host this isolates the
//     pure bookkeeping cost of speculation, since no parallel win is
//     possible.
//
// `--quick` shrinks to 120,024 nodes / 120 stub domains and ~600k
// events per run so the bench fits in CI time.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "sim/serial_scheduler.h"
#include "sim/sharded_scheduler.h"
#include "topology/transit_stub.h"

namespace propsim::bench {
namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

/// Peak resident set of this process so far, in MiB (ru_maxrss is KiB on
/// Linux).
double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Current resident set in MiB via /proc/self/statm (Linux); 0 if
/// unreadable.
double current_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long pages = 0, resident = 0;
  const int got = std::fscanf(f, "%ld %ld", &pages, &resident);
  std::fclose(f);
  if (got != 2) return 0.0;
  const long page_kb = sysconf(_SC_PAGESIZE) / 1024;
  return static_cast<double>(resident * page_kb) / 1024.0;
}

struct SimScale {
  std::size_t transit_domains;
  std::size_t transit_nodes_per_domain;
  std::size_t stub_domains_per_transit;
  std::size_t nodes_per_stub;
  double stub_edge_probability;  // scaled down so edges stay O(nodes)
  std::uint64_t events_per_domain;
};

TransitStubConfig scaled_config(const SimScale& scale) {
  TransitStubConfig config = TransitStubConfig::ts_large();
  config.transit_domains = scale.transit_domains;
  config.transit_nodes_per_domain = scale.transit_nodes_per_domain;
  config.stub_domains_per_transit = scale.stub_domains_per_transit;
  config.nodes_per_stub = scale.nodes_per_stub;
  config.stub_edge_probability = scale.stub_edge_probability;
  return config;
}

/// Self-rescheduling event chains bound to stub domains: per domain one
/// global chain (hops shards, exercises handoff) and one shard-local
/// chain (never leaves home, scheduled Locality::kShardLocal). Each
/// chain owns its Rng and its checksum, so a local chain's callback
/// touches nothing outside its own shard — the speculative core may run
/// it on a pool thread without any cross-thread traffic.
class SimWorkload {
 public:
  SimWorkload(Scheduler& sim, std::size_t domains, std::uint64_t seed,
              std::uint64_t events_per_chain)
      : sim_(sim), domains_(domains) {
    // One local chain per domain, but only one global chain per 16
    // domains (with longer delays): the speculative cutoff is the
    // earliest global event anywhere in the window, so global traffic
    // has to be sparse for in-window prefixes to exist at all —
    // mirroring the maintenance-heavy workloads speculation targets.
    const std::size_t globals = std::max<std::size_t>(domains / 16, 1);
    chains_.reserve(domains + globals);
    for (std::size_t g = 0; g < globals; ++g) {
      chains_.push_back(Chain{Rng(seed + 0x9e3779b97f4a7c15ULL * (g + 1)),
                              static_cast<std::uint32_t>(g * domains /
                                                         globals),
                              false, events_per_chain});
    }
    for (std::size_t d = 0; d < domains; ++d) {
      chains_.push_back(Chain{Rng(seed + 0xc2b2ae3d27d4eb4fULL * (d + 1)),
                              static_cast<std::uint32_t>(d), true,
                              events_per_chain});
    }
  }

  void start() {
    for (Chain& chain : chains_) schedule_next(chain);
  }

  /// Per-chain checksums folded in chain-index order: independent of
  /// which thread ran which shard, but still order-sensitive within
  /// every chain, clocks included.
  std::uint64_t checksum() const {
    std::uint64_t h = kFnvOffset;
    for (const Chain& chain : chains_) {
      for (int b = 0; b < 8; ++b) {
        h ^= (chain.checksum >> (8 * b)) & 0xFF;
        h *= kFnvPrime;
      }
    }
    return h;
  }

  std::uint64_t fired() const {
    std::uint64_t total = 0;
    for (const Chain& chain : chains_) total += chain.fired;
    return total;
  }

 private:
  static constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
  static constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

  struct Chain {
    Rng rng;
    std::uint32_t id;  // stub-domain index
    bool local;        // never hops; scheduled Locality::kShardLocal
    std::uint64_t remaining;
    std::uint64_t seq = 0;
    std::uint64_t fired = 0;
    std::uint64_t checksum = kFnvOffset;
  };

  void schedule_next(Chain& chain) {
    if (chain.remaining == 0) return;
    --chain.remaining;
    Chain* c = &chain;  // chains_ never reallocates after construction
    if (chain.local) {
      // Home shard only, marked shard-local: the speculative core may
      // execute this callback early on a pool thread.
      const double delay = chain.rng.uniform_double(0.0005, 0.5);
      sim_.schedule_in(delay, sim_.shard_of(chain.id), Locality::kShardLocal,
                       [this, c] { fire(*c); });
      return;
    }
    // Mostly stay home; sometimes pin the next hop to another domain's
    // shard so the window machinery sees real handoff traffic.
    const std::uint32_t target =
        chain.rng.bernoulli(0.1)
            ? static_cast<std::uint32_t>(chain.rng.uniform(domains_))
            : chain.id;
    const double delay = chain.rng.bernoulli(0.05)
                             ? 0.0
                             : chain.rng.uniform_double(0.05, 2.0);
    sim_.schedule_in(delay, sim_.shard_of(target), [this, c] { fire(*c); });
  }

  void fire(Chain& chain) {
    ++chain.fired;
    mix(chain, chain.id);
    mix(chain, chain.seq++);
    mix(chain, std::bit_cast<std::uint64_t>(sim_.now()));
    schedule_next(chain);
  }

  void mix(Chain& chain, std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      chain.checksum ^= (v >> (8 * b)) & 0xFF;
      chain.checksum *= kFnvPrime;
    }
  }

  Scheduler& sim_;
  std::size_t domains_;
  std::vector<Chain> chains_;
};

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

struct RunResult {
  std::size_t shards = 0;
  bool speculative = false;
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  double throughput = 0.0;  // events per second
  double rss_mb = 0.0;
  std::uint64_t checksum = 0;
  std::uint64_t speculated = 0;
  std::uint64_t replayed = 0;
  std::uint64_t conflicts = 0;
  double conflict_rate = 0.0;
};

RunResult run_one(std::size_t shards, bool speculative, double window_s,
                  std::size_t domains, std::uint64_t seed,
                  std::uint64_t events_per_chain) {
  std::unique_ptr<Scheduler> sim_owner;
  ShardedScheduler* sharded = nullptr;
  if (shards > 1) {
    auto owned =
        std::make_unique<ShardedScheduler>(shards, window_s, speculative);
    sharded = owned.get();
    sim_owner = std::move(owned);
  } else {
    sim_owner = std::make_unique<SerialScheduler>();
  }
  Scheduler& sim = *sim_owner;

  // Slot namespace here is the stub-domain index itself: chain d pins to
  // shard d % shards, matching the app's domain-major assignment.
  std::vector<ShardId> map(domains);
  for (std::size_t d = 0; d < domains; ++d) {
    map[d] = static_cast<ShardId>(d % std::max<std::size_t>(shards, 1));
  }
  sim.set_shard_map(std::move(map));

  SimWorkload workload(sim, domains, seed, events_per_chain);
  const double start = now_ms();
  workload.start();
  sim.run_until(1e12);

  RunResult r;
  r.shards = shards;
  r.speculative = speculative;
  r.events = workload.fired();
  r.wall_ms = now_ms() - start;
  r.throughput =
      r.wall_ms > 0.0
          ? 1000.0 * static_cast<double>(r.events) / r.wall_ms
          : 0.0;
  r.rss_mb = current_rss_mb();
  r.checksum = workload.checksum();
  if (sharded != nullptr && sharded->speculative()) {
    r.speculated = sharded->stats().speculated;
    r.replayed = sharded->stats().replayed;
    r.conflicts = sharded->stats().conflicts;
    r.conflict_rate = sharded->stats().conflict_rate();
  }
  return r;
}

int run(const BenchOptions& opts) {
  // Full: 25*5*(1 + 4*2000) = 1,000,125 nodes / 500 stub domains, ~10M
  // events per run. Quick: 6*4*(1 + 5*1000) = 120,024 nodes / 120 stub
  // domains, ~600k events per run.
  const SimScale scale =
      opts.quick ? SimScale{6, 4, 5, 1000, 0.005, 2500}
                 : SimScale{25, 5, 4, 2000, 0.002, 10000};
  const TransitStubConfig config = scaled_config(scale);

  print_header(
      "simcore_scaling: serial vs sharded vs speculative at 1/2/4/8 shards",
      "sharded and speculative execution are bit-identical to serial at "
      "every shard count");

  std::printf("building transit-stub topology: %zu nodes, %zu stub "
              "domains\n",
              config.total_nodes(),
              config.transit_domains * config.transit_nodes_per_domain *
                  config.stub_domains_per_transit);
  Rng rng(opts.seed + 211);
  const double build_start = now_ms();
  const TransitStubTopology topo = make_transit_stub(config, rng);
  const double build_ms = now_ms() - build_start;
  std::printf("built in %.0f ms (%zu edges, rss %.1f MiB)\n", build_ms,
              topo.graph.edge_count(), current_rss_mb());

  const std::size_t domains = topo.stub_domain_count;
  const double window_s = ShardedScheduler::kDefaultWindowS;

  const std::size_t cores = std::thread::hardware_concurrency();
  constexpr double kMaxDrainRatio4s = 1.25;
  constexpr double kMinSpeculativeSpeedup4s = 1.0;

  Json doc = Json::object();
  doc.set("schema", "propsim.bench.simcore");
  doc.set("version", 3);
  doc.set("quick", opts.quick);
  doc.set("seed", opts.seed);
  doc.set("hardware", hardware_info());
  doc.set("window_s", window_s);
  doc.set("max_drain_ratio_4s", kMaxDrainRatio4s);
  doc.set("min_speedup_4s_speculative", kMinSpeculativeSpeedup4s);

  Json topology = Json::object();
  topology.set("nodes", static_cast<std::uint64_t>(config.total_nodes()))
      .set("stub_domains", static_cast<std::uint64_t>(domains))
      .set("edges", static_cast<std::uint64_t>(topo.graph.edge_count()))
      .set("build_ms", build_ms);
  doc.set("topology", std::move(topology));

  struct RunPlan {
    std::size_t shards;
    bool speculative;
  };
  const RunPlan plan[] = {{1, false}, {2, false}, {4, false}, {8, false},
                          {2, true},  {4, true},  {8, true}};

  Json rows = Json::array();
  bool bit_identical = true;
  std::uint64_t serial_checksum = 0;
  std::uint64_t serial_events = 0;
  double serial_wall_ms = 0.0;
  double wall_4s_ms = 0.0;
  double wall_4s_spec_ms = 0.0;
  double conflict_rate_4s = 0.0;
  std::uint64_t total_speculated = 0;
  for (const RunPlan& p : plan) {
    const RunResult r = run_one(p.shards, p.speculative, window_s, domains,
                                opts.seed, scale.events_per_domain);
    if (p.shards == 4 && !p.speculative) wall_4s_ms = r.wall_ms;
    if (p.shards == 4 && p.speculative) {
      wall_4s_spec_ms = r.wall_ms;
      conflict_rate_4s = r.conflict_rate;
    }
    if (p.shards == 1) {
      serial_checksum = r.checksum;
      serial_events = r.events;
      serial_wall_ms = r.wall_ms;
    } else {
      bit_identical = bit_identical && r.checksum == serial_checksum &&
                      r.events == serial_events;
    }
    total_speculated += r.speculated;
    std::printf("  %s shards %zu: %llu events in %.0f ms (%.0f events/s, "
                "rss %.1f MiB, checksum %s",
                p.speculative ? "speculative" : "sharded    ", p.shards,
                static_cast<unsigned long long>(r.events), r.wall_ms,
                r.throughput, r.rss_mb, hex64(r.checksum).c_str());
    if (p.speculative) {
      std::printf(", speculated %llu, replayed %llu, conflict rate %.3f",
                  static_cast<unsigned long long>(r.speculated),
                  static_cast<unsigned long long>(r.replayed),
                  r.conflict_rate);
    }
    std::printf(")\n");
    Json row = Json::object();
    row.set("shards", static_cast<std::uint64_t>(r.shards))
        .set("mode", p.shards == 1 ? "serial"
                                   : (p.speculative ? "speculative"
                                                    : "sharded"))
        .set("events", r.events)
        .set("wall_ms", r.wall_ms)
        .set("throughput", r.throughput)
        .set("rss_mb", r.rss_mb)
        .set("checksum", hex64(r.checksum));
    if (p.speculative) {
      row.set("speculated", r.speculated)
          .set("replayed", r.replayed)
          .set("conflicts", r.conflicts)
          .set("conflict_rate", r.conflict_rate);
    }
    rows.push_back(std::move(row));
  }
  doc.set("runs", std::move(rows));
  doc.set("bit_identical", bit_identical);
  // A speculative bench run that never speculates is a configuration
  // bug, not a perf result.
  const bool speculation_exercised = total_speculated > 0;
  doc.set("speculation_exercised", speculation_exercised);

  // Drain gate: non-speculative 4-shard wall-clock relative to serial.
  // Hard gate on multicore hosts, informational on smaller ones.
  const double drain_ratio_4s =
      serial_wall_ms > 0.0 ? wall_4s_ms / serial_wall_ms : 0.0;
  const bool gate_drain_checked = cores >= 4;
  bool drain_ok = true;
  std::printf("  drain ratio (4 shards / serial): %.3f (%s, ceiling "
              "%.2f)\n",
              drain_ratio_4s,
              gate_drain_checked ? "gated" : "informational",
              kMaxDrainRatio4s);
  if (gate_drain_checked && drain_ratio_4s > kMaxDrainRatio4s) {
    std::printf("  drain gate FAILED: %.3f > %.2f\n", drain_ratio_4s,
                kMaxDrainRatio4s);
    drain_ok = false;
  }
  doc.set("drain_ratio_4s", drain_ratio_4s);
  doc.set("gate_drain_checked", gate_drain_checked);

  // Speculation gate: the speculative 4-shard run must beat serial on a
  // host that can actually run 4 shard threads. On a single-core host
  // the same ratio inverts into the informational overhead metric: how
  // much the speculation bookkeeping costs when no parallel win is
  // possible.
  const double speedup_4s_speculative =
      wall_4s_spec_ms > 0.0 ? serial_wall_ms / wall_4s_spec_ms : 0.0;
  const double overhead_ratio_1core =
      serial_wall_ms > 0.0 ? wall_4s_spec_ms / serial_wall_ms : 0.0;
  const bool speculation_gate_checked = cores >= 4;
  bool speculation_ok = true;
  std::printf("  speculative speedup (serial / 4 shards): %.3f (%s, floor "
              "%.2f); 1-core overhead ratio %.3f\n",
              speedup_4s_speculative,
              speculation_gate_checked ? "gated" : "informational",
              kMinSpeculativeSpeedup4s, overhead_ratio_1core);
  if (speculation_gate_checked &&
      speedup_4s_speculative <= kMinSpeculativeSpeedup4s) {
    std::printf("  speculation gate FAILED: %.3f <= %.2f\n",
                speedup_4s_speculative, kMinSpeculativeSpeedup4s);
    speculation_ok = false;
  }
  doc.set("speedup_4s_speculative", speedup_4s_speculative);
  doc.set("overhead_ratio_1core", overhead_ratio_1core);
  doc.set("conflict_rate_4s", conflict_rate_4s);
  doc.set("speculation_gate_checked", speculation_gate_checked);

  const bool pass =
      bit_identical && speculation_exercised && drain_ok && speculation_ok;
  doc.set("pass", pass);
  doc.set("peak_rss_mb", peak_rss_mb());

  const std::string out = doc.dump(2);
  if (std::FILE* f = std::fopen("BENCH_simcore.json", "w")) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_simcore.json (peak rss %.1f MiB)\n",
                peak_rss_mb());
  } else {
    std::fprintf(stderr, "could not write BENCH_simcore.json\n");
    return 1;
  }

  std::string verdict;
  if (pass) {
    verdict = "all shard counts replayed the serial checksum";
    verdict += gate_drain_checked
                   ? "; drain and speculation gates hold"
                   : " (drain and speculation gates informational)";
  } else if (!bit_identical) {
    verdict = "checksum mismatch: sharded/speculative execution diverged";
  } else if (!speculation_exercised) {
    verdict = "speculative runs never speculated: workload misconfigured";
  } else if (!drain_ok) {
    verdict = "drain gate failed: 4-shard run too far behind serial";
  } else {
    verdict = "speculation gate failed: speculative 4-shard run did not "
              "beat serial";
  }
  print_verdict(pass, verdict);
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  const auto opts = propsim::bench::parse_options(argc, argv);
  return propsim::bench::run(opts);
}
