// Section 4.3 — overhead analysis table.
//
// The paper derives the per-adjustment message cost as (nhops + 2c) for
// PROP-G (c = average degree) and (nhops + 2m) for PROP-O, and argues
// the probing frequency f_p decays after the warm-up thanks to the
// Markov-chain backoff. This bench *measures* both: control messages per
// probe attempt while sweeping the overlay's average degree, against the
// analytic prediction, plus the probing frequency over time.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/prop_engine.h"
#include "metrics/convergence.h"
#include "sim/simulator.h"

namespace propsim::bench {
namespace {

struct Measurement {
  double avg_degree = 0.0;
  double per_attempt_g = 0.0;
  double per_attempt_o = 0.0;
  double predicted_g = 0.0;
  double predicted_o = 0.0;
};

Measurement measure(std::size_t attach_links, const BenchOptions& opts) {
  Measurement out;
  const std::size_t n = opts.scale_n(600);
  const double horizon = opts.scale_t(1200.0);

  for (const PropMode mode : {PropMode::kPropG, PropMode::kPropO}) {
    Rng rng(opts.seed + attach_links);
    World world(TransitStubConfig::ts_large(), rng);
    GnutellaConfig gcfg;
    gcfg.attach_links = attach_links;
    const auto hosts = [&] {
      std::vector<NodeId> h;
      Rng hrng = rng.split();
      const auto idx = hrng.sample_indices(world.topo.stub_nodes.size(), n);
      for (const auto i : idx) h.push_back(world.topo.stub_nodes[i]);
      return h;
    }();
    OverlayNetwork net =
        build_gnutella_overlay(gcfg, hosts, world.oracle, rng);
    out.avg_degree = net.graph().average_active_degree();

    Simulator sim;
    PropParams params = paper_prop_params(mode);
    params.m = 2;  // fixed m for a clean nhops + 2m prediction
    PropEngine engine(net, sim, params, opts.seed + 3);
    engine.start();
    net.traffic().reset();
    sim.run_until(horizon);

    // Walk + probe messages are the paper's "information collection"
    // cost; notifications/ctrl are the reconstruction cost, charged only
    // on committed exchanges.
    const double walks =
        static_cast<double>(net.traffic().by_kind(MessageKind::kWalk));
    const double probes =
        static_cast<double>(net.traffic().by_kind(MessageKind::kProbe));
    const double attempts = static_cast<double>(engine.stats().attempts);
    const double per_attempt = (walks + probes) / attempts;
    if (mode == PropMode::kPropG) {
      out.per_attempt_g = per_attempt;
      out.predicted_g = static_cast<double>(params.nhops) +
                        2.0 * net.graph().average_active_degree();
    } else {
      out.per_attempt_o = per_attempt;
      out.predicted_o =
          static_cast<double>(params.nhops) + 2.0 * params.m;
    }
  }
  return out;
}

int run(const BenchOptions& opts) {
  print_header(
      "Section 4.3 — per-adjustment overhead and probing frequency",
      "one adjustment costs ~(nhops + 2c) messages for PROP-G vs "
      "~(nhops + 2m) for PROP-O, so PROP-O wins when c >> m; probing "
      "frequency decays after the warm-up via exponential backoff");

  Table table({"avg_degree", "PROP-G msgs/attempt", "predicted nhops+2c",
               "PROP-O msgs/attempt", "predicted nhops+2m"});
  bool holds = true;
  double last_ratio = 0.0;
  for (const std::size_t attach : {std::size_t{4}, std::size_t{8},
                                   std::size_t{12}}) {
    const auto m = measure(attach, opts);
    table.add_row_values(
        {m.avg_degree, m.per_attempt_g, m.predicted_g, m.per_attempt_o,
         m.predicted_o});
    // Measured within 35% of the analytic count (exchange failure paths
    // probe slightly fewer than the model's 2c), and PROP-O strictly
    // cheaper with the gap widening as c grows.
    holds = holds && std::abs(m.per_attempt_g - m.predicted_g) <
                         0.35 * m.predicted_g;
    holds = holds && std::abs(m.per_attempt_o - m.predicted_o) <
                         0.35 * m.predicted_o;
    const double ratio = m.per_attempt_g / m.per_attempt_o;
    holds = holds && ratio > 1.0 && ratio > last_ratio;
    last_ratio = ratio;
  }
  print_csv_block("tab_overhead", table.to_csv());
  std::printf("%s", table.to_ascii().c_str());

  // Probing frequency over time: average attempts per node per second,
  // sampled in windows.
  {
    Rng rng(opts.seed);
    World world(TransitStubConfig::ts_large(), rng);
    OverlayNetwork net = build_unstructured(world, opts.scale_n(600), rng);
    Simulator sim;
    PropEngine engine(net, sim, paper_prop_params(PropMode::kPropG),
                      opts.seed + 5);
    const double horizon = opts.scale_t(14400.0);
    const double window = horizon / 24.0;
    std::uint64_t last_attempts = 0;
    TimeSeries fp("f_p");
    for (double t = window; t <= horizon + 1e-9; t += window) {
      sim.schedule_at(t, [&, t] {
        const std::uint64_t now_attempts = engine.stats().attempts;
        fp.record(t, static_cast<double>(now_attempts - last_attempts) /
                         (window * static_cast<double>(net.size())));
        last_attempts = now_attempts;
      });
    }
    engine.start();
    sim.run_until(horizon);
    print_csv_block("probing_frequency", series_to_csv({fp}, 24));
    const double early = fp.points().front().value;
    const double late = fp.points().back().value;
    holds = holds && late < early * 0.5;
    std::printf("probing frequency: warm-up %.4f /node/s -> converged "
                "%.4f /node/s (worst case 1/INIT_TIMER = %.4f)\n",
                early, late, 1.0 / 60.0);
  }

  print_verdict(holds,
                "measured per-attempt message cost tracks the analytic "
                "nhops+2c / nhops+2m counts and f_p decays after warm-up");
  return holds ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
