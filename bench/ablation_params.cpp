// Ablation — the design choices DESIGN.md calls out.
//
// (1) MIN_VAR: the paper sets it to 0 (Section 4.2 shows Var > 0 already
//     guarantees improvement); larger thresholds trade convergence for
//     fewer exchanges.
// (2) Timer backoff on/off: backoff slashes steady-state probing traffic
//     at a negligible latency cost.
// (3) neighborQ priority on/off: priority feedback should not hurt and
//     trims wasted probes.
// (4) PROP-O selection policy: greedy transfer-set choice vs the
//     literal "arbitrary m neighbors".
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/prop_engine.h"
#include "sim/simulator.h"
#include "workload/lookups.h"

namespace propsim::bench {
namespace {

struct RunResult {
  double lookup_ms = 0.0;
  std::uint64_t exchanges = 0;
  std::uint64_t attempts = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t control_msgs = 0;
};

RunResult run_config(const PropParams& params, const BenchOptions& opts) {
  Rng rng(opts.seed);
  World world(TransitStubConfig::ts_large(), rng);
  OverlayNetwork net = build_unstructured(world, opts.scale_n(800), rng);
  Simulator sim;
  PropEngine engine(net, sim, params, opts.seed + 41);
  engine.start();
  net.traffic().reset();
  sim.run_until(opts.scale_t(7200.0));
  RunResult r;
  Rng qrng(opts.seed + 43);
  const auto queries =
      uniform_queries(net.graph(), opts.scale_q(5000), qrng);
  r.lookup_ms = average_unstructured_lookup_latency(net, queries);
  r.exchanges = engine.stats().exchanges;
  r.attempts = engine.stats().attempts;
  r.conflicts = engine.stats().commit_conflicts;
  r.control_msgs = net.traffic().control_total();
  return r;
}

int run(const BenchOptions& opts) {
  print_header(
      "Ablation — MIN_VAR sweep, backoff, neighborQ priority, PROP-O "
      "selection policy",
      "MIN_VAR=0 converges best; backoff cuts probe traffic with little "
      "latency cost; priority queue and greedy selection help");

  bool holds = true;

  // --- (1) MIN_VAR sweep (PROP-G). ---
  {
    Table table({"min_var_ms", "lookup_ms", "exchanges", "ctrl_msgs"});
    std::vector<RunResult> results;
    for (const double mv : {0.0, 50.0, 200.0, 800.0}) {
      PropParams p = paper_prop_params(PropMode::kPropG);
      p.min_var = mv;
      results.push_back(run_config(p, opts));
      table.add_row_values({mv, results.back().lookup_ms,
                            static_cast<double>(results.back().exchanges),
                            static_cast<double>(results.back().control_msgs)});
    }
    print_csv_block("ablation_min_var", table.to_csv());
    std::printf("%s", table.to_ascii().c_str());
    // Latency is monotone non-decreasing in MIN_VAR, exchanges monotone
    // non-increasing.
    for (std::size_t i = 1; i < results.size(); ++i) {
      holds = holds && results[i].lookup_ms >=
                           results[i - 1].lookup_ms - 1e-6;
      holds = holds && results[i].exchanges <= results[i - 1].exchanges;
    }
  }

  // --- (2) Backoff on/off (PROP-G). ---
  {
    PropParams with = paper_prop_params(PropMode::kPropG);
    PropParams without = with;
    without.use_backoff = false;
    const RunResult rw = run_config(with, opts);
    const RunResult ro = run_config(without, opts);
    Table table({"backoff", "lookup_ms", "attempts", "ctrl_msgs"});
    table.add_row({"on", Table::fmt(rw.lookup_ms, 4),
                   std::to_string(rw.attempts),
                   std::to_string(rw.control_msgs)});
    table.add_row({"off", Table::fmt(ro.lookup_ms, 4),
                   std::to_string(ro.attempts),
                   std::to_string(ro.control_msgs)});
    print_csv_block("ablation_backoff", table.to_csv());
    std::printf("%s", table.to_ascii().c_str());
    // Backoff cuts probing volume sharply at <10% latency penalty.
    holds = holds && rw.attempts < ro.attempts / 2 &&
            rw.lookup_ms < ro.lookup_ms * 1.10;
  }

  // --- (3) neighborQ priority on/off (PROP-G). ---
  {
    PropParams with = paper_prop_params(PropMode::kPropG);
    PropParams without = with;
    without.use_priority_queue = false;
    const RunResult rw = run_config(with, opts);
    const RunResult ro = run_config(without, opts);
    Table table({"priority_queue", "lookup_ms", "exchanges"});
    table.add_row({"on", Table::fmt(rw.lookup_ms, 4),
                   std::to_string(rw.exchanges)});
    table.add_row({"off", Table::fmt(ro.lookup_ms, 4),
                   std::to_string(ro.exchanges)});
    print_csv_block("ablation_priority", table.to_csv());
    std::printf("%s", table.to_ascii().c_str());
    holds = holds && rw.lookup_ms < ro.lookup_ms * 1.10;
  }

  // --- (4) PROP-O selection policy. ---
  {
    PropParams greedy = paper_prop_params(PropMode::kPropO);
    greedy.selection = SelectionPolicy::kGreedy;
    PropParams random = greedy;
    random.selection = SelectionPolicy::kRandom;
    const RunResult rg = run_config(greedy, opts);
    const RunResult rr = run_config(random, opts);
    Table table({"selection", "lookup_ms", "exchanges"});
    table.add_row({"greedy", Table::fmt(rg.lookup_ms, 4),
                   std::to_string(rg.exchanges)});
    table.add_row({"random", Table::fmt(rr.lookup_ms, 4),
                   std::to_string(rr.exchanges)});
    print_csv_block("ablation_selection", table.to_csv());
    std::printf("%s", table.to_ascii().c_str());
    holds = holds && rg.lookup_ms <= rr.lookup_ms * 1.02;
  }

  // --- (5) atomic vs message-delayed commits. ---
  {
    PropParams atomic = paper_prop_params(PropMode::kPropG);
    PropParams delayed = atomic;
    delayed.model_message_delays = true;
    const RunResult ra = run_config(atomic, opts);
    const RunResult rd = run_config(delayed, opts);
    Table table({"commit_model", "lookup_ms", "exchanges", "conflicts"});
    table.add_row({"atomic", Table::fmt(ra.lookup_ms, 4),
                   std::to_string(ra.exchanges),
                   std::to_string(ra.conflicts)});
    table.add_row({"message-delayed", Table::fmt(rd.lookup_ms, 4),
                   std::to_string(rd.exchanges),
                   std::to_string(rd.conflicts)});
    print_csv_block("ablation_commit_model", table.to_csv());
    std::printf("%s", table.to_ascii().c_str());
    // Modeling negotiation latency must not change the outcome
    // materially: the paper's atomic-exchange analysis is a sound
    // approximation at these probe rates.
    holds = holds && rd.lookup_ms < ra.lookup_ms * 1.10;
  }

  print_verdict(holds,
                "MIN_VAR monotone, backoff halves probes cheaply, "
                "priority queue and greedy selection are no-regret, and "
                "message-delayed commits match the atomic model");
  return holds ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
