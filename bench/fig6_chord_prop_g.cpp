// Figure 6 — Effectiveness of PROP-G in a Chord environment.
//
// Same three sweeps as Figure 5 but on a Chord DHT, with the paper's
// stretch metric (average routed lookup latency over average direct
// physical latency of the same query pairs) sampled over time.
//
// Paper shape: stretch starts around 4-4.5 and falls to ~2.5-3 for
// nhops >= 2 / random probing; nhops = 1 helps least; all system sizes
// improve; ts-large improves more than ts-small.
#include <cstdio>

#include "bench_util.h"
#include "chord/chord_ring.h"
#include "core/prop_engine.h"
#include "metrics/convergence.h"
#include "sim/simulator.h"
#include "workload/host_selection.h"

namespace propsim::bench {
namespace {

struct Scenario {
  std::string label;
  std::size_t n;
  std::size_t nhops;
  bool random_target;
  bool ts_small;
};

TimeSeries run_scenario(const Scenario& sc, const BenchOptions& opts,
                        double horizon_s, double sample_s) {
  Rng rng(opts.seed);
  World world(sc.ts_small ? TransitStubConfig::ts_small()
                          : TransitStubConfig::ts_large(),
              rng);
  const auto hosts = select_stub_hosts(world.topo, sc.n, rng);
  const auto ring = ChordRing::build_random(sc.n, ChordConfig{}, rng);
  OverlayNetwork net = make_chord_overlay(ring, hosts, world.oracle);

  Rng qrng(opts.seed ^ 0xda3e39cb94b95bdbULL);
  const auto queries =
      sample_query_pairs(net.graph(), opts.scale_q(10000), qrng);
  const auto router = chord_router(net, ring);

  Simulator sim;
  PropParams params = paper_prop_params(PropMode::kPropG);
  params.nhops = sc.random_target ? 2 : sc.nhops;
  params.random_target = sc.random_target;
  PropEngine engine(net, sim, params, opts.seed + 11);

  ConvergenceSampler sampler(sim, sc.label, 0.0, horizon_s, sample_s, [&] {
    return stretch(net, queries, router).stretch;
  });
  engine.start();
  sim.run_until(horizon_s);
  std::printf("  [%s] exchanges=%llu attempts=%llu\n", sc.label.c_str(),
              static_cast<unsigned long long>(engine.stats().exchanges),
              static_cast<unsigned long long>(engine.stats().attempts));
  return sampler.take_series();
}

int run(const BenchOptions& opts) {
  print_header("Figure 6 — PROP-G on Chord (lookup stretch vs time)",
               "stretch drops substantially for nhops>=2 and random "
               "probing, least for nhops=1; every system size improves; "
               "ts-large improves more than ts-small");

  const double horizon = opts.scale_t(3600.0);
  const double sample = horizon / 15.0;
  const std::size_t n_default = opts.scale_n(1000);
  bool all_hold = true;

  if (opts.part.empty() || opts.part == "a") {
    std::printf("part (a): varying the TTL scale (n=%zu)\n", n_default);
    std::vector<TimeSeries> series;
    series.push_back(run_scenario({"nhops=1", n_default, 1, false, false},
                                  opts, horizon, sample));
    series.push_back(run_scenario({"nhops=2", n_default, 2, false, false},
                                  opts, horizon, sample));
    series.push_back(run_scenario({"nhops=4", n_default, 4, false, false},
                                  opts, horizon, sample));
    series.push_back(run_scenario({"random", n_default, 2, true, false},
                                  opts, horizon, sample));
    print_csv_block("fig6a", series_to_csv(series, 16));
    const double drop1 = series[0].first_value() - series[0].last_value();
    const double drop2 = series[1].first_value() - series[1].last_value();
    const double drop4 = series[2].first_value() - series[2].last_value();
    const double dropr = series[3].first_value() - series[3].last_value();
    const bool holds =
        drop2 > drop1 && drop4 > drop1 && dropr > drop1 && drop2 > 0.2;
    all_hold = all_hold && holds;
    char detail[256];
    std::snprintf(detail, sizeof(detail),
                  "stretch cut: nhops=1 %.2f, nhops=2 %.2f, nhops=4 %.2f, "
                  "random %.2f (initial stretch %.2f)",
                  drop1, drop2, drop4, dropr, series[1].first_value());
    print_verdict(holds, detail);
  }

  if (opts.part.empty() || opts.part == "b") {
    std::printf("part (b): varying the system size (nhops=2)\n");
    std::vector<TimeSeries> series;
    std::vector<double> drops;
    // The 4000-peer point puts ~83% of all stub hosts in the overlay —
    // the paper's "almost all physical nodes are chosen" regime — and
    // only runs at full scale.
    std::vector<std::size_t> sizes{opts.scale_n(300), opts.scale_n(500),
                                   opts.scale_n(1000), opts.scale_n(2000)};
    if (!opts.quick) sizes.push_back(4000);
    for (const std::size_t n : sizes) {
      const std::string label = "n=" + std::to_string(n);
      series.push_back(
          run_scenario({label, n, 2, false, false}, opts, horizon, sample));
      drops.push_back(series.back().first_value() -
                      series.back().last_value());
    }
    print_csv_block("fig6b", series_to_csv(series, 16));
    bool holds = true;
    for (const double d : drops) holds = holds && d > 0.15;
    all_hold = all_hold && holds;
    std::string detail = "stretch cuts by size:";
    for (const double d : drops) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), " %.2f", d);
      detail += buf;
    }
    print_verdict(holds, detail);
  }

  if (opts.part.empty() || opts.part == "c") {
    std::printf("part (c): varying the physical topology (n=%zu)\n",
                n_default);
    std::vector<TimeSeries> series;
    series.push_back(run_scenario({"ts-large", n_default, 2, false, false},
                                  opts, horizon, sample));
    series.push_back(run_scenario({"ts-small", n_default, 2, false, true},
                                  opts, horizon, sample));
    print_csv_block("fig6c", series_to_csv(series, 16));
    const double cut_large =
        series[0].first_value() - series[0].last_value();
    const double cut_small =
        series[1].first_value() - series[1].last_value();
    const bool holds = cut_large > cut_small && cut_large > 0.0;
    all_hold = all_hold && holds;
    char detail[256];
    std::snprintf(detail, sizeof(detail),
                  "stretch cut: ts-large %.2f vs ts-small %.2f",
                  cut_large, cut_small);
    print_verdict(holds, detail);
  }

  return all_hold ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
