// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary prints (a) a header describing the experiment, (b)
// the same series/rows the paper's figure or table reports, as CSV, and
// (c) a one-line verdict comparing the measured shape with the paper's
// claim. `--quick` (or PROPSIM_QUICK=1) shrinks the scale so the whole
// bench directory runs in CI time; default scale matches DESIGN.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "common/timeseries.h"
#include "core/params.h"
#include "gnutella/gnutella.h"
#include "metrics/metrics.h"
#include "overlay/overlay_network.h"
#include "topology/latency_oracle.h"
#include "topology/transit_stub.h"

namespace propsim::bench {

struct BenchOptions {
  bool quick = false;
  std::string part;  // "a" / "b" / "c"; empty = all parts
  std::uint64_t seed = 20070901;  // ICPP 2007 vintage

  /// Scale helpers: quick mode shrinks populations and horizons ~4x.
  std::size_t scale_n(std::size_t full) const {
    return quick ? std::max<std::size_t>(full / 4, 32) : full;
  }
  double scale_t(double full) const { return quick ? full / 4.0 : full; }
  std::size_t scale_q(std::size_t full) const {
    return quick ? full / 4 : full;
  }
};

/// Parses --quick, --part X, --seed N; exits on unknown flags.
BenchOptions parse_options(int argc, char** argv);

/// Prints the standard experiment header.
void print_header(const std::string& experiment, const std::string& claim);

/// Prints a named CSV block (plot-ready) bracketed by markers.
void print_csv_block(const std::string& name, const std::string& csv);

/// Prints the final verdict line.
void print_verdict(bool holds, const std::string& detail);

/// Host description stanza every BENCH_*.json embeds under "hardware":
/// {"cores": N, "model": "..."}. CI's perf gates key the baseline tier
/// (bench/baselines/1core/ vs multicore/) off `cores`, and the compare
/// tool treats it as informational (never a regression) while
/// `--require-metric hardware.cores` proves the stanza survives schema
/// churn. `model` is a string, invisible to the numeric flattener.
Json hardware_info();

/// A prepared world: physical topology + oracle. Heavy, build once per
/// scenario. The oracle uses the exact hierarchical transit-stub engine,
/// so pairwise latencies are O(1) with O(V) resident state.
struct World {
  TransitStubTopology topo;
  LatencyOracle oracle;

  World(const TransitStubConfig& config, Rng& rng)
      : topo(make_transit_stub(config, rng)), oracle(topo) {}
};

/// The default PROP parameter block used across benches (paper values).
PropParams paper_prop_params(PropMode mode);

/// Builds the paper's default unstructured overlay over n stub hosts.
OverlayNetwork build_unstructured(World& world, std::size_t n, Rng& rng);

/// Reduction factor A->B as "x.xx x" text.
std::string improvement_factor(double before, double after);

}  // namespace propsim::bench
