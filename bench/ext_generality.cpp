// Extension — PROP-G generality across five overlay substrates.
//
// The paper's title claim: one mechanism for "both unstructured and
// structured P2P systems", with the overlay's own structure untouched.
// We run the identical PROP-G engine over Gnutella, Chord, Pastry and
// CAN, report routed-lookup latency before/after, and machine-check the
// Theorem 2 isomorphism certificate on every substrate.
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "can/can_space.h"
#include "chord/chord_ring.h"
#include "common/table.h"
#include "core/prop_engine.h"
#include "overlay/isomorphism.h"
#include "pastry/pastry.h"
#include "sim/simulator.h"
#include "tapestry/tapestry.h"
#include "workload/host_selection.h"
#include "workload/lookups.h"

namespace propsim::bench {
namespace {

struct SubstrateResult {
  std::string name;
  double before_ms = 0.0;
  double after_ms = 0.0;
  std::uint64_t exchanges = 0;
  bool isomorphic = false;
  bool degrees_preserved = false;
};

/// Runs PROP-G on a prepared overlay with the given routed-latency
/// metric; verifies the isomorphism certificate.
SubstrateResult drive(const std::string& name, OverlayNetwork& net,
                      const std::function<double()>& routed_latency,
                      const BenchOptions& opts) {
  SubstrateResult r;
  r.name = name;
  r.before_ms = routed_latency();
  const auto degrees = net.graph().degree_multiset();
  const auto edges_before = host_edges(net.graph(), net.placement());
  const Placement placement_before = net.placement();

  Simulator sim;
  PropEngine engine(net, sim, paper_prop_params(PropMode::kPropG),
                    opts.seed + 3);
  engine.start();
  sim.run_until(opts.scale_t(3600.0));

  r.after_ms = routed_latency();
  r.exchanges = engine.stats().exchanges;
  const auto edges_after = host_edges(net.graph(), net.placement());
  const auto [hosts, phi] =
      placement_bijection(placement_before, net.placement());
  r.isomorphic = isomorphic_via(edges_before, edges_after, hosts, phi);
  r.degrees_preserved = net.graph().degree_multiset() == degrees;
  std::printf("  [%s] %llu exchanges, %.0f -> %.0f ms\n", name.c_str(),
              static_cast<unsigned long long>(r.exchanges), r.before_ms,
              r.after_ms);
  return r;
}

int run(const BenchOptions& opts) {
  print_header(
      "Extension — PROP-G on Gnutella, Chord, Pastry, Tapestry and CAN",
      "the same engine reduces routed lookup latency on every substrate "
      "while each overlay stays isomorphic to its original (Theorem 2)");

  const std::size_t n = opts.scale_n(1000);
  const std::size_t q = opts.scale_q(5000);
  std::vector<SubstrateResult> results;

  // --- Gnutella (unstructured; flood first-response latency). ---
  {
    Rng rng(opts.seed);
    World world(TransitStubConfig::ts_large(), rng);
    OverlayNetwork net = build_unstructured(world, n, rng);
    Rng qrng(opts.seed + 1);
    const auto queries = uniform_queries(net.graph(), q, qrng);
    results.push_back(drive(
        "Gnutella", net,
        [&] { return average_unstructured_lookup_latency(net, queries); },
        opts));
  }

  // --- Chord (greedy finger routing). ---
  {
    Rng rng(opts.seed);
    World world(TransitStubConfig::ts_large(), rng);
    const auto hosts = select_stub_hosts(world.topo, n, rng);
    const auto ring = ChordRing::build_random(n, ChordConfig{}, rng);
    OverlayNetwork net = make_chord_overlay(ring, hosts, world.oracle);
    Rng qrng(opts.seed + 1);
    const auto queries = sample_query_pairs(net.graph(), q, qrng);
    const auto router = chord_router(net, ring);
    results.push_back(drive(
        "Chord", net,
        [&] { return average_route_latency(queries, router); }, opts));
  }

  // --- Pastry (prefix routing). ---
  {
    Rng rng(opts.seed);
    World world(TransitStubConfig::ts_large(), rng);
    const auto hosts = select_stub_hosts(world.topo, n, rng);
    const auto pastry = PastryNetwork::build_random(n, PastryConfig{}, rng);
    OverlayNetwork net = make_pastry_overlay(pastry, hosts, world.oracle);
    Rng qrng(opts.seed + 1);
    const auto queries = sample_query_pairs(net.graph(), q, qrng);
    results.push_back(drive(
        "Pastry", net,
        [&] {
          double sum = 0.0;
          for (const QueryPair& pair : queries) {
            const auto path =
                pastry.lookup_path(pair.src, pastry.id_of(pair.dst));
            sum += path_latency(net, path);
          }
          return sum / static_cast<double>(queries.size());
        },
        opts));
  }

  // --- Tapestry (prefix routing with surrogate roots). ---
  {
    Rng rng(opts.seed);
    World world(TransitStubConfig::ts_large(), rng);
    const auto hosts = select_stub_hosts(world.topo, n, rng);
    const auto tapestry =
        TapestryNetwork::build_random(n, TapestryConfig{}, rng);
    OverlayNetwork net = make_tapestry_overlay(tapestry, hosts, world.oracle);
    Rng qrng(opts.seed + 1);
    const auto queries = sample_query_pairs(net.graph(), q, qrng);
    results.push_back(drive(
        "Tapestry", net,
        [&] {
          double sum = 0.0;
          for (const QueryPair& pair : queries) {
            const auto path =
                tapestry.lookup_path(pair.src, tapestry.id_of(pair.dst));
            sum += path_latency(net, path);
          }
          return sum / static_cast<double>(queries.size());
        },
        opts));
  }

  // --- CAN (greedy coordinate routing). ---
  {
    Rng rng(opts.seed);
    World world(TransitStubConfig::ts_large(), rng);
    const auto hosts = select_stub_hosts(world.topo, n, rng);
    const auto space = CanSpace::build(n, rng);
    OverlayNetwork net = make_can_overlay(space, hosts, world.oracle);
    Rng qrng(opts.seed + 1);
    // Random target points; destinations are the owning zones.
    std::vector<std::pair<SlotId, CanPoint>> queries;
    for (std::size_t i = 0; i < q; ++i) {
      queries.emplace_back(
          static_cast<SlotId>(qrng.uniform(n)),
          CanPoint{qrng.uniform(kCanSpan), qrng.uniform(kCanSpan)});
    }
    results.push_back(drive(
        "CAN", net,
        [&] {
          double sum = 0.0;
          for (const auto& [src, point] : queries) {
            sum += path_latency(net, space.route_path(src, point));
          }
          return sum / static_cast<double>(queries.size());
        },
        opts));
  }

  Table table({"substrate", "lookup_ms_before", "lookup_ms_after",
               "improvement", "exchanges", "isomorphic", "degrees_kept"});
  bool holds = true;
  for (const SubstrateResult& r : results) {
    table.add_row({r.name, Table::fmt(r.before_ms, 4),
                   Table::fmt(r.after_ms, 4),
                   improvement_factor(r.before_ms, r.after_ms),
                   std::to_string(r.exchanges),
                   r.isomorphic ? "yes" : "NO",
                   r.degrees_preserved ? "yes" : "NO"});
    holds = holds && r.after_ms < r.before_ms && r.isomorphic &&
            r.degrees_preserved && r.exchanges > 0;
  }
  print_csv_block("ext_generality", table.to_csv());
  std::printf("%s", table.to_ascii().c_str());
  print_verdict(holds,
                "PROP-G improves all five substrates and every overlay "
                "stays isomorphic with degrees intact");
  return holds ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
