// Micro-benchmarks for the hot kernels (google-benchmark).
//
// Not a paper figure — these guard the simulator's own performance:
// Dijkstra over the physical graph, Chord lookups, CAN routing, the
// event queue, and the exchange planning/apply primitives.
#include <string_view>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "can/can_space.h"
#include "chord/chord_ring.h"
#include "core/exchange.h"
#include "sim/simulator.h"
#include "topology/shortest_path.h"
#include "workload/host_selection.h"

namespace propsim::bench {
namespace {

const World& shared_world() {
  static Rng rng(1);
  static World world(TransitStubConfig::ts_large(), rng);
  return world;
}

/// Small physical network for exchange-planning kernels.
TransitStubConfig small_config() {
  TransitStubConfig c;
  c.transit_domains = 4;
  c.transit_nodes_per_domain = 2;
  c.stub_domains_per_transit = 2;
  c.nodes_per_stub = 24;
  return c;
}

void BM_DijkstraTransitStub(benchmark::State& state) {
  const World& world = shared_world();
  NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(world.topo.graph, source));
    source = (source + 7919) % world.topo.graph.node_count();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(
                              world.topo.graph.node_count()));
}
BENCHMARK(BM_DijkstraTransitStub);

void BM_ChordLookup(benchmark::State& state) {
  Rng rng(2);
  const auto ring = ChordRing::build_random(
      static_cast<std::size_t>(state.range(0)), ChordConfig{}, rng);
  Rng qrng(3);
  for (auto _ : state) {
    const auto src = static_cast<SlotId>(qrng.uniform(ring.size()));
    benchmark::DoNotOptimize(ring.lookup_path(src, qrng.next()));
  }
}
BENCHMARK(BM_ChordLookup)->Arg(256)->Arg(1024)->Arg(4096);

void BM_CanRoute(benchmark::State& state) {
  Rng rng(4);
  const auto space =
      CanSpace::build(static_cast<std::size_t>(state.range(0)), rng);
  Rng qrng(5);
  for (auto _ : state) {
    const auto src = static_cast<SlotId>(qrng.uniform(space.size()));
    const CanPoint target{qrng.uniform(kCanSpan), qrng.uniform(kCanSpan)};
    benchmark::DoNotOptimize(space.route_path(src, target));
  }
}
BENCHMARK(BM_CanRoute)->Arg(256)->Arg(1024);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Rng rng(6);
    int sink = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.schedule_at(rng.uniform_double(0.0, 1000.0), [&sink] { ++sink; });
    }
    sim.run_all();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(10000);

void BM_PropGPlanAndVar(benchmark::State& state) {
  Rng rng(7);
  World world(small_config(), rng);
  OverlayNetwork net = build_unstructured(world, 256, rng);
  Rng prng(8);
  const auto slots = net.graph().active_slots();
  for (auto _ : state) {
    const SlotId u =
        slots[static_cast<std::size_t>(prng.uniform(slots.size()))];
    SlotId v;
    do {
      v = slots[static_cast<std::size_t>(prng.uniform(slots.size()))];
    } while (v == u);
    benchmark::DoNotOptimize(plan_prop_g(net, u, v));
  }
}

BENCHMARK(BM_PropGPlanAndVar);

void BM_PropOPlan(benchmark::State& state) {
  Rng rng(9);
  World world(small_config(), rng);
  OverlayNetwork net = build_unstructured(world, 256, rng);
  Rng prng(10);
  const auto slots = net.graph().active_slots();
  for (auto _ : state) {
    const SlotId u =
        slots[static_cast<std::size_t>(prng.uniform(slots.size()))];
    const auto neigh = net.graph().neighbors(u);
    const SlotId first =
        neigh[static_cast<std::size_t>(prng.uniform(neigh.size()))];
    const auto walk = net.random_walk(u, first, 2, prng);
    if (!walk) continue;
    benchmark::DoNotOptimize(plan_prop_o(net, u, walk->back(), *walk, 4,
                                         SelectionPolicy::kGreedy, prng));
  }
}
BENCHMARK(BM_PropOPlan);

}  // namespace
}  // namespace propsim::bench

// Custom main instead of benchmark_main: the bench-suite convention of
// passing --quick/--part/--seed to every binary must not trip
// google-benchmark's unknown-flag check, so those are stripped first.
int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quick") continue;
    if ((arg == "--part" || arg == "--seed") && i + 1 < argc) {
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
