#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "workload/host_selection.h"

namespace propsim::bench {

BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  if (const char* env = std::getenv("PROPSIM_QUICK");
      env != nullptr && env[0] == '1') {
    opts.quick = true;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--part" && i + 1 < argc) {
      opts.part = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--help") {
      std::printf("usage: %s [--quick] [--part a|b|c] [--seed N]\n", argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return opts;
}

void print_header(const std::string& experiment, const std::string& claim) {
  std::printf("==================================================\n");
  std::printf("experiment: %s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("==================================================\n");
}

void print_csv_block(const std::string& name, const std::string& csv) {
  std::printf("--- begin csv: %s ---\n%s--- end csv: %s ---\n", name.c_str(),
              csv.c_str(), name.c_str());
}

void print_verdict(bool holds, const std::string& detail) {
  std::printf("verdict: %s — %s\n\n", holds ? "HOLDS" : "DIVERGES",
              detail.c_str());
}

Json hardware_info() {
  Json hw = Json::object();
  hw.set("cores",
         static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  std::string model = "unknown";
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) break;
    auto begin = line.find_first_not_of(" \t", colon + 1);
    if (begin != std::string::npos) model = line.substr(begin);
    break;
  }
  hw.set("model", model);
  return hw;
}

PropParams paper_prop_params(PropMode mode) {
  PropParams p;
  p.mode = mode;
  p.nhops = 2;
  p.m = 0;  // delta(G)
  p.min_var = 0.0;
  p.max_init_trial = 10;
  p.init_timer_s = 60.0;
  return p;
}

OverlayNetwork build_unstructured(World& world, std::size_t n, Rng& rng) {
  const auto hosts = select_stub_hosts(world.topo, n, rng);
  GnutellaConfig cfg;  // attach_links = 4 -> delta(G) = 4, as in the paper
  return build_gnutella_overlay(cfg, hosts, world.oracle, rng);
}

std::string improvement_factor(double before, double after) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", before / after);
  return buf;
}

}  // namespace propsim::bench
