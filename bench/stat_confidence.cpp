// Statistical confidence for the headline comparison.
//
// Single-seed curves can mislead; this bench replays the core Figure 5
// contrast — PROP-G (nhops=2) vs the weak nhops=1 variant vs LTM vs no
// optimization — across independent seeds in parallel (one deterministic
// simulation per worker) and reports mean +/- sd of the final lookup
// latency, checking that the orderings the paper reports hold with
// separation beyond one standard deviation.
#include <cstdio>
#include <mutex>
#include <vector>

#include "baselines/ltm.h"
#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/prop_engine.h"
#include "sim/simulator.h"
#include "workload/lookups.h"

namespace propsim::bench {
namespace {

struct Variant {
  std::string label;
  // 0 = none, 1 = prop-g nhops1, 2 = prop-g nhops2, 3 = ltm
  int kind;
};

double run_variant(const Variant& variant, std::uint64_t seed,
                   const BenchOptions& opts) {
  Rng rng(seed);
  World world(TransitStubConfig::ts_large(), rng);
  OverlayNetwork net = build_unstructured(world, opts.scale_n(800), rng);
  Rng qrng(seed + 1);
  const auto queries =
      uniform_queries(net.graph(), opts.scale_q(5000), qrng);

  Simulator sim;
  std::unique_ptr<PropEngine> prop;
  std::unique_ptr<LtmEngine> ltm;
  if (variant.kind == 1 || variant.kind == 2) {
    PropParams params = paper_prop_params(PropMode::kPropG);
    params.nhops = variant.kind == 1 ? 1 : 2;
    prop = std::make_unique<PropEngine>(net, sim, params, seed + 2);
    prop->start();
  } else if (variant.kind == 3) {
    LtmParams params;
    ltm = std::make_unique<LtmEngine>(net, sim, params, seed + 3);
    ltm->start();
  }
  sim.run_until(opts.scale_t(3600.0));
  return average_unstructured_lookup_latency(net, queries);
}

int run(const BenchOptions& opts) {
  print_header(
      "Statistical confidence — final lookup latency across seeds",
      "PROP-G (nhops=2) beats nhops=1 and no-optimization with >1 sd "
      "separation across independent seeds");

  const std::vector<Variant> variants{{"none", 0},
                                      {"PROP-G nhops=1", 1},
                                      {"PROP-G nhops=2", 2},
                                      {"LTM", 3}};
  const std::size_t seeds = opts.quick ? 3 : 5;

  // results[variant][seed]: every variant runs on the SAME topologies,
  // so comparisons are paired — the per-seed difference cancels the
  // (large) seed-to-seed baseline variation.
  std::vector<std::vector<double>> results(
      variants.size(), std::vector<double>(seeds, 0.0));
  std::mutex mutex;
  ThreadPool pool;
  pool.parallel_for(variants.size() * seeds, [&](std::size_t task) {
    const std::size_t vi = task / seeds;
    const std::size_t si = task % seeds;
    const std::uint64_t seed = opts.seed + si * 7919ULL;
    const double final_ms = run_variant(variants[vi], seed, opts);
    std::lock_guard<std::mutex> lock(mutex);
    results[vi][si] = final_ms;
  });

  Table table({"variant", "final_lookup_ms(mean)", "sd", "min", "max",
               "seeds"});
  std::vector<RunningStats> stats(variants.size());
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    for (const double v : results[vi]) stats[vi].add(v);
    table.add_row({variants[vi].label, Table::fmt(stats[vi].mean(), 5),
                   Table::fmt(stats[vi].stddev(), 3),
                   Table::fmt(stats[vi].min(), 5),
                   Table::fmt(stats[vi].max(), 5), std::to_string(seeds)});
  }
  print_csv_block("stat_confidence", table.to_csv());
  std::printf("%s", table.to_ascii().c_str());

  // Paired comparisons: variant lo beats variant hi when the per-seed
  // difference is positive on every seed and its mean exceeds its sd.
  auto paired_beats = [&](std::size_t lo, std::size_t hi) {
    RunningStats diff;
    bool every_seed = true;
    for (std::size_t si = 0; si < seeds; ++si) {
      const double d = results[hi][si] - results[lo][si];
      diff.add(d);
      every_seed = every_seed && d > 0.0;
    }
    std::printf("paired %s < %s: mean diff %.1f ms (sd %.1f), all seeds "
                "agree: %s\n",
                variants[lo].label.c_str(), variants[hi].label.c_str(),
                diff.mean(), diff.stddev(), every_seed ? "yes" : "no");
    return every_seed && diff.mean() > diff.stddev();
  };
  const bool holds = paired_beats(2, 1) &&  // nhops=2 < nhops=1
                     paired_beats(1, 0) &&  // nhops=1 < none
                     paired_beats(2, 0);    // nhops=2 < none
  char detail[256];
  std::snprintf(detail, sizeof(detail),
                "means: none %.0f, nhops=1 %.0f, nhops=2 %.0f, LTM %.0f",
                stats[0].mean(), stats[1].mean(), stats[2].mean(),
                stats[3].mean());
  print_verdict(holds, detail);
  return holds ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
