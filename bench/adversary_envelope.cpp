// Robustness — the damage envelope under byzantine peers.
//
// Sweeps the latency-liar fraction over {0, 5%, 20%, 50%} for both
// PROP-G and PROP-O on the unstructured overlay, then adds one
// free-rider/dropper mix row (PROP-O) and one coordinated eclipse row
// (PROP-G, auto target). For every row the bench reports the exchange
// success ratio, the converged lookup latency and its degradation
// against the honest row of the same protocol, plus the adversary
// counters. Liars corrupt MIN_VAR *decisions*, never applied plans, so
// the overlay structure stays sound (Theorems 1/2) and the envelope is
// purely a convergence-quality story: the verdict checks that honest
// rows stay byzantine-free, that attacks visibly bite, that heavier
// cohorts never help, and that every run ends connected. Roles come
// from a seed-derived hash (seed + 257), so the curve is reproducible.
// Writes BENCH_adversary.json (schema propsim.bench.adversary) for
// CI's perf/robustness gate.
#include <cstdio>
#include <string>
#include <vector>

#include "app/experiment.h"
#include "app/result_json.h"
#include "bench_util.h"
#include "common/config.h"

namespace propsim::bench {
namespace {

struct Row {
  std::string protocol;  // "prop-g" / "prop-o"
  std::string model;     // "honest" / "liar" / "mix" / "eclipse"
  double fraction = 0.0;
  double success_ratio = 0.0;  // exchanges / attempts
  double final_metric = 0.0;   // converged lookup_ms
  double degradation = 0.0;    // final vs the same protocol's honest row
  std::uint64_t lies = 0;
  std::uint64_t drops = 0;
  std::uint64_t freeride_skips = 0;
  std::uint64_t eclipse_attempts = 0;
  std::uint64_t eclipse_captures = 0;
  std::uint64_t eclipse_held = 0;
  bool connected = false;
};

ExperimentSpec spec_for(const BenchOptions& opts, const char* protocol,
                        const std::string& adversary_keys) {
  const std::size_t n = opts.scale_n(400);
  const double horizon = opts.scale_t(7200.0);
  char text[768];
  std::snprintf(text, sizeof(text),
                "overlay = gnutella\n"
                "protocol = %s\n"
                "nodes = %zu\n"
                "seed = %llu\n"
                "horizon = %.0f\n"
                "sample_interval = %.0f\n"
                "queries = %zu\n"
                "model_message_delays = true\n"
                "measure_threads = auto\n",
                protocol, n, static_cast<unsigned long long>(opts.seed),
                horizon, horizon / 12.0, opts.scale_q(4000));
  const std::string cfg = std::string(text) + adversary_keys;
  const SpecResult parsed = ExperimentSpec::from_config(Config::parse(cfg));
  PROPSIM_CHECK(parsed.ok() && "adversary_envelope config must parse");
  return parsed.spec();
}

Row run_row(const BenchOptions& opts, const char* protocol,
            const char* model, double fraction,
            const std::string& adversary_keys, double honest_final) {
  const ExperimentResult r =
      run_experiment(spec_for(opts, protocol, adversary_keys));
  Row row;
  row.protocol = protocol;
  row.model = model;
  row.fraction = fraction;
  row.success_ratio = r.attempts > 0
                          ? static_cast<double>(r.exchanges) /
                                static_cast<double>(r.attempts)
                          : 0.0;
  row.final_metric = r.final_value;
  row.degradation =
      honest_final > 0.0 ? r.final_value / honest_final : 1.0;
  row.lies = r.adversary_lies;
  row.drops = r.adversary_drops;
  row.freeride_skips = r.adversary_freeride_skips;
  row.eclipse_attempts = r.adversary_eclipse_attempts;
  row.eclipse_captures = r.adversary_eclipse_captures;
  row.eclipse_held = r.adversary_eclipse_held;
  row.connected = r.connected;
  return row;
}

std::string liar_keys(double fraction) {
  if (fraction <= 0.0) return "";
  char text[160];
  std::snprintf(text, sizeof(text),
                "adversary_liar_fraction = %.2f\n"
                "adversary_lie_factor = 0.5\n",
                fraction);
  return text;
}

int run(const BenchOptions& opts) {
  print_header(
      "Adversary envelope — PROP under liars, free-riders, droppers "
      "and an eclipse cohort",
      "byzantine peers degrade convergence quality but never corrupt "
      "the overlay structure: honest runs stay byzantine-free, heavier "
      "cohorts never help, and every run ends connected");

  const double fractions[] = {0.0, 0.05, 0.20, 0.50};
  std::vector<Row> rows;
  std::string csv =
      "protocol,model,fraction,success_ratio,final_lookup_ms,degradation,"
      "lies,drops,freeride_skips,eclipse_attempts,eclipse_captures,"
      "eclipse_held,connected\n";
  double honest_final[2] = {0.0, 0.0};  // [0] = prop-g, [1] = prop-o
  for (const char* protocol : {"prop-g", "prop-o"}) {
    const std::size_t p = protocol[5] == 'g' ? 0 : 1;
    for (const double f : fractions) {
      const Row row = run_row(opts, protocol, f > 0.0 ? "liar" : "honest",
                              f, liar_keys(f), honest_final[p]);
      if (f == 0.0) honest_final[p] = row.final_metric;
      rows.push_back(row);
    }
  }
  rows.push_back(run_row(opts, "prop-o", "mix", 0.15,
                         "adversary_freeride_fraction = 0.10\n"
                         "adversary_dropper_fraction = 0.05\n"
                         "adversary_drop_probability = 0.5\n",
                         honest_final[1]));
  rows.push_back(run_row(opts, "prop-g", "eclipse", 0.10,
                         "adversary_eclipse_fraction = 0.10\n"
                         "adversary_eclipse_target = auto\n",
                         honest_final[0]));
  for (Row& row : rows) {
    if (row.model == "honest") row.degradation = 1.0;
    char line[320];
    std::snprintf(line, sizeof(line),
                  "%s,%s,%.2f,%.4f,%.1f,%.3f,%llu,%llu,%llu,%llu,%llu,"
                  "%llu,%d\n",
                  row.protocol.c_str(), row.model.c_str(), row.fraction,
                  row.success_ratio, row.final_metric, row.degradation,
                  static_cast<unsigned long long>(row.lies),
                  static_cast<unsigned long long>(row.drops),
                  static_cast<unsigned long long>(row.freeride_skips),
                  static_cast<unsigned long long>(row.eclipse_attempts),
                  static_cast<unsigned long long>(row.eclipse_captures),
                  static_cast<unsigned long long>(row.eclipse_held),
                  row.connected ? 1 : 0);
    csv += line;
  }
  print_csv_block("adversary_envelope", csv);

  // The envelope verdict, with tolerance for simulation noise:
  //  - honest rows record zero byzantine activity;
  //  - the heaviest liar cohort visibly lies and its success ratio does
  //    not beat the honest row's by more than noise;
  //  - liar rows never materially *improve* the converged latency (the
  //    envelope opens upward only);
  //  - the mix row shows free-riding and commit drops, the eclipse row
  //    shows steered probes;
  //  - every run ends with a connected overlay (structure is intact).
  bool honest_clean = true;
  bool attacks_bite = true;
  bool never_helps = true;
  bool all_connected = true;
  double worst_degradation = 1.0;
  for (const Row& row : rows) {
    all_connected = all_connected && row.connected;
    if (row.degradation > worst_degradation) {
      worst_degradation = row.degradation;
    }
    if (row.model == "honest") {
      honest_clean = honest_clean && row.lies == 0 && row.drops == 0 &&
                     row.freeride_skips == 0 && row.eclipse_attempts == 0;
      continue;
    }
    if (row.model == "liar") {
      if (row.fraction >= 0.20) attacks_bite = attacks_bite && row.lies > 0;
      never_helps = never_helps && row.degradation > 0.90;
    }
    if (row.model == "mix") {
      attacks_bite =
          attacks_bite && row.freeride_skips > 0 && row.drops > 0;
    }
    if (row.model == "eclipse") {
      attacks_bite = attacks_bite && row.eclipse_attempts > 0;
    }
  }
  // Lies scale with the cohort: a bigger liar fraction flips more gate
  // decisions. (The raw success *ratio* is not a degradation axis here —
  // liars that deflate Var to force exchanges through inflate the
  // commit count while making the commits worthless; the converged
  // latency above is what must not improve.)
  for (std::size_t p = 0; p < 2; ++p) {
    attacks_bite = attacks_bite &&
                   rows[p * 4 + 1].lies <= rows[p * 4 + 2].lies &&
                   rows[p * 4 + 2].lies <= rows[p * 4 + 3].lies;
  }
  const bool pass =
      honest_clean && attacks_bite && never_helps && all_connected;

  Json doc = Json::object();
  doc.set("schema", "propsim.bench.adversary");
  doc.set("version", 1);
  doc.set("quick", opts.quick);
  doc.set("seed", opts.seed);
  doc.set("hardware", hardware_info());
  Json json_rows = Json::array();
  for (const Row& row : rows) {
    Json r = Json::object();
    r.set("protocol", row.protocol)
        .set("model", row.model)
        .set("fraction", row.fraction)
        .set("success_ratio", row.success_ratio)
        .set("final_lookup_ms", row.final_metric)
        .set("degradation", row.degradation)
        .set("lies", row.lies)
        .set("drops", row.drops)
        .set("freeride_skips", row.freeride_skips)
        .set("eclipse_attempts", row.eclipse_attempts)
        .set("eclipse_captures", row.eclipse_captures)
        .set("eclipse_held", row.eclipse_held)
        .set("connected", row.connected);
    json_rows.push_back(std::move(r));
  }
  doc.set("rows", std::move(json_rows));
  doc.set("worst_degradation", worst_degradation);
  doc.set("honest_clean", honest_clean);
  doc.set("attacks_bite", attacks_bite);
  doc.set("never_helps", never_helps);
  doc.set("all_connected", all_connected);
  doc.set("pass", pass);

  const std::string out = doc.dump(2);
  if (std::FILE* f = std::fopen("BENCH_adversary.json", "w")) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_adversary.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_adversary.json\n");
    return 1;
  }

  char detail[320];
  std::snprintf(detail, sizeof(detail),
                "worst degradation %.2fx across %zu rows; honest rows "
                "byzantine-free=%d; attacks visible=%d; connected=%d",
                worst_degradation, rows.size(), honest_clean ? 1 : 0,
                attacks_bite ? 1 : 0, all_connected ? 1 : 0);
  print_verdict(pass, detail);
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
