// Figure 7 — PROP-O under node heterogeneity.
//
// Bimodal processing delays (fast hubs vs slow peers, capability
// correlated with degree), Gnutella-like overlay. The x-axis sweeps the
// fraction of lookups whose destination is a fast node; series are
// PROP-O with m in {1, 2, 4}, PROP-G and LTM. Values are normalized to
// the unoptimized overlay's latency on the same workload.
//
// Paper shape: with mostly slow-destined lookups LTM routes best; as
// fast-destined lookups dominate, LTM's and PROP-G's (normalized) delay
// degrades while PROP-O keeps improving, because only PROP-O preserves
// the fast hubs' connection counts.
#include <cstdio>
#include <functional>

#include "baselines/ltm.h"
#include "bench_util.h"
#include "common/table.h"
#include "core/prop_engine.h"
#include "measure/measure_engine.h"
#include "sim/simulator.h"
#include "workload/heterogeneity.h"
#include "workload/lookups.h"

namespace propsim::bench {
namespace {

struct Policy {
  std::string label;
  // Optimizes the overlay in place over `horizon_s` simulated seconds.
  std::function<void(OverlayNetwork&, double, std::uint64_t)> optimize;
};

int run(const BenchOptions& opts) {
  print_header(
      "Figure 7 — normalized lookup delay under bimodal heterogeneity",
      "as the fraction of fast-destined lookups grows, PROP-O's delay "
      "keeps falling while LTM (and PROP-G) lose their edge; PROP-O with "
      "larger m does better");

  const std::size_t n = opts.scale_n(1000);
  const double horizon = opts.scale_t(3600.0);
  const std::size_t q = opts.scale_q(10000);

  std::vector<Policy> policies;
  for (const std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    policies.push_back(Policy{
        "PROP-O(m=" + std::to_string(m) + ")",
        [m](OverlayNetwork& net, double t, std::uint64_t seed) {
          Simulator sim;
          PropParams params = paper_prop_params(PropMode::kPropO);
          params.m = m;
          PropEngine engine(net, sim, params, seed);
          engine.start();
          sim.run_until(t);
        }});
  }
  policies.push_back(
      Policy{"PROP-G", [](OverlayNetwork& net, double t, std::uint64_t seed) {
               Simulator sim;
               PropEngine engine(net, sim,
                                 paper_prop_params(PropMode::kPropG), seed);
               engine.start();
               sim.run_until(t);
             }});
  policies.push_back(
      Policy{"LTM", [](OverlayNetwork& net, double t, std::uint64_t seed) {
               Simulator sim;
               LtmParams params;
               LtmEngine engine(net, sim, params, seed);
               engine.start();
               sim.run_until(t);
             }});

  const std::vector<double> fractions{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  // One optimized overlay per policy (the optimization is workload-
  // independent); the lookup-destination bias only changes measurement.
  Table table([&] {
    std::vector<std::string> header{"fraction_fast_lookup"};
    for (const Policy& p : policies) header.push_back(p.label);
    return header;
  }());

  // Build the base world once per policy run for identical starting
  // conditions; heterogeneity is tied to the *initial* hub structure.
  // Measurement sweeps run on the parallel engine (bit-identical to the
  // serial path for any worker count, so the figure is unchanged).
  MeasureEngine measure(MeasureEngine::kAutoThreads);
  std::vector<std::vector<double>> normalized(policies.size());
  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    Rng rng(opts.seed);
    World world(TransitStubConfig::ts_large(), rng);
    OverlayNetwork net = build_unstructured(world, n, rng);
    Rng hrng(opts.seed ^ 0xa0761d6478bd642fULL);
    BimodalConfig bcfg;  // 20% fast (10 ms) vs slow (100 ms), DESIGN.md
    const auto delays = make_bimodal_delays_by_degree(net, bcfg, hrng);

    // Baseline (unoptimized) latency per fraction, for normalization.
    // Processing delays belong to hosts; materialize the slot view under
    // the pre-optimization placement.
    std::vector<double> base;
    {
      const auto fast = delays.slot_fast(net);
      const auto proc = delays.slot_delays(net);
      const OverlaySnapshot snap = OverlaySnapshot::capture(net);
      for (const double f : fractions) {
        Rng qrng(opts.seed + static_cast<std::uint64_t>(f * 100));
        const auto queries = biased_queries(net.graph(), fast, f, q, qrng);
        base.push_back(measure.average_lookup_latency(snap, queries, &proc));
      }
    }

    policies[pi].optimize(net, horizon, opts.seed + pi);

    // Re-materialize: PROP-G moved hosts across slots.
    const auto fast = delays.slot_fast(net);
    const auto proc = delays.slot_delays(net);
    const OverlaySnapshot snap = OverlaySnapshot::capture(net);
    for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
      Rng qrng(opts.seed + static_cast<std::uint64_t>(fractions[fi] * 100));
      const auto queries =
          biased_queries(net.graph(), fast, fractions[fi], q, qrng);
      const double lat = measure.average_lookup_latency(snap, queries, &proc);
      normalized[pi].push_back(lat / base[fi]);
    }
    std::printf("  [%s] done\n", policies[pi].label.c_str());
  }

  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    std::vector<std::string> row{Table::fmt(fractions[fi], 3)};
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      row.push_back(Table::fmt(normalized[pi][fi], 4));
    }
    table.add_row(std::move(row));
  }
  print_csv_block("fig7", table.to_csv());
  std::printf("%s", table.to_ascii().c_str());

  // Shape checks mirroring the paper's reading of Figure 7:
  //  (1) at the fast-dominated end PROP-O beats both LTM and PROP-G;
  //  (2) as the fast fraction grows, LTM's and PROP-G's normalized delay
  //      worsens while PROP-O's stays (nearly) flat — i.e. PROP-O's
  //      slope is smaller than both others';
  //  (3) LTM's advantage over PROP-O shrinks (or flips) from the slow-
  //      to the fast-dominated end.
  const std::size_t last = fractions.size() - 1;
  const std::size_t io4 = 2;  // PROP-O(m=4)
  const std::size_t ig = 3;   // PROP-G
  const std::size_t il = 4;   // LTM
  auto slope = [&](std::size_t i) {
    return normalized[i][last] - normalized[i][0];
  };
  const bool prop_o_wins_fast = normalized[io4][last] < normalized[il][last] &&
                                normalized[io4][last] < normalized[ig][last];
  const bool slopes_ordered =
      slope(io4) < slope(il) && slope(io4) < slope(ig);
  const bool gap_shrinks =
      (normalized[il][last] - normalized[io4][last]) >
      (normalized[il][0] - normalized[io4][0]);
  const bool holds = prop_o_wins_fast && slopes_ordered && gap_shrinks;
  char detail[320];
  std::snprintf(detail, sizeof(detail),
                "at fraction=1.0: PROP-O(m=4) %.3f vs PROP-G %.3f vs LTM "
                "%.3f; slopes (0->1): PROP-O %+.3f, PROP-G %+.3f, LTM "
                "%+.3f",
                normalized[io4][last], normalized[ig][last],
                normalized[il][last], slope(io4), slope(ig), slope(il));
  print_verdict(holds, detail);
  return holds ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
