// Extension — object replication sweep under scoped flooding.
//
// The paper's unstructured metric treats lookups as peer-to-peer; real
// Gnutella looks up *objects* replicated on a few peers, flooding with a
// TTL scope. This bench sweeps the replication factor and reports hit
// rate, first-response latency and message cost per query, with and
// without PROP-O — showing that location-aware rewiring compounds with
// replication (closer replicas are found faster AND floods spend fewer
// messages per hit), while the degree profile stays intact. The sweep
// shows the advantage *compounds* with replication: more replicas make
// lookups terminate on nearby overlay links, which is precisely where
// PROP-O's rewiring lands, so the relative speedup grows.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/prop_engine.h"
#include "gnutella/flood_search.h"
#include "sim/simulator.h"

namespace propsim::bench {
namespace {

struct SearchStats {
  double hit_rate = 0.0;
  double latency_ms = 0.0;  // over hits
  double messages = 0.0;
};

SearchStats measure(OverlayNetwork& net, std::size_t replicas,
                    std::uint32_t ttl, std::size_t queries,
                    std::uint64_t seed) {
  Rng rng(seed);
  SearchStats stats;
  std::size_t hits = 0;
  const std::size_t objects = 40;
  std::vector<std::vector<bool>> catalogs;
  for (std::size_t o = 0; o < objects; ++o) {
    std::vector<bool> holders(net.graph().slot_count(), false);
    for (const auto idx :
         rng.sample_indices(net.graph().slot_count(), replicas)) {
      holders[idx] = true;
    }
    catalogs.push_back(std::move(holders));
  }
  const auto slots = net.graph().active_slots();
  for (std::size_t q = 0; q < queries; ++q) {
    const SlotId src =
        slots[static_cast<std::size_t>(rng.uniform(slots.size()))];
    const auto& holders =
        catalogs[static_cast<std::size_t>(rng.uniform(catalogs.size()))];
    const FloodResult res = flood_search(net, src, holders, ttl);
    stats.messages += static_cast<double>(res.messages);
    if (res.found) {
      ++hits;
      stats.latency_ms += res.first_response_ms;
    }
  }
  stats.hit_rate = static_cast<double>(hits) / static_cast<double>(queries);
  stats.latency_ms = hits ? stats.latency_ms / static_cast<double>(hits) : 0;
  stats.messages /= static_cast<double>(queries);
  return stats;
}

int run(const BenchOptions& opts) {
  print_header(
      "Extension — replication sweep under TTL-scoped flooding",
      "PROP-O cuts first-response latency at every replication factor, "
      "and the relative speedup grows with replication (local links "
      "dominate short lookups)");

  const std::size_t n = opts.scale_n(800);
  const std::uint32_t ttl = 5;
  const std::size_t queries = opts.scale_q(4000);

  // Two identical overlays; one gets optimized.
  Rng rng(opts.seed);
  World world(TransitStubConfig::ts_large(), rng);
  OverlayNetwork plain = build_unstructured(world, n, rng);
  OverlayNetwork tuned = plain;
  Simulator sim;
  PropParams params = paper_prop_params(PropMode::kPropO);
  PropEngine engine(tuned, sim, params, opts.seed + 1);
  engine.start();
  sim.run_until(opts.scale_t(3600.0));
  std::printf("PROP-O: %llu exchanges committed\n",
              static_cast<unsigned long long>(engine.stats().exchanges));

  Table table({"replicas", "hit_plain", "hit_prop", "latency_plain_ms",
               "latency_prop_ms", "speedup", "msgs_per_query"});
  bool holds = true;
  double prev_speedup = 0.0;
  for (const std::size_t replicas :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8},
        std::size_t{16}}) {
    const SearchStats before =
        measure(plain, replicas, ttl, queries, opts.seed + 7);
    const SearchStats after =
        measure(tuned, replicas, ttl, queries, opts.seed + 7);
    const double speedup = before.latency_ms / after.latency_ms;
    table.add_row_values({static_cast<double>(replicas), before.hit_rate,
                          after.hit_rate, before.latency_ms,
                          after.latency_ms, speedup, after.messages});
    // Trade-off measured honestly: localized rewiring shrinks the TTL
    // flood ball a little (clustering grows). With a single replica and
    // TTL 5 that costs ~6% of hit rate (for >2x lower latency); any
    // replication >= 2 recovers coverage almost entirely. The verdict
    // encodes exactly that shape.
    holds = holds && after.latency_ms < before.latency_ms;
    if (replicas == 1) {
      holds = holds && after.hit_rate >= before.hit_rate - 0.10;
    } else {
      holds = holds && after.hit_rate >= before.hit_rate - 0.01;
    }
    // The advantage compounds (weakly monotone) as replication grows.
    holds = holds && speedup >= prev_speedup - 0.15;
    prev_speedup = speedup;
  }
  print_csv_block("ext_replication", table.to_csv());
  std::printf("%s", table.to_ascii().c_str());
  print_verdict(holds,
                "PROP-O wins at every replication factor and the speedup "
                "grows with replication; the cost is a small TTL-flood "
                "coverage dip at replication 1 (localized links shrink "
                "the flood ball)");
  return holds ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
