// Extension — probe-free PROP via Vivaldi virtual coordinates.
//
// Section 4.3 prices every exchange attempt at nhops + 2c probe
// messages. If peers maintain Vivaldi coordinates (Dabek et al. 2004 —
// the same system the paper's heterogeneity setup cites), the Var of a
// hypothetical exchange can be *estimated* from coordinates, making the
// probe phase free. This bench drives the identical exchange loop twice
// on the same overlay and seeds — once deciding on true probed
// latencies, once on coordinate estimates — and reports how much of the
// true-probing gain the estimate retains, the decision agreement rate,
// and the probe messages avoided.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/exchange.h"
#include "topology/vivaldi.h"
#include "workload/lookups.h"

namespace propsim::bench {
namespace {

/// prop_g_var computed under an arbitrary host-latency function.
template <typename LatencyFn>
double estimated_prop_g_var(const OverlayNetwork& net, SlotId u, SlotId v,
                            LatencyFn&& lat) {
  const NodeId host_u = net.placement().host_of(u);
  const NodeId host_v = net.placement().host_of(v);
  double before = 0.0;
  double after = 0.0;
  for (const SlotId i : net.graph().neighbors(u)) {
    const NodeId hi = net.placement().host_of(i);
    before += lat(host_u, hi);
    after += lat(host_v, (i == v) ? host_u : hi);
  }
  for (const SlotId i : net.graph().neighbors(v)) {
    const NodeId hi = net.placement().host_of(i);
    before += lat(host_v, hi);
    after += lat(host_u, (i == u) ? host_v : hi);
  }
  return before - after;
}

struct LoopResult {
  double final_lookup_ms = 0.0;
  std::uint64_t commits = 0;
  std::uint64_t probe_messages = 0;
};

int run(const BenchOptions& opts) {
  print_header(
      "Extension — Var from Vivaldi coordinates instead of probes",
      "coordinate-estimated Var retains most of the probed-Var latency "
      "gain while eliminating the 2c probe messages per attempt");

  const std::size_t n = opts.scale_n(1000);
  const std::size_t attempts = opts.quick ? 8000 : 30000;

  // Shared starting world. Each loop gets its own copy of the overlay.
  Rng rng(opts.seed);
  World world(TransitStubConfig::ts_large(), rng);
  const OverlayNetwork base = build_unstructured(world, n, rng);
  Rng qrng(opts.seed + 1);
  const auto queries =
      uniform_queries(base.graph(), opts.scale_q(5000), qrng);
  const double before_ms =
      average_unstructured_lookup_latency(base, queries);

  // Vivaldi bootstrap: ~150 measurements per overlay host, the traffic a
  // live deployment observes anyway.
  const auto hosts = base.placement().bound_hosts();
  VivaldiSystem viv(world.topo.graph.node_count(), VivaldiConfig{},
                    opts.seed + 2);
  Rng trng(opts.seed + 3);
  viv.train(hosts, world.oracle, 150 * hosts.size(), trng);
  Rng erng(opts.seed + 4);
  const double coord_error =
      viv.median_relative_error(hosts, world.oracle, 2000, erng);
  std::printf("vivaldi median relative error after training: %.1f%%\n",
              100.0 * coord_error);

  // Both loops replay the identical candidate stream (same seed).
  auto run_loop = [&](bool use_estimates, std::uint64_t* agree,
                      std::uint64_t* total) {
    OverlayNetwork net = base;  // fresh copy, same starting placement
    Rng lrng(opts.seed + 5);    // same stream for both loops
    LoopResult r;
    for (std::size_t a = 0; a < attempts; ++a) {
      const auto slots = net.graph().active_slots();
      const SlotId u =
          slots[static_cast<std::size_t>(lrng.uniform(slots.size()))];
      const auto neigh = net.graph().neighbors(u);
      if (neigh.empty()) continue;
      const SlotId first =
          neigh[static_cast<std::size_t>(lrng.uniform(neigh.size()))];
      const auto walk = net.random_walk(u, first, 2, lrng);
      if (!walk) continue;
      const SlotId v = walk->back();
      const double true_var = prop_g_var(net, u, v);
      const double est_var = estimated_prop_g_var(
          net, u, v,
          [&](NodeId a_host, NodeId b_host) {
            return viv.estimate(a_host, b_host);
          });
      if (agree != nullptr) {
        ++*total;
        if ((true_var > 0) == (est_var > 0)) ++*agree;
      }
      const double decision_var = use_estimates ? est_var : true_var;
      if (!use_estimates) {
        // Probing both neighborhoods: 2c messages (Section 4.3).
        r.probe_messages +=
            net.graph().degree(u) + net.graph().degree(v);
      }
      if (decision_var > 0.0) {
        apply_exchange(net, plan_prop_g(net, u, v));
        ++r.commits;
      }
    }
    r.final_lookup_ms = average_unstructured_lookup_latency(net, queries);
    return r;
  };

  std::uint64_t agree = 0;
  std::uint64_t total = 0;
  const LoopResult probed = run_loop(false, nullptr, nullptr);
  const LoopResult estimated = run_loop(true, &agree, &total);

  Table table({"decision_source", "final_lookup_ms", "improvement",
               "commits", "probe_msgs"});
  table.add_row({"probed (true Var)", Table::fmt(probed.final_lookup_ms, 5),
                 improvement_factor(before_ms, probed.final_lookup_ms),
                 std::to_string(probed.commits),
                 std::to_string(probed.probe_messages)});
  table.add_row({"vivaldi (est. Var)",
                 Table::fmt(estimated.final_lookup_ms, 5),
                 improvement_factor(before_ms, estimated.final_lookup_ms),
                 std::to_string(estimated.commits),
                 std::to_string(estimated.probe_messages)});
  print_csv_block("ext_vivaldi", table.to_csv());
  std::printf("%s", table.to_ascii().c_str());
  const double agreement =
      static_cast<double>(agree) / static_cast<double>(total);
  std::printf("decision agreement (sign of Var): %.1f%%\n",
              100.0 * agreement);

  const double probed_gain = before_ms - probed.final_lookup_ms;
  const double est_gain = before_ms - estimated.final_lookup_ms;
  const bool holds = probed_gain > 0.0 && est_gain > 0.6 * probed_gain &&
                     estimated.probe_messages == 0 && agreement > 0.7;
  char detail[256];
  std::snprintf(detail, sizeof(detail),
                "estimated-Var keeps %.0f%% of the probed gain "
                "(%.0f of %.0f ms) with 0 probe messages vs %llu",
                100.0 * est_gain / probed_gain, est_gain, probed_gain,
                static_cast<unsigned long long>(probed.probe_messages));
  print_verdict(holds, detail);
  return holds ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
