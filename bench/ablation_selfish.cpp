// Ablation — cooperative peer-exchange vs selfish rewiring (Section 3.1).
//
// "This selfish method ... is beneficial to the source node itself but
// is not always beneficial to (or in some case may actually detract
// from) system-wide optimization." We give both strategies the same
// number of optimization steps and compare the system-wide average
// logical link latency, the lookup latency, and the degree distortion.
#include <cmath>
#include <cstdio>

#include "baselines/selfish.h"
#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/prop_engine.h"
#include "sim/simulator.h"
#include "workload/lookups.h"

namespace propsim::bench {
namespace {

struct Outcome {
  double link_latency = 0.0;
  double lookup_latency = 0.0;   // over reachable pairs only
  double unreachable_pct = 0.0;  // selfish rewiring can partition!
  std::size_t max_degree = 0;
  std::size_t min_degree = 0;
  bool connected = false;
};

Outcome snapshot(OverlayNetwork& net, const BenchOptions& opts) {
  Outcome o;
  o.link_latency = net.average_logical_link_latency();
  Rng qrng(opts.seed + 29);
  const auto queries =
      uniform_queries(net.graph(), opts.scale_q(5000), qrng);
  const auto lats = unstructured_lookup_latencies(net, queries);
  double sum = 0.0;
  std::size_t reachable = 0;
  for (const double l : lats) {
    if (std::isfinite(l)) {
      sum += l;
      ++reachable;
    }
  }
  o.lookup_latency = reachable ? sum / static_cast<double>(reachable) : 0.0;
  o.unreachable_pct = 100.0 * static_cast<double>(lats.size() - reachable) /
                      static_cast<double>(lats.size());
  o.max_degree = 0;
  o.min_degree = static_cast<std::size_t>(-1);
  for (const SlotId s : net.graph().active_slots()) {
    o.max_degree = std::max(o.max_degree, net.graph().degree(s));
    o.min_degree = std::min(o.min_degree, net.graph().degree(s));
  }
  o.connected = net.graph().active_subgraph_connected();
  return o;
}

int run(const BenchOptions& opts) {
  print_header(
      "Ablation — cooperative PROP-O exchange vs selfish rewiring",
      "the selfish nearest-neighbor strategy helps each acting node but "
      "optimizes the system less than cooperative exchange and distorts "
      "the degree structure");

  const std::size_t n = opts.scale_n(800);
  const std::size_t steps = opts.quick ? 4000 : 16000;

  // --- PROP-O: cooperative, driven step-by-step for a fair budget. ---
  Outcome coop_before, coop_after;
  {
    Rng rng(opts.seed);
    World world(TransitStubConfig::ts_large(), rng);
    OverlayNetwork net = build_unstructured(world, n, rng);
    coop_before = snapshot(net, opts);
    Simulator sim;
    PropParams params = paper_prop_params(PropMode::kPropO);
    PropEngine engine(net, sim, params, opts.seed + 31);
    engine.start();
    Rng pick(opts.seed + 37);
    const auto slots = net.graph().active_slots();
    for (std::size_t i = 0; i < steps; ++i) {
      engine.attempt(
          slots[static_cast<std::size_t>(pick.uniform(slots.size()))]);
    }
    coop_after = snapshot(net, opts);
  }

  // --- Selfish: same step budget. ---
  Outcome selfish_before, selfish_after;
  {
    Rng rng(opts.seed);
    World world(TransitStubConfig::ts_large(), rng);
    OverlayNetwork net = build_unstructured(world, n, rng);
    selfish_before = snapshot(net, opts);
    Rng pick(opts.seed + 37);
    SelfishParams params;
    const auto slots = net.graph().active_slots();
    for (std::size_t i = 0; i < steps; ++i) {
      selfish_step(
          net, slots[static_cast<std::size_t>(pick.uniform(slots.size()))],
          params, pick);
    }
    selfish_after = snapshot(net, opts);
  }

  Table table({"strategy", "link_ms_before", "link_ms_after",
               "lookup_ms_after", "unreachable_pct", "min_deg", "max_deg",
               "connected"});
  table.add_row({"PROP-O", Table::fmt(coop_before.link_latency, 4),
                 Table::fmt(coop_after.link_latency, 4),
                 Table::fmt(coop_after.lookup_latency, 4),
                 Table::fmt(coop_after.unreachable_pct, 3),
                 std::to_string(coop_after.min_degree),
                 std::to_string(coop_after.max_degree),
                 coop_after.connected ? "yes" : "no"});
  table.add_row({"selfish", Table::fmt(selfish_before.link_latency, 4),
                 Table::fmt(selfish_after.link_latency, 4),
                 Table::fmt(selfish_after.lookup_latency, 4),
                 Table::fmt(selfish_after.unreachable_pct, 3),
                 std::to_string(selfish_after.min_degree),
                 std::to_string(selfish_after.max_degree),
                 selfish_after.connected ? "yes" : "no"});
  print_csv_block("ablation_selfish", table.to_csv());
  std::printf("%s", table.to_ascii().c_str());

  // Cooperative exchange must deliver better system-wide service under
  // the same step budget: lower reachable-pair latency OR a reachability
  // the selfish strategy lost, plus the degree floor it erodes. (The
  // selfish strategy partitioning the overlay at full scale is itself
  // the paper's Section 3.1 point.)
  const bool system_wide =
      coop_after.unreachable_pct < selfish_after.unreachable_pct ||
      (coop_after.unreachable_pct == selfish_after.unreachable_pct &&
       coop_after.lookup_latency < selfish_after.lookup_latency);
  const bool degrees_kept =
      coop_after.min_degree >= selfish_after.min_degree &&
      coop_after.connected;
  const bool holds = system_wide && degrees_kept;
  char detail[320];
  std::snprintf(
      detail, sizeof(detail),
      "after: PROP-O %.0f ms (%.1f%% unreachable) vs selfish %.0f ms "
      "(%.1f%% unreachable); min degree %zu vs %zu; selfish partitioned "
      "the overlay: %s",
      coop_after.lookup_latency, coop_after.unreachable_pct,
      selfish_after.lookup_latency, selfish_after.unreachable_pct,
      coop_after.min_degree, selfish_after.min_degree,
      selfish_after.connected ? "no" : "yes");
  print_verdict(holds, detail);
  return holds ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
