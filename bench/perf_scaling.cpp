// perf_scaling — oracle performance scaling bench (not a paper figure).
//
// Measures the hierarchical transit-stub latency oracle against the
// Dijkstra-row fallback across physical network sizes n in {~1k, ~10k,
// ~50k}: construction wall-clock, point-query throughput, resident
// memory, and an end-to-end PROP-G Gnutella run at the 10k scale with
// both engines. Results go to stdout and to BENCH_oracle.json (stable
// schema `propsim.bench.oracle`, version 1) for CI artifact upload.
//
// `--quick` shrinks query counts and skips the 50k scale so the bench
// fits in CI time; `--part 1k|10k|50k` runs a single scale. Exit code
// is 0 only when the generous 10k-scale ceilings hold (the CI perf
// smoke gate): hierarchical build time, >= 5x query throughput over the
// fallback, bit-exact spot-check vs full-graph Dijkstra, and bounded
// peak RSS.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "core/prop_engine.h"
#include "metrics/convergence.h"
#include "metrics/metrics.h"
#include "sim/simulator.h"
#include "workload/host_selection.h"
#include "workload/lookups.h"

namespace propsim::bench {
namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

/// Peak resident set of this process so far, in MiB (ru_maxrss is KiB on
/// Linux).
double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Current resident set in MiB via /proc/self/statm (Linux); 0 if
/// unreadable. Peak RSS only grows, so this is what shows the oracle's
/// O(V) footprint per scale.
double current_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long pages = 0, resident = 0;
  const int got = std::fscanf(f, "%ld %ld", &pages, &resident);
  std::fclose(f);
  if (got != 2) return 0.0;
  const long page_kb = sysconf(_SC_PAGESIZE) / 1024;
  return static_cast<double>(resident * page_kb) / 1024.0;
}

struct Scale {
  std::string name;     // also the --part selector
  std::size_t transit_domains;
};

TransitStubConfig scaled_config(const Scale& scale) {
  // ts-large shape (4 transit nodes/domain, 3x40-node stubs per transit
  // node = 484 nodes per transit domain); only the backbone width grows.
  TransitStubConfig config = TransitStubConfig::ts_large();
  config.transit_domains = scale.transit_domains;
  return config;
}

/// Random (a, b) stub-host query pairs, a != b.
std::vector<std::pair<NodeId, NodeId>> random_pairs(
    const TransitStubTopology& topo, std::size_t count, Rng& rng) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  const auto& hosts = topo.stub_nodes;
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId a = rng.pick(hosts);
    NodeId b = rng.pick(hosts);
    while (b == a) b = rng.pick(hosts);
    pairs.emplace_back(a, b);
  }
  return pairs;
}

struct Throughput {
  std::size_t queries = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double checksum = 0.0;  // defeats dead-code elimination; printed
};

Throughput measure_queries(const LatencyOracle& oracle,
                           std::span<const std::pair<NodeId, NodeId>> pairs) {
  Throughput t;
  t.queries = pairs.size();
  const double start = now_ms();
  double sum = 0.0;
  for (const auto& [a, b] : pairs) sum += oracle.latency(a, b);
  t.wall_ms = now_ms() - start;
  t.qps = t.wall_ms > 0.0 ? 1000.0 * static_cast<double>(t.queries) / t.wall_ms
                          : 0.0;
  t.checksum = sum;
  return t;
}

/// Max |hierarchical - Dijkstra| over full rows from `samples` random
/// sources. Must be exactly 0 on transit-stub graphs.
double equivalence_gap(const TransitStubTopology& topo,
                       const LatencyOracle& hier, const LatencyOracle& dijk,
                       std::size_t samples, Rng& rng) {
  double worst = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const NodeId src = rng.pick(topo.stub_nodes);
    const DistanceRow h = hier.distances_from(src);
    const DistanceRow d = dijk.distances_from(src);
    for (std::size_t v = 0; v < h.size(); ++v) {
      worst = std::max(worst, std::fabs(h[v] - d[v]));
    }
  }
  return worst;
}

struct EndToEnd {
  double wall_ms = 0.0;
  double improvement = 0.0;  // initial/final lookup latency
  std::uint64_t exchanges = 0;
};

/// One full PROP-G Gnutella experiment over a prebuilt topology using
/// the given oracle engine; identical seeds => identical overlay and
/// schedule for both engines, so wall-clock is the only difference.
EndToEnd run_prop_g(const TransitStubTopology& topo,
                    const LatencyOracle& oracle, std::size_t overlay_n,
                    double horizon_s, std::size_t query_count,
                    std::uint64_t seed) {
  const double start = now_ms();
  Rng rng(seed);
  const auto hosts = select_stub_hosts(topo, overlay_n, rng);
  GnutellaConfig gcfg;
  OverlayNetwork net = build_gnutella_overlay(gcfg, hosts, oracle, rng);

  Rng qrng(seed ^ 0x517cc1b727220a95ULL);
  const auto queries = uniform_queries(net.graph(), query_count, qrng);

  Simulator sim;
  PropEngine engine(net, sim, paper_prop_params(PropMode::kPropG), seed + 7);
  ConvergenceSampler sampler(sim, "lookup_ms", 0.0, horizon_s, horizon_s / 8.0,
                             [&] {
                               return average_unstructured_lookup_latency(
                                   net, queries);
                             });
  engine.start();
  sim.run_until(horizon_s);

  EndToEnd e;
  e.wall_ms = now_ms() - start;
  const TimeSeries series = sampler.take_series();
  e.improvement = series.first_value() / series.last_value();
  e.exchanges = engine.stats().exchanges;
  return e;
}

int run(const BenchOptions& opts) {
  print_header(
      "perf_scaling — hierarchical oracle vs Dijkstra-row fallback",
      "hierarchical latency(a,b) is O(1) with O(V) resident state; >= 5x "
      "the fallback's query throughput at the 10k scale, bit-exact");

  std::vector<Scale> scales{{"1k", 2}, {"10k", 21}};
  if (!opts.quick) scales.push_back({"50k", 103});
  if (!opts.part.empty()) {
    std::erase_if(scales,
                  [&](const Scale& s) { return s.name != opts.part; });
    if (scales.empty()) {
      std::fprintf(stderr, "unknown --part '%s' (1k | 10k | 50k)\n",
                   opts.part.c_str());
      return 2;
    }
  }

  Json doc = Json::object();
  doc.set("schema", "propsim.bench.oracle");
  doc.set("version", 1);
  doc.set("quick", opts.quick);
  doc.set("seed", opts.seed);
  Json rows = Json::array();

  // Generous ceilings for the CI perf smoke gate, checked at the 10k
  // scale only (small enough to always run, big enough to be honest).
  constexpr double kBuildCeilingMs = 60'000.0;
  constexpr double kMinSpeedup = 5.0;
  constexpr double kMinHierQps = 1e6;
  constexpr double kRssCeilingMb = 4096.0;
  bool gate_checked = false;
  bool pass = true;

  for (const Scale& scale : scales) {
    const TransitStubConfig config = scaled_config(scale);
    std::printf("scale %s: %zu physical nodes (%zu transit domains)\n",
                scale.name.c_str(), config.total_nodes(),
                config.transit_domains);

    Rng rng(opts.seed);
    const TransitStubTopology topo = make_transit_stub(config, rng);

    const double build_start = now_ms();
    const LatencyOracle hier(topo);
    const double build_ms = now_ms() - build_start;
    const double rss_after_build = current_rss_mb();
    std::printf("  hierarchical build: %.1f ms, resident %.1f MiB\n",
                build_ms, rss_after_build);

    const LatencyOracle dijk(topo.graph);  // fallback engine, default LRU

    // Point-query throughput. The fallback gets fewer queries (each cold
    // source costs a full Dijkstra); qps normalizes the comparison.
    Rng qrng(opts.seed ^ 0x9e3779b97f4a7c15ULL);
    const std::size_t hier_q = opts.quick ? 500'000 : 5'000'000;
    const std::size_t dijk_q = std::max<std::size_t>(
        500, (opts.quick ? 5'000'000 : 50'000'000) / config.total_nodes());
    const auto hier_pairs = random_pairs(topo, hier_q, qrng);
    const auto dijk_pairs = random_pairs(topo, dijk_q, qrng);
    const Throughput ht = measure_queries(hier, hier_pairs);
    const Throughput dt = measure_queries(dijk, dijk_pairs);
    const double speedup = dt.qps > 0.0 ? ht.qps / dt.qps : 0.0;
    std::printf("  queries/sec: hierarchical %.3g (%zu queries, checksum "
                "%.6g), dijkstra %.3g (%zu queries) -> %.0fx\n",
                ht.qps, ht.queries, ht.checksum, dt.qps, dt.queries, speedup);

    // Exactness spot-check: full rows from random sources must match the
    // full-graph Dijkstra bit-for-bit.
    Rng erng(opts.seed + 13);
    const double gap = equivalence_gap(topo, hier, dijk, 3, erng);
    std::printf("  equivalence: max |hier - dijkstra| = %g over 3 rows\n",
                gap);

    Json row = Json::object();
    row.set("scale", scale.name)
        .set("physical_nodes", static_cast<std::uint64_t>(config.total_nodes()))
        .set("transit_domains",
             static_cast<std::uint64_t>(config.transit_domains))
        .set("hierarchical_build_ms", build_ms)
        .set("rss_after_build_mb", rss_after_build)
        .set("hierarchical_qps", ht.qps)
        .set("hierarchical_queries", static_cast<std::uint64_t>(ht.queries))
        .set("dijkstra_qps", dt.qps)
        .set("dijkstra_queries", static_cast<std::uint64_t>(dt.queries))
        .set("speedup", speedup)
        .set("equivalence_max_abs_diff", gap);

    // End-to-end PROP-G Gnutella at the gate scale, both engines.
    if (scale.name == "10k") {
      const std::size_t overlay_n = opts.quick ? 300 : 1000;
      const double horizon_s = opts.quick ? 900.0 : 3600.0;
      const std::size_t query_count = opts.quick ? 2500 : 10000;
      const EndToEnd he =
          run_prop_g(topo, hier, overlay_n, horizon_s, query_count, opts.seed);
      const EndToEnd de =
          run_prop_g(topo, dijk, overlay_n, horizon_s, query_count, opts.seed);
      std::printf("  end-to-end PROP-G (n=%zu peers, %.0f s): hierarchical "
                  "%.0f ms wall, dijkstra %.0f ms wall (improvement %.2fx / "
                  "%.2fx, %llu / %llu exchanges)\n",
                  overlay_n, horizon_s, he.wall_ms, de.wall_ms,
                  he.improvement, de.improvement,
                  static_cast<unsigned long long>(he.exchanges),
                  static_cast<unsigned long long>(de.exchanges));
      Json e2e = Json::object();
      e2e.set("overlay_nodes", static_cast<std::uint64_t>(overlay_n))
          .set("horizon_s", horizon_s)
          .set("hierarchical_wall_ms", he.wall_ms)
          .set("dijkstra_wall_ms", de.wall_ms)
          .set("hierarchical_improvement", he.improvement)
          .set("dijkstra_improvement", de.improvement);
      row.set("end_to_end_prop_g", std::move(e2e));

      gate_checked = true;
      bool gate = true;
      gate = gate && build_ms <= kBuildCeilingMs;
      gate = gate && ht.qps >= kMinHierQps;
      gate = gate && speedup >= kMinSpeedup;
      gate = gate && gap == 0.0;
      gate = gate && peak_rss_mb() <= kRssCeilingMb;
      pass = pass && gate;
      if (!gate) {
        std::printf("  10k gate FAILED (ceilings: build <= %.0f ms, "
                    "hier qps >= %.0g, speedup >= %.0fx, gap == 0, "
                    "peak rss <= %.0f MiB)\n",
                    kBuildCeilingMs, kMinHierQps, kMinSpeedup, kRssCeilingMb);
      }
    } else {
      pass = pass && gap == 0.0;
    }
    rows.push_back(std::move(row));
  }

  const double peak_mb = peak_rss_mb();
  doc.set("scales", std::move(rows));
  doc.set("peak_rss_mb", peak_mb);
  Json ceilings = Json::object();
  ceilings.set("build_ms", kBuildCeilingMs)
      .set("min_hierarchical_qps", kMinHierQps)
      .set("min_speedup", kMinSpeedup)
      .set("max_peak_rss_mb", kRssCeilingMb);
  doc.set("ceilings_10k", std::move(ceilings));
  doc.set("gate_checked", gate_checked);
  doc.set("pass", pass);

  const std::string out = doc.dump(2);
  if (std::FILE* f = std::fopen("BENCH_oracle.json", "w")) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote BENCH_oracle.json (peak rss %.1f MiB)\n", peak_mb);
  } else {
    std::fprintf(stderr, "could not write BENCH_oracle.json\n");
    return 2;
  }

  print_verdict(pass, gate_checked
                          ? "10k-scale ceilings " +
                                std::string(pass ? "hold" : "violated")
                          : "informational run (10k gate not exercised)");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
