// perf_scaling — oracle + measurement-engine scaling bench (not a
// paper figure).
//
// Part one measures the hierarchical transit-stub latency oracle
// against the Dijkstra-row fallback across physical network sizes n in
// {~1k, ~10k, ~50k}: construction wall-clock, point-query throughput,
// resident memory, and an end-to-end PROP-G Gnutella run at the 10k
// scale with both engines. Results go to stdout and to
// BENCH_oracle.json (stable schema `propsim.bench.oracle`, version 1).
//
// Part two measures the parallel measurement engine on the
// convergence-snapshot workload (capture an OverlaySnapshot, evaluate
// the batched lookup + direct metrics over a fixed query set, repeat
// per snapshot tick) at overlay sizes ~1k/10k/50k across 1/2/4/8
// worker threads and both flood kernels, asserting the sampled series
// are bit-identical for every thread count within a kernel. Results go
// to BENCH_measure.json (stable schema `propsim.bench.measure`,
// version 2: adds the `hardware` stanza, the fast-kernel rows, and the
// serial fast-vs-exact gate). Two gates run at the 10k scale: the
// delta-stepping fast kernel must beat the exact binary-heap kernel by
// >= 1.5x serially (checked on any host — no extra cores needed) and
// must stay within 1e-6 relative error of it; the >= 2.5x
// speedup-at-4-threads gate is checked only when the host exposes >= 4
// hardware threads (CI multicore runners do; a 1-core dev box runs it
// informationally).
//
// `--quick` shrinks query counts and skips the 50k scale so the bench
// fits in CI time; `--part 1k|10k|50k` runs a single scale of both
// parts. Exit code is 0 only when the exercised gates hold.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "core/prop_engine.h"
#include "measure/measure_engine.h"
#include "metrics/convergence.h"
#include "metrics/metrics.h"
#include "sim/simulator.h"
#include "workload/host_selection.h"
#include "workload/lookups.h"

namespace propsim::bench {
namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

/// Peak resident set of this process so far, in MiB (ru_maxrss is KiB on
/// Linux).
double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Current resident set in MiB via /proc/self/statm (Linux); 0 if
/// unreadable. Peak RSS only grows, so this is what shows the oracle's
/// O(V) footprint per scale.
double current_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long pages = 0, resident = 0;
  const int got = std::fscanf(f, "%ld %ld", &pages, &resident);
  std::fclose(f);
  if (got != 2) return 0.0;
  const long page_kb = sysconf(_SC_PAGESIZE) / 1024;
  return static_cast<double>(resident * page_kb) / 1024.0;
}

struct Scale {
  std::string name;     // also the --part selector
  std::size_t transit_domains;
};

TransitStubConfig scaled_config(const Scale& scale) {
  // ts-large shape (4 transit nodes/domain, 3x40-node stubs per transit
  // node = 484 nodes per transit domain); only the backbone width grows.
  TransitStubConfig config = TransitStubConfig::ts_large();
  config.transit_domains = scale.transit_domains;
  return config;
}

/// Random (a, b) stub-host query pairs, a != b.
std::vector<std::pair<NodeId, NodeId>> random_pairs(
    const TransitStubTopology& topo, std::size_t count, Rng& rng) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  const auto& hosts = topo.stub_nodes;
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId a = rng.pick(hosts);
    NodeId b = rng.pick(hosts);
    while (b == a) b = rng.pick(hosts);
    pairs.emplace_back(a, b);
  }
  return pairs;
}

struct Throughput {
  std::size_t queries = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double checksum = 0.0;  // defeats dead-code elimination; printed
};

Throughput measure_queries(const LatencyOracle& oracle,
                           std::span<const std::pair<NodeId, NodeId>> pairs) {
  Throughput t;
  t.queries = pairs.size();
  const double start = now_ms();
  double sum = 0.0;
  for (const auto& [a, b] : pairs) sum += oracle.latency(a, b);
  t.wall_ms = now_ms() - start;
  t.qps = t.wall_ms > 0.0 ? 1000.0 * static_cast<double>(t.queries) / t.wall_ms
                          : 0.0;
  t.checksum = sum;
  return t;
}

/// Max |hierarchical - Dijkstra| over full rows from `samples` random
/// sources. Must be exactly 0 on transit-stub graphs.
double equivalence_gap(const TransitStubTopology& topo,
                       const LatencyOracle& hier, const LatencyOracle& dijk,
                       std::size_t samples, Rng& rng) {
  double worst = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const NodeId src = rng.pick(topo.stub_nodes);
    const DistanceRow h = hier.distances_from(src);
    const DistanceRow d = dijk.distances_from(src);
    for (std::size_t v = 0; v < h.size(); ++v) {
      worst = std::max(worst, std::fabs(h[v] - d[v]));
    }
  }
  return worst;
}

struct EndToEnd {
  double wall_ms = 0.0;
  double improvement = 0.0;  // initial/final lookup latency
  std::uint64_t exchanges = 0;
};

/// One full PROP-G Gnutella experiment over a prebuilt topology using
/// the given oracle engine; identical seeds => identical overlay and
/// schedule for both engines, so wall-clock is the only difference.
EndToEnd run_prop_g(const TransitStubTopology& topo,
                    const LatencyOracle& oracle, std::size_t overlay_n,
                    double horizon_s, std::size_t query_count,
                    std::uint64_t seed) {
  const double start = now_ms();
  Rng rng(seed);
  const auto hosts = select_stub_hosts(topo, overlay_n, rng);
  GnutellaConfig gcfg;
  OverlayNetwork net = build_gnutella_overlay(gcfg, hosts, oracle, rng);

  Rng qrng(seed ^ 0x517cc1b727220a95ULL);
  const auto queries = uniform_queries(net.graph(), query_count, qrng);

  Simulator sim;
  PropEngine engine(net, sim, paper_prop_params(PropMode::kPropG), seed + 7);
  ConvergenceSampler sampler(sim, "lookup_ms", 0.0, horizon_s, horizon_s / 8.0,
                             [&] {
                               return average_unstructured_lookup_latency(
                                   net, queries);
                             });
  engine.start();
  sim.run_until(horizon_s);

  EndToEnd e;
  e.wall_ms = now_ms() - start;
  const TimeSeries series = sampler.take_series();
  e.improvement = series.first_value() / series.last_value();
  e.exchanges = engine.stats().exchanges;
  return e;
}

// ---------------------------------------------------------------------
// Part two: measurement-engine scaling.

struct MeasureScale {
  std::string name;             // shares the --part selector namespace
  std::size_t transit_domains;  // sized so overlay_n stub hosts exist
  std::size_t overlay_n;
};

struct SweepTiming {
  double wall_ms = 0.0;
  std::vector<double> lookup_series;  // one lookup_ms sample per tick
  std::vector<double> direct_series;
};

/// Times the convergence-snapshot workload at one thread count and
/// flood kernel: a batched ConvergenceSampler whose prepare hook
/// captures a fresh OverlaySnapshot each tick and whose two metrics
/// (flood lookup latency + direct latency over a fixed query set) run
/// on one MeasureEngine. Pool spawn, engine scratch growth, and series
/// storage are all excluded from the timed region by one untimed
/// warmup sweep — the timer covers the steady-state per-tick cost, not
/// first-touch allocation.
SweepTiming time_sweeps(std::size_t threads, MeasureMode mode,
                        const OverlayNetwork& net,
                        std::span<const QueryPair> queries,
                        std::size_t snapshots) {
  MeasureEngine engine(threads, mode);
  Simulator sim;
  OverlaySnapshot snap = OverlaySnapshot::capture(net);
  // Untimed warmup: sizes the per-thread flood scratch, the engine's
  // run/average buffers, and (fast mode) the bucket queue, so the timed
  // region below never pays a first-touch allocation.
  (void)engine.average_lookup_latency(snap, queries);
  (void)engine.average_direct_latency(net, queries);
  std::vector<ConvergenceSampler::NamedMetric> metrics;
  metrics.push_back({"lookup_ms", [&] {
                       return engine.average_lookup_latency(snap, queries);
                     }});
  metrics.push_back({"direct_ms", [&] {
                       return engine.average_direct_latency(net, queries);
                     }});
  const double interval_s = 60.0;
  const double end_s = interval_s * static_cast<double>(snapshots - 1);
  SweepTiming t;
  t.lookup_series.reserve(snapshots);
  t.direct_series.reserve(snapshots);
  const double start = now_ms();
  ConvergenceSampler sampler(
      sim, 0.0, end_s, interval_s,
      [&] { snap = OverlaySnapshot::capture(net); }, std::move(metrics));
  sim.run_until(end_s);
  t.wall_ms = now_ms() - start;
  for (const auto& p : sampler.series(0).points()) {
    t.lookup_series.push_back(p.value);
  }
  for (const auto& p : sampler.series(1).points()) {
    t.direct_series.push_back(p.value);
  }
  return t;
}

/// Max elementwise relative error between two sampled series (0 when
/// both entries are equal, including the both-infinite case).
double max_rel_error(const std::vector<double>& exact,
                     const std::vector<double>& fast) {
  if (exact.size() != fast.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    if (exact[i] == fast[i]) continue;  // covers inf == inf
    const double denom = std::max(std::fabs(exact[i]), 1e-300);
    worst = std::max(worst, std::fabs(fast[i] - exact[i]) / denom);
  }
  return worst;
}

/// Pre-engine cost reference: the old serial metric path — one
/// allocating flood_latencies per distinct query source, straight off
/// the live overlay, no snapshot capture and no scratch reuse.
double legacy_serial_ms(const OverlayNetwork& net,
                        std::span<const QueryPair> queries,
                        std::size_t snapshots) {
  std::vector<std::size_t> order(queries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return queries[a].src < queries[b].src;
                   });
  double checksum = 0.0;
  const double start = now_ms();
  for (std::size_t s = 0; s < snapshots; ++s) {
    bool have = false;
    SlotId current = 0;
    std::vector<double> dist;
    for (const std::size_t idx : order) {
      const QueryPair& q = queries[idx];
      if (!have || q.src != current) {
        have = true;
        current = q.src;
        dist = net.flood_latencies(current);
      }
      checksum += dist[q.dst];
    }
  }
  const double wall = now_ms() - start;
  std::printf("  legacy serial reference: %.0f ms (checksum %.6g)\n", wall,
              checksum);
  return wall;
}

/// Runs the 1/2/4/8 thread matrix for one kernel, checking that every
/// parallel run reproduces the serial series bit-for-bit. Returns the
/// serial timing; fills the JSON row list plus the 4-thread speedup.
SweepTiming run_thread_matrix(MeasureMode mode, const OverlayNetwork& net,
                              std::span<const QueryPair> queries,
                              std::size_t snapshots, Json& trow_list,
                              double* out_speedup_4t, bool* out_identical) {
  const std::size_t thread_counts[] = {1, 2, 4, 8};
  SweepTiming serial;
  double serial_ms = 0.0;
  *out_speedup_4t = 0.0;
  *out_identical = true;
  for (const std::size_t threads : thread_counts) {
    const SweepTiming t = time_sweeps(threads, mode, net, queries, snapshots);
    if (threads == 1) {
      serial = t;
      serial_ms = t.wall_ms;
    } else {
      *out_identical = *out_identical &&
                       t.lookup_series == serial.lookup_series &&
                       t.direct_series == serial.direct_series;
    }
    const double speedup = t.wall_ms > 0.0 ? serial_ms / t.wall_ms : 0.0;
    if (threads == 4) *out_speedup_4t = speedup;
    const double sweeps_per_s =
        t.wall_ms > 0.0 ? 1000.0 * static_cast<double>(snapshots) / t.wall_ms
                        : 0.0;
    std::printf("  %s threads %zu: %.0f ms (%.2f sweeps/s, %.2fx vs "
                "serial)\n",
                to_string(mode), threads, t.wall_ms, sweeps_per_s, speedup);
    Json trow = Json::object();
    trow.set("threads", static_cast<std::uint64_t>(threads))
        .set("wall_ms", t.wall_ms)
        .set("sweeps_per_s", sweeps_per_s)
        .set("speedup_vs_serial", speedup);
    trow_list.push_back(std::move(trow));
  }
  return serial;
}

/// Part two driver: runs the exact and fast thread matrices per scale,
/// asserts the sampled series are bit-identical across thread counts
/// within each kernel, and writes BENCH_measure.json (schema v2). The
/// fast-kernel gates (>= 1.5x serial speedup and <= 1e-6 relative
/// error at the 10k scale) run on any host; the 4-thread speedup gate
/// needs real cores, so it is exercised only when the host exposes
/// >= 4 hardware threads. The determinism checks always count toward
/// `pass`.
bool run_measure(const BenchOptions& opts, bool* out_pass,
                 bool* out_gate_checked) {
  std::printf("\nmeasurement-engine scaling (convergence-snapshot "
              "workload)\n");

  std::vector<MeasureScale> scales{{"1k", 3, 1000}, {"10k", 21, 10000}};
  if (!opts.quick) scales.push_back({"50k", 105, 50000});
  if (!opts.part.empty()) {
    std::erase_if(scales,
                  [&](const MeasureScale& s) { return s.name != opts.part; });
  }

  const std::size_t cores = std::thread::hardware_concurrency();
  constexpr double kMinSpeedup4t = 2.5;
  constexpr double kMinFastSerialSpeedup = 1.5;
  constexpr double kMaxFastRelError = 1e-6;

  bool pass = true;
  bool gate_checked = false;
  bool fast_gate_checked = false;

  Json doc = Json::object();
  doc.set("schema", "propsim.bench.measure");
  doc.set("version", 2);
  doc.set("quick", opts.quick);
  doc.set("seed", opts.seed);
  doc.set("hardware", hardware_info());
  doc.set("min_speedup_4t", kMinSpeedup4t);
  doc.set("min_fast_serial_speedup", kMinFastSerialSpeedup);
  doc.set("max_fast_rel_error", kMaxFastRelError);
  Json rows = Json::array();

  for (const MeasureScale& scale : scales) {
    TransitStubConfig config = TransitStubConfig::ts_large();
    config.transit_domains = scale.transit_domains;
    std::printf("scale %s: overlay n=%zu over %zu physical nodes\n",
                scale.name.c_str(), scale.overlay_n, config.total_nodes());

    Rng rng(opts.seed + 101);
    const TransitStubTopology topo = make_transit_stub(config, rng);
    const LatencyOracle oracle(topo);
    const auto hosts = select_stub_hosts(topo, scale.overlay_n, rng);
    GnutellaConfig gcfg;
    OverlayNetwork net = build_gnutella_overlay(gcfg, hosts, oracle, rng);

    const std::size_t query_count =
        opts.quick ? (scale.overlay_n >= 10000 ? 1000 : 500)
                   : (scale.overlay_n >= 50000 ? 5000 : 10000);
    const std::size_t snapshots =
        opts.quick ? 2 : (scale.overlay_n >= 50000 ? 2 : 4);
    Rng qrng(opts.seed ^ 0xd1b54a32d192ed03ULL);
    const auto queries = uniform_queries(net.graph(), query_count, qrng);

    const double legacy_ms = legacy_serial_ms(net, queries, snapshots);

    Json exact_rows = Json::array();
    double exact_speedup_4t = 0.0;
    bool exact_identical = true;
    const SweepTiming exact_serial =
        run_thread_matrix(MeasureMode::kExact, net, queries, snapshots,
                          exact_rows, &exact_speedup_4t, &exact_identical);

    Json fast_rows = Json::array();
    double fast_speedup_4t = 0.0;
    bool fast_identical = true;
    const SweepTiming fast_serial =
        run_thread_matrix(MeasureMode::kFast, net, queries, snapshots,
                          fast_rows, &fast_speedup_4t, &fast_identical);

    const double fast_speedup_serial =
        fast_serial.wall_ms > 0.0
            ? exact_serial.wall_ms / fast_serial.wall_ms
            : 0.0;
    const double rel_error =
        max_rel_error(exact_serial.lookup_series, fast_serial.lookup_series);
    // The direct metric never floods, so it is kernel-independent.
    const bool direct_equal =
        exact_serial.direct_series == fast_serial.direct_series;
    std::printf("  fast vs exact serial: %.2fx, max lookup rel error %.3g, "
                "direct series %s\n",
                fast_speedup_serial, rel_error,
                direct_equal ? "identical" : "DIVERGED");

    const bool identical = exact_identical && fast_identical;
    if (!identical) {
      std::printf("  DETERMINISM VIOLATION: parallel series differ from "
                  "serial\n");
    }
    pass = pass && identical && direct_equal;
    if (rel_error > kMaxFastRelError) {
      std::printf("  fast equivalence gate FAILED: rel error %.3g > %.0e\n",
                  rel_error, kMaxFastRelError);
      pass = false;
    }

    Json row = Json::object();
    row.set("scale", scale.name)
        .set("physical_nodes",
             static_cast<std::uint64_t>(config.total_nodes()))
        .set("overlay_n", static_cast<std::uint64_t>(scale.overlay_n))
        .set("queries", static_cast<std::uint64_t>(query_count))
        .set("snapshots", static_cast<std::uint64_t>(snapshots))
        .set("legacy_serial_ms", legacy_ms)
        .set("engine_serial_ms", exact_serial.wall_ms)
        .set("fast_serial_ms", fast_serial.wall_ms)
        .set("fast_speedup_serial", fast_speedup_serial)
        .set("fast_max_rel_error", rel_error)
        .set("threads", std::move(exact_rows))
        .set("fast_threads", std::move(fast_rows))
        .set("identical", identical);

    if (scale.name == "10k") {
      fast_gate_checked = true;
      row.set("gate_fast_speedup_serial", fast_speedup_serial);
      if (fast_speedup_serial < kMinFastSerialSpeedup) {
        std::printf("  10k fast-kernel gate FAILED: %.2fx < %.2fx "
                    "serially\n",
                    fast_speedup_serial, kMinFastSerialSpeedup);
        pass = false;
      }
      if (cores >= 4) {
        gate_checked = true;
        row.set("gate_speedup_4t", exact_speedup_4t);
        if (exact_speedup_4t < kMinSpeedup4t) {
          std::printf("  10k measure gate FAILED: %.2fx < %.2fx at 4 "
                      "threads\n",
                      exact_speedup_4t, kMinSpeedup4t);
          pass = false;
        }
      }
    }
    rows.push_back(std::move(row));
  }

  doc.set("scales", std::move(rows));
  doc.set("gate_checked", gate_checked);
  doc.set("gate_fast_serial_checked", fast_gate_checked);
  doc.set("pass", pass);

  const std::string out = doc.dump(2);
  if (std::FILE* f = std::fopen("BENCH_measure.json", "w")) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_measure.json (cores %zu)\n", cores);
  } else {
    std::fprintf(stderr, "could not write BENCH_measure.json\n");
    return false;
  }
  *out_pass = pass;
  *out_gate_checked = gate_checked;
  return true;
}

int run(const BenchOptions& opts) {
  print_header(
      "perf_scaling — hierarchical oracle vs Dijkstra-row fallback",
      "hierarchical latency(a,b) is O(1) with O(V) resident state; >= 5x "
      "the fallback's query throughput at the 10k scale, bit-exact");

  std::vector<Scale> scales{{"1k", 2}, {"10k", 21}};
  if (!opts.quick) scales.push_back({"50k", 103});
  if (!opts.part.empty()) {
    std::erase_if(scales,
                  [&](const Scale& s) { return s.name != opts.part; });
    if (scales.empty()) {
      std::fprintf(stderr, "unknown --part '%s' (1k | 10k | 50k)\n",
                   opts.part.c_str());
      return 2;
    }
  }

  Json doc = Json::object();
  doc.set("schema", "propsim.bench.oracle");
  doc.set("version", 1);
  doc.set("quick", opts.quick);
  doc.set("seed", opts.seed);
  doc.set("hardware", hardware_info());
  Json rows = Json::array();

  // Generous ceilings for the CI perf smoke gate, checked at the 10k
  // scale only (small enough to always run, big enough to be honest).
  constexpr double kBuildCeilingMs = 60'000.0;
  constexpr double kMinSpeedup = 5.0;
  constexpr double kMinHierQps = 1e6;
  constexpr double kRssCeilingMb = 4096.0;
  bool gate_checked = false;
  bool pass = true;

  for (const Scale& scale : scales) {
    const TransitStubConfig config = scaled_config(scale);
    std::printf("scale %s: %zu physical nodes (%zu transit domains)\n",
                scale.name.c_str(), config.total_nodes(),
                config.transit_domains);

    Rng rng(opts.seed);
    const TransitStubTopology topo = make_transit_stub(config, rng);

    const double build_start = now_ms();
    const LatencyOracle hier(topo);
    const double build_ms = now_ms() - build_start;
    const double rss_after_build = current_rss_mb();
    std::printf("  hierarchical build: %.1f ms, resident %.1f MiB\n",
                build_ms, rss_after_build);

    const LatencyOracle dijk(topo.graph);  // fallback engine, default LRU

    // Point-query throughput. The fallback gets fewer queries (each cold
    // source costs a full Dijkstra); qps normalizes the comparison.
    Rng qrng(opts.seed ^ 0x9e3779b97f4a7c15ULL);
    const std::size_t hier_q = opts.quick ? 500'000 : 5'000'000;
    const std::size_t dijk_q = std::max<std::size_t>(
        500, (opts.quick ? 5'000'000 : 50'000'000) / config.total_nodes());
    const auto hier_pairs = random_pairs(topo, hier_q, qrng);
    const auto dijk_pairs = random_pairs(topo, dijk_q, qrng);
    const Throughput ht = measure_queries(hier, hier_pairs);
    const Throughput dt = measure_queries(dijk, dijk_pairs);
    const double speedup = dt.qps > 0.0 ? ht.qps / dt.qps : 0.0;
    std::printf("  queries/sec: hierarchical %.3g (%zu queries, checksum "
                "%.6g), dijkstra %.3g (%zu queries) -> %.0fx\n",
                ht.qps, ht.queries, ht.checksum, dt.qps, dt.queries, speedup);

    // Exactness spot-check: full rows from random sources must match the
    // full-graph Dijkstra bit-for-bit.
    Rng erng(opts.seed + 13);
    const double gap = equivalence_gap(topo, hier, dijk, 3, erng);
    std::printf("  equivalence: max |hier - dijkstra| = %g over 3 rows\n",
                gap);

    Json row = Json::object();
    row.set("scale", scale.name)
        .set("physical_nodes", static_cast<std::uint64_t>(config.total_nodes()))
        .set("transit_domains",
             static_cast<std::uint64_t>(config.transit_domains))
        .set("hierarchical_build_ms", build_ms)
        .set("rss_after_build_mb", rss_after_build)
        .set("hierarchical_qps", ht.qps)
        .set("hierarchical_queries", static_cast<std::uint64_t>(ht.queries))
        .set("dijkstra_qps", dt.qps)
        .set("dijkstra_queries", static_cast<std::uint64_t>(dt.queries))
        .set("speedup", speedup)
        .set("equivalence_max_abs_diff", gap);

    // End-to-end PROP-G Gnutella at the gate scale, both engines.
    if (scale.name == "10k") {
      const std::size_t overlay_n = opts.quick ? 300 : 1000;
      const double horizon_s = opts.quick ? 900.0 : 3600.0;
      const std::size_t query_count = opts.quick ? 2500 : 10000;
      const EndToEnd he =
          run_prop_g(topo, hier, overlay_n, horizon_s, query_count, opts.seed);
      const EndToEnd de =
          run_prop_g(topo, dijk, overlay_n, horizon_s, query_count, opts.seed);
      std::printf("  end-to-end PROP-G (n=%zu peers, %.0f s): hierarchical "
                  "%.0f ms wall, dijkstra %.0f ms wall (improvement %.2fx / "
                  "%.2fx, %llu / %llu exchanges)\n",
                  overlay_n, horizon_s, he.wall_ms, de.wall_ms,
                  he.improvement, de.improvement,
                  static_cast<unsigned long long>(he.exchanges),
                  static_cast<unsigned long long>(de.exchanges));
      Json e2e = Json::object();
      e2e.set("overlay_nodes", static_cast<std::uint64_t>(overlay_n))
          .set("horizon_s", horizon_s)
          .set("hierarchical_wall_ms", he.wall_ms)
          .set("dijkstra_wall_ms", de.wall_ms)
          .set("hierarchical_improvement", he.improvement)
          .set("dijkstra_improvement", de.improvement);
      row.set("end_to_end_prop_g", std::move(e2e));

      gate_checked = true;
      bool gate = true;
      gate = gate && build_ms <= kBuildCeilingMs;
      gate = gate && ht.qps >= kMinHierQps;
      gate = gate && speedup >= kMinSpeedup;
      gate = gate && gap == 0.0;
      gate = gate && peak_rss_mb() <= kRssCeilingMb;
      pass = pass && gate;
      if (!gate) {
        std::printf("  10k gate FAILED (ceilings: build <= %.0f ms, "
                    "hier qps >= %.0g, speedup >= %.0fx, gap == 0, "
                    "peak rss <= %.0f MiB)\n",
                    kBuildCeilingMs, kMinHierQps, kMinSpeedup, kRssCeilingMb);
      }
    } else {
      pass = pass && gap == 0.0;
    }
    rows.push_back(std::move(row));
  }

  const double peak_mb = peak_rss_mb();
  doc.set("scales", std::move(rows));
  doc.set("peak_rss_mb", peak_mb);
  Json ceilings = Json::object();
  ceilings.set("build_ms", kBuildCeilingMs)
      .set("min_hierarchical_qps", kMinHierQps)
      .set("min_speedup", kMinSpeedup)
      .set("max_peak_rss_mb", kRssCeilingMb);
  doc.set("ceilings_10k", std::move(ceilings));
  doc.set("gate_checked", gate_checked);
  doc.set("pass", pass);

  const std::string out = doc.dump(2);
  if (std::FILE* f = std::fopen("BENCH_oracle.json", "w")) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote BENCH_oracle.json (peak rss %.1f MiB)\n", peak_mb);
  } else {
    std::fprintf(stderr, "could not write BENCH_oracle.json\n");
    return 2;
  }

  bool measure_pass = true;
  bool measure_gate_checked = false;
  if (!run_measure(opts, &measure_pass, &measure_gate_checked)) return 2;
  pass = pass && measure_pass;

  const bool any_gate = gate_checked || measure_gate_checked;
  print_verdict(pass,
                pass ? (any_gate ? "exercised 10k gates hold; parallel "
                                   "measurement bit-identical"
                                 : "informational run (10k gates not "
                                   "exercised); parallel measurement "
                                   "bit-identical")
                     : "a 10k gate or the determinism check failed");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
