// Section 5 dynamics — behaviour under churn.
//
// A converged PROP-O overlay is hit with a Poisson join/leave burst.
// The paper claims the scheme "is adaptive to dynamic changes": probing
// frequency spikes when churn perturbs neighbourhoods (timers reset,
// fresh neighbors get maximum priority) and decays again afterwards,
// while lookup latency recovers to near its converged level.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/prop_engine.h"
#include "sim/simulator.h"
#include "workload/churn.h"
#include "workload/host_selection.h"
#include "workload/lookups.h"

namespace propsim::bench {
namespace {

int run(const BenchOptions& opts) {
  print_header(
      "Churn dynamics — probing frequency and latency through a churn "
      "burst",
      "probing frequency decays after warm-up, spikes during the churn "
      "burst, then decays again; lookup latency recovers after churn");

  const std::size_t n = opts.scale_n(800);
  const double warm_end = opts.scale_t(3600.0);
  const double churn_end = warm_end + opts.scale_t(1800.0);
  const double horizon = churn_end + opts.scale_t(5400.0);

  Rng rng(opts.seed);
  World world(TransitStubConfig::ts_large(), rng);
  auto [hosts, spares] = select_stub_hosts_with_spares(
      world.topo, n, n / 4, rng);
  GnutellaConfig gcfg;
  OverlayNetwork net =
      build_gnutella_overlay(gcfg, hosts, world.oracle, rng);

  Simulator sim;
  PropEngine engine(net, sim, paper_prop_params(PropMode::kPropO),
                    opts.seed + 1);

  ChurnParams cparams;
  cparams.join_rate_per_s = opts.quick ? 0.4 : 0.5;
  cparams.leave_rate_per_s = cparams.join_rate_per_s;
  // One in five departures is a crash with no graceful handoff; the
  // survivors' repair links then feed PROP's churn hooks.
  cparams.fail_rate_per_s = cparams.join_rate_per_s / 5.0;
  cparams.start_s = warm_end;
  cparams.end_s = churn_end;
  ChurnProcess churn(net, sim, &engine, gcfg, cparams, spares,
                     opts.seed + 2);

  // Sample probing frequency (attempts per node per second, windowed)
  // and lookup latency over time.
  const double window = horizon / 36.0;
  TimeSeries fp("f_p");
  TimeSeries lookup("lookup_ms");
  std::uint64_t last_attempts = 0;
  Rng qrng(opts.seed + 3);
  for (double t = window; t <= horizon + 1e-9; t += window) {
    sim.schedule_at(t, [&, t] {
      const std::uint64_t now_attempts = engine.stats().attempts;
      fp.record(t, static_cast<double>(now_attempts - last_attempts) /
                       (window * static_cast<double>(net.size())));
      last_attempts = now_attempts;
      const auto queries =
          uniform_queries(net.graph(), opts.scale_q(2000), qrng);
      lookup.record(t, average_unstructured_lookup_latency(net, queries));
    });
  }

  engine.start();
  churn.start();
  sim.run_until(horizon);

  print_csv_block("churn_dynamics", series_to_csv({fp, lookup}, 36));
  std::printf("churn events: %llu joins, %llu leaves, %llu crashes "
              "(%llu repair links)\n",
              static_cast<unsigned long long>(churn.joins()),
              static_cast<unsigned long long>(churn.leaves()),
              static_cast<unsigned long long>(churn.failures()),
              static_cast<unsigned long long>(churn.repair_links()));

  const double fp_before = fp.value_at(warm_end - window / 2.0);
  const double fp_during = fp.value_at(churn_end - window / 2.0);
  const double fp_after = fp.value_at(horizon - window / 2.0);
  const double lat_converged = lookup.value_at(warm_end - window / 2.0);
  const double lat_final = lookup.value_at(horizon - window / 2.0);
  // Worst latency while churn is perturbing the overlay: recovery means
  // the post-churn optimization pulls back below this peak toward the
  // converged level.
  double lat_churn_peak = 0.0;
  for (const auto& p : lookup.points()) {
    if (p.time >= warm_end && p.time <= churn_end + window) {
      lat_churn_peak = std::max(lat_churn_peak, p.value);
    }
  }

  const bool connected = net.graph().active_subgraph_connected();
  const bool spike = fp_during > fp_before * 1.2;
  const bool decays = fp_after < fp_during;
  const bool recovers = lat_final < lat_churn_peak &&
                        lat_final < lat_converged * 1.25;
  const bool holds = connected && spike && decays && recovers;
  char detail[320];
  std::snprintf(detail, sizeof(detail),
                "f_p: pre-churn %.4f, during %.4f, post %.4f /node/s; "
                "lookup: converged %.0f ms, churn peak %.0f ms, final "
                "%.0f ms; overlay connected=%d",
                fp_before, fp_during, fp_after, lat_converged,
                lat_churn_peak, lat_final, connected);
  print_verdict(holds, detail);
  return holds ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
