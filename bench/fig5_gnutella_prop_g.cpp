// Figure 5 — Effectiveness of PROP-G in a Gnutella-like environment.
//
// (a) average lookup latency vs time for nhops in {1, 2, 4} and random
//     probing, n = 1000, ts-large;
// (b) varying the system size, n in {300, 500, 1000, 2000}, nhops = 2;
// (c) varying the physical topology: ts-large vs ts-small.
//
// Paper shape: nhops = 1 barely helps; nhops >= 2 and random probing all
// converge to a similar, much lower latency; larger systems improve a
// bit less; ts-large improves more than ts-small.
#include <cstdio>

#include "bench_util.h"
#include "core/prop_engine.h"
#include "metrics/convergence.h"
#include "sim/simulator.h"
#include "workload/lookups.h"

namespace propsim::bench {
namespace {

struct Scenario {
  std::string label;
  std::size_t n;
  std::size_t nhops;      // ignored when random_target
  bool random_target;
  bool ts_small;
};

TimeSeries run_scenario(const Scenario& sc, const BenchOptions& opts,
                        double horizon_s, double sample_s) {
  Rng rng(opts.seed);
  World world(sc.ts_small ? TransitStubConfig::ts_small()
                          : TransitStubConfig::ts_large(),
              rng);
  OverlayNetwork net = build_unstructured(world, sc.n, rng);

  Rng qrng(opts.seed ^ 0x517cc1b727220a95ULL);
  const auto queries =
      uniform_queries(net.graph(), opts.scale_q(10000), qrng);

  Simulator sim;
  PropParams params = paper_prop_params(PropMode::kPropG);
  params.nhops = sc.random_target ? 2 : sc.nhops;
  params.random_target = sc.random_target;
  PropEngine engine(net, sim, params, opts.seed + 7);

  ConvergenceSampler sampler(sim, sc.label, 0.0, horizon_s, sample_s, [&] {
    return average_unstructured_lookup_latency(net, queries);
  });
  engine.start();
  sim.run_until(horizon_s);
  std::printf("  [%s] exchanges=%llu attempts=%llu\n", sc.label.c_str(),
              static_cast<unsigned long long>(engine.stats().exchanges),
              static_cast<unsigned long long>(engine.stats().attempts));
  return sampler.take_series();
}

int run(const BenchOptions& opts) {
  print_header(
      "Figure 5 — PROP-G on Gnutella (average lookup latency vs time)",
      "nhops=1 barely reduces latency; nhops>=2 ~ random probing, both "
      "strongly reduce it; gains shrink slightly with system size; "
      "ts-large improves more than ts-small");

  const double horizon = opts.scale_t(3600.0);
  const double sample = horizon / 15.0;
  const std::size_t n_default = opts.scale_n(1000);
  bool all_hold = true;

  if (opts.part.empty() || opts.part == "a") {
    std::printf("part (a): varying the TTL scale (n=%zu)\n", n_default);
    std::vector<TimeSeries> series;
    series.push_back(run_scenario({"nhops=1", n_default, 1, false, false},
                                  opts, horizon, sample));
    series.push_back(run_scenario({"nhops=2", n_default, 2, false, false},
                                  opts, horizon, sample));
    series.push_back(run_scenario({"nhops=4", n_default, 4, false, false},
                                  opts, horizon, sample));
    series.push_back(run_scenario({"random", n_default, 2, true, false},
                                  opts, horizon, sample));
    print_csv_block("fig5a", series_to_csv(series, 16));

    const double drop1 = series[0].first_value() / series[0].last_value();
    const double drop2 = series[1].first_value() / series[1].last_value();
    const double drop4 = series[2].first_value() / series[2].last_value();
    const double dropr = series[3].first_value() / series[3].last_value();
    const bool holds = drop2 > drop1 && drop4 > drop1 && dropr > drop1 &&
                       drop2 > 1.15;
    all_hold = all_hold && holds;
    char detail[256];
    std::snprintf(detail, sizeof(detail),
                  "latency reduction factors: nhops=1 %.2fx, nhops=2 %.2fx, "
                  "nhops=4 %.2fx, random %.2fx",
                  drop1, drop2, drop4, dropr);
    print_verdict(holds, detail);
  }

  if (opts.part.empty() || opts.part == "b") {
    std::printf("part (b): varying the system size (nhops=2)\n");
    std::vector<TimeSeries> series;
    std::vector<double> drops;
    // The 4000-peer point puts ~83% of all stub hosts in the overlay —
    // the paper's "almost all physical nodes are chosen" regime — and
    // only runs at full scale.
    std::vector<std::size_t> sizes{opts.scale_n(300), opts.scale_n(500),
                                   opts.scale_n(1000), opts.scale_n(2000)};
    if (!opts.quick) sizes.push_back(4000);
    for (const std::size_t n : sizes) {
      const std::string label = "n=" + std::to_string(n);
      series.push_back(run_scenario({label, n, 2, false, false}, opts,
                                    horizon, sample));
      drops.push_back(series.back().first_value() /
                      series.back().last_value());
    }
    print_csv_block("fig5b", series_to_csv(series, 16));
    bool holds = true;
    for (const double d : drops) holds = holds && d > 1.15;
    all_hold = all_hold && holds;
    std::string detail = "reduction factors by size:";
    for (const double d : drops) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), " %.2fx", d);
      detail += buf;
    }
    detail += " (all sizes improve; effectiveness varies mildly)";
    print_verdict(holds, detail);
  }

  if (opts.part.empty() || opts.part == "c") {
    std::printf("part (c): varying the physical topology (n=%zu)\n",
                n_default);
    std::vector<TimeSeries> series;
    series.push_back(run_scenario({"ts-large", n_default, 2, false, false},
                                  opts, horizon, sample));
    series.push_back(run_scenario({"ts-small", n_default, 2, false, true},
                                  opts, horizon, sample));
    print_csv_block("fig5c", series_to_csv(series, 16));
    // ts-large's gains come from fixing long transit-crossing links, so
    // the absolute latency reduction is the robust contrast.
    const double cut_large =
        series[0].first_value() - series[0].last_value();
    const double cut_small =
        series[1].first_value() - series[1].last_value();
    const bool holds = cut_large > cut_small && cut_large > 0.0;
    all_hold = all_hold && holds;
    char detail[256];
    std::snprintf(detail, sizeof(detail),
                  "latency cut: ts-large %.0f ms vs ts-small %.0f ms "
                  "(factors %.2fx vs %.2fx)",
                  cut_large, cut_small,
                  series[0].first_value() / series[0].last_value(),
                  series[1].first_value() / series[1].last_value());
    print_verdict(holds, detail);
  }

  return all_hold ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
