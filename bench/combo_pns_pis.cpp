// Section 5.2's closing claim — combining PROP with other methods.
//
// "By combining it with other recent methods, the overall performance
// can be further improved." We initialize Chord three ways — plain
// random ids, PNS fingers, PIS identifier assignment — and layer PROP-G
// on each, reporting lookup stretch before and after.
#include <cstdio>

#include "baselines/pis.h"
#include "baselines/topo_can.h"
#include "bench_util.h"
#include "can/can_space.h"
#include "chord/chord_ring.h"
#include "pastry/pastry.h"
#include "tapestry/tapestry.h"
#include "common/table.h"
#include "core/prop_engine.h"
#include "measure/measure_engine.h"
#include "sim/simulator.h"
#include "workload/host_selection.h"

namespace propsim::bench {
namespace {

struct Row {
  std::string label;
  double before = 0.0;
  double after = 0.0;
};

int run(const BenchOptions& opts) {
  print_header(
      "Combination study — PROP-G layered on PNS / PIS Chord variants",
      "PNS and PIS already lower stretch; PROP-G further improves each "
      "and never hurts");

  const std::size_t n = opts.scale_n(1000);
  const double horizon = opts.scale_t(3600.0);
  // Stretch sweeps run on the parallel measurement engine; results are
  // bit-identical to the serial path for any worker count.
  MeasureEngine measure(MeasureEngine::kAutoThreads);
  std::vector<Row> rows;

  for (const std::string& variant :
       {std::string("plain"), std::string("PNS"), std::string("PIS")}) {
    Rng rng(opts.seed);
    World world(TransitStubConfig::ts_large(), rng);
    const auto hosts = select_stub_hosts(world.topo, n, rng);

    ChordConfig ccfg;
    ChordRing ring = [&]() -> ChordRing {
      if (variant == "PIS") {
        const auto landmarks = select_landmarks(world.topo, 8, rng);
        return ChordRing::build_with_ids(
            pis_identifiers(hosts, landmarks, world.oracle, rng), ccfg);
      }
      if (variant == "PNS") {
        ChordConfig pns_cfg = ccfg;
        pns_cfg.pns_candidates = 8;
        ChordRing r = ChordRing::build_random(n, pns_cfg, rng);
        r.apply_pns(hosts, world.oracle);
        return r;
      }
      return ChordRing::build_random(n, ccfg, rng);
    }();

    OverlayNetwork net = make_chord_overlay(ring, hosts, world.oracle);
    Rng qrng(opts.seed + 17);
    const auto queries =
        sample_query_pairs(net.graph(), opts.scale_q(10000), qrng);
    const auto router = chord_router(net, ring);

    Row row;
    row.label = variant;
    row.before = measure.stretch(net, queries, router).stretch;

    Simulator sim;
    PropEngine engine(net, sim, paper_prop_params(PropMode::kPropG),
                      opts.seed + 23);
    engine.start();
    sim.run_until(horizon);
    row.after = measure.stretch(net, queries, router).stretch;
    std::printf("  [%s] exchanges=%llu stretch %.3f -> %.3f\n",
                variant.c_str(),
                static_cast<unsigned long long>(engine.stats().exchanges),
                row.before, row.after);
    rows.push_back(row);
  }

  // Prefix-routing legs: Pastry and Tapestry with their published
  // proximity-aware neighbor selection, PROP-G layered on top.
  for (const bool use_tapestry : {false, true}) {
    Rng rng(opts.seed);
    World world(TransitStubConfig::ts_large(), rng);
    const auto hosts = select_stub_hosts(world.topo, n, rng);
    Row row;
    Simulator sim;
    double after = 0.0;
    if (use_tapestry) {
      auto mesh = TapestryNetwork::build_random(n, TapestryConfig{}, rng);
      mesh.apply_proximity(hosts, world.oracle);
      OverlayNetwork net = make_tapestry_overlay(mesh, hosts, world.oracle);
      Rng qrng(opts.seed + 17);
      const auto queries =
          sample_query_pairs(net.graph(), opts.scale_q(10000), qrng);
      const auto router = [&](const QueryPair& qp) {
        return path_latency(net,
                            mesh.lookup_path(qp.src, mesh.id_of(qp.dst)));
      };
      row.label = "Tapestry-prox";
      row.before = measure.stretch(net, queries, router).stretch;
      PropEngine engine(net, sim, paper_prop_params(PropMode::kPropG),
                        opts.seed + 23);
      engine.start();
      sim.run_until(horizon);
      after = measure.stretch(net, queries, router).stretch;
    } else {
      PastryConfig pcfg;
      auto mesh = PastryNetwork::build_random(n, pcfg, rng);
      mesh.apply_proximity(hosts, world.oracle);
      OverlayNetwork net = make_pastry_overlay(mesh, hosts, world.oracle);
      Rng qrng(opts.seed + 17);
      const auto queries =
          sample_query_pairs(net.graph(), opts.scale_q(10000), qrng);
      const auto router = [&](const QueryPair& qp) {
        return path_latency(net,
                            mesh.lookup_path(qp.src, mesh.id_of(qp.dst)));
      };
      row.label = "Pastry-prox";
      row.before = measure.stretch(net, queries, router).stretch;
      PropEngine engine(net, sim, paper_prop_params(PropMode::kPropG),
                        opts.seed + 23);
      engine.start();
      sim.run_until(horizon);
      after = measure.stretch(net, queries, router).stretch;
    }
    row.after = after;
    std::printf("  [%s] stretch %.3f -> %.3f\n", row.label.c_str(),
                row.before, row.after);
    rows.push_back(row);
  }

  // CAN leg: plain random assignment vs topologically-aware assignment
  // (the related-work technique that only works on CAN), each with
  // PROP-G layered on top.
  for (const bool topo_aware : {false, true}) {
    Rng rng(opts.seed);
    World world(TransitStubConfig::ts_large(), rng);
    auto hosts = select_stub_hosts(world.topo, n, rng);
    const auto space = CanSpace::build(n, rng);
    if (topo_aware) {
      const auto landmarks = select_landmarks(world.topo, 8, rng);
      hosts = topo_aware_can_assignment(space, hosts, landmarks,
                                        world.oracle, rng);
    }
    OverlayNetwork net = make_can_overlay(space, hosts, world.oracle);
    Rng qrng(opts.seed + 17);
    const auto queries =
        sample_query_pairs(net.graph(), opts.scale_q(10000), qrng);
    const auto router = [&](const QueryPair& q) {
      return path_latency(net,
                          space.route_path(q.src, space.zone(q.dst).center()));
    };
    Row row;
    row.label = topo_aware ? "CAN-topo" : "CAN-plain";
    row.before = measure.stretch(net, queries, router).stretch;
    Simulator sim;
    PropEngine engine(net, sim, paper_prop_params(PropMode::kPropG),
                      opts.seed + 23);
    engine.start();
    sim.run_until(horizon);
    row.after = measure.stretch(net, queries, router).stretch;
    std::printf("  [%s] exchanges=%llu stretch %.3f -> %.3f\n",
                row.label.c_str(),
                static_cast<unsigned long long>(engine.stats().exchanges),
                row.before, row.after);
    rows.push_back(row);
  }

  Table table({"variant", "stretch_before_prop", "stretch_after_prop",
               "improvement"});
  for (const Row& r : rows) {
    table.add_row({r.label, Table::fmt(r.before, 4), Table::fmt(r.after, 4),
                   improvement_factor(r.before, r.after)});
  }
  print_csv_block("combo_pns_pis", table.to_csv());
  std::printf("%s", table.to_ascii().c_str());

  // PNS/PIS start below plain; PROP-G improves (or at worst matches)
  // every variant; the combined result beats each technique alone.
  const Row& plain = rows[0];
  const Row& pns = rows[1];
  const Row& pis = rows[2];
  const Row& pastry_prox = rows[3];
  const Row& tapestry_prox = rows[4];
  const Row& can_plain = rows[5];
  const Row& can_topo = rows[6];
  const bool baselines_help = pns.before < plain.before &&
                              pis.before < plain.before &&
                              can_topo.before < can_plain.before;
  // Identifier-assignment methods (PIS, topo-CAN) leave PROP-G real
  // room; entry-selection methods (PNS, Pastry/Tapestry proximity
  // tables) start near-optimal, so "combination" there means PROP-G
  // must not materially hurt (<2% drift is the paper's own §4.2
  // approximation error: tables stay proximity-optimal for the original
  // placement, and Var only tracks neighbor sums).
  const bool prop_helps_all =
      plain.after < plain.before && pns.after <= pns.before + 1e-6 &&
      pis.after <= pis.before + 1e-6 &&
      pastry_prox.after <= pastry_prox.before * 1.02 &&
      tapestry_prox.after <= tapestry_prox.before * 1.02 &&
      can_plain.after < can_plain.before &&
      can_topo.after <= can_topo.before + 1e-6;
  const bool combos_win = pns.after < plain.before &&
                          pis.after < plain.before &&
                          std::min(pns.after, pis.after) <= plain.after &&
                          can_topo.after < can_plain.before;
  const bool holds = baselines_help && prop_helps_all && combos_win;
  char detail[320];
  std::snprintf(detail, sizeof(detail),
                "plain %.2f->%.2f, PNS %.2f->%.2f, PIS %.2f->%.2f, "
                "CAN %.2f->%.2f, CAN-topo %.2f->%.2f",
                plain.before, plain.after, pns.before, pns.after,
                pis.before, pis.after, can_plain.before, can_plain.after,
                can_topo.before, can_topo.after);
  print_verdict(holds, detail);
  return holds ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
