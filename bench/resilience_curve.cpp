// Robustness — graceful degradation under message loss, mid-exchange
// crashes and a scheduled stub-domain partition.
//
// Sweeps per-message loss over {0, 1%, 5%, 20%} on a PROP-O overlay
// with a fixed crash probability and one partition window (the densest
// stub domain loses its gateway for the middle fifth of the run), and
// reports how the exchange success ratio, the converged lookup latency
// and event-driven lookup success degrade. A fault-free reference run
// anchors the convergence-slowdown column. The fault plan draws from
// its own seeded RNG stream, so the whole curve is reproducible.
#include <cstdio>
#include <string>
#include <vector>

#include "app/experiment.h"
#include "bench_util.h"
#include "common/config.h"

namespace propsim::bench {
namespace {

struct Row {
  double loss = 0.0;
  std::size_t burst_len = 0;      // 0 = Bernoulli, >0 = Gilbert-Elliott
  double success_ratio = 0.0;     // exchanges / attempts
  double final_metric = 0.0;      // converged lookup_ms
  double slowdown = 0.0;          // final vs fault-free final
  double unreachable_frac = 0.0;  // event lookups cut off by the fault plan
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t aborted_mid_commit = 0;
  std::uint64_t crashes = 0;
  std::uint64_t burst_losses = 0;
  bool connected = false;
};

ExperimentSpec spec_for(const BenchOptions& opts, double loss,
                        bool faults_on, std::size_t burst_len = 0) {
  const std::size_t n = opts.scale_n(400);
  const double horizon = opts.scale_t(7200.0);
  char text[768];
  std::snprintf(text, sizeof(text),
                "overlay = gnutella\n"
                "protocol = prop-o\n"
                "nodes = %zu\n"
                "seed = %llu\n"
                "horizon = %.0f\n"
                "sample_interval = %.0f\n"
                "queries = %zu\n"
                "model_message_delays = true\n"
                "lookup_rate = 2\n"
                "measure_threads = auto\n",
                n, static_cast<unsigned long long>(opts.seed), horizon,
                horizon / 12.0, opts.scale_q(4000));
  std::string cfg(text);
  if (faults_on) {
    std::snprintf(text, sizeof(text),
                  "fault_loss = %.4f\n"
                  "fault_jitter = 0.2\n"
                  "fault_crash = 0.02\n"
                  "fault_partition_domain = auto\n"
                  "fault_partition_start = %.0f\n"
                  "fault_partition_end = %.0f\n",
                  loss, 0.4 * horizon, 0.6 * horizon);
    cfg += text;
    if (burst_len > 0) {
      std::snprintf(text, sizeof(text), "fault_loss_burst_len = %zu\n",
                    burst_len);
      cfg += text;
    }
  }
  const SpecResult parsed = ExperimentSpec::from_config(Config::parse(cfg));
  PROPSIM_CHECK(parsed.ok() && "resilience_curve config must parse");
  return parsed.spec();
}

int run(const BenchOptions& opts) {
  print_header(
      "Resilience curve — PROP-O under loss, crashes and a stub "
      "partition",
      "degradation is graceful and monotone: higher loss lowers the "
      "exchange success ratio and slows convergence without breaking "
      "overlay connectivity");

  const ExperimentResult reference =
      run_experiment(spec_for(opts, 0.0, false));

  const double losses[] = {0.0, 0.01, 0.05, 0.20};
  // Burst rows rerun each lossy point under Gilbert-Elliott loss with
  // mean burst length 8 at the same stationary loss rate — same loss
  // budget, correlated arrivals.
  constexpr std::size_t kBurstLen = 8;
  std::vector<Row> rows;
  std::vector<Row> burst_rows;
  std::string csv =
      "loss,burst_len,success_ratio,final_lookup_ms,slowdown,"
      "unreachable_frac,timeouts,retries,aborted_mid_commit,crashes,"
      "burst_losses\n";
  const auto measure_row = [&](double loss, std::size_t burst_len) {
    const ExperimentResult r =
        run_experiment(spec_for(opts, loss, true, burst_len));
    Row row;
    row.loss = loss;
    row.burst_len = burst_len;
    row.success_ratio =
        r.attempts > 0
            ? static_cast<double>(r.exchanges) /
                  static_cast<double>(r.attempts)
            : 0.0;
    row.final_metric = r.final_value;
    row.slowdown = r.final_value / reference.final_value;
    row.unreachable_frac =
        r.lookups_issued > 0
            ? static_cast<double>(r.lookups_unreachable) /
                  static_cast<double>(r.lookups_issued)
            : 0.0;
    row.timeouts = r.timeouts;
    row.retries = r.retries;
    row.aborted_mid_commit = r.aborted_mid_commit;
    row.crashes = r.fault_crashes;
    row.burst_losses = r.fault_burst_losses;
    row.connected = r.connected;

    char line[288];
    std::snprintf(line, sizeof(line),
                  "%.2f,%zu,%.4f,%.1f,%.3f,%.4f,%llu,%llu,%llu,%llu,"
                  "%llu\n",
                  row.loss, row.burst_len, row.success_ratio,
                  row.final_metric, row.slowdown, row.unreachable_frac,
                  static_cast<unsigned long long>(row.timeouts),
                  static_cast<unsigned long long>(row.retries),
                  static_cast<unsigned long long>(row.aborted_mid_commit),
                  static_cast<unsigned long long>(row.crashes),
                  static_cast<unsigned long long>(row.burst_losses));
    csv += line;
    return row;
  };
  for (const double loss : losses) {
    rows.push_back(measure_row(loss, 0));
  }
  for (const double loss : losses) {
    if (loss > 0.0) burst_rows.push_back(measure_row(loss, kBurstLen));
  }
  print_csv_block("resilience_curve", csv);

  // Graceful degradation, with tolerance for simulation noise: the
  // success ratio may not climb materially with loss, the converged
  // latency may not materially improve, the heaviest-loss row must be
  // visibly worse than the loss-free one, and every run must end with a
  // connected overlay (the partition heals, crash repair holds).
  bool success_monotone = true;
  bool latency_monotone = true;
  bool all_connected = true;
  bool partition_visible = false;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    all_connected = all_connected && rows[i].connected;
    partition_visible = partition_visible || rows[i].unreachable_frac > 0.0;
    if (i == 0) continue;
    if (rows[i].success_ratio > rows[i - 1].success_ratio * 1.05 + 0.01) {
      success_monotone = false;
    }
    if (rows[i].final_metric < rows[i - 1].final_metric * 0.90) {
      latency_monotone = false;
    }
  }
  const bool clearly_degrades =
      rows.back().success_ratio < rows.front().success_ratio &&
      rows.back().timeouts > 0;
  // Burst columns: every Gilbert-Elliott row must record correlated
  // losses, stay connected, and keep its total loss count in the same
  // regime as the Bernoulli row at the same rate (shared loss budget).
  bool bursts_visible = !burst_rows.empty();
  bool bursts_connected = true;
  for (const Row& row : burst_rows) {
    bursts_visible = bursts_visible && row.burst_losses > 0;
    bursts_connected = bursts_connected && row.connected;
  }
  const bool holds = success_monotone && latency_monotone &&
                     all_connected && partition_visible &&
                     clearly_degrades && bursts_visible && bursts_connected;

  char detail[400];
  std::snprintf(
      detail, sizeof(detail),
      "success ratio %.3f -> %.3f over loss 0 -> 20%%; slowdown %.2fx -> "
      "%.2fx vs fault-free; unreachable up to %.3f; connected=%d; burst "
      "rows (L=8): %zu, max burst_losses %llu, connected=%d",
      rows.front().success_ratio, rows.back().success_ratio,
      rows.front().slowdown, rows.back().slowdown,
      rows.back().unreachable_frac, all_connected, burst_rows.size(),
      static_cast<unsigned long long>(
          burst_rows.empty() ? 0 : burst_rows.back().burst_losses),
      bursts_connected);
  print_verdict(holds, detail);
  return holds ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
