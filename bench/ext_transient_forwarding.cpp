// Extension — cost of in-flight lookup forwarding during exchanges.
//
// Section 3.2: exchanged peers cache each other's address so lookups in
// progress are forwarded correctly; Section 4.2 concedes a query that
// raced an exchange may take "two hops instead of one" to reach the
// moved peer. This bench prices that transient: lookups sampled *while*
// PROP-G is actively exchanging pay one extra counterpart hop whenever
// they land on a freshly swapped position; we compare the penalized
// latency against both the oblivious (no-penalty) latency and the
// unoptimized overlay.
//
// Claim under test: the transient penalty is a small fraction of the
// steady-state gain, i.e. running PROP-G is a net win even while the
// optimization is in full swing.
#include <cstdio>

#include "bench_util.h"
#include "chord/chord_ring.h"
#include "common/table.h"
#include "core/prop_engine.h"
#include "core/swap_log.h"
#include "sim/simulator.h"
#include "workload/host_selection.h"

namespace propsim::bench {
namespace {

int run(const BenchOptions& opts) {
  print_header(
      "Extension — transient forwarding cost during PROP-G exchanges",
      "lookups racing an exchange pay one cached-counterpart hop; the "
      "penalty is a small fraction of the optimization's gain");

  const std::size_t n = opts.scale_n(1000);
  const double horizon = opts.scale_t(3600.0);
  // Stale-state window: the exchange notifies every routing-table
  // holder immediately (they are the two peers' neighbors), so only
  // lookups already in flight see the old position — a window of one
  // round-trip, ~1 s. The sweep adds pessimistic windows (as if
  // notifications were batched into later maintenance rounds) to show
  // the sensitivity.
  const double realistic_window = 1.0;
  const double windows[] = {realistic_window, 10.0, 60.0};

  Rng rng(opts.seed);
  World world(TransitStubConfig::ts_large(), rng);
  const auto hosts = select_stub_hosts(world.topo, n, rng);
  const auto ring = ChordRing::build_random(n, ChordConfig{}, rng);
  OverlayNetwork net = make_chord_overlay(ring, hosts, world.oracle);

  Rng qrng(opts.seed + 1);
  const auto queries =
      sample_query_pairs(net.graph(), opts.scale_q(4000), qrng);

  auto measure = [&](const SwapLog* log, double now, double window) {
    double base_sum = 0.0;
    double penalized_sum = 0.0;
    std::size_t stale = 0;
    for (const QueryPair& q : queries) {
      const auto path = ring.lookup_path(q.src, ring.id_of(q.dst));
      base_sum += path_latency(net, path);
      if (log != nullptr) {
        penalized_sum += log->transient_path_latency(net, path, now, window);
        stale += log->stale_hops(path, now, window);
      }
    }
    const auto count = static_cast<double>(queries.size());
    return std::tuple{base_sum / count,
                      (log ? penalized_sum : base_sum) / count,
                      static_cast<double>(stale) / count};
  };

  const auto [before_ms, unused0, unused1] = measure(nullptr, 0.0, 0.0);
  (void)unused0;
  (void)unused1;

  Simulator sim;
  PropEngine engine(net, sim, paper_prop_params(PropMode::kPropG),
                    opts.seed + 2);
  SwapLog log;
  engine.set_swap_log(&log);
  engine.start();

  // Sample mid-optimization (warm-up, maximum exchange churn) across
  // the window sweep, then converged.
  Table table({"when", "window_s", "oblivious_ms", "with_forwarding_ms",
               "stale_hops_per_lookup", "exchanges_so_far"});
  double mid_penalty = 0.0;
  double mid_gain = 0.0;
  const double mid = engine.params().init_timer_s * 3.0;
  sim.run_until(mid);
  for (const double window : windows) {
    const auto [base_ms, penalized_ms, stale] =
        measure(&log, sim.now(), window);
    table.add_row({"mid-warm-up", Table::fmt(window, 3),
                   Table::fmt(base_ms, 5), Table::fmt(penalized_ms, 5),
                   Table::fmt(stale, 3),
                   std::to_string(engine.stats().exchanges)});
    if (window == realistic_window) {
      mid_penalty = penalized_ms - base_ms;
      mid_gain = before_ms - penalized_ms;
    }
  }
  sim.run_until(horizon);
  {
    const auto [base_ms, penalized_ms, stale] =
        measure(&log, sim.now(), realistic_window);
    table.add_row({"converged", Table::fmt(realistic_window, 3),
                   Table::fmt(base_ms, 5), Table::fmt(penalized_ms, 5),
                   Table::fmt(stale, 3),
                   std::to_string(engine.stats().exchanges)});
  }
  std::printf("unoptimized lookup latency: %.1f ms\n", before_ms);
  print_csv_block("ext_transient_forwarding", table.to_csv());
  std::printf("%s", table.to_ascii().c_str());

  // With the realistic (notification-RTT) window, the penalized overlay
  // must already beat the unoptimized one even at peak exchange rate,
  // and the penalty must be a minor fraction of the realized gain.
  const bool net_win = mid_gain > 0.0;
  const bool penalty_minor = mid_penalty < 0.35 * (mid_gain + mid_penalty);
  const bool holds = net_win && penalty_minor;
  char detail[256];
  std::snprintf(detail, sizeof(detail),
                "mid-warm-up @%.0fs window: forwarding penalty %.2f ms vs "
                "realized gain %.1f ms per lookup",
                realistic_window, mid_penalty, mid_gain);
  print_verdict(holds, detail);
  return holds ? 0 : 1;
}

}  // namespace
}  // namespace propsim::bench

int main(int argc, char** argv) {
  return propsim::bench::run(propsim::bench::parse_options(argc, argv));
}
