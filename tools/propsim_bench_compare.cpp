// propsim_bench_compare — perf-regression gate over two propsim JSON
// artifacts (bench/perf_scaling's BENCH_*.json, propsim.result runs).
//
//   propsim_bench_compare [options] baseline.json candidate.json
//
//   --threshold PCT        default worsening tolerance in percent (25)
//   --metric SUBSTR=PCT    per-metric tolerance override; the first
//                          matching substring wins; a negative PCT makes
//                          matching metrics informational (never gate)
//   --allow-schema-mismatch   compare documents of different schemas
//   --require-metric SUBSTR   fail unless the candidate carries a numeric
//                          path matching SUBSTR; candidate matches the
//                          baseline lacks are warned about (repeatable)
//   --strict-baseline      escalate those warnings to failures, so fresh
//                          bench fields force a baseline refresh
//   --list                 print every compared metric, not just the bad
//
// Exit codes: 0 = no regression, 1 = regression past threshold or a
// --require-metric violation, 2 = bad invocation / unreadable or
// unparsable input. CI's perf-smoke job runs this against the committed
// bench/baselines/ snapshot; see docs/OBSERVABILITY.md for the
// direction-inference rules.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "obs/bench_compare.h"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--threshold PCT] [--metric SUBSTR=PCT ...]\n"
      "       %*s [--require-metric SUBSTR ...] [--strict-baseline]\n"
      "       %*s [--allow-schema-mismatch] [--list]\n"
      "       %*s baseline.json candidate.json\n"
      "\n"
      "Diffs every numeric metric present in both JSON documents and\n"
      "exits 1 when any directional metric worsened past its tolerance.\n",
      argv0, static_cast<int>(std::string(argv0).size()), "",
      static_cast<int>(std::string(argv0).size()), "",
      static_cast<int>(std::string(argv0).size()), "");
}

bool read_file(const std::string& path, std::string& out,
               std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace propsim;

  obs::CompareOptions options;
  bool list_all = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    }
    if (arg == "--threshold" && i + 1 < argc) {
      char* end = nullptr;
      options.tolerance_pct = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || options.tolerance_pct < 0.0) {
        std::fprintf(stderr, "--threshold wants a non-negative percent\n");
        return 2;
      }
      continue;
    }
    if (arg == "--metric" && i + 1 < argc) {
      const std::string value = argv[++i];
      const auto eq = value.rfind('=');
      char* end = nullptr;
      const double pct =
          eq == std::string::npos
              ? 0.0
              : std::strtod(value.c_str() + eq + 1, &end);
      if (eq == std::string::npos || eq == 0 || end == nullptr ||
          *end != '\0') {
        std::fprintf(stderr, "--metric wants SUBSTR=PCT, got '%s'\n",
                     value.c_str());
        return 2;
      }
      options.per_metric.emplace_back(value.substr(0, eq), pct);
      continue;
    }
    if (arg == "--require-metric" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value.empty()) {
        std::fprintf(stderr, "--require-metric wants a path substring\n");
        return 2;
      }
      options.require_metrics.push_back(value);
      continue;
    }
    if (arg == "--strict-baseline") {
      options.strict_baseline = true;
      continue;
    }
    if (arg == "--allow-schema-mismatch") {
      options.require_same_schema = false;
      continue;
    }
    if (arg == "--list") {
      list_all = true;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
    files.push_back(arg);
  }
  if (files.size() != 2) {
    usage(argv[0]);
    return 2;
  }

  Json docs[2];
  for (int i = 0; i < 2; ++i) {
    std::string text;
    std::string error;
    if (!read_file(files[static_cast<std::size_t>(i)], text, error)) {
      std::fprintf(stderr, "propsim_bench_compare: %s\n", error.c_str());
      return 2;
    }
    const auto parsed = Json::parse(text, &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "propsim_bench_compare: %s: %s\n",
                   files[static_cast<std::size_t>(i)].c_str(), error.c_str());
      return 2;
    }
    docs[i] = *parsed;
  }

  const obs::CompareReport report =
      obs::compare_metrics(docs[0], docs[1], options);
  std::printf("baseline:  %s\ncandidate: %s\n", files[0].c_str(),
              files[1].c_str());
  std::printf("%s", report.render(list_all).c_str());
  if (!report.errors.empty()) return 2;
  return report.ok() ? 0 : 1;
}
