// propsim_cli — run a config-driven overlay-optimization experiment.
//
//   propsim_cli [--format csv|json] [--trace out.jsonl] experiment.conf
//               [key=value ...]
//   propsim_cli key=value [key=value ...]
//
// Config keys are documented in src/app/experiment.h; command-line
// key=value pairs override file values. The default output is a human
// summary plus the metric time series as CSV; `--format json` (alias
// `--json`) emits the full result under the stable `propsim.result`
// schema (src/app/result_json.h). Bad configs are reported key-by-key
// with suggestions and exit code 2.
//
// Example:
//   propsim_cli overlay=chord protocol=prop-g nodes=500 horizon=1800
#include <cstdio>
#include <cstring>
#include <string>

#include "app/experiment.h"
#include "app/result_json.h"
#include "common/timeseries.h"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--format csv|json] [--trace out.jsonl] [config-file] "
      "[key=value ...]\n"
      "\n"
      "  --trace <path>  stream propsim.trace v1 JSONL events to <path>\n"
      "                  (same as trace=<path>; needs PROPSIM_TRACE=ON)\n"
      "\n"
      "key reference (defaults in parentheses):\n"
      "  topology   ts-large|ts-small|waxman   (ts-large)\n"
      "  overlay    gnutella|chord|pastry|tapestry|can  (gnutella)\n"
      "  protocol   none|prop-g|prop-o|ltm     (prop-g)\n"
      "  nodes (1000)  seed (20070901)  horizon (3600 s)\n"
      "  sample_interval (horizon/15)  queries (10000)\n"
      "  nhops (2)  m (0 = min degree)  min_var (0)\n"
      "  init_timer (60 s)  max_init_trial (10)  random_target (false)\n"
      "  heterogeneity none|bimodal|bimodal-degree (none)\n"
      "  fast_fraction (0.2) fast_delay_ms (10) slow_delay_ms (100)\n"
      "  fraction_fast_dest (-1 = uniform workload)\n"
      "  churn_join_rate / churn_leave_rate / churn_fail_rate (0 /s)\n"
      "  churn_start (0) churn_end (horizon)\n"
      "  oracle auto|hierarchical|dijkstra (auto)\n"
      "  oracle_cache_rows (1024)\n"
      "  trace (off)  trace_buffer (8192 events)\n"
      "  fault_loss / fault_jitter / fault_crash (0)\n"
      "  fault_max_retries (2)\n"
      "  fault_partition_domain <id>|auto  with\n"
      "  fault_partition_start / fault_partition_end (seconds)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace propsim;

  Config config;
  bool json_output = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    }
    if (arg == "--json") {  // back-compat alias for --format json
      json_output = true;
      continue;
    }
    if (arg == "--trace" && i + 1 < argc) {
      config.set("trace", argv[++i]);
      continue;
    }
    if (arg == "--format" && i + 1 < argc) {
      const std::string format = argv[++i];
      if (format == "json") {
        json_output = true;
      } else if (format == "csv") {
        json_output = false;
      } else {
        std::fprintf(stderr, "unknown --format '%s' (csv | json)\n",
                     format.c_str());
        return 2;
      }
      continue;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      config.set(arg.substr(0, eq), arg.substr(eq + 1));
    } else {
      // A config file; later files/overrides win.
      const Config file = Config::load_file(arg);
      for (const auto& [key, value] : file.values()) {
        config.set(key, value);
      }
    }
  }

  const SpecResult parsed = ExperimentSpec::from_config(config);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s", parsed.error_report().c_str());
    std::fprintf(stderr, "propsim_cli: %zu config error(s); see --help\n",
                 parsed.errors.size());
    return 2;
  }
  const ExperimentSpec& spec = parsed.spec();

  if (json_output) {
    const ExperimentResult result = run_experiment(spec);
    std::printf("%s\n", experiment_result_json(spec, result).dump(2).c_str());
    return result.connected ? 0 : 1;
  }
  std::printf("propsim experiment: overlay=%s protocol=%s nodes=%zu "
              "horizon=%.0fs seed=%llu\n",
              to_string(spec.overlay), to_string(spec.protocol), spec.nodes,
              spec.horizon_s,
              static_cast<unsigned long long>(spec.seed));

  const ExperimentResult result = run_experiment(spec);

  std::printf("\n%s over time:\n", result.metric_name.c_str());
  std::printf("%s", series_to_csv({result.series}, 16).c_str());
  std::printf("\nsummary:\n");
  std::printf("  %s: %.4g -> %.4g (%.2fx)\n", result.metric_name.c_str(),
              result.initial_value, result.final_value,
              result.initial_value / result.final_value);
  if (result.attempts > 0) {
    std::printf("  prop: %llu exchanges / %llu attempts\n",
                static_cast<unsigned long long>(result.exchanges),
                static_cast<unsigned long long>(result.attempts));
  }
  if (result.ltm_rounds > 0) {
    std::printf("  ltm rounds: %llu\n",
                static_cast<unsigned long long>(result.ltm_rounds));
  }
  std::printf("  control messages: %llu\n",
              static_cast<unsigned long long>(result.control_messages));
  if (result.churn_joins + result.churn_leaves + result.churn_failures > 0) {
    std::printf("  churn: %llu joins, %llu leaves, %llu failures\n",
                static_cast<unsigned long long>(result.churn_joins),
                static_cast<unsigned long long>(result.churn_leaves),
                static_cast<unsigned long long>(result.churn_failures));
  }
  if (result.lookups_issued > 0) {
    std::printf("  traffic: %llu lookups (%llu unreachable), "
                "experienced p50 %.0f ms / p95 %.0f ms\n",
                static_cast<unsigned long long>(result.lookups_issued),
                static_cast<unsigned long long>(result.lookups_unreachable),
                result.observed_p50_ms, result.observed_p95_ms);
  }
  if (result.commit_conflicts > 0) {
    std::printf("  commit conflicts: %llu\n",
                static_cast<unsigned long long>(result.commit_conflicts));
  }
  if (result.fault_messages > 0) {
    std::printf("  faults: %llu/%llu messages lost (%llu at partitions), "
                "%llu crashes, %llu timeouts, %llu retries, "
                "%llu aborted mid-commit\n",
                static_cast<unsigned long long>(result.fault_losses +
                                                result.fault_partition_drops),
                static_cast<unsigned long long>(result.fault_messages),
                static_cast<unsigned long long>(result.fault_partition_drops),
                static_cast<unsigned long long>(result.fault_crashes),
                static_cast<unsigned long long>(result.timeouts),
                static_cast<unsigned long long>(result.retries),
                static_cast<unsigned long long>(result.aborted_mid_commit));
  }
  if (result.trace.events > 0) {
    std::printf("  trace: %llu events (%llu warm-up / %llu maintenance)\n",
                static_cast<unsigned long long>(result.trace.events),
                static_cast<unsigned long long>(
                    result.trace.events_by_phase[0]),
                static_cast<unsigned long long>(
                    result.trace.events_by_phase[1]));
    if (!result.trace.sink_path.empty()) {
      std::printf("  trace file: %s (%llu events)\n",
                  result.trace.sink_path.c_str(),
                  static_cast<unsigned long long>(result.trace.sink_events));
    }
  }
  std::printf("  population: %zu peers, overlay %s\n",
              result.final_population,
              result.connected ? "connected" : "PARTITIONED");
  return result.connected ? 0 : 1;
}
