// propsim_lint — offline protocol-invariant audit of overlay snapshots.
//
//   propsim_lint [options] <graph.edges>
//
//   --baseline FILE   pre-run snapshot; enables the conservation rules
//                     (degree-conservation, prop-g-isomorphism)
//   --rules a,b,c     run only the named rules (default: all applicable)
//   --list-rules      print the rule catalog and exit
//   --strict          warnings also fail the audit
//   --quiet           suppress the per-rule summary, print findings only
//
// Snapshots are graph_io edge-list dumps (save_graph / graph_to_edge_list).
// Parsing is deliberately lenient: self-loops, parallel edges and
// out-of-range endpoints load fine and are *flagged*, which is the point —
// a corrupt dump must produce findings, not a crash.
//
// Exit codes: 0 clean, 1 findings at failing severity, 2 usage/IO error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/invariant_checker.h"
#include "app/sweep.h"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--baseline FILE] [--rules a,b,c] [--strict] [--quiet]\n"
      "       %*s [--list-rules] <graph.edges>\n",
      argv0, static_cast<int>(std::string(argv0).size()), "");
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace propsim;

  std::string graph_path;
  std::string baseline_path;
  std::vector<std::string> rule_names;
  bool strict = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    }
    if (arg == "--list-rules") {
      register_builtin_lint_rules();
      for (const auto& rule : LintRuleRegistry::instance().rules()) {
        std::printf("%-22s %s\n", std::string(rule->name()).c_str(),
                    std::string(rule->description()).c_str());
      }
      return 0;
    }
    if (arg == "--strict") {
      strict = true;
      continue;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
      continue;
    }
    if (arg == "--rules" && i + 1 < argc) {
      rule_names = split_commas(argv[++i]);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "propsim_lint: unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
    if (!graph_path.empty()) {
      std::fprintf(stderr, "propsim_lint: more than one snapshot given\n");
      return 2;
    }
    graph_path = arg;
  }
  if (graph_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  register_builtin_lint_rules();
  for (const std::string& name : rule_names) {
    if (LintRuleRegistry::instance().find(name) == nullptr) {
      std::fprintf(stderr, "propsim_lint: unknown rule '%s'\n",
                   name.c_str());
      return 2;
    }
  }

  auto load = [](const std::string& path, SnapshotGraph& snap) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "propsim_lint: cannot read %s\n", path.c_str());
      return false;
    }
    std::string err;
    if (!snapshot_from_edge_list(text, snap, &err)) {
      std::fprintf(stderr, "propsim_lint: %s: %s\n", path.c_str(),
                   err.c_str());
      return false;
    }
    return true;
  };

  SnapshotGraph snap;
  if (!load(graph_path, snap)) return 2;
  SnapshotGraph baseline;
  LintContext ctx;
  ctx.graph = &snap;
  if (!baseline_path.empty()) {
    if (!load(baseline_path, baseline)) return 2;
    ctx.baseline = &baseline;
  }

  const InvariantChecker checker =
      rule_names.empty() ? InvariantChecker() : InvariantChecker(rule_names);
  const LintReport report = checker.run(ctx);

  std::fputs(report.to_string().c_str(), stdout);
  if (!quiet) {
    std::printf("%zu rule(s) run, %zu skipped; %zu error(s), %zu "
                "warning(s)\n",
                report.rules_run, report.rules_skipped,
                report.error_count(), report.warning_count());
  }
  const bool failed =
      report.error_count() > 0 || (strict && report.warning_count() > 0);
  return failed ? 1 : 0;
}
