// propsim_sweep — parallel parameter-sweep driver.
//
//   propsim_sweep [base.conf] [key=value ...]
//                 sweep:nodes=300,500,1000 sweep:protocol=prop-g,ltm
//                 [--jobs N] [--repeat K] [--format csv|json]
//
// Builds the Cartesian product of every sweep axis (times K seed
// repeats), runs each combination as an independent deterministic
// simulation on a worker pool, and prints one aggregated row per
// combination. Simulations never share state, so the output is
// identical to a serial run. Every combination's config is validated
// up-front: one bad axis value aborts with the full per-key error list
// before any simulation runs. `--format json` replaces the ASCII/CSV
// tables with a `propsim.sweep` JSON document.
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "app/experiment.h"
#include "app/sweep.h"
#include "common/json.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace {

using namespace propsim;

}  // namespace

int main(int argc, char** argv) {
  Config base;
  std::vector<SweepAxis> axes;
  std::size_t jobs = 0;
  std::size_t repeat = 1;
  bool json_output = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [base.conf] [key=value ...] sweep:key=v1,v2,... "
          "[--jobs N] [--repeat K] [--format csv|json]\n",
          argv[0]);
      return 0;
    }
    if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      continue;
    }
    if (arg == "--repeat" && i + 1 < argc) {
      repeat =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      continue;
    }
    if (arg == "--format" && i + 1 < argc) {
      const std::string format = argv[++i];
      if (format == "json") {
        json_output = true;
      } else if (format == "csv") {
        json_output = false;
      } else {
        std::fprintf(stderr, "unknown --format '%s' (csv | json)\n",
                     format.c_str());
        return 2;
      }
      continue;
    }
    if (arg.rfind("sweep:", 0) == 0) {
      axes.push_back(parse_sweep_axis(arg));
      continue;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      base.set(arg.substr(0, eq), arg.substr(eq + 1));
    } else {
      const Config file = Config::load_file(arg);
      for (const auto& [key, value] : file.values()) base.set(key, value);
    }
  }
  if (repeat == 0) repeat = 1;

  const std::vector<SweepCombo> combos = expand_sweep(base, axes);

  // Validate every combination before burning any simulation time.
  bool valid = true;
  for (const SweepCombo& combo : combos) {
    const SpecResult parsed = ExperimentSpec::from_config(combo.config);
    if (!parsed.ok()) {
      std::fprintf(stderr, "combination %s:\n%s", combo.label.c_str(),
                   parsed.error_report().c_str());
      valid = false;
    }
  }
  if (!valid) return 2;

  struct Cell {
    RunningStats initial;
    RunningStats final;
    RunningStats exchanges;
    bool connected = true;
    std::string metric;
  };
  std::vector<Cell> cells(combos.size());
  std::mutex cells_mutex;

  ThreadPool pool(jobs);
  if (!json_output) {
    std::printf("sweep: %zu combinations x %zu repeats on %zu workers\n",
                combos.size(), repeat, pool.worker_count());
  }

  pool.parallel_for(combos.size() * repeat, [&](std::size_t task) {
    const std::size_t ci = task / repeat;
    const std::size_t rep = task % repeat;
    Config config = combos[ci].config;
    const auto base_seed =
        static_cast<std::uint64_t>(config.get_int("seed", 20070901));
    config.set("seed", std::to_string(base_seed + rep * 1000003ULL));
    const SpecResult parsed = ExperimentSpec::from_config(config);
    PROPSIM_CHECK(parsed.ok());  // validated above; reseeding keeps it so
    const ExperimentResult result = run_experiment(parsed.spec());
    std::lock_guard<std::mutex> lock(cells_mutex);
    Cell& cell = cells[ci];
    cell.initial.add(result.initial_value);
    cell.final.add(result.final_value);
    cell.exchanges.add(static_cast<double>(result.exchanges));
    cell.connected = cell.connected && result.connected;
    cell.metric = result.metric_name;
  });

  bool all_connected = true;
  if (json_output) {
    Json out = Json::object();
    out.set("schema", "propsim.sweep");
    out.set("version", 1);
    out.set("repeats", static_cast<std::uint64_t>(repeat));
    Json rows = Json::array();
    for (std::size_t ci = 0; ci < combos.size(); ++ci) {
      const Cell& cell = cells[ci];
      Json row = Json::object();
      row.set("combination", combos[ci].label)
          .set("metric", cell.metric)
          .set("initial_mean", cell.initial.mean())
          .set("final_mean", cell.final.mean())
          .set("final_sd", cell.final.stddev())
          .set("improvement", cell.initial.mean() / cell.final.mean())
          .set("exchanges_mean", cell.exchanges.mean())
          .set("connected", cell.connected);
      rows.push_back(std::move(row));
      all_connected = all_connected && cell.connected;
    }
    out.set("combinations", std::move(rows));
    std::printf("%s\n", out.dump(2).c_str());
    return all_connected ? 0 : 1;
  }

  Table table({"combination", "metric", "initial(mean)", "final(mean)",
               "final(sd)", "improvement", "exchanges", "connected"});
  for (std::size_t ci = 0; ci < combos.size(); ++ci) {
    const Cell& cell = cells[ci];
    table.add_row({combos[ci].label, cell.metric,
                   Table::fmt(cell.initial.mean(), 5),
                   Table::fmt(cell.final.mean(), 5),
                   Table::fmt(cell.final.stddev(), 3),
                   Table::fmt(cell.initial.mean() / cell.final.mean(), 4),
                   Table::fmt(cell.exchanges.mean(), 5),
                   cell.connected ? "yes" : "NO"});
    all_connected = all_connected && cell.connected;
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("\ncsv:\n%s", table.to_csv().c_str());
  return all_connected ? 0 : 1;
}
