// propsim_sweep — parallel parameter-sweep driver.
//
//   propsim_sweep [base.conf] [key=value ...]
//                 sweep:nodes=300,500,1000 sweep:protocol=prop-g,ltm
//                 [--jobs N] [--repeat K]
//
// Builds the Cartesian product of every sweep axis (times K seed
// repeats), runs each combination as an independent deterministic
// simulation on a worker pool, and prints one aggregated row per
// combination. Simulations never share state, so the output is
// identical to a serial run.
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "app/experiment.h"
#include "app/sweep.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace {

using namespace propsim;

}  // namespace

int main(int argc, char** argv) {
  Config base;
  std::vector<SweepAxis> axes;
  std::size_t jobs = 0;
  std::size_t repeat = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [base.conf] [key=value ...] sweep:key=v1,v2,... "
          "[--jobs N] [--repeat K]\n",
          argv[0]);
      return 0;
    }
    if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      continue;
    }
    if (arg == "--repeat" && i + 1 < argc) {
      repeat =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      continue;
    }
    if (arg.rfind("sweep:", 0) == 0) {
      axes.push_back(parse_sweep_axis(arg));
      continue;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      base.set(arg.substr(0, eq), arg.substr(eq + 1));
    } else {
      const Config file = Config::load_file(arg);
      for (const auto& [key, value] : file.values()) base.set(key, value);
    }
  }
  if (repeat == 0) repeat = 1;

  const std::vector<SweepCombo> combos = expand_sweep(base, axes);

  struct Cell {
    RunningStats initial;
    RunningStats final;
    RunningStats exchanges;
    bool connected = true;
    std::string metric;
  };
  std::vector<Cell> cells(combos.size());
  std::mutex cells_mutex;

  ThreadPool pool(jobs);
  std::printf("sweep: %zu combinations x %zu repeats on %zu workers\n",
              combos.size(), repeat, pool.worker_count());

  pool.parallel_for(combos.size() * repeat, [&](std::size_t task) {
    const std::size_t ci = task / repeat;
    const std::size_t rep = task % repeat;
    Config config = combos[ci].config;
    const auto base_seed =
        static_cast<std::uint64_t>(config.get_int("seed", 20070901));
    config.set("seed", std::to_string(base_seed + rep * 1000003ULL));
    const ExperimentSpec spec = ExperimentSpec::from_config(config);
    const ExperimentResult result = run_experiment(spec);
    std::lock_guard<std::mutex> lock(cells_mutex);
    Cell& cell = cells[ci];
    cell.initial.add(result.initial_value);
    cell.final.add(result.final_value);
    cell.exchanges.add(static_cast<double>(result.exchanges));
    cell.connected = cell.connected && result.connected;
    cell.metric = result.metric_name;
  });

  Table table({"combination", "metric", "initial(mean)", "final(mean)",
               "final(sd)", "improvement", "exchanges", "connected"});
  bool all_connected = true;
  for (std::size_t ci = 0; ci < combos.size(); ++ci) {
    const Cell& cell = cells[ci];
    table.add_row({combos[ci].label, cell.metric,
                   Table::fmt(cell.initial.mean(), 5),
                   Table::fmt(cell.final.mean(), 5),
                   Table::fmt(cell.final.stddev(), 3),
                   Table::fmt(cell.initial.mean() / cell.final.mean(), 4),
                   Table::fmt(cell.exchanges.mean(), 5),
                   cell.connected ? "yes" : "NO"});
    all_connected = all_connected && cell.connected;
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("\ncsv:\n%s", table.to_csv().c_str());
  return all_connected ? 0 : 1;
}
