#include "detlint/report.h"

#include <ostream>

#include "common/json.h"

namespace detlint {

namespace {

const char* severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

}  // namespace

int count_unsuppressed(const Report& report, Severity at_least) {
  int n = 0;
  for (const Finding& f : report.findings) {
    if (!f.suppressed && f.severity >= at_least) ++n;
  }
  return n;
}

void render_text(const Report& report, std::ostream& os, bool quiet) {
  for (const Finding& f : report.findings) {
    if (f.suppressed && quiet) continue;
    os << f.file << ":" << f.line << ": " << severity_name(f.severity)
       << ": [" << f.rule << "/" << f.rule_name << "] " << f.message;
    if (f.suppressed) os << " (suppressed: " << f.reason << ")";
    os << "\n";
    if (!f.suppressed && !f.hint.empty()) {
      os << "    hint: " << f.hint << "\n";
    }
  }
  if (!quiet) {
    for (const Suppression& s : report.unused) {
      os << "note: unused suppression for " << s.rule << " at " << s.file
         << ":" << s.line << " (" << s.reason << ")\n";
    }
  }
  const int errors = count_unsuppressed(report, Severity::kError);
  const int warnings =
      count_unsuppressed(report, Severity::kWarning) - errors;
  os << report.files_scanned << " file(s) scanned, " << errors
     << " error(s), " << warnings << " warning(s), "
     << report.suppression_used << "/" << report.suppression_total
     << " suppression(s) used\n";
}

std::string render_json(const Report& report) {
  using propsim::Json;
  Json doc = Json::object();
  doc.set("schema", "propsim.lint");
  doc.set("version", 1);
  doc.set("files_scanned", report.files_scanned);

  Json findings = Json::array();
  for (const Finding& f : report.findings) {
    Json j = Json::object();
    j.set("rule", f.rule);
    j.set("name", f.rule_name);
    j.set("severity", severity_name(f.severity));
    j.set("file", f.file);
    j.set("line", f.line);
    j.set("message", f.message);
    j.set("hint", f.hint);
    j.set("suppressed", f.suppressed);
    if (f.suppressed) j.set("reason", f.reason);
    findings.push_back(std::move(j));
  }
  doc.set("findings", std::move(findings));

  Json unused = Json::array();
  for (const Suppression& s : report.unused) {
    Json j = Json::object();
    j.set("rule", s.rule);
    j.set("file", s.file);
    j.set("line", s.line);
    j.set("reason", s.reason);
    unused.push_back(std::move(j));
  }
  Json suppressions = Json::object();
  suppressions.set("total", report.suppression_total);
  suppressions.set("used", report.suppression_used);
  suppressions.set("unused", std::move(unused));
  doc.set("suppressions", std::move(suppressions));

  int suppressed = 0;
  for (const Finding& f : report.findings) {
    if (f.suppressed) ++suppressed;
  }
  Json summary = Json::object();
  summary.set("total", static_cast<int>(report.findings.size()));
  summary.set("suppressed", suppressed);
  summary.set("unsuppressed",
              static_cast<int>(report.findings.size()) - suppressed);
  summary.set("errors", count_unsuppressed(report, Severity::kError));
  doc.set("summary", std::move(summary));

  return doc.dump(2) + "\n";
}

}  // namespace detlint
