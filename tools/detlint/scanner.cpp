#include "detlint/scanner.h"

#include <cctype>
#include <cstddef>

namespace detlint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Multi-char operators, longest first so greedy matching is correct.
const char* const kOps[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "++", "--", "<<",
    ">>",  "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=",
    "/=",  "%=",  "&=",  "|=",  "^=",  ".*",
};

}  // namespace

bool is_source_path(const std::string& path) {
  return ends_with(path, ".h") || ends_with(path, ".hpp") ||
         ends_with(path, ".hh") || ends_with(path, ".cpp") ||
         ends_with(path, ".cc") || ends_with(path, ".cxx");
}

FileScan scan_source(const std::string& path, const std::string& text) {
  FileScan out;
  out.path = path;
  out.is_header = ends_with(path, ".h") || ends_with(path, ".hpp") ||
                  ends_with(path, ".hh");

  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  // True until a token (or a trailing comment) was seen on this line;
  // decides Comment::own_line and directive detection.
  bool line_blank = true;

  // Consumes a quoted literal at `i` (which must point at the quote);
  // appends to `t.text` and advances past the closing quote.
  const auto lex_quoted = [&](Token& t, char quote) {
    t.text += text[i++];
    while (i < n && text[i] != quote && text[i] != '\n') {
      if (text[i] == '\\' && i + 1 < n) t.text += text[i++];
      t.text += text[i++];
    }
    if (i < n && text[i] == quote) t.text += text[i++];
  };

  // Consumes a raw string body at `i` (pointing at the '"' after R);
  // returns false when the delimiter is malformed.
  const auto lex_raw = [&](Token& t) {
    std::size_t d = i + 1;
    std::string delim;
    while (d < n && text[d] != '(' && text[d] != ')' && text[d] != '"' &&
           text[d] != '\\' && text[d] != '\n' && delim.size() < 16) {
      delim += text[d++];
    }
    if (d >= n || text[d] != '(') return false;
    const std::string closer = ")" + delim + "\"";
    std::size_t end = text.find(closer, d + 1);
    end = end == std::string::npos ? n : end + closer.size();
    for (std::size_t k = i; k < end; ++k) {
      if (text[k] == '\n') ++line;
    }
    t.text.append(text, i, end - i);
    i = end;
    return true;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      line_blank = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Preprocessor directive: first black ink on the line is '#'.
    if (c == '#' && line_blank) {
      Directive d;
      d.line = line;
      while (i < n && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          d.text += ' ';
          i += 2;
          ++line;
          continue;
        }
        d.text += text[i];
        ++i;
      }
      out.directives.push_back(std::move(d));
      line_blank = false;
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      Comment cm;
      cm.line = line;
      cm.end_line = line;
      cm.own_line = line_blank;
      i += 2;
      while (i < n && text[i] != '\n') cm.text += text[i++];
      out.comments.push_back(std::move(cm));
      line_blank = false;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      Comment cm;
      cm.line = line;
      cm.own_line = line_blank;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        cm.text += text[i++];
      }
      i = i + 1 < n ? i + 2 : n;
      cm.end_line = line;
      out.comments.push_back(std::move(cm));
      line_blank = false;
      continue;
    }

    line_blank = false;

    if (ident_start(c)) {
      Token t;
      t.kind = TokKind::kIdent;
      t.line = line;
      while (i < n && ident_char(text[i])) t.text += text[i++];
      // Literal prefixes glue onto the literal (u8"x", LR"(x)", ...).
      const bool raw_prefix = t.text == "R" || t.text == "uR" ||
                              t.text == "u8R" || t.text == "UR" ||
                              t.text == "LR";
      const bool str_prefix = t.text == "u" || t.text == "u8" ||
                              t.text == "U" || t.text == "L";
      if (i < n && text[i] == '"' && raw_prefix) {
        t.kind = TokKind::kString;
        if (!lex_raw(t)) lex_quoted(t, '"');
        out.tokens.push_back(std::move(t));
        continue;
      }
      if (i < n && text[i] == '"' && str_prefix) {
        t.kind = TokKind::kString;
        lex_quoted(t, '"');
        out.tokens.push_back(std::move(t));
        continue;
      }
      if (i < n && text[i] == '\'' && str_prefix) {
        t.kind = TokKind::kChar;
        lex_quoted(t, '\'');
        out.tokens.push_back(std::move(t));
        continue;
      }
      out.tokens.push_back(std::move(t));
      continue;
    }

    if (c == '"') {
      Token t;
      t.kind = TokKind::kString;
      t.line = line;
      lex_quoted(t, '"');
      out.tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      Token t;
      t.kind = TokKind::kChar;
      t.line = line;
      lex_quoted(t, '\'');
      out.tokens.push_back(std::move(t));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      Token t;
      t.kind = TokKind::kNumber;
      t.line = line;
      // pp-number shape: alnum, dots, digit separators, exponent signs.
      while (i < n &&
             (ident_char(text[i]) || text[i] == '.' || text[i] == '\'')) {
        t.text += text[i];
        if ((text[i] == 'e' || text[i] == 'E' || text[i] == 'p' ||
             text[i] == 'P') &&
            i + 1 < n && (text[i + 1] == '+' || text[i + 1] == '-')) {
          t.text += text[++i];
        }
        ++i;
      }
      out.tokens.push_back(std::move(t));
      continue;
    }

    // Punctuation: greedy multi-char match.
    Token t;
    t.kind = TokKind::kPunct;
    t.line = line;
    t.text = std::string(1, c);
    for (const char* op : kOps) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (text.compare(i, len, op) == 0) {
        t.text = op;
        break;
      }
    }
    i += t.text.size();
    out.tokens.push_back(std::move(t));
  }

  out.line_count = line;
  return out;
}

}  // namespace detlint
