#include "detlint/rules.h"

#include <algorithm>
#include <cctype>
#include <initializer_list>
#include <utility>

namespace detlint {

namespace {

// The suppression marker head. Built from pieces so detlint's own
// sources never contain the literal marker (it would self-flag).
const std::string kMarker = std::string("det-") + "ok(";

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

std::string lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool ident_in(const Token& t, std::initializer_list<const char*> names) {
  if (t.kind != TokKind::kIdent) return false;
  for (const char* n : names) {
    if (t.text == n) return true;
  }
  return false;
}

void emit(const Rule& rule, const FileScan& file, int line,
          std::string message, std::vector<Finding>& out) {
  Finding f;
  f.rule = std::string(rule.id());
  f.rule_name = std::string(rule.name());
  f.severity = rule.severity();
  f.file = file.path;
  f.line = line;
  f.message = std::move(message);
  f.hint = std::string(rule.hint());
  out.push_back(std::move(f));
}

// Skips a balanced template argument list; `i` must index the opening
// '<'. Returns the index just past the matching '>', or `end` when the
// list never closes before a hard stop.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    else if (t == ">") --depth;
    else if (t == ">>") depth -= 2;
    else if (t == ";" || t == "{") return toks.size();
    if (depth <= 0) return i + 1;
  }
  return toks.size();
}

constexpr std::initializer_list<const char*> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

constexpr std::initializer_list<const char*> kAllStdContainers = {
    "map",           "set",           "multimap",
    "multiset",      "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset"};

// --------------------------------------------------- D1 unordered-iteration
class UnorderedIterationRule final : public Rule {
 public:
  std::string_view id() const override { return "D1"; }
  std::string_view name() const override { return "unordered-iteration"; }
  std::string_view description() const override {
    return "std::unordered_* in simulation-linked code (src/): iteration "
           "order is unspecified and varies across standard libraries, "
           "silently breaking bit-identical runs";
  }
  std::string_view hint() const override {
    return "use std::map/std::set or a sorted vector; if the container "
           "is only probed (never iterated), suppress with a reason";
  }
  bool applicable(const FileScan& file) const override {
    return starts_with(file.path, "src/");
  }
  void check(const FileScan& file,
             std::vector<Finding>& out) const override {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (is_ident(toks[i], "std") && is_punct(toks[i + 1], "::") &&
          ident_in(toks[i + 2], kUnorderedContainers)) {
        emit(*this, file, toks[i + 2].line,
             "std::" + toks[i + 2].text + " in a simulation-linked file",
             out);
      }
    }
  }
};

// --------------------------------------------------- D2 wall-clock-entropy
class WallClockEntropyRule final : public Rule {
 public:
  std::string_view id() const override { return "D2"; }
  std::string_view name() const override { return "wall-clock-entropy"; }
  std::string_view description() const override {
    return "ambient entropy or wall-clock reads (rand, srand, "
           "std::random_device, time(nullptr), system_clock::now()) "
           "outside bench timing code";
  }
  std::string_view hint() const override {
    return "derive every stream from the run seed (seed + prime "
           "convention, or Rng::split()); benches may read clocks";
  }
  bool applicable(const FileScan& file) const override {
    return !contains(file.path, "bench");
  }
  void check(const FileScan& file,
             std::vector<Finding>& out) const override {
    const auto& toks = file.tokens;
    // True when the qualified name ending at token i is rooted anywhere
    // other than std:: (a member or a project namespace is fine).
    const auto foreign_scope = [&](std::size_t i) {
      if (i == 0) return false;
      if (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) {
        return true;
      }
      if (is_punct(toks[i - 1], "::") && i >= 2 &&
          toks[i - 2].kind == TokKind::kIdent &&
          toks[i - 2].text != "std") {
        return true;
      }
      return false;
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
      // system_clock is usually reached as std::chrono::system_clock, so
      // only a member access marks it foreign.
      if (is_ident(toks[i], "system_clock") && i + 4 < toks.size() &&
          is_punct(toks[i + 1], "::") && is_ident(toks[i + 2], "now") &&
          is_punct(toks[i + 3], "(") && is_punct(toks[i + 4], ")") &&
          !(i > 0 && (is_punct(toks[i - 1], ".") ||
                      is_punct(toks[i - 1], "->")))) {
        emit(*this, file, toks[i].line,
             "system_clock::now() reads the wall clock", out);
        continue;
      }
      if (foreign_scope(i)) continue;
      if (ident_in(toks[i], {"rand", "srand"}) && i + 1 < toks.size() &&
          is_punct(toks[i + 1], "(")) {
        emit(*this, file, toks[i].line,
             toks[i].text + "() draws from ambient global state", out);
        continue;
      }
      if (is_ident(toks[i], "random_device")) {
        emit(*this, file, toks[i].line,
             "std::random_device is nondeterministic by design", out);
        continue;
      }
      if (is_ident(toks[i], "time") && i + 3 < toks.size() &&
          is_punct(toks[i + 1], "(") &&
          (ident_in(toks[i + 2], {"nullptr", "NULL"}) ||
           toks[i + 2].text == "0") &&
          is_punct(toks[i + 3], ")")) {
        emit(*this, file, toks[i].line,
             "time(" + toks[i + 2].text + ") reads the wall clock", out);
        continue;
      }
    }
  }
};

// ------------------------------------------------------- D3 thread-id-logic
class ThreadIdLogicRule final : public Rule {
 public:
  std::string_view id() const override { return "D3"; }
  std::string_view name() const override { return "thread-id-logic"; }
  std::string_view description() const override {
    return "std::this_thread::get_id() feeding logic: thread ids are "
           "scheduler-assigned and differ run to run";
  }
  std::string_view hint() const override {
    return "pass an explicit worker index into the task instead";
  }
  bool applicable(const FileScan&) const override { return true; }
  void check(const FileScan& file,
             std::vector<Finding>& out) const override {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (is_ident(toks[i], "this_thread") &&
          is_punct(toks[i + 1], "::") && is_ident(toks[i + 2], "get_id")) {
        emit(*this, file, toks[i].line,
             "this_thread::get_id() is not stable across runs", out);
      }
    }
  }
};

// ------------------------------------------------------ D4 pointer-keyed-map
class PointerKeyedMapRule final : public Rule {
 public:
  std::string_view id() const override { return "D4"; }
  std::string_view name() const override { return "pointer-keyed-map"; }
  std::string_view description() const override {
    return "associative container keyed by a raw pointer: address order "
           "(and hash) depends on allocator behavior, so iteration leaks "
           "nondeterminism";
  }
  std::string_view hint() const override {
    return "key by a stable id (SlotId, NodeId, index) instead of an "
           "object address";
  }
  bool applicable(const FileScan&) const override { return true; }
  void check(const FileScan& file,
             std::vector<Finding>& out) const override {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!(is_ident(toks[i], "std") && is_punct(toks[i + 1], "::") &&
            ident_in(toks[i + 2], kAllStdContainers) &&
            is_punct(toks[i + 3], "<"))) {
        continue;
      }
      // First template argument: tokens at angle depth 1 up to the first
      // ',' (or the closing '>').
      int depth = 1;
      std::size_t last = 0;  // index of the key type's final token
      for (std::size_t j = i + 4; j < toks.size(); ++j) {
        const std::string& t = toks[j].text;
        if (t == "<") ++depth;
        else if (t == ">") --depth;
        else if (t == ">>") depth -= 2;
        else if (t == ";" || t == "{") break;
        if (depth <= 0 || (depth == 1 && t == ",")) break;
        last = j;
      }
      if (last != 0 && is_punct(toks[last], "*")) {
        emit(*this, file, toks[i + 2].line,
             "std::" + toks[i + 2].text + " keyed by raw pointer type",
             out);
      }
    }
  }
};

// ------------------------------------------------- D5 fp-accumulation-order
class FpAccumulationOrderRule final : public Rule {
 public:
  std::string_view id() const override { return "D5"; }
  std::string_view name() const override { return "fp-accumulation-order"; }
  std::string_view description() const override {
    return "floating-point accumulation while iterating an unordered "
           "container in src/measure/: FP addition does not commute, so "
           "the sum depends on hash-bucket order";
  }
  std::string_view hint() const override {
    return "accumulate in index order (vector indexed by slot/query id) "
           "and reduce in a fixed sequence";
  }
  bool applicable(const FileScan& file) const override {
    return starts_with(file.path, "src/measure/");
  }
  void check(const FileScan& file,
             std::vector<Finding>& out) const override {
    const auto& toks = file.tokens;
    // Names declared as std::unordered_* in this file.
    std::vector<std::string> unordered_vars;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (is_ident(toks[i], "std") && is_punct(toks[i + 1], "::") &&
          ident_in(toks[i + 2], kUnorderedContainers)) {
        std::size_t j = i + 3;
        if (j < toks.size() && is_punct(toks[j], "<")) {
          j = skip_angles(toks, j);
        }
        if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
          unordered_vars.push_back(toks[j].text);
        }
      }
    }
    if (unordered_vars.empty()) return;
    const auto is_unordered_var = [&](const Token& t) {
      return t.kind == TokKind::kIdent &&
             std::find(unordered_vars.begin(), unordered_vars.end(),
                       t.text) != unordered_vars.end();
    };
    // Range-for whose range expression names one of those containers.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) {
        continue;
      }
      int pdepth = 1;
      std::size_t colon = 0;
      std::size_t close = 0;
      bool classic_for = false;
      for (std::size_t j = i + 2; j < toks.size(); ++j) {
        const std::string& t = toks[j].text;
        if (t == "(") ++pdepth;
        else if (t == ")") {
          --pdepth;
          if (pdepth == 0) {
            close = j;
            break;
          }
        } else if (pdepth == 1 && t == ";") {
          classic_for = true;
        } else if (pdepth == 1 && t == ":" && colon == 0) {
          colon = j;
        }
      }
      if (classic_for || colon == 0 || close == 0) continue;
      bool over_unordered = false;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (is_unordered_var(toks[j])) over_unordered = true;
      }
      if (!over_unordered) continue;
      // Loop body: braced block or single statement.
      std::size_t j = close + 1;
      std::size_t body_end = toks.size();
      if (j < toks.size() && is_punct(toks[j], "{")) {
        int bdepth = 1;
        for (std::size_t k = j + 1; k < toks.size(); ++k) {
          if (is_punct(toks[k], "{")) ++bdepth;
          else if (is_punct(toks[k], "}")) --bdepth;
          if (bdepth == 0) {
            body_end = k;
            break;
          }
        }
        ++j;
      } else {
        for (std::size_t k = j; k < toks.size(); ++k) {
          if (is_punct(toks[k], ";")) {
            body_end = k;
            break;
          }
        }
      }
      for (; j < body_end; ++j) {
        if (is_punct(toks[j], "+=") || is_punct(toks[j], "-=")) {
          emit(*this, file, toks[j].line,
               "compound accumulation inside iteration over unordered "
               "container",
               out);
        }
      }
    }
  }
};

// ------------------------------------------------- D6 lock-across-submit
class LockAcrossSubmitRule final : public Rule {
 public:
  std::string_view id() const override { return "D6"; }
  std::string_view name() const override { return "lock-across-submit"; }
  std::string_view description() const override {
    return "mutex guard held across a ThreadPool submit call: the task "
           "may run (and block) before the guard releases, inviting "
           "deadlock and schedule-dependent ordering";
  }
  std::string_view hint() const override {
    return "scope the guard so it releases before submit, or move the "
           "locked work into the task";
  }
  bool applicable(const FileScan&) const override { return true; }
  void check(const FileScan& file,
             std::vector<Finding>& out) const override {
    const auto& toks = file.tokens;
    struct Guard {
      int depth;
      int line;
    };
    std::vector<Guard> guards;
    int depth = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (is_punct(toks[i], "{")) {
        ++depth;
        continue;
      }
      if (is_punct(toks[i], "}")) {
        --depth;
        while (!guards.empty() && guards.back().depth > depth) {
          guards.pop_back();
        }
        continue;
      }
      if (ident_in(toks[i], {"lock_guard", "unique_lock", "scoped_lock"})) {
        guards.push_back(Guard{depth, toks[i].line});
        continue;
      }
      if (!guards.empty() && is_ident(toks[i], "submit") && i > 0 &&
          (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
          i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
        emit(*this, file, toks[i].line,
             "submit() called with a mutex guard held (guard from line " +
                 std::to_string(guards.back().line) + ")",
             out);
      }
    }
  }
};

// ------------------------------------------------- D7 underived-rng-seed
class UnderivedRngSeedRule final : public Rule {
 public:
  std::string_view id() const override { return "D7"; }
  std::string_view name() const override { return "underived-rng-seed"; }
  std::string_view description() const override {
    return "Rng constructed without an explicit seed: every stream must "
           "derive from the run seed so fault/churn/protocol draws stay "
           "independent and reproducible";
  }
  std::string_view hint() const override {
    return "seed with `spec.seed + <prime>` (the faults layer uses "
           "seed + 131) or split an existing stream via Rng::split()";
  }
  bool applicable(const FileScan& file) const override {
    // Headers declare Rng members that constructors seed later; the
    // default-seed hazard is default-constructed locals/temporaries.
    return !file.is_header;
  }
  void check(const FileScan& file,
             std::vector<Finding>& out) const override {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_ident(toks[i], "Rng")) continue;
      if (i > 0 && is_punct(toks[i - 1], "::")) continue;  // Rng::Rng def
      if (i > 0 && is_punct(toks[i - 1], "~")) continue;   // destructor
      // `Rng() = default;` is a constructor declaration, not a draw.
      if (i + 3 < toks.size() && is_punct(toks[i + 3], "=")) continue;
      // `Rng x;` — default-constructed local.
      if (i + 2 < toks.size() && toks[i + 1].kind == TokKind::kIdent &&
          is_punct(toks[i + 2], ";")) {
        emit(*this, file, toks[i].line,
             "Rng '" + toks[i + 1].text + "' default-constructed", out);
        continue;
      }
      // `Rng()` / `Rng{}` — default-constructed temporary.
      if (i + 1 < toks.size() &&
          ((is_punct(toks[i + 1], "(") && i + 2 < toks.size() &&
            is_punct(toks[i + 2], ")")) ||
           (is_punct(toks[i + 1], "{") && i + 2 < toks.size() &&
            is_punct(toks[i + 2], "}")))) {
        emit(*this, file, toks[i].line, "Rng temporary default-constructed",
             out);
      }
    }
  }
};

// ------------------------------------------ D8 (stale determinism debt)
class DeterminismTodoRule final : public Rule {
 public:
  std::string_view id() const override { return "D8"; }
  std::string_view name() const override { return "determinism-todo"; }
  std::string_view description() const override {
    return "TODO/FIXME marker admitting a determinism or ordering "
           "problem: tracked debt in exactly the bug class the golden "
           "tests cannot localize";
  }
  std::string_view hint() const override {
    return "fix it or file an issue and reference it from the comment";
  }
  Severity severity() const override { return Severity::kWarning; }
  bool applicable(const FileScan&) const override { return true; }
  void check(const FileScan& file,
             std::vector<Finding>& out) const override {
    for (const Comment& cm : file.comments) {
      const std::string text = lower(cm.text);
      const bool marker = contains(text, "todo") ||
                          contains(text, "fixme") || contains(text, "xxx");
      if (!marker) continue;
      const bool determinism =
          contains(text, "determin") || contains(text, "nondet") ||
          contains(text, "iteration order") ||
          contains(text, "thread count") || contains(text, "race");
      if (determinism) {
        emit(*this, file, cm.line,
             "comment flags unresolved determinism debt", out);
      }
    }
  }
};

// ------------------------------------------- D9 cross-shard-capture
class CrossShardCaptureRule final : public Rule {
 public:
  std::string_view id() const override { return "D9"; }
  std::string_view name() const override { return "cross-shard-capture"; }
  std::string_view description() const override {
    return "default [&] capture in a shard-pinned schedule_at/schedule_in "
           "call: the callback may cross a shard handoff, so every "
           "implicitly borrowed local is a use-after-scope or shared-"
           "mutation hazard the reviewer cannot see";
  }
  std::string_view hint() const override {
    return "capture explicitly ([this, x, ...]) so the cross-shard "
           "callback's state footprint is visible and reviewable";
  }
  bool applicable(const FileScan&) const override { return true; }
  void check(const FileScan& file,
             std::vector<Finding>& out) const override {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!is_ident(toks[i], "schedule_at") &&
          !is_ident(toks[i], "schedule_in")) {
        continue;
      }
      if (!is_punct(toks[i + 1], "(")) continue;
      // Walk the argument list. Only the three-argument (shard-pinned)
      // overload is in scope: count commas at argument level and
      // remember any default by-reference lambda intro ([&] or [&, ..])
      // seen there. Nested parens, capture lists, and lambda bodies are
      // depth-tracked so their commas don't count.
      int paren = 1;
      int bracket = 0;
      int brace = 0;
      int commas = 0;
      std::vector<int> capture_lines;
      for (std::size_t j = i + 2; j < toks.size() && paren > 0; ++j) {
        if (is_punct(toks[j], "(")) {
          ++paren;
        } else if (is_punct(toks[j], ")")) {
          --paren;
        } else if (is_punct(toks[j], "{")) {
          ++brace;
        } else if (is_punct(toks[j], "}")) {
          --brace;
        } else if (is_punct(toks[j], "[")) {
          if (paren == 1 && brace == 0 && bracket == 0 &&
              j + 2 < toks.size() && is_punct(toks[j + 1], "&") &&
              (is_punct(toks[j + 2], "]") || is_punct(toks[j + 2], ","))) {
            capture_lines.push_back(toks[j].line);
          }
          ++bracket;
        } else if (is_punct(toks[j], "]")) {
          --bracket;
        } else if (paren == 1 && brace == 0 && bracket == 0 &&
                   is_punct(toks[j], ",")) {
          ++commas;
        }
      }
      if (commas < 2) continue;  // two-argument overload: shard-local
      for (const int line : capture_lines) {
        emit(*this, file, line,
             "default [&] capture in shard-pinned " + toks[i].text +
                 " callback",
             out);
      }
    }
  }
};

// ------------------------------------------ D10 speculative-capture
class SpeculativeCaptureRule final : public Rule {
 public:
  std::string_view id() const override { return "D10"; }
  std::string_view name() const override { return "speculative-capture"; }
  std::string_view description() const override {
    return "default or by-reference capture in a Locality::kShardLocal "
           "schedule call: speculative callbacks run on pool threads "
           "before their window commits, so any implicitly or by-"
           "reference borrowed local that is not shard-private state is "
           "a cross-thread mutation the replay contract cannot repair";
  }
  std::string_view hint() const override {
    return "capture [this, x, ...] by value only; shard-local callbacks "
           "may touch nothing but their own shard's state";
  }
  bool applicable(const FileScan&) const override { return true; }
  void check(const FileScan& file,
             std::vector<Finding>& out) const override {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!is_ident(toks[i], "schedule_at") &&
          !is_ident(toks[i], "schedule_in")) {
        continue;
      }
      if (!is_punct(toks[i + 1], "(")) continue;
      // One walk over the argument list: remember whether the locality
      // argument marks the callback speculative, and record every
      // default ([&] / [=]) or by-reference (&x) capture intro seen at
      // argument level. Depth tracking mirrors D9 so nested lambdas and
      // subscripts inside the callback body never count.
      int paren = 1;
      int bracket = 0;
      int brace = 0;
      bool shard_local = false;
      std::vector<int> capture_lines;
      for (std::size_t j = i + 2; j < toks.size() && paren > 0; ++j) {
        if (is_punct(toks[j], "(")) {
          ++paren;
        } else if (is_punct(toks[j], ")")) {
          --paren;
        } else if (is_punct(toks[j], "{")) {
          ++brace;
        } else if (is_punct(toks[j], "}")) {
          --brace;
        } else if (is_punct(toks[j], "[")) {
          if (paren == 1 && brace == 0 && bracket == 0) {
            // Scan the capture list [ .. ] itself for hazards.
            int depth = 1;
            bool first = true;
            for (std::size_t k = j + 1; k < toks.size() && depth > 0;
                 ++k) {
              if (is_punct(toks[k], "[")) {
                ++depth;
              } else if (is_punct(toks[k], "]")) {
                --depth;
              } else if (is_punct(toks[k], "&") ||
                         (first && is_punct(toks[k], "="))) {
                capture_lines.push_back(toks[j].line);
                break;
              }
              first = false;
            }
          }
          ++bracket;
        } else if (is_punct(toks[j], "]")) {
          --bracket;
        } else if (paren == 1 && brace == 0 && bracket == 0 &&
                   is_ident(toks[j], "kShardLocal")) {
          shard_local = true;
        }
      }
      if (!shard_local) continue;
      for (const int line : capture_lines) {
        emit(*this, file, line,
             "unsafe capture in speculative (kShardLocal) " +
                 toks[i].text + " callback",
             out);
      }
    }
  }
};

// ---------------------------------------------------- S1 pragma-once
class PragmaOnceRule final : public Rule {
 public:
  std::string_view id() const override { return "S1"; }
  std::string_view name() const override { return "pragma-once"; }
  std::string_view description() const override {
    return "header without #pragma once";
  }
  std::string_view hint() const override {
    return "add #pragma once after the file comment";
  }
  bool applicable(const FileScan& file) const override {
    return file.is_header;
  }
  void check(const FileScan& file,
             std::vector<Finding>& out) const override {
    for (const Directive& d : file.directives) {
      std::string flat;
      for (const char c : d.text) {
        if (!std::isspace(static_cast<unsigned char>(c))) flat += c;
      }
      if (flat == "#pragmaonce") return;
    }
    emit(*this, file, 1, "missing #pragma once", out);
  }
};

// ---------------------------------------------------- S2 include-hygiene
class IncludeHygieneRule final : public Rule {
 public:
  std::string_view id() const override { return "S2"; }
  std::string_view name() const override { return "include-hygiene"; }
  std::string_view description() const override {
    return "include hygiene: no parent-relative quoted includes, no "
           "<bits/...> internals, no duplicate includes";
  }
  std::string_view hint() const override {
    return "include project headers root-relative (the build exports "
           "src/ and tools/) and public standard headers only, once";
  }
  bool applicable(const FileScan&) const override { return true; }
  void check(const FileScan& file,
             std::vector<Finding>& out) const override {
    std::vector<std::string> seen;
    for (const Directive& d : file.directives) {
      std::string rest = trim(d.text.substr(1));  // past '#'
      if (!starts_with(rest, "include")) continue;
      rest = trim(rest.substr(7));
      if (rest.empty()) continue;
      const char open = rest[0];
      if (open != '"' && open != '<') continue;
      const char close = open == '"' ? '"' : '>';
      const std::size_t end = rest.find(close, 1);
      if (end == std::string::npos) continue;
      const std::string spec = rest.substr(1, end - 1);
      if (open == '"' &&
          (starts_with(spec, "../") || contains(spec, "/../"))) {
        emit(*this, file, d.line,
             "parent-relative include \"" + spec + "\"", out);
      }
      if (open == '<' && starts_with(spec, "bits/")) {
        emit(*this, file, d.line,
             "libstdc++ internal header <" + spec + ">", out);
      }
      const std::string key = std::string(1, open) + spec;
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
        emit(*this, file, d.line, "duplicate include of " + spec, out);
      } else {
        seen.push_back(key);
      }
    }
  }
};

// Shared marker parse for suppressions and S3. Returns true and fills
// ids/reason on a well-formed marker; `present` reports whether the
// marker head appeared at all.
bool parse_marker(const std::string& comment, bool& present,
                  std::vector<std::string>& ids, std::string& reason) {
  present = false;
  const std::size_t at = comment.find(kMarker);
  if (at == std::string::npos) return false;
  present = true;
  const std::size_t open = at + kMarker.size();
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return false;
  std::string list = comment.substr(open, close - open);
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string id = trim(list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos));
    if (id.empty() || RuleRegistry::instance().find(id) == nullptr) {
      ids.clear();
      return false;
    }
    ids.push_back(id);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  std::size_t p = close + 1;
  while (p < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[p]))) {
    ++p;
  }
  if (p >= comment.size() || comment[p] != ':') {
    ids.clear();
    return false;
  }
  reason = trim(comment.substr(p + 1));
  if (reason.empty()) {
    ids.clear();
    return false;
  }
  return true;
}

// ---------------------------------------------------- S3 suppression-syntax
class SuppressionSyntaxRule final : public Rule {
 public:
  std::string_view id() const override { return "S3"; }
  std::string_view name() const override { return "suppression-syntax"; }
  std::string_view description() const override {
    return "malformed suppression marker: unknown rule id, missing "
           "colon, or empty reason";
  }
  std::string_view hint() const override {
    return "write the marker as id list in parentheses, a colon, then a "
           "non-empty reason (see docs/ANALYSIS.md)";
  }
  bool applicable(const FileScan&) const override { return true; }
  void check(const FileScan& file,
             std::vector<Finding>& out) const override {
    for (const Comment& cm : file.comments) {
      bool present = false;
      std::vector<std::string> ids;
      std::string reason;
      if (!parse_marker(cm.text, present, ids, reason) && present) {
        emit(*this, file, cm.line, "malformed suppression marker", out);
      }
    }
  }
};

}  // namespace

RuleRegistry& RuleRegistry::instance() {
  static RuleRegistry registry;
  return registry;
}

void RuleRegistry::add(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
}

const Rule* RuleRegistry::find(std::string_view id_or_name) const {
  for (const auto& rule : rules_) {
    if (rule->id() == id_or_name || rule->name() == id_or_name) {
      return rule.get();
    }
  }
  return nullptr;
}

void register_builtin_rules() {
  static const bool once = [] {
    RuleRegistry& reg = RuleRegistry::instance();
    reg.add(std::make_unique<UnorderedIterationRule>());
    reg.add(std::make_unique<WallClockEntropyRule>());
    reg.add(std::make_unique<ThreadIdLogicRule>());
    reg.add(std::make_unique<PointerKeyedMapRule>());
    reg.add(std::make_unique<FpAccumulationOrderRule>());
    reg.add(std::make_unique<LockAcrossSubmitRule>());
    reg.add(std::make_unique<UnderivedRngSeedRule>());
    reg.add(std::make_unique<DeterminismTodoRule>());
    reg.add(std::make_unique<CrossShardCaptureRule>());
    reg.add(std::make_unique<SpeculativeCaptureRule>());
    reg.add(std::make_unique<PragmaOnceRule>());
    reg.add(std::make_unique<IncludeHygieneRule>());
    reg.add(std::make_unique<SuppressionSyntaxRule>());
    return true;
  }();
  (void)once;
}

std::vector<Suppression> collect_suppressions(const FileScan& file) {
  register_builtin_rules();
  std::vector<Suppression> out;
  for (const Comment& cm : file.comments) {
    bool present = false;
    std::vector<std::string> ids;
    std::string reason;
    if (!parse_marker(cm.text, present, ids, reason)) continue;
    // Own-line markers shield the next source line; trailing markers
    // their own.
    const int target = cm.own_line ? cm.end_line + 1 : cm.line;
    for (const std::string& id : ids) {
      out.push_back(Suppression{id, file.path, target, reason, false});
    }
  }
  return out;
}

void apply_suppressions(std::vector<Suppression>& suppressions,
                        std::vector<Finding>& findings) {
  for (Finding& f : findings) {
    if (f.rule == "S3") continue;
    for (Suppression& s : suppressions) {
      if (s.rule == f.rule && s.line == f.line) {
        f.suppressed = true;
        f.reason = s.reason;
        s.used = true;
        break;
      }
    }
  }
}

void run_rules(const FileScan& file, const std::vector<const Rule*>& rules,
               std::vector<Finding>& out) {
  for (const Rule* rule : rules) {
    if (rule->applicable(file)) rule->check(file, out);
  }
}

}  // namespace detlint
