// detlint rule registry.
//
// Mirrors the runtime registry in src/analysis/lint_rules.h: stateless
// rule objects self-describe (id, name, description, fix hint), declare
// applicability per file, and append findings. Rules D1-D9 guard the
// repo's bit-determinism ground rule (docs/PERF.md, ROADMAP); S1-S3 are
// structural hygiene. Findings are suppressed line-by-line with inline
// markers (syntax in docs/ANALYSIS.md and the CLI usage text): own-line
// markers cover the next line, trailing markers their own line. Every
// suppression needs a known rule id and a non-empty reason; malformed
// markers are themselves findings (S3).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "detlint/scanner.h"

namespace detlint {

enum class Severity { kWarning, kError };

struct Finding {
  std::string rule;       // short id: "D1"
  std::string rule_name;  // slug: "unordered-iteration"
  Severity severity = Severity::kError;
  std::string file;
  int line = 0;
  std::string message;
  std::string hint;
  bool suppressed = false;
  std::string reason;  // the marker's reason when suppressed
};

class Rule {
 public:
  virtual ~Rule() = default;

  virtual std::string_view id() const = 0;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  /// One-line fix suggestion attached to every finding.
  virtual std::string_view hint() const = 0;
  virtual Severity severity() const { return Severity::kError; }

  /// True when the rule wants to look at this file (path scoping).
  virtual bool applicable(const FileScan& file) const = 0;
  virtual void check(const FileScan& file,
                     std::vector<Finding>& out) const = 0;
};

/// Append-only catalog; iteration order is registration order.
class RuleRegistry {
 public:
  static RuleRegistry& instance();

  void add(std::unique_ptr<Rule> rule);
  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }
  /// Lookup by id ("D1") or name ("unordered-iteration"); nullptr when
  /// unknown.
  const Rule* find(std::string_view id_or_name) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// Forces registration of the built-in rules (safe to call repeatedly).
void register_builtin_rules();

/// One parsed suppression marker, already exploded per rule id.
struct Suppression {
  std::string rule;  // "D1"
  std::string file;
  int line = 0;  // the source line it covers
  std::string reason;
  bool used = false;
};

/// Extracts the well-formed suppression markers of a file. Malformed
/// markers are not returned — the S3 rule reports those.
std::vector<Suppression> collect_suppressions(const FileScan& file);

/// Marks findings covered by a suppression (same rule id and line) and
/// flips `used` on the matching markers. S3 findings are never
/// suppressible — a broken marker must not silence itself.
void apply_suppressions(std::vector<Suppression>& suppressions,
                        std::vector<Finding>& findings);

/// Runs each rule applicable to `file`, appending findings.
void run_rules(const FileScan& file, const std::vector<const Rule*>& rules,
               std::vector<Finding>& out);

}  // namespace detlint
