// detlint — determinism & concurrency static analysis for propsim.
//
// Scans C++ sources with a hand-rolled lexer (no clang dependency) and
// applies the rule registry in rules.cpp: D1-D9 determinism hazards,
// S1-S3 structural hygiene. Exit 0 when clean, 1 when unsuppressed
// error findings remain (warnings too under --strict), 2 on usage or
// I/O trouble.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "detlint/report.h"
#include "detlint/rules.h"
#include "detlint/scanner.h"

namespace {

namespace fs = std::filesystem;
using namespace detlint;

constexpr const char* kUsage = R"(usage: detlint [options] [path...]

Scans C++ sources under each path (default: src tools) for determinism
and concurrency hazards. Paths are resolved against --root.

options:
  --root DIR    repository root (default: current directory)
  --rules LIST  comma-separated rule ids/names to run (default: all)
  --list-rules  print the rule catalog and exit
  --json FILE   also write a propsim.lint v1 JSON report to FILE
  --quiet       hide suppressed findings and unused-marker notes
  --strict      warnings also fail the run (exit 1)

Suppress a finding inline with a marker comment:
  code();  // det-ok(D1): probed by key only, never iterated
An own-line marker covers the next source line. Each marker needs a
known rule id (comma list allowed) and a non-empty reason after the
colon; malformed markers are S3 findings and cannot be suppressed.
)";

struct Options {
  std::string root = ".";
  std::vector<std::string> rule_filter;
  std::vector<std::string> paths;
  std::string json_path;
  bool list_rules = false;
  bool quiet = false;
  bool strict = false;
};

bool parse_args(int argc, char** argv, Options& opt, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        error = std::string(flag) + " needs a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else if (arg == "--root") {
      const char* v = need_value("--root");
      if (!v) return false;
      opt.root = v;
    } else if (arg == "--rules") {
      const char* v = need_value("--rules");
      if (!v) return false;
      std::stringstream ss(v);
      std::string id;
      while (std::getline(ss, id, ',')) {
        if (!id.empty()) opt.rule_filter.push_back(id);
      }
    } else if (arg == "--json") {
      const char* v = need_value("--json");
      if (!v) return false;
      opt.json_path = v;
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--strict") {
      opt.strict = true;
    } else if (!arg.empty() && arg[0] == '-') {
      error = "unknown option " + arg;
      return false;
    } else {
      opt.paths.push_back(arg);
    }
  }
  if (opt.paths.empty()) opt.paths = {"src", "tools"};
  return true;
}

// Collects scannable files under root/rel, returned root-relative with
// forward slashes, sorted for deterministic report order.
bool collect_files(const fs::path& root, const std::string& rel,
                   std::vector<std::string>& out, std::string& error) {
  const fs::path base = root / rel;
  std::error_code ec;
  if (fs::is_regular_file(base, ec)) {
    if (is_source_path(base.generic_string())) out.push_back(rel);
    return true;
  }
  if (!fs::is_directory(base, ec)) {
    error = "path not found: " + base.string();
    return false;
  }
  auto it = fs::recursive_directory_iterator(
      base, fs::directory_options::skip_permission_denied, ec);
  if (ec) {
    error = "cannot walk " + base.string() + ": " + ec.message();
    return false;
  }
  for (; it != fs::recursive_directory_iterator(); ++it) {
    const fs::path& p = it->path();
    const std::string name = p.filename().generic_string();
    if (it->is_directory(ec)) {
      if (name == "build" || name == ".git" || name == "third_party") {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (!it->is_regular_file(ec)) continue;
    const std::string generic = p.generic_string();
    if (!is_source_path(generic)) continue;
    out.push_back(fs::relative(p, root, ec).generic_string());
  }
  return true;
}

void print_rule_catalog() {
  for (const auto& rule : RuleRegistry::instance().rules()) {
    std::cout << rule->id() << "  " << rule->name() << "  ("
              << (rule->severity() == Severity::kError ? "error"
                                                       : "warning")
              << ")\n    " << rule->description() << "\n    fix: "
              << rule->hint() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string error;
  if (!parse_args(argc, argv, opt, error)) {
    std::cerr << "detlint: " << error << "\n" << kUsage;
    return 2;
  }

  register_builtin_rules();
  if (opt.list_rules) {
    print_rule_catalog();
    return 0;
  }

  std::vector<const Rule*> rules;
  if (opt.rule_filter.empty()) {
    for (const auto& rule : RuleRegistry::instance().rules()) {
      rules.push_back(rule.get());
    }
  } else {
    for (const std::string& id : opt.rule_filter) {
      const Rule* rule = RuleRegistry::instance().find(id);
      if (rule == nullptr) {
        std::cerr << "detlint: unknown rule '" << id
                  << "' (see --list-rules)\n";
        return 2;
      }
      rules.push_back(rule);
    }
    // S3 always runs: a broken marker must surface even when the rule
    // it names is filtered out.
    const Rule* s3 = RuleRegistry::instance().find("S3");
    if (std::find(rules.begin(), rules.end(), s3) == rules.end()) {
      rules.push_back(s3);
    }
  }

  const fs::path root = fs::path(opt.root);
  std::vector<std::string> files;
  for (const std::string& rel : opt.paths) {
    if (!collect_files(root, rel, files, error)) {
      std::cerr << "detlint: " << error << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  Report report;
  for (const std::string& rel : files) {
    std::ifstream in(root / rel, std::ios::binary);
    if (!in) {
      std::cerr << "detlint: cannot read " << (root / rel).string()
                << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const FileScan scan = scan_source(rel, buf.str());
    ++report.files_scanned;

    std::vector<Finding> findings;
    run_rules(scan, rules, findings);
    std::vector<Suppression> sups = collect_suppressions(scan);
    apply_suppressions(sups, findings);
    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding& a, const Finding& b) {
                       return a.line < b.line;
                     });
    for (Finding& f : findings) {
      report.findings.push_back(std::move(f));
    }
    for (Suppression& s : sups) {
      report.suppression_total += 1;
      if (s.used) {
        report.suppression_used += 1;
      } else {
        report.unused.push_back(s);
      }
    }
  }

  render_text(report, std::cout, opt.quiet);
  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path, std::ios::binary);
    if (!out) {
      std::cerr << "detlint: cannot write " << opt.json_path << "\n";
      return 2;
    }
    out << render_json(report);
  }

  const Severity gate = opt.strict ? Severity::kWarning : Severity::kError;
  return count_unsuppressed(report, gate) > 0 ? 1 : 0;
}
