// Finding rendering: human-readable text and the propsim.lint v1 JSON
// stream. The JSON mirrors the propsim.trace pattern — a schema tag and
// integer version first, then content — so downstream tooling can
// dispatch without sniffing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "detlint/rules.h"

namespace detlint {

struct Report {
  std::vector<Finding> findings;        // file order, rule order within
  std::vector<Suppression> unused;      // markers that shielded nothing
  int files_scanned = 0;
  int suppression_total = 0;
  int suppression_used = 0;
};

/// Unsuppressed findings at the given severity or above.
int count_unsuppressed(const Report& report, Severity at_least);

/// One line per finding (file:line: severity: [id/name] message, hint on
/// a continuation line) plus a summary footer. `quiet` drops suppressed
/// findings and the unused-marker notes.
void render_text(const Report& report, std::ostream& os, bool quiet);

/// Serializes the report as a propsim.lint version-1 document.
std::string render_json(const Report& report);

}  // namespace detlint
