// Lightweight C++ lexer for detlint.
//
// detlint's rules are token-sequence and comment patterns, not semantic
// analysis, so a few hundred lines of hand-rolled lexing replace a clang
// dependency and run everywhere CI does. The scanner understands exactly
// enough C++: line tracking, string/char literals (raw strings included),
// `//` and `/* */` comments, preprocessor lines (with backslash
// continuation), multi-char operators, identifiers and numbers. It never
// fails: unexpected bytes become single-char punctuation tokens.
#pragma once

#include <string>
#include <vector>

namespace detlint {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (pp-number shape)
  kString,  // "..." and R"(...)" with prefixes
  kChar,    // '...'
  kPunct,   // operators and punctuation, multi-char ops combined
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;
};

struct Comment {
  std::string text;  // without the // or /* */ markers
  int line = 0;      // line the comment starts on
  int end_line = 0;  // line the comment ends on (== line for //)
  bool own_line = false;  // only whitespace precedes it on its line
};

struct Directive {
  std::string text;  // full directive, '#' included, continuations joined
  int line = 0;
};

struct FileScan {
  std::string path;  // as given (detlint passes root-relative paths)
  bool is_header = false;
  int line_count = 0;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Directive> directives;
};

/// True for extensions detlint scans (.h .hpp .hh .cpp .cc .cxx).
bool is_source_path(const std::string& path);

/// Lexes `text` as C++ source. `path` is recorded verbatim and decides
/// is_header; use forward slashes so rule path scopes match.
FileScan scan_source(const std::string& path, const std::string& text);

}  // namespace detlint
