// Shared small fixtures for propsim tests: a miniature transit-stub
// physical network and overlay builders sized so suites stay fast.
#pragma once

#include "common/rng.h"
#include "gnutella/gnutella.h"
#include "overlay/overlay_network.h"
#include "topology/latency_oracle.h"
#include "topology/transit_stub.h"

namespace propsim::testing {

/// 2 transit domains x 2 transit nodes x 2 stub domains x 12 stub nodes
/// = 4 + 96 = 100 physical nodes.
inline TransitStubConfig tiny_transit_stub_config() {
  TransitStubConfig c;
  c.transit_domains = 2;
  c.transit_nodes_per_domain = 2;
  c.stub_domains_per_transit = 2;
  c.nodes_per_stub = 12;
  c.stub_edge_probability = 0.15;
  c.extra_interdomain_edges = 1;
  return c;
}

/// Bundles a physical topology, its oracle and an unstructured overlay
/// over `overlay_n` stub hosts; everything seeded for reproducibility.
struct UnstructuredFixture {
  TransitStubTopology topo;
  LatencyOracle oracle;
  OverlayNetwork net;

  static UnstructuredFixture make(std::size_t overlay_n, std::uint64_t seed,
                                  std::size_t attach_links = 3) {
    Rng rng(seed);
    TransitStubTopology topo = make_transit_stub(tiny_transit_stub_config(),
                                                 rng);
    return UnstructuredFixture(std::move(topo), overlay_n, rng, attach_links);
  }

 private:
  UnstructuredFixture(TransitStubTopology t, std::size_t overlay_n, Rng& rng,
                      std::size_t attach_links)
      : topo(std::move(t)),
        oracle(topo.graph),
        net(build_overlay(overlay_n, rng, attach_links)) {}

  OverlayNetwork build_overlay(std::size_t overlay_n, Rng& rng,
                               std::size_t attach_links) {
    const auto indices =
        rng.sample_indices(topo.stub_nodes.size(), overlay_n);
    std::vector<NodeId> hosts;
    hosts.reserve(overlay_n);
    for (const std::size_t i : indices) hosts.push_back(topo.stub_nodes[i]);
    GnutellaConfig cfg;
    cfg.attach_links = attach_links;
    return build_gnutella_overlay(cfg, hosts, oracle, rng);
  }
};

}  // namespace propsim::testing
