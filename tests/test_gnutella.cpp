#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "fixtures.h"
#include "gnutella/flood_search.h"
#include "gnutella/gnutella.h"

namespace propsim {
namespace {

using testing::UnstructuredFixture;

TEST(GnutellaBuild, ConnectedWithMinDegree) {
  auto fx = UnstructuredFixture::make(60, 1001, /*attach_links=*/4);
  EXPECT_TRUE(fx.net.graph().active_subgraph_connected());
  EXPECT_EQ(fx.net.graph().min_active_degree(), 4u);
  EXPECT_EQ(fx.net.size(), 60u);
}

TEST(GnutellaBuild, PlacementBindsDistinctStubHosts) {
  auto fx = UnstructuredFixture::make(40, 1002);
  const auto hosts = fx.net.placement().bound_hosts();
  std::set<NodeId> uniq(hosts.begin(), hosts.end());
  EXPECT_EQ(uniq.size(), hosts.size());
  for (const NodeId h : hosts) {
    EXPECT_EQ(fx.topo.kind[h], NodeKind::kStub);
  }
  EXPECT_TRUE(fx.net.placement().validate());
}

TEST(GnutellaBuild, PreferentialAttachmentSkewsDegrees) {
  // With a 50% preferential share the max degree should clearly exceed
  // the attach floor (heavy-tailed-ish profile).
  auto fx = UnstructuredFixture::make(80, 1003, /*attach_links=*/3);
  std::size_t max_degree = 0;
  for (const SlotId s : fx.net.graph().active_slots()) {
    max_degree = std::max(max_degree, fx.net.graph().degree(s));
  }
  EXPECT_GE(max_degree, 8u);
}

TEST(GnutellaBuild, DeterministicForSeed) {
  auto a = UnstructuredFixture::make(50, 77);
  auto b = UnstructuredFixture::make(50, 77);
  EXPECT_EQ(a.net.graph().edge_count(), b.net.graph().edge_count());
  EXPECT_EQ(a.net.graph().degree_multiset(), b.net.graph().degree_multiset());
}

TEST(GnutellaJoin, AttachesNewSlot) {
  auto fx = UnstructuredFixture::make(30, 1004);
  GnutellaConfig cfg;
  cfg.attach_links = 3;
  // A stub host not already in the overlay.
  NodeId host = kInvalidNode;
  for (const NodeId h : fx.topo.stub_nodes) {
    if (!fx.net.placement().host_bound(h)) {
      host = h;
      break;
    }
  }
  ASSERT_NE(host, kInvalidNode);
  Rng rng(5);
  const SlotId joiner = gnutella_join(fx.net, cfg, host, rng);
  EXPECT_EQ(fx.net.graph().degree(joiner), 3u);
  EXPECT_EQ(fx.net.placement().host_of(joiner), host);
  EXPECT_TRUE(fx.net.graph().active_subgraph_connected());
  EXPECT_TRUE(fx.net.placement().validate());
}

TEST(FloodSearch, FindsHolderWithinTtl) {
  auto fx = UnstructuredFixture::make(50, 1005);
  std::vector<bool> holders(fx.net.graph().slot_count(), false);
  holders[10] = true;
  const auto res = flood_search(fx.net, 0, holders, /*ttl=*/10);
  EXPECT_TRUE(res.found);
  EXPECT_GT(res.messages, 0u);
  EXPECT_GE(res.peers_reached, 2u);
  EXPECT_GT(res.first_response_ms, 0.0);
}

TEST(FloodSearch, SourceHoldsObject) {
  auto fx = UnstructuredFixture::make(30, 1006);
  std::vector<bool> holders(fx.net.graph().slot_count(), false);
  holders[3] = true;
  const auto res = flood_search(fx.net, 3, holders, 5);
  EXPECT_TRUE(res.found);
  EXPECT_DOUBLE_EQ(res.first_response_ms, 0.0);
  EXPECT_EQ(res.hops, 0u);
}

TEST(FloodSearch, TtlZeroOnlyChecksSource) {
  auto fx = UnstructuredFixture::make(30, 1007);
  std::vector<bool> holders(fx.net.graph().slot_count(), false);
  holders[7] = true;
  const auto res = flood_search(fx.net, 0, holders, 0);
  EXPECT_FALSE(res.found);
  EXPECT_EQ(res.messages, 0u);
}

TEST(FloodSearch, TightTtlCanMiss) {
  auto fx = UnstructuredFixture::make(60, 1008, /*attach_links=*/2);
  // Find a slot at hop distance > 1 from source 0.
  const auto hops = fx.net.hop_distances(0, 10);
  SlotId far = kInvalidSlot;
  for (SlotId s = 0; s < hops.size(); ++s) {
    if (hops[s] != std::numeric_limits<std::uint32_t>::max() && hops[s] >= 3) {
      far = s;
      break;
    }
  }
  ASSERT_NE(far, kInvalidSlot);
  std::vector<bool> holders(fx.net.graph().slot_count(), false);
  holders[far] = true;
  EXPECT_FALSE(flood_search(fx.net, 0, holders, 1).found);
  EXPECT_TRUE(flood_search(fx.net, 0, holders, 10).found);
}

TEST(FloodSearch, LatencyLowerBoundedByIdealizedFlood) {
  auto fx = UnstructuredFixture::make(50, 1009);
  const auto ideal = fx.net.flood_latencies(0);
  std::vector<bool> holders(fx.net.graph().slot_count(), false);
  holders[20] = true;
  const auto res = flood_search(fx.net, 0, holders, 12);
  ASSERT_TRUE(res.found);
  // The hop-wavefront flood can't beat the min-latency overlay path.
  EXPECT_GE(res.first_response_ms, ideal[20] - 1e-9);
}

TEST(FloodSearch, ProcessingDelayAddsUp) {
  auto fx = UnstructuredFixture::make(30, 1010);
  std::vector<bool> holders(fx.net.graph().slot_count(), false);
  holders[5] = true;
  const auto plain = flood_search(fx.net, 0, holders, 10);
  std::vector<double> proc(fx.net.graph().slot_count(), 50.0);
  const auto delayed = flood_search(fx.net, 0, holders, 10, &proc);
  ASSERT_TRUE(plain.found);
  ASSERT_TRUE(delayed.found);
  EXPECT_GT(delayed.first_response_ms, plain.first_response_ms);
}

TEST(FloodSearch, ChargesLookupTraffic) {
  auto fx = UnstructuredFixture::make(30, 1011);
  std::vector<bool> holders(fx.net.graph().slot_count(), false);
  holders[9] = true;
  fx.net.traffic().reset();
  const auto res = flood_search(fx.net, 0, holders, 6);
  EXPECT_EQ(fx.net.traffic().by_kind(MessageKind::kLookup), res.messages);
}

}  // namespace
}  // namespace propsim
